#!/usr/bin/env python
"""Quickstart: the full pipeline on a small schema.

Parses a DTD and its functional dependencies, inspects the tree-tuple
representation (Figure 2 of the paper), tests XNF, runs the
decomposition algorithm, and migrates a document across the redesign.

Run:  python examples/quickstart.py
"""

from repro import XMLSpec, serialize_xml, tuples_of

DTD = """
<!ELEMENT library (book*)>
<!ELEMENT book (author+, publisher)>
<!ATTLIST book isbn CDATA #REQUIRED>
<!ELEMENT author (#PCDATA)>
<!ELEMENT publisher (name, country)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT country (#PCDATA)>
"""

# A publisher name determines its country -> storing the country inside
# every book is redundant (same shape as the paper's Example 1.1).
FDS = """
library.book.@isbn -> library.book
library.book.publisher.name.S -> library.book.publisher.country.S
"""

DOCUMENT = """
<library>
  <book isbn="0-13-110362-8">
    <author>Kernighan</author><author>Ritchie</author>
    <publisher><name>Prentice Hall</name><country>USA</country></publisher>
  </book>
  <book isbn="0-201-53771-0">
    <author>Abiteboul</author><author>Hull</author><author>Vianu</author>
    <publisher><name>Addison-Wesley</name><country>USA</country></publisher>
  </book>
</library>
"""


def main() -> None:
    spec = XMLSpec.parse(DTD, FDS)
    doc = spec.parse_document(DOCUMENT)

    print("== tree tuples (Definition 4-6) ==")
    tuples = tuples_of(doc, spec.dtd)
    print(f"the document has {len(tuples)} maximal tree tuples; first one:")
    first = tuples[0]
    for path in sorted(first.paths, key=lambda p: (p.length, str(p))):
        print(f"  {path} = {first.get(path)}")

    print("\n== FD satisfaction and XNF (Definitions 8) ==")
    print("document satisfies Sigma:", spec.document_satisfies(doc))
    print("(D, Sigma) in XNF:       ", spec.is_in_xnf())
    for fd in spec.xnf_violations():
        print("anomalous FD:            ", fd)

    print("\n== normalization (Figure 4 algorithm) ==")
    result = spec.normalize()
    for step in result.step_descriptions:
        print("step:", step)
    print("\nnormalized DTD:")
    print(result.dtd)
    print("normalized FDs:")
    for fd in result.sigma:
        print(" ", fd)

    print("\n== document migration (lossless, Proposition 8) ==")
    migrated = result.migrate(doc)
    print(serialize_xml(migrated))

    normalized_spec = spec.normalized_spec(result)
    print("redesigned spec in XNF:", normalized_spec.is_in_xnf())


if __name__ == "__main__":
    main()
