#!/usr/bin/env python
"""Example 1.1 of the paper, end to end.

Reproduces Figure 1: the redundant university document (a), the XNF
analysis (Examples 4.1 and 5.1), the decomposition — which recreates
the paper's revised DTD exactly, with the ``info``/``number`` element
types — and the restructured document (b).

Run:  python examples/university.py
"""

from repro import NewElementNames, serialize_xml
from repro.datasets.university import university_document, university_spec
from repro.lossless import check_normalization_lossless


def main() -> None:
    spec = university_spec()
    doc = university_document()

    print("== the Example 1.1 DTD ==")
    print(spec.dtd)
    print("== its FDs (Example 4.1) ==")
    for fd in spec.sigma:
        print(" ", fd)

    print("\n== redundancy: Figure 1(a) stores 'Deere' twice ==")
    print("document satisfies Sigma:", spec.document_satisfies(doc))
    print("(D, Sigma) in XNF:", spec.is_in_xnf())
    for fd in spec.xnf_violations():
        print("anomalous (FD3):", fd)
    # The design is not in XNF because sno -> name.S is implied while
    # sno -> name (the node!) is not:
    print("sno -> name-node implied:", spec.implies(
        "courses.course.taken_by.student.@sno -> "
        "courses.course.taken_by.student.name"))

    print("\n== the Figure 4 algorithm ==")
    # The paper names the new element types info/number; pass the same
    # names to reproduce Figure 1(b) verbatim.
    result = spec.normalize(
        naming=lambda i, fd: NewElementNames(tau="info", taus=["number"]))
    for step in result.step_descriptions:
        print("step:", step)
    print("\nthe revised DTD (paper's Example 1.1(b)):")
    print(result.dtd)

    print("== the restructured document (Figure 1(b)) ==")
    migrated = result.migrate(doc)
    print(serialize_xml(migrated))

    print("== losslessness (Proposition 8) ==")
    print("decomposition lossless on the document:",
          check_normalization_lossless(result, spec.dtd, doc))
    print("revised spec in XNF:", spec.normalized_spec(result).is_in_xnf())


if __name__ == "__main__":
    main()
