#!/usr/bin/env python
"""Example 5.3 and Proposition 4: BCNF as a special case of XNF.

Codes a flat relational schema ``G(A, B, C)`` as the two-level DTD of
the paper, shows BCNF and XNF agree on good and bad FD sets, and
contrasts the classical BCNF decomposition with the XNF decomposition
of the coded schema.

Run:  python examples/relational_bcnf.py
"""

from repro.relational import (
    RelationalFD,
    RelationSchema,
    bcnf_decompose,
    candidate_keys,
    encode_relation,
    is_in_bcnf,
    relational_dtd,
    relational_sigma,
)
from repro.spec import XMLSpec
from repro.xmltree import serialize_xml
from repro.xnf import is_in_xnf


def main() -> None:
    schema = RelationSchema("G", ("A", "B", "C"))
    print("== the coding of Example 5.3 ==")
    dtd = relational_dtd(schema)
    print(dtd)

    for fds_text in (["A -> B"], ["A -> B, C"], ["A -> B", "B -> A"]):
        fds = [RelationalFD.parse(t) for t in fds_text]
        sigma = relational_sigma(schema, fds)
        bcnf = is_in_bcnf(schema, fds)
        xnf = is_in_xnf(dtd, sigma)
        keys = candidate_keys(schema, fds)
        print(f"F = {fds_text}")
        print(f"  candidate keys: "
              f"{[','.join(sorted(k)) for k in keys]}")
        print(f"  BCNF: {bcnf}    XNF of the coding: {xnf}"
              f"    (Proposition 4: {'agree' if bcnf == xnf else 'BUG'})")

    print("\n== decompositions of G(A, B, C) with A -> B ==")
    fds = [RelationalFD.parse("A -> B")]
    print("classical BCNF decomposition:")
    for sub, sub_fds in bcnf_decompose(schema, fds):
        rendered = ", ".join(str(fd) for fd in sub_fds) or "none"
        print(f"  {sub}   FDs: {rendered}")

    print("XNF decomposition of the coded schema:")
    spec = XMLSpec(dtd, relational_sigma(schema, fds))
    result = spec.normalize()
    for step in result.step_descriptions:
        print("  step:", step)
    print(result.dtd)

    print("== a coded instance rides along ==")
    rows = [
        {"A": "a1", "B": "b1", "C": "c1"},
        {"A": "a1", "B": "b1", "C": "c2"},   # B repeated: the redundancy
        {"A": "a2", "B": "b1", "C": "c1"},
    ]
    doc = encode_relation(schema, rows)
    migrated = result.migrate(doc)
    print(serialize_xml(migrated))


if __name__ == "__main__":
    main()
