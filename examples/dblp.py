#!/usr/bin/env python
"""Example 1.2 of the paper: the DBLP ``year`` anomaly.

Every paper in an issue stores the issue's year — a *relative* FD —
and the fix is structural: ``year`` becomes an attribute of ``issue``
(the *moving attributes* transformation).  The implication-free variant
of the algorithm (Proposition 7) instead creates a new element type;
both results are in XNF, illustrating the paper's "may produce
suboptimal results" remark.

Run:  python examples/dblp.py
"""

from repro import serialize_xml
from repro.datasets.dblp import dblp_document, dblp_spec
from repro.lossless import check_normalization_lossless
from repro.xnf import is_in_xnf


def main() -> None:
    spec = dblp_spec()
    doc = dblp_document()

    print("== the Example 1.2 DTD and FDs ==")
    print(spec.dtd)
    for fd in spec.sigma:
        print(" ", fd)

    print("\n(D, Sigma) in XNF:", spec.is_in_xnf())
    for fd in spec.xnf_violations():
        print("anomalous (FD5):", fd)

    print("\n== main algorithm: moves the attribute ==")
    result = spec.normalize()
    for step in result.step_descriptions:
        print("step:", step)
    print(result.dtd)
    print("remaining FDs:")
    for fd in result.sigma:
        print(" ", fd)
    print("note: FD5 became the trivial issue -> issue.@year and was "
          "dropped,\nexactly as discussed in Example 5.2.")

    print("\n== migrated document ==")
    migrated = result.migrate(doc)
    print(serialize_xml(migrated))
    print("lossless:", check_normalization_lossless(result, spec.dtd, doc))

    print("\n== Proposition 7 variant: no implication tests ==")
    simple_result = spec.normalize_simple()
    for step in simple_result.step_descriptions:
        print("step:", step)
    print(simple_result.dtd)
    print("in XNF (but with an extra element type instead of the "
          "attribute move):",
          is_in_xnf(simple_result.dtd, simple_result.sigma))


if __name__ == "__main__":
    main()
