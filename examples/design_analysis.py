#!/usr/bin/env python
"""Design analysis in practice: measuring the paper's motivation.

The introduction of the paper argues that poorly designed DTDs cause
*redundant storage* and *update anomalies*.  This example quantifies
both on documents of growing size: redundant copies before
normalization, zero after — and an update anomaly demonstrated by
editing one copy of a redundantly stored value.

It also exercises the Section 8 extension implemented in this repo:
tree-induced multivalued dependencies and the 4NF-style XNF4 check.

Run:  python examples/design_analysis.py
"""

from repro.datasets.university import (
    synthetic_university_document,
    university_spec,
)
from repro.mvd import is_in_xnf4, tree_induced_mvds, satisfies_mvd
from repro.report import analyze, redundancy_of


def main() -> None:
    spec = university_spec()

    print("== redundancy growth with document size ==")
    print(f"{'courses':>8} {'students':>9} {'tuples':>7} "
          f"{'redundant':>10} {'after norm':>11}")
    result = spec.normalize()
    for courses in (2, 4, 8, 16):
        doc = synthetic_university_document(
            courses, 4, seed=7, student_pool=max(4, courses))
        report = analyze(spec, [doc])
        finding = report.documents[0]
        print(f"{courses:>8} {courses * 4:>9} {finding.tuples:>7} "
              f"{finding.total_redundancy:>10} "
              f"{report.migrated_redundancy[0]:>11}")

    print("\n== the full report on a mid-size document ==")
    doc = synthetic_university_document(4, 3, seed=11, student_pool=4)
    print(analyze(spec, [doc]).render())

    print("== update anomaly, demonstrated ==")
    doc = synthetic_university_document(4, 3, seed=11, student_pool=4)
    fd3 = spec.sigma[2]
    before = redundancy_of(spec, doc, fd3)
    # rename ONE stored copy of a redundantly stored name
    for node in doc.iter_nodes():
        if doc.label(node) == "name":
            doc.content[node] = "Renamed"
            break
    print(f"redundant copies before the edit: {before}")
    print("document still satisfies Sigma after editing one copy:",
          spec.document_satisfies(doc))
    print("(False = the partial update left the document inconsistent,")
    print(" which is exactly the anomaly the paper's introduction", )
    print(" describes — the normalized design cannot exhibit it.)")

    print("\n== Section 8 extension: MVDs and XNF4 ==")
    induced = list(tree_induced_mvds(spec.dtd))
    print(f"tree-induced MVDs of the university DTD: {len(induced)}")
    sample = synthetic_university_document(3, 3, seed=3)
    holding = sum(
        1 for mvd in induced if satisfies_mvd(sample, spec.dtd, mvd))
    print(f"holding on a random conforming document: "
          f"{holding}/{len(induced)} (structural, so always all)")
    print("XNF4 of the original design:",
          is_in_xnf4(spec.dtd, spec.sigma, induced))
    print("XNF4 after normalization:  ",
          is_in_xnf4(result.dtd, result.sigma, []))


if __name__ == "__main__":
    main()
