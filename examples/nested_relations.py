#!/usr/bin/env python
"""Figure 3 and Proposition 5: nested relations, PNF, NNF vs XNF.

Builds the Country/State/City nested relation, computes its complete
unnesting (Figure 3(b)), codes the schema as a DTD with the paper's
``Σ_FD`` (including the PNF-enforcing keys), and compares NNF with XNF
on both a good design and a bad one.

Run:  python examples/nested_relations.py
"""

from repro.datasets.nested_geo import geo_instance, geo_schema
from repro.nested import (
    ancestor_attributes,
    complete_unnesting,
    encode_nested_relation,
    is_in_nnf,
    is_in_pnf,
    nested_dtd,
    nested_sigma,
)
from repro.relational import RelationalFD
from repro.xmltree import conforms, serialize_xml
from repro.xnf import is_in_xnf


def main() -> None:
    schema = geo_schema()
    instance = geo_instance()

    print("== the nested schema (Figure 3) ==")
    for sub in schema.walk():
        print(" ", sub)
    print("instance in PNF:", is_in_pnf(instance))

    print("\n== complete unnesting (Figure 3(b)) ==")
    flat = complete_unnesting(instance)
    print("  ".join(flat.attributes))
    for row in flat.rows:
        print("  ".join(str(row[a]) for a in flat.attributes))
    print("State -> Country holds:",
          flat.satisfies_fd(["State"], ["Country"]))
    print("State -> City holds:  ",
          flat.satisfies_fd(["State"], ["City"]))

    print("\n== the XML coding (Section 5) ==")
    dtd = nested_dtd(schema)
    print(dtd)
    doc = encode_nested_relation(instance)
    print("encoded instance conforms:", conforms(doc, dtd))
    print(serialize_xml(doc))

    print("== NNF vs XNF (Proposition 5) ==")
    good = [RelationalFD.parse("State -> Country")]
    print("ancestor(State):", sorted(ancestor_attributes(schema, "State")))
    print("FD set {State -> Country}:")
    print("  NNF:", is_in_nnf(schema, good))
    print("  XNF:", is_in_xnf(nested_dtd(schema),
                              nested_sigma(schema, good)))

    bad = [RelationalFD.parse("City -> State")]
    print("FD set {City -> State} (a city pins its state, but states "
          "nest above cities):")
    print("  NNF:", is_in_nnf(schema, bad))
    print("  XNF:", is_in_xnf(nested_dtd(schema),
                              nested_sigma(schema, bad)))


if __name__ == "__main__":
    main()
