#!/usr/bin/env python
"""Throughput/latency numbers for ``xnf serve`` + the accounting gate.

Two measurements, one advisory and one gating:

* **Load numbers (advisory).**  An in-process
  :class:`~repro.serve.server.NormalizationServer` is driven by the
  seeded corpus load generator (:mod:`repro.serve.loadgen`) and the
  sustained throughput plus p50/p95/p99 latency are printed.  Wall
  times vary across machines, so these never gate — they exist so the
  "serves heavy traffic" claim has numbers attached, tracked run over
  run in CI logs.

* **Accounting-seam gate (<1%, gating).**  Every request passes the
  :func:`repro.serve.server.account` seam (plus one admission-gate
  round trip) even when observability is off.  As with the ledger
  seam (``bench_obs_ledger.py``), an A/B load test cannot resolve a
  sub-microsecond seam under network jitter, so the seam is measured
  in a tight loop (empty-loop baseline subtracted) and compared
  against the measured per-request cost of the *cheapest* real
  request (a cache-hit implication query).  The gate fails when
  seam/request exceeds the tolerance — i.e. when a metrics-disabled
  service starts paying for metrics.

Run:  python benchmarks/bench_serve.py [--requests N] [--repeats N]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import obs
from repro.serve import AdmissionGate, Decision, NormalizationServer
from repro.serve import loadgen
from repro.serve.server import account


def _best_of(repeats: int, body) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        body()
        best = min(best, time.perf_counter() - started)
    return best


def seam_cost_per_request(loops: int = 50_000,
                          repeats: int = 5) -> float:
    """Seconds one request pays, obs disabled, for the per-request
    accounting: two clock reads + the gated :func:`account` call +
    one admission round trip."""
    gate = AdmissionGate(max_inflight=4)

    def baseline() -> None:
        for _ in range(loops):
            pass

    def seam() -> None:
        for _ in range(loops):
            started = time.perf_counter()
            if gate.admit() is Decision.ADMITTED:
                gate.release()
            account("/v1/implication", 200,
                    time.perf_counter() - started)

    baseline()
    seam()
    empty = _best_of(repeats, baseline)
    cost = _best_of(repeats, seam)
    return max(0.0, (cost - empty) / loops)


def request_cost(server: NormalizationServer,
                 repeats: int = 5, loops: int = 50) -> float:
    """Best-case seconds per real request: a warm cache-hit
    implication query over loopback HTTP."""
    import json
    import urllib.request

    dtd = ("<!ELEMENT db (row*)>\n<!ELEMENT row EMPTY>\n"
           "<!ATTLIST row a CDATA #REQUIRED b CDATA #REQUIRED>")
    body = json.dumps({"dtd": dtd, "fds": "db.row.@a -> db.row.@b",
                       "fd": "db.row.@a -> db.row.@b"}).encode()
    url = server.url("/v1/implication")

    def one_pass() -> None:
        for _ in range(loops):
            request = urllib.request.Request(
                url, data=body,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as resp:
                resp.read()

    one_pass()  # warm the spec cache and the allocator
    return _best_of(repeats, one_pass) / loops


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--requests", type=int, default=200,
                        help="corpus requests for the load numbers "
                             "(default 200)")
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--tolerance", type=float, default=0.01,
                        help="allowed seam-over-request overhead "
                             "fraction (default 1%%)")
    args = parser.parse_args(argv)

    obs.disable()
    with NormalizationServer(0, max_inflight=args.concurrency) as srv:
        report = loadgen.run_load(
            srv.url(), requests=args.requests, seed=args.seed,
            concurrency=args.concurrency)
        quantiles = report.quantiles()
        print(f"load:  {report.sent} requests, "
              f"{report.throughput_rps():8.1f} req/s sustained "
              f"({args.concurrency} clients; advisory)")
        print(f"       p50 {quantiles['p50'] * 1e3:7.2f} ms   "
              f"p95 {quantiles['p95'] * 1e3:7.2f} ms   "
              f"p99 {quantiles['p99'] * 1e3:7.2f} ms   "
              f"lost {report.lost}")
        if report.count(status_class=2) != report.sent:
            print("FAIL: load run lost or refused requests on an idle "
                  "server", file=sys.stderr)
            return 1

        per_request = request_cost(srv, repeats=args.repeats)
    seam = seam_cost_per_request(repeats=args.repeats)

    overhead = seam / per_request
    print(f"request: {per_request * 1e6:9.2f} us  (warm cache-hit "
          f"implication over loopback, best of {args.repeats})")
    print(f"seam:    {seam * 1e6:9.3f} us  (disabled accounting + "
          f"admission round trip, per request)")
    print(f"seam vs request: {overhead:+.2%} "
          f"(tolerance +{args.tolerance:.0%})")

    if overhead > args.tolerance:
        print("FAIL: the request-accounting seam is taxing a service "
              "that has metrics disabled", file=sys.stderr)
        return 1
    print("OK: disabled-accounting overhead within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
