#!/usr/bin/env python
"""Overhead gate for the live-telemetry hooks (exporter + heartbeat).

The observability contract (``docs/OBSERVABILITY.md``): exporting and
heartbeating are strictly *opt-in*, and the hooks that enable them —
the ``on_task_done`` callback seam on :class:`BatchRunner` and the
boundary counter snapshots on :func:`repro.obs.trace.span` — must cost
within 1 % of the pre-hook happy path when nothing is attached and
observability is disabled.  This script times the shared corpus
workload through the batch runner twice:

* **bare** — ``on_task_done=None`` (the default), obs disabled;
* **hooked** — a no-op ``on_task_done`` callback attached, which is
  *more* than the disabled configuration ever pays, making the gate
  conservative.

It fails when the hooked run exceeds the bare run by more than the
tolerance — i.e. when someone makes the disabled path pay for live
telemetry.

Run:  python benchmarks/bench_obs_export.py [--repeats N] [--tasks N]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import obs
from repro.bench.suites.runtime import make_manifest, make_runner


def _best_of(repeats: int, body) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        body()
        best = min(best, time.perf_counter() - started)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--tasks", type=int, default=30)
    parser.add_argument("--tolerance", type=float, default=0.01,
                        help="allowed hooked-over-bare overhead "
                             "fraction (default 1%%)")
    args = parser.parse_args(argv)

    obs.disable()
    manifest = make_manifest(args.tasks)
    bare_body = lambda: make_runner(manifest).run()  # noqa: E731

    def hooked_body() -> None:
        make_runner(manifest,
                    on_task_done=lambda outcome: None).run()

    # Warm both paths once so neither benefits from allocator or
    # import-time warm-up order.
    bare_body()
    hooked_body()
    bare = _best_of(args.repeats, bare_body)
    hooked = _best_of(args.repeats, hooked_body)

    overhead = (hooked - bare) / bare
    print(f"bare:   {bare * 1e3:8.2f} ms  ({args.tasks} tasks, "
          f"best of {args.repeats}, obs disabled)")
    print(f"hooked: {hooked * 1e3:8.2f} ms  (no-op on_task_done "
          f"attached)")
    print(f"hooked vs bare: {overhead:+.2%} "
          f"(tolerance +{args.tolerance:.0%})")

    if overhead > args.tolerance:
        print("FAIL: the disabled telemetry hooks are taxing the "
              "happy path", file=sys.stderr)
        return 1
    print("OK: disabled-telemetry overhead within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
