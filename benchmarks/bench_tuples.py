"""Benchmarks for the tree-tuple machinery (Section 3).

``tuples_D(T)`` drives both FD satisfaction checking and document
migration; these series measure its cost against document size on the
Figure 1 workload, plus the Theorem 1 round-trip.
"""

from __future__ import annotations

import pytest

from repro.datasets.university import (
    synthetic_university_document,
    university_spec,
)
from repro.tuples.build import trees_of
from repro.tuples.extract import count_tuples, tuples_of


@pytest.mark.parametrize("courses", [5, 10, 20, 40])
def test_tuples_extraction_scaling(benchmark, courses):
    """Linear in (courses × students): the document is flat-ish, so the
    tuple count equals the student count."""
    spec = university_spec()
    doc = synthetic_university_document(courses, 5, seed=1)
    tuples = benchmark(tuples_of, doc, spec.dtd)
    assert len(tuples) == count_tuples(doc)


@pytest.mark.parametrize("students", [2, 4, 8, 16])
def test_tuples_extraction_wide_courses(benchmark, students):
    spec = university_spec()
    doc = synthetic_university_document(4, students, seed=2,
                                        student_pool=64)
    tuples = benchmark(tuples_of, doc, spec.dtd)
    assert len(tuples) == count_tuples(doc)


@pytest.mark.parametrize("courses", [5, 10, 20])
def test_theorem1_roundtrip_cost(benchmark, courses):
    """tuples_D then trees_D: the Theorem 1 pipeline."""
    spec = university_spec()
    doc = synthetic_university_document(courses, 4, seed=3)
    tuples = tuples_of(doc, spec.dtd)

    merged = benchmark(trees_of, tuples, spec.dtd)
    assert merged.size() == doc.size()


@pytest.mark.parametrize("courses", [5, 10, 20, 40])
def test_fd_satisfaction_scaling(benchmark, courses):
    """Example 4.1 at scale: checking FD1-FD3 on growing documents."""
    from repro.fd.satisfaction import satisfies_all
    spec = university_spec()
    doc = synthetic_university_document(courses, 5, seed=4)
    tuples = tuples_of(doc, spec.dtd)
    result = benchmark(satisfies_all, doc, spec.dtd, spec.sigma,
                       tuples=tuples)
    assert result
