#!/usr/bin/env python
"""Tree-tuple machinery benchmarks (Section 3) — folded into the
observatory.

Registered in :mod:`repro.bench.suites.tuples`.  This entry point runs
just the tuples group::

    python benchmarks/bench_tuples.py [--quick] [--out FILE]
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    from repro.bench.cli import main as bench_main
    extra = sys.argv[1:] if argv is None else argv
    return bench_main(["run", "--only", "tuples."] + extra)


if __name__ == "__main__":
    sys.exit(main())
