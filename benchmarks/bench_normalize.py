"""Benchmarks for the Figure 4 decomposition algorithm (Theorem 2).

Covers the paper's two running redesigns (university → Figure 1(b);
DBLP → the attribute move), the scaled workload (k anomalies → k
steps), and the implication-free variant of Proposition 7.
"""

from __future__ import annotations

import pytest

from repro.datasets.dblp import dblp_spec
from repro.datasets.generators import scaled_university_spec
from repro.datasets.university import university_spec
from repro.normalize.algorithm import normalize
from repro.normalize.simple_algorithm import normalize_simple


def test_normalize_university(benchmark):
    """Example 1.1: one *create* step."""
    spec = university_spec()
    result = benchmark(normalize, spec.dtd, spec.sigma)
    assert len(result.steps) == 1


def test_normalize_dblp(benchmark):
    """Example 1.2: one *move* step."""
    spec = dblp_spec()
    result = benchmark(normalize, spec.dtd, spec.sigma)
    assert [s.kind for s in result.steps] == ["move"]


@pytest.mark.parametrize("k", [1, 2, 4, 8])
def test_normalize_scaled(benchmark, k):
    """k independent anomalies: k steps, near-linear in k on top of
    the per-step implication cost."""
    spec = scaled_university_spec(k)
    result = benchmark(
        normalize, spec.dtd, spec.sigma)
    assert len(result.steps) == k


@pytest.mark.parametrize("k", [1, 2, 4])
def test_normalize_simple_variant(benchmark, k):
    """Proposition 7 ablation: step (3) only, closure-only reasoning."""
    spec = scaled_university_spec(k)
    result = benchmark(normalize_simple, spec.dtd, spec.sigma)
    assert len(result.steps) == k


@pytest.mark.parametrize("k", [1, 2, 4])
def test_normalize_without_progress_checks(benchmark, k):
    """Ablation: Proposition 6's runtime assertion costs two extra
    anomalous-path sweeps per step; this series measures the algorithm
    without them."""
    spec = scaled_university_spec(k)
    result = benchmark(normalize, spec.dtd, spec.sigma,
                       check_progress=False)
    assert len(result.steps) == k
