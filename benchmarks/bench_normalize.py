#!/usr/bin/env python
"""Decomposition-algorithm benchmarks (Figure 4 / Theorem 2) — folded
into the observatory.

Registered in :mod:`repro.bench.suites.normalize`.  This entry point
runs just the normalize group::

    python benchmarks/bench_normalize.py [--quick] [--out FILE]
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    from repro.bench.cli import main as bench_main
    extra = sys.argv[1:] if argv is None else argv
    return bench_main(["run", "--only", "normalize."] + extra)


if __name__ == "__main__":
    sys.exit(main())
