#!/usr/bin/env python
"""Overhead gate for the batch runtime (:mod:`repro.runtime`).

The layer's design contract (``docs/ROBUSTNESS.md``): with no fault
plan installed and the ensemble ``off``, pushing a manifest through
:class:`~repro.runtime.batch.BatchRunner` — per-task span, budget
scope, ensemble session, retry loop, outcome records — must cost
within 1 % of executing the same specs directly.  This script measures
exactly that, timing the shared corpus workload both ways, and fails
when the runtime wrapper taxes the happy path.

The workload definition is shared with the observatory's
``runtime.direct`` / ``runtime.batch`` benchmarks
(:mod:`repro.bench.suites.runtime`), which track the same two
trajectories — with operation counters — in ``BENCH_core.json``.

A second, **advisory** group times the same batch through the
supervised process pool (``--workers``, default ``auto``) and reports
the speedup over serial.  It never gates: wall-clock parallel gain
depends on the core count of the machine running the gate (CI runners
are often 1-2 cores, where fork overhead can make the "speedup"
< 1x), so the number is recorded for trend reading, not asserted.

Run:  python benchmarks/bench_runtime.py [--repeats N] [--tasks N]
                                         [--workers N|auto|off]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.suites.runtime import (
    make_direct,
    make_manifest,
    make_runner,
)


def _best_of(repeats: int, body) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        body()
        best = min(best, time.perf_counter() - started)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--tasks", type=int, default=30)
    parser.add_argument("--tolerance", type=float, default=0.01,
                        help="allowed batch-over-direct overhead "
                             "fraction (default 1%%)")
    parser.add_argument("--workers", default="auto",
                        help="pool size for the advisory parallel "
                             "group: a count, 'auto' (cores), or "
                             "'off' to skip it (default auto)")
    args = parser.parse_args(argv)

    manifest = make_manifest(args.tasks)
    direct_body = make_direct(manifest)
    batch_body = lambda: make_runner(manifest).run()  # noqa: E731

    # Warm both paths once so neither benefits from allocator or
    # import-time warm-up order.
    direct_body()
    batch_body()
    direct = _best_of(args.repeats, direct_body)
    batch = _best_of(args.repeats, batch_body)

    overhead = (batch - direct) / direct
    print(f"direct: {direct * 1e3:8.2f} ms  ({args.tasks} tasks, "
          f"best of {args.repeats})")
    print(f"batch:  {batch * 1e3:8.2f} ms  (runner, ensemble off, "
          f"no faults)")
    print(f"batch vs direct: {overhead:+.2%} "
          f"(tolerance +{args.tolerance:.0%})")

    gate_failed = overhead > args.tolerance
    if gate_failed:
        print("FAIL: the disabled runtime layer is taxing the happy "
              "path", file=sys.stderr)
    else:
        print("OK: disabled-runtime overhead within tolerance")

    _parallel_advisory(args, manifest, batch)
    return 1 if gate_failed else 0


def _parallel_advisory(args, manifest, serial_best: float) -> None:
    """The advisory parallel group: pool-backed batch vs the serial
    timing already measured.  Prints, never gates — see the module
    docstring for why the speedup is machine-dependent."""
    if args.workers == "off":
        return
    from repro.runtime.pool import (
        PoolBackend,
        pool_available,
        resolve_workers,
    )
    if not pool_available():
        print("parallel: skipped (no fork start method here)")
        return
    workers = resolve_workers(args.workers,
                              task_count=manifest.task_count)
    if workers < 2:
        print(f"parallel: skipped ({workers} worker(s) resolved; "
              "nothing to fan out)")
        return

    def pool_body():
        summary = make_runner(
            manifest, backend=PoolBackend(workers)).run()
        assert summary["counts"]["lost"] == 0

    pool_body()                                   # warm, as above
    pool = _best_of(args.repeats, pool_body)
    speedup = serial_best / pool
    print(f"parallel: {pool * 1e3:8.2f} ms  ({workers} workers, "
          f"best of {args.repeats})")
    print(f"parallel speedup over serial: {speedup:.2f}x "
          "(advisory only, never gated)")


if __name__ == "__main__":
    sys.exit(main())
