#!/usr/bin/env python
"""Overhead gate for the batch runtime (:mod:`repro.runtime`).

The layer's design contract (``docs/ROBUSTNESS.md``): with no fault
plan installed and the ensemble ``off``, pushing a manifest through
:class:`~repro.runtime.batch.BatchRunner` — per-task span, budget
scope, ensemble session, retry loop, outcome records — must cost
within 1 % of executing the same specs directly.  This script measures
exactly that, timing the shared corpus workload both ways, and fails
when the runtime wrapper taxes the happy path.

The workload definition is shared with the observatory's
``runtime.direct`` / ``runtime.batch`` benchmarks
(:mod:`repro.bench.suites.runtime`), which track the same two
trajectories — with operation counters — in ``BENCH_core.json``.

Run:  python benchmarks/bench_runtime.py [--repeats N] [--tasks N]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.suites.runtime import (
    make_direct,
    make_manifest,
    make_runner,
)


def _best_of(repeats: int, body) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        body()
        best = min(best, time.perf_counter() - started)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--tasks", type=int, default=30)
    parser.add_argument("--tolerance", type=float, default=0.01,
                        help="allowed batch-over-direct overhead "
                             "fraction (default 1%%)")
    args = parser.parse_args(argv)

    manifest = make_manifest(args.tasks)
    direct_body = make_direct(manifest)
    batch_body = lambda: make_runner(manifest).run()  # noqa: E731

    # Warm both paths once so neither benefits from allocator or
    # import-time warm-up order.
    direct_body()
    batch_body()
    direct = _best_of(args.repeats, direct_body)
    batch = _best_of(args.repeats, batch_body)

    overhead = (batch - direct) / direct
    print(f"direct: {direct * 1e3:8.2f} ms  ({args.tasks} tasks, "
          f"best of {args.repeats})")
    print(f"batch:  {batch * 1e3:8.2f} ms  (runner, ensemble off, "
          f"no faults)")
    print(f"batch vs direct: {overhead:+.2%} "
          f"(tolerance +{args.tolerance:.0%})")

    if overhead > args.tolerance:
        print("FAIL: the disabled runtime layer is taxing the happy "
              "path", file=sys.stderr)
        return 1
    print("OK: disabled-runtime overhead within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
