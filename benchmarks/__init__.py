"""Benchmark entry points (thin shims over :mod:`repro.bench`).

The workloads themselves are registered declaratively in
``src/repro/bench/suites/`` and run through the benchmark observatory
(``xnf bench run``; see ``docs/BENCHMARKS.md``).  Each ``bench_*.py``
here runs one group; ``bench_guard.py`` additionally keeps the
standalone <1 % disabled-guard overhead gate; committed counter
baselines for the CI regression gate live under ``baselines/``.
"""
