#!/usr/bin/env python
"""Overhead gate for the batch-journal seam on the disabled path.

The durability contract (``docs/ROBUSTNESS.md``): the write-ahead
journal is strictly *opt-in*.  To feed it, both batch backends now
route every task through a journal seam — ``pending_tasks`` iterates
``(index, task)`` pairs with an ``index in skip`` membership test,
and each task pays a ``journal_intent`` plus a ``journal_result``
call (one ``self.journal is None`` check each when no ``--journal``
flag was given).  Runs that never asked for a journal must pay within
1 % of a task's own runtime for that seam.

A/B-timing whole batch runs cannot resolve a sub-microsecond seam
under percent-level workload jitter, so this gate measures the two
quantities separately, each the stable way (the same methodology as
``bench_obs_ledger.py``):

* **seam cost per task** — a tight loop over exactly the disabled
  seam operations (the two ``None`` checks through the real
  ``BatchRunner`` methods, plus the ``index in frozenset()``
  membership test ``iter_indexed`` adds), loop overhead subtracted;
* **task cost** — the shared corpus workload through the batch runner
  (best of ``--repeats``), divided by the task count.

It fails when seam/task exceeds the tolerance — i.e. when someone
makes runs without ``--journal`` pay for crash recovery.  (The cost
of an *attached* journal — fsync per record — is the opt-in price of
durability and is not gated here.)

Run:  python benchmarks/bench_journal.py [--repeats N] [--tasks N]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import obs
from repro.bench.suites.runtime import make_manifest, make_runner


def _best_of(repeats: int, body) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        body()
        best = min(best, time.perf_counter() - started)
    return best


def seam_cost_per_task(runner, loops: int = 50_000,
                       repeats: int = 5) -> float:
    """Seconds one task pays for the disabled journal seam: the
    ``journal_intent``/``journal_result`` calls through the real
    runner (journal ``None``) plus the skip-set membership test from
    ``iter_indexed``, with the empty-loop baseline subtracted."""
    assert runner.journal is None
    task = runner.manifest.tasks[0]
    skip = frozenset()
    outcome = None

    def baseline() -> None:
        for _ in range(loops):
            pass

    def seam() -> None:
        for index in range(loops):
            # The per-task body of SerialBackend.run without a journal:
            # iter_indexed's skip test ...
            if index in skip:
                continue
            # ... and the two seam calls around task execution.
            runner.journal_intent(index, task)
            runner.journal_result(index, outcome)

    baseline()
    seam()
    empty = _best_of(repeats, baseline)
    cost = _best_of(repeats, seam)
    return max(0.0, (cost - empty) / loops)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--tasks", type=int, default=30)
    parser.add_argument("--tolerance", type=float, default=0.01,
                        help="allowed seam-over-task overhead "
                             "fraction (default 1%%)")
    args = parser.parse_args(argv)

    obs.disable()
    manifest = make_manifest(args.tasks)
    batch_body = lambda: make_runner(manifest).run()  # noqa: E731
    batch_body()  # warm allocator and imports
    per_task = _best_of(args.repeats, batch_body) / args.tasks
    seam = seam_cost_per_task(make_runner(manifest))

    overhead = seam / per_task
    print(f"task:  {per_task * 1e6:9.2f} us  (corpus workload / "
          f"{args.tasks} tasks, best of {args.repeats}, no journal)")
    print(f"seam:  {seam * 1e6:9.3f} us  (journal None checks + "
          f"skip-set membership, per task)")
    print(f"seam vs task: {overhead:+.2%} "
          f"(tolerance +{args.tolerance:.0%})")

    if overhead > args.tolerance:
        print("FAIL: the journal seam is taxing runs that never "
              "asked for crash recovery", file=sys.stderr)
        return 1
    print("OK: disabled-journal overhead within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
