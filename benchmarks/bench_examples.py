#!/usr/bin/env python
"""End-to-end pipeline benchmarks (the paper's figures as workloads) —
folded into the observatory.

Registered in :mod:`repro.bench.suites.pipeline`.  This entry point
runs just the pipeline group::

    python benchmarks/bench_examples.py [--quick] [--out FILE]
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    from repro.bench.cli import main as bench_main
    extra = sys.argv[1:] if argv is None else argv
    return bench_main(["run", "--only", "pipeline."] + extra)


if __name__ == "__main__":
    sys.exit(main())
