"""End-to-end pipeline benchmarks: the paper's figures as workloads.

* Figure 1: parse → check Σ → detect the anomaly → normalize → migrate
  (the full university pipeline), at the paper's size and scaled up.
* Example 1.2: the same for DBLP.
* Proposition 8: the lossless round-trip verification itself.
"""

from __future__ import annotations

import pytest

from repro.datasets.dblp import (
    DBLP_DOCUMENT,
    dblp_spec,
    synthetic_dblp_document,
)
from repro.datasets.university import (
    UNIVERSITY_DOCUMENT,
    synthetic_university_document,
    university_spec,
)
from repro.lossless.check import check_normalization_lossless
from repro.normalize.transforms import NewElementNames
from repro.xmltree.parser import parse_xml


def test_figure1_pipeline(benchmark):
    """The complete Figure 1 story at the paper's own scale."""
    def pipeline():
        spec = university_spec()
        doc = spec.parse_document(UNIVERSITY_DOCUMENT)
        assert not spec.is_in_xnf()
        result = spec.normalize(
            naming=lambda i, fd: NewElementNames(tau="info",
                                                 taus=["number"]))
        migrated = result.migrate(doc)
        return migrated.size()

    assert benchmark(pipeline) > 0


def test_example12_pipeline(benchmark):
    def pipeline():
        spec = dblp_spec()
        doc = spec.parse_document(DBLP_DOCUMENT)
        result = spec.normalize()
        return result.migrate(doc).size()

    assert benchmark(pipeline) > 0


@pytest.mark.parametrize("courses", [5, 10, 20])
def test_migration_scaling(benchmark, courses):
    spec = university_spec()
    result = spec.normalize()
    doc = synthetic_university_document(courses, 4, seed=5)
    migrated = benchmark(result.migrate, doc)
    assert migrated.size() > 0


@pytest.mark.parametrize("confs", [2, 4, 8])
def test_dblp_migration_scaling(benchmark, confs):
    spec = dblp_spec()
    result = spec.normalize()
    doc = synthetic_dblp_document(confs, 3, 4, seed=6)
    # moving an attribute changes no nodes, only attribute owners
    migrated = benchmark(result.migrate, doc)
    assert migrated.size() == doc.size()


def test_lossless_verification_cost(benchmark):
    """Proposition 8's instance check on the paper's document."""
    spec = university_spec()
    result = spec.normalize()
    doc = parse_xml(UNIVERSITY_DOCUMENT)
    outcome = benchmark(check_normalization_lossless, result, spec.dtd,
                        doc)
    assert outcome
