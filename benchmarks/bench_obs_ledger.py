#!/usr/bin/env python
"""Overhead gate for the run-ledger seam on the disabled path.

The observability contract (``docs/OBSERVABILITY.md``): the batch run
ledger is strictly *opt-in*.  To feed it, every task execution now
runs inside a measurement seam — :meth:`BatchRunner._run_task` wraps
the task body with a wall-clock measurement (plus boundary counter
snapshots when obs is enabled), and ``_attempt`` pushes a
``task_scope`` trace context.  With observability disabled and no
``--ledger`` flag, that seam must cost within 1 % of a task's own
runtime.

A/B-timing whole batch runs cannot resolve a sub-microsecond seam
under percent-level workload jitter, so this gate measures the two
quantities separately, each the stable way:

* **seam cost per task** — a tight loop over exactly the disabled
  seam operations (the enabled check, the two ``perf_counter`` boundary
  reads, the null ``task_scope``), loop overhead subtracted;
* **task cost** — the shared corpus workload through the batch runner
  (best of ``--repeats``), divided by the task count.

It fails when seam/task exceeds the tolerance — i.e. when someone
makes runs without ``--ledger`` pay for the run history.  (The cost
of an *attached* :class:`repro.obs.ledger.LedgerWriter` is the opt-in
price and is not gated; the no-op ``on_task_done`` callback seam is
gated by ``bench_obs_export.py``.)

Run:  python benchmarks/bench_obs_ledger.py [--repeats N] [--tasks N]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import obs
from repro.bench.suites.runtime import make_manifest, make_runner
from repro.obs import metrics as _obs
from repro.obs import trace as _trace


def _best_of(repeats: int, body) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        body()
        best = min(best, time.perf_counter() - started)
    return best


def seam_cost_per_task(loops: int = 50_000,
                       repeats: int = 5) -> float:
    """Seconds one task pays for the disabled ledger seam: the
    ``_run_task`` measurement wrapper plus the ``task_scope`` push,
    with the empty-loop baseline subtracted."""
    def baseline() -> None:
        for _ in range(loops):
            pass

    def seam() -> None:
        for _ in range(loops):
            # The disabled-path body of BatchRunner._run_task ...
            counters_before = (_obs.counters_snapshot()
                               if _obs.enabled else None)
            wall_start = time.perf_counter()
            wall = time.perf_counter() - wall_start
            if counters_before is not None:
                pass
            # ... and the task_scope push from _attempt.
            with _trace.task_scope("bench-task"):
                pass
            del wall

    baseline()
    seam()
    empty = _best_of(repeats, baseline)
    cost = _best_of(repeats, seam)
    return max(0.0, (cost - empty) / loops)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--tasks", type=int, default=30)
    parser.add_argument("--tolerance", type=float, default=0.01,
                        help="allowed seam-over-task overhead "
                             "fraction (default 1%%)")
    args = parser.parse_args(argv)

    obs.disable()
    manifest = make_manifest(args.tasks)
    batch_body = lambda: make_runner(manifest).run()  # noqa: E731
    batch_body()  # warm allocator and imports
    per_task = _best_of(args.repeats, batch_body) / args.tasks
    seam = seam_cost_per_task()

    overhead = seam / per_task
    print(f"task:  {per_task * 1e6:9.2f} us  (corpus workload / "
          f"{args.tasks} tasks, best of {args.repeats}, obs disabled)")
    print(f"seam:  {seam * 1e6:9.3f} us  (disabled-path measurement "
          f"wrapper + null task_scope, per task)")
    print(f"seam vs task: {overhead:+.2%} "
          f"(tolerance +{args.tolerance:.0%})")

    if overhead > args.tolerance:
        print("FAIL: the ledger measurement seam is taxing runs that "
              "never asked for a ledger", file=sys.stderr)
        return 1
    print("OK: disabled-ledger overhead within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
