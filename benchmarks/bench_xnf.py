#!/usr/bin/env python
"""XNF-test benchmarks (Corollary 1) — folded into the observatory.

Registered in :mod:`repro.bench.suites.xnf`; the asserted cubic-bound
claim lives in :mod:`repro.bench.suites.complexity`.  This entry point
runs just the xnf group::

    python benchmarks/bench_xnf.py [--quick] [--out FILE]
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    from repro.bench.cli import main as bench_main
    extra = sys.argv[1:] if argv is None else argv
    return bench_main(["run", "--only", "xnf."] + extra)


if __name__ == "__main__":
    sys.exit(main())
