"""Benchmarks for the XNF test (Corollary 1).

For simple DTDs the test is cubic — |Σ| anomaly checks, each a
quadratic implication query.  The series scales both the DTD and Σ
linearly (k copies of the Example 1.1 schema), so the fitted growth
over ``k`` should be a low-degree polynomial, and the ebXML series
checks the real-world Figure 5 schema with synthetic keys.
"""

from __future__ import annotations

import pytest

from repro.datasets.ebxml import ebxml_dtd
from repro.datasets.generators import scaled_university_spec
from repro.fd.model import FD
from repro.xnf.check import is_in_xnf, xnf_violations


@pytest.mark.parametrize("k", [1, 2, 4, 8, 16])
def test_xnf_check_scaling(benchmark, k):
    """Corollary 1 series: cubic-in-k upper bound."""
    spec = scaled_university_spec(k)
    result = benchmark(is_in_xnf, spec.dtd, spec.sigma)
    assert result is False


@pytest.mark.parametrize("k", [1, 2, 4, 8])
def test_xnf_violation_listing(benchmark, k):
    spec = scaled_university_spec(k)
    violations = benchmark(xnf_violations, spec.dtd, spec.sigma)
    assert len(violations) == k


def test_xnf_check_on_ebxml(benchmark):
    """Figure 5: XNF analysis of the (simple) ebXML BPSS fragment with
    name-key FDs."""
    dtd = ebxml_dtd()
    sigma = [
        FD.parse("ProcessSpecification.Include.@name -> "
                 "ProcessSpecification.Include"),
        FD.parse("ProcessSpecification.BinaryCollaboration.@name -> "
                 "ProcessSpecification.BinaryCollaboration"),
        FD.parse(
            "ProcessSpecification.BinaryCollaboration ->"
            " ProcessSpecification.BinaryCollaboration."
            "InitiatingRole.@name"),
    ]
    result = benchmark(is_in_xnf, dtd, sigma)
    assert result is True


def test_xnf_check_after_normalization(benchmark):
    """The normalized schema passes the test (and the check is cheap)."""
    spec = scaled_university_spec(4)
    result = spec.normalize()
    outcome = benchmark(is_in_xnf, result.dtd, result.sigma)
    assert outcome is True
