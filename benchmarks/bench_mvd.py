"""Benchmarks for the Section 8 MVD extension.

MVD satisfaction checks the exchange property group by group; these
series measure its cost against document size and compare the XNF4
check with plain XNF (the ablation for the extension's overhead).
"""

from __future__ import annotations

import pytest

from repro.datasets.university import (
    synthetic_university_document,
    university_spec,
)
from repro.mvd.induced import tree_induced_mvds
from repro.mvd.model import MVD
from repro.mvd.satisfaction import satisfies_mvd
from repro.mvd.xnf4 import is_in_xnf4
from repro.tuples.extract import tuples_of
from repro.xnf.check import is_in_xnf


@pytest.mark.parametrize("courses", [5, 10, 20])
def test_mvd_satisfaction_scaling(benchmark, courses):
    spec = university_spec()
    doc = synthetic_university_document(courses, 4, seed=21)
    tuples = tuples_of(doc, spec.dtd)
    mvd = MVD.parse(
        "courses.course ->> "
        "{courses.course.taken_by.student.@sno, "
        "courses.course.taken_by.student.name.S, "
        "courses.course.taken_by.student.grade.S}")
    result = benchmark(satisfies_mvd, doc, spec.dtd, mvd,
                       tuples=tuples)
    assert result  # a full child branch: tree-induced, always holds


def test_induced_mvd_enumeration(benchmark):
    spec = university_spec()
    mvds = benchmark(lambda: list(tree_induced_mvds(spec.dtd)))
    assert len(mvds) == 11


def test_xnf4_vs_xnf_overhead(benchmark):
    """Ablation: the MVD pass on top of the plain XNF test."""
    spec = university_spec()
    mvds = list(tree_induced_mvds(spec.dtd))

    def both():
        return (is_in_xnf(spec.dtd, spec.sigma[:2]),
                is_in_xnf4(spec.dtd, spec.sigma[:2], mvds))

    plain, extended = benchmark(both)
    assert plain and extended
