#!/usr/bin/env python
"""Section 8 MVD-extension benchmarks — folded into the observatory.

Registered in :mod:`repro.bench.suites.mvd`.  This entry point runs
just the mvd group::

    python benchmarks/bench_mvd.py [--quick] [--out FILE]
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    from repro.bench.cli import main as bench_main
    extra = sys.argv[1:] if argv is None else argv
    return bench_main(["run", "--only", "mvd."] + extra)


if __name__ == "__main__":
    sys.exit(main())
