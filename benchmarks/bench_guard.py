#!/usr/bin/env python
"""Overhead gate for the resource governor (:mod:`repro.guard`).

The governor's design contract (``docs/ROBUSTNESS.md``) is that an
*unset* guard costs one module-attribute read at engine entry plus a
local ``is None`` test per loop — under 1 % on the implication hot
path.  This script measures that directly, timing the same seeded
implication workload unguarded and under a generous always-live
budget, and fails when the unguarded run pays for the governor.

The workload definition is shared with the observatory's
``guard.unguarded`` / ``guard.guarded`` benchmarks
(:mod:`repro.bench.suites.guard`), which track the same two
trajectories — with operation counters — in ``BENCH_core.json``.

Run:  python benchmarks/bench_guard.py [--repeats N] [--queries N]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import guard
from repro.bench.suites.guard import make_workload


def _best_of(repeats: int, queries: int, guarded: bool) -> float:
    best = float("inf")
    workload = make_workload(queries)
    for _ in range(repeats):
        started = time.perf_counter()
        if guarded:
            with guard.limits(max_steps=10**9, max_branches=10**9,
                              max_nodes=10**9, deadline=3600.0):
                workload()
        else:
            workload()
        best = min(best, time.perf_counter() - started)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--queries", type=int, default=25)
    parser.add_argument("--tolerance", type=float, default=0.01,
                        help="allowed unguarded-over-guarded overhead "
                             "fraction (default 1%%)")
    args = parser.parse_args(argv)

    # Interleave and warm up once so neither variant benefits from
    # allocator or cache warm-up order.
    make_workload(2)()
    unguarded = _best_of(args.repeats, args.queries, guarded=False)
    guarded = _best_of(args.repeats, args.queries, guarded=True)

    overhead = (unguarded - guarded) / guarded
    print(f"unguarded: {unguarded * 1e3:8.2f} ms  (best of "
          f"{args.repeats})")
    print(f"guarded:   {guarded * 1e3:8.2f} ms  "
          f"(budget installed, every tick live)")
    print(f"unguarded vs guarded: {overhead:+.2%} "
          f"(tolerance +{args.tolerance:.0%})")

    if overhead > args.tolerance:
        print("FAIL: the disabled-guard fast path is paying for the "
              "governor", file=sys.stderr)
        return 1
    print("OK: disabled-guard overhead within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
