#!/usr/bin/env python
"""Overhead check for the resource governor (:mod:`repro.guard`).

The governor's design contract (``docs/ROBUSTNESS.md``) is that an
*unset* guard costs one module-attribute read at engine entry plus a
local ``is None`` test per loop — under 1 % on the implication hot
path.  This script measures that directly: the same implication
workload is timed with no guard installed (the default) and with a
generous budget installed (every tick live), using min-of-repeats on
a fixed seeded workload so the comparison is noise-resistant.

Exit status is non-zero when the no-guard run is more than 1 % slower
than the pre-governor baseline proxy.  Since the baseline no longer
exists in-tree, the proxy is the guarded-vs-unguarded spread: with the
fast path working, the *unguarded* run must not pay for the budget
machinery, so we require ``unguarded <= guarded`` within tolerance and
report both.

Run:  python benchmarks/bench_guard.py [--repeats N] [--queries N]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import guard
from repro.dtd.parser import parse_dtd
from repro.fd.implication import ImplicationEngine
from repro.fd.model import FD

#: Simple-DTD workload: closure-engine queries, the common fast case
#: where governor overhead would hurt the most.
DTD_TEXT = """
<!ELEMENT courses (course*)>
<!ELEMENT course (title, taken_by)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT taken_by (student*)>
<!ELEMENT student (grade)>
<!ELEMENT grade (#PCDATA)>
<!ATTLIST course cno CDATA #REQUIRED>
<!ATTLIST student sno CDATA #REQUIRED>
"""
SIGMA = [
    "courses.course.@cno -> courses.course",
    "courses.course.taken_by.student.@sno, courses.course "
    "-> courses.course.taken_by.student",
]
QUERIES = [
    "courses.course.@cno -> courses.course.title.S",
    "courses.course.@cno -> courses.course.taken_by.student.@sno",
    "courses.course.taken_by.student.@sno -> courses.course",
    "courses.course -> courses.course.title",
]


def _workload(queries: int) -> None:
    """Fresh engine each time: exercises real decisions, not the cache."""
    dtd = parse_dtd(DTD_TEXT)
    sigma = [FD.parse(line) for line in SIGMA]
    for index in range(queries):
        engine = ImplicationEngine(dtd, sigma)
        for query in QUERIES:
            engine.implies(FD.parse(query))


def _best_of(repeats: int, queries: int, guarded: bool) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        if guarded:
            with guard.limits(max_steps=10**9, max_branches=10**9,
                              max_nodes=10**9, deadline=3600.0):
                _workload(queries)
        else:
            _workload(queries)
        best = min(best, time.perf_counter() - started)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--queries", type=int, default=25)
    parser.add_argument("--tolerance", type=float, default=0.01,
                        help="allowed unguarded-over-guarded overhead "
                             "fraction (default 1%%)")
    args = parser.parse_args(argv)

    # Interleave and warm up once so neither variant benefits from
    # allocator or cache warm-up order.
    _workload(2)
    unguarded = _best_of(args.repeats, args.queries, guarded=False)
    guarded = _best_of(args.repeats, args.queries, guarded=True)

    overhead = (unguarded - guarded) / guarded
    print(f"unguarded: {unguarded * 1e3:8.2f} ms  (best of "
          f"{args.repeats})")
    print(f"guarded:   {guarded * 1e3:8.2f} ms  "
          f"(budget installed, every tick live)")
    print(f"unguarded vs guarded: {overhead:+.2%} "
          f"(tolerance +{args.tolerance:.0%})")

    if overhead > args.tolerance:
        print("FAIL: the disabled-guard fast path is paying for the "
              "governor", file=sys.stderr)
        return 1
    print("OK: disabled-guard overhead within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
