#!/usr/bin/env python
"""Growth-shape analysis of the complexity-theorem benchmarks.

Runs the implication/XNF scaling series directly (without
pytest-benchmark) with increasing sizes, fits log-log slopes, and
reports whether the observed growth matches the paper's bounds:

* Theorem 3 — implication over simple DTDs: polynomial, low degree
  (the paper proves quadratic in |D| + |Σ| per query);
* Theorem 4 — disjunctive DTDs with bounded N_D: polynomial;
* Theorem 5 — unbounded disjunctions: exponential in the number of
  independent disjunction choices;
* Corollary 1 — the XNF test over simple DTDs: cubic upper bound.

Run:  python benchmarks/bench_report.py
"""

from __future__ import annotations

import math
import time

from repro.datasets.generators import scaled_university_spec
from repro.fd.chase import chase_implies
from repro.fd.implication import ImplicationEngine
from repro.fd.model import FD
from repro.xnf.check import is_in_xnf

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_implication import (  # noqa: E402
    _disjunctive_dtd,
    _disjunctive_sigma,
)


def _time(callable_, *, repeat: int = 3) -> float:
    best = math.inf
    for _ in range(repeat):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _fit_loglog(xs: list[float], ys: list[float]) -> float:
    """Least-squares slope of log(y) against log(x): the polynomial
    degree of the growth."""
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-9)) for y in ys]
    n = len(xs)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    den = sum((a - mean_x) ** 2 for a in lx)
    return num / den


def _fit_exponent_base(xs: list[float], ys: list[float]) -> float:
    """Least-squares base b of y = c * b^x (log(y) linear in x)."""
    ly = [math.log(max(y, 1e-9)) for y in ys]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ly) / n
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(xs, ly))
    den = sum((a - mean_x) ** 2 for a in xs)
    return math.exp(num / den)


def report_theorem3() -> None:
    print("== Theorem 3: implication over simple DTDs ==")
    sizes = [1, 2, 4, 8, 16]
    times = []
    for k in sizes:
        spec = scaled_university_spec(k)

        def run(spec=spec):
            oracle = ImplicationEngine(spec.dtd, spec.sigma,
                                       engine="closure")
            for fd in spec.sigma:
                oracle.implies(fd)

        times.append(_time(run))
    for k, t in zip(sizes, times):
        print(f"  k={k:3d}  |Sigma|={3 * k:3d}  time={t * 1e3:9.2f} ms")
    degree = _fit_loglog([float(s) for s in sizes], times)
    print(f"  fitted polynomial degree over k: {degree:.2f} "
          f"(paper: polynomial — quadratic per query; PASS if small)")


def report_corollary1() -> None:
    print("\n== Corollary 1: the XNF test over simple DTDs ==")
    sizes = [1, 2, 4, 8, 16]
    times = []
    for k in sizes:
        spec = scaled_university_spec(k)
        times.append(_time(lambda spec=spec: is_in_xnf(spec.dtd,
                                                       spec.sigma)))
    for k, t in zip(sizes, times):
        print(f"  k={k:3d}  time={t * 1e3:9.2f} ms")
    degree = _fit_loglog([float(s) for s in sizes], times)
    print(f"  fitted polynomial degree over k: {degree:.2f} "
          f"(paper bound: cubic; PASS if <= ~3)")


def report_theorem4() -> None:
    print("\n== Theorem 4: bounded disjunction stays polynomial ==")
    paddings = [0, 4, 8, 16, 32]
    times = []
    query = FD.parse("r -> r.c.@x")
    for padding in paddings:
        dtd = _disjunctive_dtd(1, padding)
        sigma = _disjunctive_sigma(1)
        times.append(_time(
            lambda d=dtd, s=sigma: chase_implies(d, s, query)))
    for padding, t in zip(paddings, times):
        print(f"  padding={padding:3d}  time={t * 1e3:9.2f} ms")
    degree = _fit_loglog([float(p + 2) for p in paddings], times)
    print(f"  fitted polynomial degree over |D|: {degree:.2f} "
          f"(paper: polynomial for N_D <= k log |D|)")


def report_theorem5() -> None:
    print("\n== Theorem 5: unbounded disjunction is exponential ==")
    hards = [1, 2, 3, 4, 5, 6]
    times = []
    query = FD.parse("r -> r.c.@x")
    for hard in hards:
        dtd = _disjunctive_dtd(hard, 0)
        sigma = _disjunctive_sigma(hard)
        times.append(_time(
            lambda d=dtd, s=sigma: chase_implies(d, s, query), repeat=1))
    for hard, t in zip(hards, times):
        print(f"  disjunctions={hard}  N_D=2^{hard}  "
              f"time={t * 1e3:9.2f} ms")
    base = _fit_exponent_base([float(h) for h in hards], times)
    print(f"  fitted growth base per extra disjunction: {base:.2f} "
          f"(paper: coNP-complete — expect ~2x per disjunction)")


if __name__ == "__main__":
    report_theorem3()
    report_corollary1()
    report_theorem4()
    report_theorem5()
