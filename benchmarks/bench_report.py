#!/usr/bin/env python
"""Growth-shape analysis of the complexity-theorem benchmarks.

Runs the implication/XNF scaling series directly (without
pytest-benchmark) with increasing sizes, fits log-log slopes, and
reports whether the observed growth matches the paper's bounds:

* Theorem 3 — implication over simple DTDs: polynomial, low degree
  (the paper proves quadratic in |D| + |Σ| per query);
* Theorem 4 — disjunctive DTDs with bounded N_D: polynomial;
* Theorem 5 — unbounded disjunctions: exponential in the number of
  independent disjunction choices;
* Corollary 1 — the XNF test over simple DTDs: cubic upper bound.

Each series point carries both the best wall time of several repeats
and an *operation-count* snapshot from :mod:`repro.obs` (closure
iterations, chase steps, disjunction branches, implication-cache
traffic), so the fitted slopes can be cross-checked against counts
that — unlike wall time — are deterministic and noise-free.  The full
result is written as JSON (``BENCH_obs.json`` by default).

Run:  python benchmarks/bench_report.py [--quick] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import math
import time
from typing import Callable

from repro import obs
from repro.datasets.generators import scaled_university_spec
from repro.fd.chase import chase_implies
from repro.fd.implication import ImplicationEngine
from repro.fd.model import FD
from repro.xnf.check import is_in_xnf

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_implication import (  # noqa: E402
    _disjunctive_dtd,
    _disjunctive_sigma,
)

#: The counters attached to every series point (0 when not hit).
OP_COUNTERS = (
    "closure.iterations",
    "closure.case_splits",
    "chase.steps",
    "chase.branches.explored",
    "chase.branches.pruned",
    "implication.cache.hit",
    "implication.cache.miss",
)


def _measure(callable_: Callable[[], object], *,
             repeat: int = 3) -> tuple[float, dict[str, int]]:
    """Best-of-``repeat`` wall time plus the operation counters of the
    last run (the counts are deterministic across repeats)."""
    best = math.inf
    ops: dict[str, int] = {}
    for _ in range(repeat):
        obs.reset()
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
        counters = obs.snapshot()["counters"]
        ops = {name: counters.get(name, 0) for name in OP_COUNTERS}
    return best, ops


def _fit_loglog(xs: list[float], ys: list[float]) -> float:
    """Least-squares slope of log(y) against log(x): the polynomial
    degree of the growth."""
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-9)) for y in ys]
    n = len(xs)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    den = sum((a - mean_x) ** 2 for a in lx)
    return num / den


def _fit_exponent_base(xs: list[float], ys: list[float]) -> float:
    """Least-squares base b of y = c * b^x (log(y) linear in x)."""
    ly = [math.log(max(y, 1e-9)) for y in ys]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ly) / n
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(xs, ly))
    den = sum((a - mean_x) ** 2 for a in xs)
    return math.exp(num / den)


def _ops_series(points: list[dict], counter: str) -> list[float]:
    return [float(point["ops"][counter]) for point in points]


def report_theorem3(quick: bool) -> dict:
    print("== Theorem 3: implication over simple DTDs ==")
    sizes = [1, 2, 4] if quick else [1, 2, 4, 8, 16]
    points: list[dict] = []
    for k in sizes:
        spec = scaled_university_spec(k)

        def run(spec=spec):
            oracle = ImplicationEngine(spec.dtd, spec.sigma,
                                       engine="closure")
            for fd in spec.sigma:
                oracle.implies(fd)

        elapsed, ops = _measure(run)
        points.append({"k": k, "sigma": 3 * k, "time_s": elapsed,
                       "ops": ops})
    for point in points:
        print(f"  k={point['k']:3d}  |Sigma|={point['sigma']:3d}  "
              f"time={point['time_s'] * 1e3:9.2f} ms  "
              f"closure.iterations={point['ops']['closure.iterations']}")
    xs = [float(p["k"]) for p in points]
    time_slope = _fit_loglog(xs, [p["time_s"] for p in points])
    ops_slope = _fit_loglog(xs, _ops_series(points, "closure.iterations"))
    print(f"  fitted polynomial degree over k: time {time_slope:.2f}, "
          f"closure iterations {ops_slope:.2f} "
          f"(paper: polynomial — quadratic per query; PASS if small)")
    return {
        "name": "theorem3",
        "series": "implication over simple DTDs (closure engine)",
        "points": points,
        "time_slope": time_slope,
        "ops_slopes": {"closure.iterations": ops_slope},
        "bound": "polynomial (quadratic per query)",
        "consistent": ops_slope <= 3.0,
    }


def report_corollary1(quick: bool) -> dict:
    print("\n== Corollary 1: the XNF test over simple DTDs ==")
    sizes = [1, 2, 4] if quick else [1, 2, 4, 8, 16]
    points: list[dict] = []
    for k in sizes:
        spec = scaled_university_spec(k)
        elapsed, ops = _measure(
            lambda spec=spec: is_in_xnf(spec.dtd, spec.sigma))
        queries = (ops["implication.cache.hit"]
                   + ops["implication.cache.miss"])
        points.append({"k": k, "time_s": elapsed, "ops": ops,
                       "implication_queries": queries})
    for point in points:
        print(f"  k={point['k']:3d}  time={point['time_s'] * 1e3:9.2f} ms"
              f"  queries={point['implication_queries']}  "
              f"closure.iterations={point['ops']['closure.iterations']}")
    xs = [float(p["k"]) for p in points]
    time_slope = _fit_loglog(xs, [p["time_s"] for p in points])
    ops_slope = _fit_loglog(xs, _ops_series(points, "closure.iterations"))
    print(f"  fitted polynomial degree over k: time {time_slope:.2f}, "
          f"closure iterations {ops_slope:.2f} "
          f"(paper bound: cubic; PASS if <= ~3)")
    return {
        "name": "corollary1",
        "series": "XNF test over simple DTDs",
        "points": points,
        "time_slope": time_slope,
        "ops_slopes": {"closure.iterations": ops_slope},
        "bound": "cubic",
        "consistent": ops_slope <= 3.5,
    }


def report_theorem4(quick: bool) -> dict:
    print("\n== Theorem 4: bounded disjunction stays polynomial ==")
    paddings = [0, 4, 8] if quick else [0, 4, 8, 16, 32]
    query = FD.parse("r -> r.c.@x")
    points: list[dict] = []
    for padding in paddings:
        dtd = _disjunctive_dtd(1, padding)
        sigma = _disjunctive_sigma(1)
        elapsed, ops = _measure(
            lambda d=dtd, s=sigma: chase_implies(d, s, query))
        points.append({"padding": padding, "time_s": elapsed,
                       "ops": ops})
    for point in points:
        print(f"  padding={point['padding']:3d}  "
              f"time={point['time_s'] * 1e3:9.2f} ms  "
              f"chase.steps={point['ops']['chase.steps']}  "
              f"branches={point['ops']['chase.branches.explored']}")
    xs = [float(p["padding"] + 2) for p in points]
    time_slope = _fit_loglog(xs, [p["time_s"] for p in points])
    branch_slope = _fit_loglog(
        xs, _ops_series(points, "chase.branches.explored"))
    print(f"  fitted polynomial degree over |D|: time {time_slope:.2f}, "
          f"branches {branch_slope:.2f} "
          f"(paper: polynomial for N_D <= k log |D|)")
    return {
        "name": "theorem4",
        "series": "chase with one bounded disjunction",
        "points": points,
        "time_slope": time_slope,
        "ops_slopes": {"chase.branches.explored": branch_slope},
        "bound": "polynomial",
        # The branch count must stay flat as padding grows: the single
        # disjunction contributes a constant factor.
        "consistent": branch_slope <= 1.0,
    }


def report_theorem5(quick: bool) -> dict:
    print("\n== Theorem 5: unbounded disjunction is exponential ==")
    hards = [1, 2, 3] if quick else [1, 2, 3, 4, 5, 6]
    query = FD.parse("r -> r.c.@x")
    points: list[dict] = []
    for hard in hards:
        dtd = _disjunctive_dtd(hard, 0)
        sigma = _disjunctive_sigma(hard)
        elapsed, ops = _measure(
            lambda d=dtd, s=sigma: chase_implies(d, s, query), repeat=1)
        points.append({"disjunctions": hard, "n_d": 2 ** hard,
                       "time_s": elapsed, "ops": ops})
    for point in points:
        print(f"  disjunctions={point['disjunctions']}  "
              f"N_D=2^{point['disjunctions']}  "
              f"time={point['time_s'] * 1e3:9.2f} ms  "
              f"branches={point['ops']['chase.branches.explored']}")
    xs = [float(p["disjunctions"]) for p in points]
    time_base = _fit_exponent_base(xs, [p["time_s"] for p in points])
    branch_base = _fit_exponent_base(
        xs, _ops_series(points, "chase.branches.explored"))
    print(f"  fitted growth base per extra disjunction: "
          f"time {time_base:.2f}, branches {branch_base:.2f} "
          f"(paper: coNP-complete — expect ~2x per disjunction)")
    return {
        "name": "theorem5",
        "series": "chase with independent disjunctions",
        "points": points,
        "time_base": time_base,
        "ops_bases": {"chase.branches.explored": branch_base},
        "bound": "exponential (~2x per disjunction)",
        "consistent": branch_base >= 1.5,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="growth-shape benchmark with operation counts")
    parser.add_argument("--quick", action="store_true",
                        help="cap series sizes (CI smoke mode)")
    parser.add_argument("--out", metavar="FILE", default="BENCH_obs.json",
                        help="where to write the JSON report "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)

    was_enabled = obs.is_enabled()
    obs.enable()
    try:
        series = [
            report_theorem3(args.quick),
            report_corollary1(args.quick),
            report_theorem4(args.quick),
            report_theorem5(args.quick),
        ]
    finally:
        if not was_enabled:
            obs.disable()
        obs.reset()

    payload = {"quick": args.quick, "series": series}
    with open(args.out, "w") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    consistent = all(entry["consistent"] for entry in series)
    print(f"\nwrote {args.out}; operation-count growth "
          f"{'CONSISTENT' if consistent else 'INCONSISTENT'} "
          "with Theorems 3-5 bounds")
    return 0 if consistent else 1


if __name__ == "__main__":
    sys.exit(main())
