#!/usr/bin/env python
"""Back-compat shim: the growth-shape report now lives in the
benchmark observatory.

This script used to run the Theorem 3/4/5 + Corollary 1 scaling
series by hand; those are now first-class registered benchmarks with
asserted complexity claims (``repro.bench.suites.complexity``).  The
historical interface is preserved — ``--quick``, ``--out`` and the
``BENCH_obs.json`` default — and delegates to::

    python -m repro.bench run --only complexity.

which prints the fitted slopes with PASS/FAIL and exits non-zero when
any claim is inconsistent with the paper's bounds.  Prefer calling
``repro bench`` directly; see ``docs/BENCHMARKS.md``.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="growth-shape benchmark with operation counts "
                    "(delegates to `python -m repro.bench`)")
    parser.add_argument("--quick", action="store_true",
                        help="cap series sizes (CI smoke mode)")
    parser.add_argument("--out", metavar="FILE", default="BENCH_obs.json",
                        help="where to write the JSON report "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)

    from repro.bench.cli import main as bench_main

    command = ["run", "--only", "complexity.", "--out", args.out]
    if args.quick:
        command.append("--quick")
    return bench_main(command)


if __name__ == "__main__":
    sys.exit(main())
