#!/usr/bin/env python
"""Implication-engine benchmarks — folded into the observatory.

The Theorem 3/4/5 workload series formerly defined here as
pytest-benchmark cases are now registered declaratively in
:mod:`repro.bench.suites.implication` (raw trajectories) and
:mod:`repro.bench.suites.complexity` (the asserted claims).  This
entry point runs just the implication group::

    python benchmarks/bench_implication.py [--quick] [--out FILE]
"""

from __future__ import annotations

import sys

from repro.bench.suites.implication import (  # noqa: F401  (re-export)
    disjunctive_dtd,
    disjunctive_sigma,
)


def main(argv: list[str] | None = None) -> int:
    from repro.bench.cli import main as bench_main
    extra = sys.argv[1:] if argv is None else argv
    return bench_main(["run", "--only", "implication."] + extra)


if __name__ == "__main__":
    sys.exit(main())
