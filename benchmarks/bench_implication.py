"""Benchmarks for the FD implication problem (Section 7).

* **Theorem 3** — implication over *simple* DTDs is quadratic: the
  ``simple-k*`` series scales the Example 1.1 schema ``k`` times (so
  ``|D|`` and ``|Σ|`` both grow linearly in ``k``) and runs the closure
  engine over the whole Σ; the time per run should grow polynomially
  with small degree (the paper's bound is O(|Σ|·|paths|) per query).
* **Theorem 4** — disjunctive DTDs with ``N_D`` bounded stay
  polynomial: the ``disjunctive-bounded-*`` series keeps one binary
  disjunction while growing the rest of the schema.
* **Theorem 5** — unrestricted disjunction is coNP-complete: the
  ``disjunctive-hard-*`` series adds independent binary disjunctions,
  and the chase's branch count (hence its time) grows exponentially —
  the expected *shape* for an exact procedure.

A fitted growth summary across the series is printed by
``benchmarks/bench_report.py`` (run as a script).
"""

from __future__ import annotations

import pytest

from repro.datasets.generators import scaled_university_spec
from repro.dtd.model import DTD
from repro.fd.chase import chase_implies
from repro.fd.closure import closure_implies
from repro.fd.implication import ImplicationEngine
from repro.fd.model import FD
from repro.regex.ast import EPSILON, concat, star, sym, union


@pytest.mark.parametrize("k", [1, 2, 4, 8])
def test_implication_simple_scaling(benchmark, k):
    """Theorem 3 series: decide every Σ-FD of the k-fold schema."""
    spec = scaled_university_spec(k)
    dtd, sigma = spec.dtd, spec.sigma

    def run():
        oracle = ImplicationEngine(dtd, sigma, engine="closure")
        return [oracle.implies(fd) for fd in sigma]

    results = benchmark(run)
    assert all(results)


@pytest.mark.parametrize("k", [1, 2, 4, 8])
def test_implication_simple_single_query(benchmark, k):
    """Theorem 3 series: one fixed query against a growing (D, Σ)."""
    spec = scaled_university_spec(k)
    dtd, sigma = spec.dtd, spec.sigma
    query = FD.parse(
        "uni.courses0.course0.@cno -> uni.courses0.course0.title0.S")
    result = benchmark(closure_implies, dtd, sigma, query)
    assert result


def _disjunctive_dtd(hard_disjunctions: int, padding: int) -> DTD:
    """(a_i | b_i) choices plus ``padding`` plain starred leaves."""
    productions = {}
    attributes = {}
    parts = []
    for index in range(hard_disjunctions):
        for name in (f"a{index}", f"b{index}"):
            productions[name] = EPSILON
            attributes[name] = frozenset({"@v"})
        parts.append(union([sym(f"a{index}"), sym(f"b{index}")]))
    for index in range(padding):
        name = f"p{index}"
        productions[name] = EPSILON
        attributes[name] = frozenset({"@w"})
        parts.append(star(sym(name)))
    productions["c"] = EPSILON
    attributes["c"] = frozenset({"@x"})
    parts.append(star(sym("c")))
    productions["r"] = concat(parts)
    return DTD(root="r", productions=productions, attributes=attributes)


def _disjunctive_sigma(hard_disjunctions: int) -> list[FD]:
    sigma = []
    for index in range(hard_disjunctions):
        sigma.append(FD.parse(f"r.a{index} -> r.c.@x"))
        sigma.append(FD.parse(f"r.b{index} -> r.c.@x"))
    return sigma


@pytest.mark.parametrize("padding", [0, 4, 8, 16])
def test_implication_disjunctive_bounded(benchmark, padding):
    """Theorem 4 series: one disjunction (N_D = 2), growing |D|."""
    dtd = _disjunctive_dtd(1, padding)
    sigma = _disjunctive_sigma(1)
    query = FD.parse("r -> r.c.@x")
    result = benchmark(chase_implies, dtd, sigma, query)
    assert result


@pytest.mark.parametrize("hard", [1, 2, 3, 4, 5])
def test_implication_disjunctive_hard(benchmark, hard):
    """Theorem 5 series: N_D = 2^hard — exponential branch growth."""
    dtd = _disjunctive_dtd(hard, 0)
    sigma = _disjunctive_sigma(hard)
    query = FD.parse("r -> r.c.@x")
    result = benchmark(chase_implies, dtd, sigma, query)
    assert result


@pytest.mark.parametrize("k", [1, 2, 4])
def test_implication_auto_engine_workload(benchmark, k):
    """The auto engine on the practical anomaly-detection workload."""
    spec = scaled_university_spec(k)
    violations = benchmark(spec.xnf_violations)
    assert len(violations) == k
