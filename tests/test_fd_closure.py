"""Unit tests for the closure implication engine (Theorem 3 regime)."""

from repro.dtd.parser import parse_dtd
from repro.dtd.paths import Path
from repro.fd.closure import closure_implies, pair_closure
from repro.fd.model import FD


P = Path.parse


class TestTrivialFDs:
    """The DTD-induced trivial FDs discussed at the end of Section 4."""

    def test_path_determines_prefix(self, uni_spec):
        assert closure_implies(uni_spec.dtd, [], FD.parse(
            "courses.course.taken_by -> courses.course"))

    def test_path_determines_attribute(self, uni_spec):
        assert closure_implies(uni_spec.dtd, [], FD.parse(
            "courses.course -> courses.course.@cno"))

    def test_attribute_does_not_determine_node(self, uni_spec):
        assert not closure_implies(uni_spec.dtd, [], FD.parse(
            "courses.course.@cno -> courses.course"))

    def test_reflexive(self, uni_spec):
        assert closure_implies(uni_spec.dtd, [], FD.parse(
            "courses.course -> courses.course"))

    def test_node_determines_forced_single_child(self, uni_spec):
        assert closure_implies(uni_spec.dtd, [], FD.parse(
            "courses.course -> courses.course.title"))
        assert closure_implies(uni_spec.dtd, [], FD.parse(
            "courses.course -> courses.course.title.S"))

    def test_node_does_not_determine_starred_child(self, uni_spec):
        assert not closure_implies(uni_spec.dtd, [], FD.parse(
            "courses.course.taken_by -> "
            "courses.course.taken_by.student"))

    def test_root_determines_nothing_starred(self, flat_ab_dtd):
        assert not closure_implies(flat_ab_dtd, [], FD.parse("r -> r.a"))

    def test_optional_child_is_determined(self):
        dtd = parse_dtd("""
            <!ELEMENT r (a?)>
            <!ELEMENT a EMPTY>
            <!ATTLIST a x CDATA #REQUIRED>
        """)
        assert closure_implies(dtd, [], FD.parse("r -> r.a"))
        assert closure_implies(dtd, [], FD.parse("r -> r.a.@x"))


class TestSigmaRules:
    def test_transitivity_through_values(self, flat_ab_dtd):
        sigma = [FD.parse("r.a.@x -> r.b.@y")]
        assert closure_implies(flat_ab_dtd, sigma, FD.parse(
            "r.a -> r.b.@y"))

    def test_lhs_must_be_non_null(self, flat_ab_dtd):
        sigma = [FD.parse("r.a -> r.b.@y")]
        # r alone does not imply: a might be absent
        assert not closure_implies(flat_ab_dtd, sigma,
                                   FD.parse("r -> r.b.@y"))

    def test_hybrid_rule_with_forced_branch(self, forced_ab_dtd):
        """The cross-tuple case: a+ forces a witness, so all b.@y agree."""
        sigma = [FD.parse("r.a -> r.b.@y")]
        assert closure_implies(forced_ab_dtd, sigma,
                               FD.parse("r -> r.b.@y"))

    def test_hybrid_rule_blocked_on_target_inside_copied_subtree(
            self, forced_ab_dtd):
        # a node -> its own attribute is trivial, but a -> a-node from
        # the root is not derivable even with the forced branch
        sigma = [FD.parse("r.a -> r.a.@x")]
        assert not closure_implies(forced_ab_dtd, sigma,
                                   FD.parse("r -> r.a.@x"))

    def test_upward_from_key(self, uni_spec):
        """FD1: cno -> course node; so cno determines title text."""
        assert closure_implies(uni_spec.dtd, uni_spec.sigma, FD.parse(
            "courses.course.@cno -> courses.course.title.S"))

    def test_example51_missing_fd(self, uni_spec):
        """Example 5.1: sno does NOT determine the name *node*."""
        assert not closure_implies(uni_spec.dtd, uni_spec.sigma, FD.parse(
            "courses.course.taken_by.student.@sno -> "
            "courses.course.taken_by.student.name"))

    def test_example51_present_fd(self, uni_spec):
        assert closure_implies(uni_spec.dtd, uni_spec.sigma,
                               uni_spec.sigma[2])

    def test_two_step_chain(self, uni_spec):
        sigma = uni_spec.sigma + [FD.parse(
            "courses.course.title.S -> courses.course.@cno")]
        # title text -> cno -> course node -> taken_by node
        assert closure_implies(uni_spec.dtd, sigma, FD.parse(
            "courses.course.title.S -> courses.course.taken_by"))


class TestPairClosure:
    def test_root_always_shared(self, flat_ab_dtd):
        eq, nn = pair_closure(flat_ab_dtd, [], frozenset({P("r.a.@x")}))
        assert P("r") in eq and P("r") in nn

    def test_prefixes_of_lhs_non_null(self, uni_spec):
        lhs = frozenset({P("courses.course.taken_by.student.@sno")})
        _eq, nn = pair_closure(uni_spec.dtd, [], lhs)
        assert P("courses.course.taken_by.student") in nn
        assert P("courses.course") in nn

    def test_lhs_element_path_shares_ancestors(self, uni_spec):
        lhs = frozenset({P("courses.course.taken_by")})
        eq, _nn = pair_closure(uni_spec.dtd, [], lhs)
        assert P("courses.course") in eq

    def test_attribute_lhs_does_not_share_owner(self, uni_spec):
        lhs = frozenset({P("courses.course.@cno")})
        eq, _nn = pair_closure(uni_spec.dtd, [], lhs)
        assert P("courses.course") not in eq

    def test_works_on_recursive_dtd(self):
        dtd = parse_dtd("""
            <!ELEMENT r (s)>
            <!ELEMENT s (s*)>
            <!ATTLIST s x CDATA #REQUIRED>
        """)
        # the universe stays finite: only mentioned prefixes matter
        assert closure_implies(dtd, [], FD.parse("r.s -> r.s.@x"))
        assert closure_implies(dtd, [], FD.parse("r -> r.s"))
        assert not closure_implies(dtd, [], FD.parse("r -> r.s.s"))
        assert not closure_implies(dtd, [], FD.parse("r.s.@x -> r.s.s"))

    def test_optional_chain_fully_determined(self):
        dtd = parse_dtd("""
            <!ELEMENT r (s)>
            <!ELEMENT s (s?)>
            <!ATTLIST s x CDATA #REQUIRED>
        """)
        # a ?-chain is shared by every pair of tuples, attributes and all
        assert closure_implies(dtd, [], FD.parse("r -> r.s.s.s"))
        assert closure_implies(dtd, [], FD.parse("r -> r.s.s.@x"))
