"""Unit tests for the resource governor (``repro.guard``)."""

from __future__ import annotations

import pytest

from repro import guard, obs
from repro.errors import ReproError, ResourceExhausted
from repro.guard import budget as guard_budget
from repro.dtd.parser import parse_dtd
from repro.fd.chase import chase_implies
from repro.fd.closure import closure_implies
from repro.fd.brute import brute_implies
from repro.fd.model import FD
from repro.regex.matching import matches_multiset
from repro.regex.parser import parse_regex
from repro.tuples.extract import iter_tuples, tuples_of
from repro.xmltree.parser import parse_xml


@pytest.fixture
def disjunctive_spec():
    """Three independent binary disjunctions: the chase forks 2^3
    branches, so tiny branch budgets trip reliably."""
    dtd = parse_dtd("""
        <!ELEMENT r ((a | b), (c | d), (e | f))>
        <!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>
        <!ELEMENT d EMPTY> <!ELEMENT e EMPTY> <!ELEMENT f EMPTY>
        <!ATTLIST a x CDATA #REQUIRED>
        <!ATTLIST c y CDATA #REQUIRED>
    """)
    sigma = [FD.parse("r.a.@x -> r.c.@y")]
    query = FD.parse("r.c.@y -> r.a.@x")
    return dtd, sigma, query


@pytest.fixture
def starred_spec():
    """Disjunctions plus a starred child: the query is not structurally
    implied, so the chase really builds and forks tableaux."""
    dtd = parse_dtd("""
        <!ELEMENT r ((a | b), (c | d), e*)>
        <!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>
        <!ELEMENT d EMPTY> <!ELEMENT e EMPTY>
        <!ATTLIST e x CDATA #REQUIRED y CDATA #REQUIRED>
    """)
    sigma = [FD.parse("r.e.@y -> r.e.@x")]
    query = FD.parse("r.e.@y -> r.e.@x")
    return dtd, sigma, query


class TestBudget:
    def test_limits_must_be_positive(self):
        for kwargs in ({"deadline": 0}, {"max_steps": -1},
                       {"max_branches": 0}, {"max_nodes": -5}):
            with pytest.raises(ValueError):
                guard.Budget(**kwargs)

    def test_step_limit_trips_with_payload(self):
        budget = guard.Budget(max_steps=3)
        for _ in range(3):
            budget.tick_steps()
        with pytest.raises(ResourceExhausted) as excinfo:
            budget.tick_steps()
        error = excinfo.value
        assert isinstance(error, ReproError)
        assert error.limit == "steps"
        assert error.spent == 4 and error.allowed == 3
        assert budget.tripped == "steps"

    def test_branch_and_node_limits_independent(self):
        budget = guard.Budget(max_branches=1, max_nodes=10)
        budget.tick_branches()
        budget.tick_nodes(10)
        with pytest.raises(ResourceExhausted) as excinfo:
            budget.tick_nodes()
        assert excinfo.value.limit == "nodes"

    def test_deadline_with_injected_clock(self):
        now = [0.0]
        budget = guard.Budget(deadline=1.0, clock=lambda: now[0])
        budget.tick_steps()
        now[0] = 0.99
        budget.check()
        now[0] = 1.0
        with pytest.raises(ResourceExhausted) as excinfo:
            budget.check()
        assert excinfo.value.limit == "deadline"
        assert "deadline" in str(excinfo.value)

    def test_remaining_and_spent(self):
        now = [0.0]
        budget = guard.Budget(deadline=2.0, max_steps=10,
                              clock=lambda: now[0])
        budget.tick_steps(4)
        now[0] = 0.5
        remaining = budget.remaining()
        assert remaining["steps"] == 6
        assert remaining["deadline"] == pytest.approx(1.5)
        assert remaining["branches"] is None
        spent = budget.spent()
        assert spent["steps"] == 4
        assert spent["elapsed"] == pytest.approx(0.5)


class TestAmbientInstallation:
    def test_use_installs_and_restores(self):
        assert guard.current() is None
        assert guard_budget.active is False
        budget = guard.Budget(max_steps=1)
        with guard.use(budget) as installed:
            assert installed is budget
            assert guard.current() is budget
            assert guard_budget.active is True
        assert guard.current() is None
        assert guard_budget.active is False

    def test_nesting_innermost_wins(self):
        outer = guard.Budget(max_steps=100)
        inner = guard.Budget(max_steps=1)
        with guard.use(outer):
            with guard.use(inner):
                assert guard.current() is inner
            assert guard.current() is outer

    def test_limits_noop_when_unset(self):
        with guard.limits() as budget:
            assert budget is None
            assert guard_budget.active is False

    def test_restored_after_trip(self, starred_spec):
        dtd, sigma, query = starred_spec
        with pytest.raises(ResourceExhausted):
            with guard.limits(max_steps=2):
                chase_implies(dtd, sigma, query)
        assert guard.current() is None
        assert guard_budget.active is False


class TestEngineIntegration:
    def test_chase_branch_budget_with_partial(self, starred_spec):
        dtd, sigma, query = starred_spec
        with guard.limits(max_branches=2):
            with pytest.raises(ResourceExhausted) as excinfo:
                chase_implies(dtd, sigma, query)
        partial = excinfo.value.partial
        assert partial["engine"] == "chase"
        assert partial["branches_explored"] >= 1
        assert "query" in partial

    def test_closure_step_budget_with_partial(self, disjunctive_spec):
        dtd, sigma, query = disjunctive_spec
        with guard.limits(max_steps=1):
            with pytest.raises(ResourceExhausted) as excinfo:
                closure_implies(dtd, sigma, query)
        assert excinfo.value.partial["engine"] == "closure"

    def test_brute_budget_with_partial(self, disjunctive_spec):
        dtd, sigma, query = disjunctive_spec
        with guard.limits(max_steps=5):
            with pytest.raises(ResourceExhausted) as excinfo:
                brute_implies(dtd, sigma, query)
        assert excinfo.value.partial["engine"] == "brute"
        assert excinfo.value.partial["trees_enumerated"] >= 0

    def test_matches_multiset_budget(self):
        regex = parse_regex("((a | b)*, (c | d)*, (e | f)*)")
        counts = {"a": 3, "b": 3, "c": 3, "d": 3, "e": 3, "f": 3}
        assert matches_multiset(regex, counts)
        with guard.limits(max_steps=2):
            with pytest.raises(ResourceExhausted):
                matches_multiset(regex, counts)

    def test_unguarded_behaviour_unchanged(self, starred_spec):
        dtd, sigma, query = starred_spec
        assert chase_implies(dtd, sigma, query) is True
        assert closure_implies(dtd, sigma, query) is True


class TestTupleEnumeration:
    @pytest.fixture
    def wide_instance(self):
        """3 labels x 4 children each: 64 maximal tuples."""
        dtd = parse_dtd("""
            <!ELEMENT r (a*, b*, c*)>
            <!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>
            <!ATTLIST a x CDATA #REQUIRED>
        """)
        xml = "<r>" + "".join(
            f'<a x="{i}"/>' for i in range(4)) + "<b/><b/><b/><b/>" \
            + "<c/><c/><c/><c/></r>"
        return dtd, parse_xml(xml)

    def test_node_budget_trips_before_full_product(self, wide_instance):
        dtd, tree = wide_instance
        with guard.limits(max_nodes=20):
            with pytest.raises(ResourceExhausted) as excinfo:
                tuples_of(tree, dtd)
        error = excinfo.value
        assert error.limit == "nodes"
        assert error.partial["engine"] == "tuples"
        assert "tuples_yielded" in error.partial

    def test_streaming_prefix_within_budget(self, wide_instance):
        """Lazy enumeration: the first few tuples are retrievable under
        a budget far too small for the full product."""
        dtd, tree = wide_instance
        with guard.limits(max_nodes=30):
            iterator = iter_tuples(tree, dtd)
            first = next(iterator)
            second = next(iterator)
        assert first.paths and second.paths

    def test_budget_free_enumeration_unchanged(self, wide_instance):
        dtd, tree = wide_instance
        assert len(tuples_of(tree, dtd)) == 4 ** 3


class TestObsCounters:
    def test_checks_trips_and_remaining_recorded(self, disjunctive_spec):
        dtd, sigma, query = disjunctive_spec
        was_enabled = obs.is_enabled()
        obs.enable()
        obs.reset()
        try:
            with pytest.raises(ResourceExhausted):
                with guard.limits(max_steps=3):
                    closure_implies(dtd, sigma, query)
            snapshot = obs.snapshot()
            assert snapshot["counters"]["guard.checks"] >= 3
            assert snapshot["counters"]["guard.trips.steps"] == 1
            assert "guard.remaining.steps" in snapshot["histograms"]
            # A completed (untripped) region records headroom and the
            # completion counter.
            with guard.limits(max_steps=10_000):
                closure_implies(dtd, sigma, query)
            snapshot = obs.snapshot()
            assert snapshot["counters"]["guard.completed"] == 1
            remaining = snapshot["histograms"]["guard.remaining.steps"]
            assert remaining["max"] > 0
        finally:
            obs.reset()
            if not was_enabled:
                obs.disable()

    def test_no_counters_while_disabled(self, disjunctive_spec):
        dtd, sigma, query = disjunctive_spec
        obs.reset()
        with guard.limits(max_steps=10_000):
            closure_implies(dtd, sigma, query)
        assert obs.counter_value("guard.checks") == 0


class TestThreadScope:
    """scope="thread" budgets isolate concurrent work (the `xnf serve`
    per-request containment primitive)."""

    def test_thread_budget_shadows_process_budget(self):
        process = guard.Budget(max_steps=100)
        local = guard.Budget(max_steps=1)
        with guard.use(process):
            with guard.use(local, scope="thread"):
                assert guard.current() is local
            assert guard.current() is process

    def test_other_threads_fall_back_to_process_stack(self):
        import threading

        process = guard.Budget(max_steps=100)
        local = guard.Budget(max_steps=1)
        seen: list[object] = []

        def worker() -> None:
            seen.append(guard.current())

        with guard.use(process):
            with guard.use(local, scope="thread"):
                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        assert seen == [process]

    def test_concurrent_thread_budgets_are_isolated(self):
        import threading

        barrier = threading.Barrier(2)
        results: dict[str, object] = {}

        def worker(name: str, budget: guard.Budget) -> None:
            with guard.use(budget, scope="thread"):
                barrier.wait(timeout=5)
                results[name] = guard.current()
                barrier.wait(timeout=5)

        fast = guard.Budget(max_steps=1)
        slow = guard.Budget(max_steps=10_000)
        threads = [threading.Thread(target=worker, args=("fast", fast)),
                   threading.Thread(target=worker, args=("slow", slow))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results["fast"] is fast
        assert results["slow"] is slow

    def test_one_thread_tripping_leaves_neighbors_ungoverned(
            self, disjunctive_spec):
        import threading

        dtd, sigma, query = disjunctive_spec
        outcomes: dict[str, object] = {}

        def tight() -> None:
            try:
                with guard.limits(max_steps=1, scope="thread"):
                    closure_implies(dtd, sigma, query)
                outcomes["tight"] = "completed"
            except ResourceExhausted as error:
                outcomes["tight"] = error.limit

        def free() -> None:
            outcomes["free"] = closure_implies(dtd, sigma, query)

        tight_thread = threading.Thread(target=tight)
        tight_thread.start()
        tight_thread.join()
        free_thread = threading.Thread(target=free)
        free_thread.start()
        free_thread.join()
        assert outcomes["tight"] == "steps"
        assert isinstance(outcomes["free"], bool)
        assert guard_budget.active is False

    def test_active_flag_counts_across_scopes(self):
        process = guard.Budget(max_steps=10)
        local = guard.Budget(max_steps=10)
        with guard.use(process):
            with guard.use(local, scope="thread"):
                assert guard_budget.active is True
            assert guard_budget.active is True
        assert guard_budget.active is False

    def test_teardown_sweeps_both_scopes(self):
        installed_process = guard.Budget(max_steps=10)
        installed_thread = guard.Budget(max_steps=10)
        with guard.use(installed_process):
            with guard.use(installed_thread, scope="thread"):
                assert guard.teardown() == 2
                assert guard.current() is None
                assert guard_budget.active is False
        assert guard.current() is None
        assert guard_budget.active is False

    def test_bad_scope_rejected(self):
        with pytest.raises(ValueError, match="scope"):
            with guard.use(guard.Budget(max_steps=1), scope="global"):
                pass
