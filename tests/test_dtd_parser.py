"""Unit tests for the DTD text parser and serializer."""

import pytest

from repro.errors import DTDSyntaxError
from repro.dtd.parser import parse_dtd
from repro.dtd.serializer import serialize_dtd


UNIVERSITY = """
<!ELEMENT courses (course*)>
<!ELEMENT course (title, taken_by)>
<!ATTLIST course cno CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT taken_by (student*)>
<!ELEMENT student (name, grade)>
<!ATTLIST student sno CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT grade (#PCDATA)>
"""


class TestParsing:
    def test_university(self):
        dtd = parse_dtd(UNIVERSITY)
        assert dtd.root == "courses"
        assert dtd.attrs("course") == {"@cno"}
        assert dtd.has_text("grade")

    def test_first_element_is_default_root(self):
        dtd = parse_dtd("<!ELEMENT a (b?)>\n<!ELEMENT b EMPTY>")
        assert dtd.root == "a"

    def test_explicit_root(self):
        dtd = parse_dtd("<!ELEMENT b EMPTY>\n<!ELEMENT a (b?)>",
                        root="a")
        assert dtd.root == "a"

    def test_multiple_attributes_in_one_attlist(self):
        dtd = parse_dtd("""
            <!ELEMENT G EMPTY>
            <!ATTLIST G A CDATA #REQUIRED
                        B CDATA #IMPLIED
                        C ID #REQUIRED>
        """)
        assert dtd.attrs("G") == {"@A", "@B", "@C"}

    def test_attlists_accumulate(self):
        dtd = parse_dtd("""
            <!ELEMENT G EMPTY>
            <!ATTLIST G A CDATA #REQUIRED>
            <!ATTLIST G B CDATA #REQUIRED>
        """)
        assert dtd.attrs("G") == {"@A", "@B"}

    def test_comments_ignored(self):
        dtd = parse_dtd("""
            <!-- the root -->
            <!ELEMENT a (b*)>  <!-- stars allowed -->
            <!ELEMENT b EMPTY>
        """)
        assert dtd.root == "a"

    def test_fixed_default_with_value(self):
        dtd = parse_dtd("""
            <!ELEMENT G EMPTY>
            <!ATTLIST G version CDATA #FIXED "1.0">
        """)
        assert dtd.attrs("G") == {"@version"}

    def test_multiline_content_model(self):
        dtd = parse_dtd("""
            <!ELEMENT r (a,
                         b?,
                         c*)>
            <!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY>
        """)
        assert dtd.child_element_types("r") == {"a", "b", "c"}


class TestErrors:
    def test_duplicate_element(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT a EMPTY>\n<!ELEMENT a EMPTY>")

    def test_garbage_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT a EMPTY> hello world")

    def test_missing_content_model(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT a>")

    def test_missing_attribute_type(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT a EMPTY>\n<!ATTLIST a x #REQUIRED>")

    def test_missing_attribute_default(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT a EMPTY>\n<!ATTLIST a x CDATA>")

    def test_no_elements(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!-- nothing here -->")

    def test_unknown_root(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT a EMPTY>", root="zzz")


class TestRoundTrip:
    def test_serialize_parse_identity(self):
        dtd = parse_dtd(UNIVERSITY)
        again = parse_dtd(serialize_dtd(dtd))
        assert dtd == again

    def test_root_emitted_first(self):
        dtd = parse_dtd("<!ELEMENT b EMPTY>\n<!ELEMENT a (b?)>", root="a")
        assert serialize_dtd(dtd).startswith("<!ELEMENT a ")

    def test_sorted_mode(self):
        dtd = parse_dtd(UNIVERSITY)
        text = serialize_dtd(dtd, declared_order=False)
        assert parse_dtd(text, root="courses") == dtd


class TestNestingDepthLimit:
    """Regression: a DTD whose content model nests 10k deep must raise
    a ParseError naming the element, never a raw RecursionError."""

    def test_10k_deep_content_model(self):
        deep = "(" * 10_000 + "a" + ")" * 10_000
        text = f"<!ELEMENT r {deep}>\n<!ELEMENT a EMPTY>"
        with pytest.raises(DTDSyntaxError) as excinfo:
            parse_dtd(text)
        message = str(excinfo.value)
        assert "<!ELEMENT r>" in message
        assert "nested deeper than" in message


class TestErrorPositions:
    """DTD parse errors carry 1-based (line, column) source positions
    mapped against the *original* text (comments are blanked
    offset-preservingly, never collapsed)."""

    def test_bad_decl_position(self):
        text = "<!ELEMENT r (a*)>\n<!ELEMENT a (b,>\n"
        with pytest.raises(DTDSyntaxError) as excinfo:
            parse_dtd(text)
        assert excinfo.value.line == 2
        assert excinfo.value.column is not None
        assert "line 2" in str(excinfo.value)

    def test_content_model_column_is_absolute(self):
        # The regex error is rewrapped with a position relative to the
        # whole document, not to the content-model substring.
        text = "<!ELEMENT r (a*)>\n<!ELEMENT a (b,,c)>\n"
        with pytest.raises(DTDSyntaxError) as excinfo:
            parse_dtd(text)
        assert excinfo.value.line == 2
        assert excinfo.value.column == text.splitlines()[1].index(",,") + 2

    def test_attlist_position(self):
        text = ("<!ELEMENT r EMPTY>\n\n"
                "<!ATTLIST r x CDATA #BOGUS>\n")
        with pytest.raises(DTDSyntaxError) as excinfo:
            parse_dtd(text)
        assert excinfo.value.line == 3

    def test_stray_content_position(self):
        text = "<!ELEMENT r EMPTY>\nnonsense\n"
        with pytest.raises(DTDSyntaxError) as excinfo:
            parse_dtd(text)
        assert excinfo.value.line == 2
        assert excinfo.value.column == 1

    def test_comment_does_not_shift_positions(self):
        text = ("<!-- a comment\nspanning lines -->\n"
                "<!ELEMENT r EMPTY>\n"
                "<!ATTLIST r x CDATA #BOGUS>\n")
        with pytest.raises(DTDSyntaxError) as excinfo:
            parse_dtd(text)
        assert excinfo.value.line == 4
