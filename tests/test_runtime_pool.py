"""Unit tests for the process-pool backend (repro.runtime.pool)."""

import json

import pytest

from repro.runtime import corpus
from repro.runtime import manifest as mf
from repro.runtime.batch import (
    REASON_WORKER_CRASH,
    BatchRunner,
    SerialBackend,
)
from repro.runtime.pool import (
    PoolBackend,
    PoolStats,
    _merge_breaker_snapshots,
    pool_available,
    resolve_workers,
)
from repro.runtime.retry import RetryPolicy

pytestmark = pytest.mark.skipif(not pool_available(),
                                reason="fork start method unavailable")

DTD = ("<!ELEMENT db (r*)>\n<!ELEMENT r EMPTY>\n"
       "<!ATTLIST r a CDATA #REQUIRED b CDATA #REQUIRED>")
BROKEN_DTD = "<!ELEMENT db (unclosed"


def _runner(manifest, backend=None, **policy_overrides):
    policy = RetryPolicy(retries=2, backoff_base_ms=0,
                         **policy_overrides)
    return BatchRunner(manifest, policy=policy, backend=backend,
                       sleeper=lambda ms: None)


def _corpus_summaries(count, seed, workers, **pool_kwargs):
    serial = _runner(corpus.stream_manifest(count, seed=seed)).run()
    pool = PoolBackend(workers, **pool_kwargs)
    parallel = _runner(corpus.stream_manifest(count, seed=seed),
                       backend=pool).run()
    return serial, parallel, pool


class TestResolveWorkers:
    def test_explicit_count_passes_through(self):
        assert resolve_workers(3) == 3
        assert resolve_workers("5") == 5

    def test_auto_is_at_least_one(self):
        assert resolve_workers("auto") >= 1

    def test_task_count_caps_the_pool(self):
        assert resolve_workers(8, task_count=3) == 3
        assert resolve_workers("auto", task_count=1) == 1

    def test_zero_tasks_still_resolves_to_one(self):
        assert resolve_workers(4, task_count=0) == 1

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            resolve_workers("many")
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_workers("-2")


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PoolBackend(0)
        with pytest.raises(ValueError):
            PoolBackend(2, crash_retries=-1)
        with pytest.raises(ValueError):
            PoolBackend(2, stall_timeout=-1.0)

    def test_rejects_unknown_chaos(self):
        with pytest.raises(ValueError):
            PoolBackend(2, chaos={"t": {0: ("meteor", "pre")}})
        with pytest.raises(ValueError):
            PoolBackend(2, chaos={"t": {0: ("sigkill", "sometime")}})

    def test_stats_start_clean(self):
        stats = PoolBackend(2).stats
        assert stats.to_json() == PoolStats().to_json()


class TestExecution:
    def test_clean_run_matches_serial_bytes(self):
        serial, parallel, pool = _corpus_summaries(10, 11, workers=2)
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(parallel, sort_keys=True)
        assert pool.stats.crashed == 0
        assert pool.stats.spawned == 2

    def test_single_worker_pool_matches_serial_bytes(self):
        serial, parallel, pool = _corpus_summaries(6, 3, workers=1)
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(parallel, sort_keys=True)
        assert pool.stats.workers == 1

    def test_empty_manifest_returns_no_outcomes(self):
        manifest = mf.build([])
        pool = PoolBackend(2)
        summary = _runner(manifest, backend=pool).run()
        assert summary["counts"] == {"total": 0, "ok": 0, "failed": 0,
                                     "lost": 0}
        assert pool.stats.spawned == 0

    def test_pool_never_spawns_more_workers_than_tasks(self):
        _, _, pool = _corpus_summaries(2, 1, workers=8)
        assert pool.stats.workers == 2
        assert pool.stats.spawned == 2

    def test_in_worker_dead_letters_match_serial_bytes(self):
        # Permanent in-task failures (parse errors) must flow through
        # the workers' own retry/breaker machinery and land in the
        # summary exactly as the serial path reports them — including
        # the merged worker-breaker snapshot.
        tasks = [{"id": f"ok-{i}", "op": "check", "dtd_text": DTD,
                  "fds_text": "db.r.@a -> db.r.@b"} for i in range(4)]
        tasks.insert(1, {"id": "bad-1", "op": "check",
                         "dtd_text": BROKEN_DTD, "fds_text": ""})
        tasks.insert(3, {"id": "bad-2", "op": "check",
                         "dtd_text": BROKEN_DTD, "fds_text": ""})
        serial = _runner(mf.build(tasks)).run()
        pool = PoolBackend(2)
        parallel = _runner(mf.build(tasks), backend=pool).run()
        assert serial["counts"]["failed"] == 2
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(parallel, sort_keys=True)

    def test_contract_breach_in_worker_crashes_the_batch(self):
        manifest = corpus.stream_manifest(4, seed=2)
        pool = PoolBackend(2)
        runner = _runner(manifest, backend=pool)

        def explode(task):
            raise RuntimeError("boom: not a ReproError")

        # Fork shares the patched method with the workers, mirroring
        # the serial backend's loud-crash contract for non-ReproErrors.
        runner._execute = explode
        with pytest.raises(RuntimeError, match="contract breach"):
            runner.run()
        assert pool.stats.crashed == 0  # breach, not a crash


class TestCrashBookkeeping:
    def test_poison_task_dead_letters_with_worker_crash_reason(self):
        chaos = {"corpus-0001": {attempt: ("sigkill", "pre")
                                 for attempt in range(5)}}
        pool = PoolBackend(2, crash_retries=2, chaos=chaos)
        summary = _runner(corpus.stream_manifest(5, seed=4),
                          backend=pool).run()
        assert summary["counts"]["lost"] == 0
        assert summary["counts"]["failed"] == 1
        [letter] = summary["dead_letters"]
        assert letter["id"] == "corpus-0001"
        assert letter["reason"] == REASON_WORKER_CRASH
        assert letter["signature"] == "crash:signal:SIGKILL"
        assert letter["attempts"] == 3          # 1 + crash_retries
        assert len(letter["failures"]) == 3
        assert all(f["transient"] for f in letter["failures"])
        assert letter["error_chain"][0]["type"] == "WorkerCrash"
        assert pool.stats.dead_lettered == 1
        assert pool.stats.crashed == 3

    def test_recovered_crash_is_invisible_in_the_summary(self):
        chaos = {"corpus-0002": {0: ("sigkill", "pre")}}
        serial = _runner(corpus.stream_manifest(6, seed=9)).run()
        pool = PoolBackend(2, chaos=chaos)
        parallel = _runner(corpus.stream_manifest(6, seed=9),
                           backend=pool).run()
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(parallel, sort_keys=True)
        assert pool.stats.crashed == 1
        assert pool.stats.requeued == 1

    def test_requeued_task_is_stolen_by_another_worker(self):
        chaos = {"corpus-0000": {0: ("sigkill", "pre")}}
        pool = PoolBackend(2, chaos=chaos)
        summary = _runner(corpus.stream_manifest(6, seed=9),
                          backend=pool).run()
        assert summary["counts"]["ok"] == 6
        assert pool.stats.stolen >= 1

    def test_crash_spawns_a_replacement_worker(self):
        chaos = {"corpus-0003": {0: ("sigkill", "pre")}}
        _, _, pool = _corpus_summaries(8, 1, workers=2, chaos=chaos)
        assert pool.stats.spawned == 3
        assert pool.stats.crashed == 1

    def test_liveness_reports_pool_shape(self):
        chaos = {"corpus-0001": {0: ("sigkill", "pre")}}
        pool = PoolBackend(2, chaos=chaos)
        _runner(corpus.stream_manifest(6, seed=9), backend=pool).run()
        liveness = pool.liveness()
        assert liveness["target"] == 2
        assert liveness["alive"] == 0            # pool shut down
        assert liveness["crashed"] == 1
        assert liveness["requeued"] == 1


class TestStallDetection:
    def test_wedged_worker_is_killed_and_task_requeued(self):
        chaos = {"corpus-0002": {0: ("sigstop", "pre")}}
        serial = _runner(corpus.stream_manifest(5, seed=6)).run()
        pool = PoolBackend(2, stall_timeout=1.0, chaos=chaos)
        parallel = _runner(corpus.stream_manifest(5, seed=6),
                           backend=pool).run()
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(parallel, sort_keys=True)
        assert pool.stats.stalls == 1
        assert "stall" in pool.stats.crash_details


class TestBreakerMerge:
    def test_counts_add_and_state_takes_most_severe(self):
        merged: dict = {}
        _merge_breaker_snapshots(merged, {
            "error:X": {"state": "closed", "trips": 0, "skips": 0,
                        "probes": 0, "consecutive_failures": 1}})
        _merge_breaker_snapshots(merged, {
            "error:X": {"state": "open", "trips": 1, "skips": 2,
                        "probes": 1, "consecutive_failures": 5},
            "error:Y": {"state": "half-open", "trips": 1, "skips": 0,
                        "probes": 1, "consecutive_failures": 0}})
        assert merged["error:X"] == {
            "state": "open", "trips": 1, "skips": 2, "probes": 1,
            "consecutive_failures": 6}
        assert merged["error:Y"]["state"] == "half-open"

    def test_open_is_not_downgraded_by_a_closed_snapshot(self):
        merged = {"error:X": {"state": "open", "trips": 1, "skips": 0,
                              "probes": 0, "consecutive_failures": 5}}
        _merge_breaker_snapshots(merged, {
            "error:X": {"state": "closed", "trips": 0, "skips": 0,
                        "probes": 0, "consecutive_failures": 0}})
        assert merged["error:X"]["state"] == "open"


class TestSerialDelegation:
    def test_runner_without_backend_uses_serial(self):
        manifest = corpus.stream_manifest(3, seed=2)
        runner = _runner(manifest)
        assert isinstance(runner.backend, SerialBackend)

    def test_serial_backend_calls_instance_run_task(self):
        # The serial path must keep dispatching through the runner
        # instance so tests (and subclasses) can patch _run_task.
        manifest = corpus.stream_manifest(2, seed=2)
        runner = _runner(manifest)
        calls = []
        original = runner._run_task

        def spy(task):
            calls.append(task.id)
            return original(task)

        runner._run_task = spy
        runner.run()
        assert calls == ["corpus-0000", "corpus-0001"]
