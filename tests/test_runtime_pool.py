"""Unit tests for the process-pool backend (repro.runtime.pool)."""

import json
import os

import pytest

from repro.runtime import corpus
from repro.runtime import manifest as mf
from repro.runtime.batch import (
    REASON_WORKER_CRASH,
    BatchRunner,
    SerialBackend,
)
from repro.runtime.breaker import BreakerBoard
from repro.runtime.pool import (
    BREACH_EXITCODE,
    PoolBackend,
    PoolStats,
    pool_available,
    resolve_workers,
)
from repro.runtime.retry import RetryPolicy

pytestmark = pytest.mark.skipif(not pool_available(),
                                reason="fork start method unavailable")

DTD = ("<!ELEMENT db (r*)>\n<!ELEMENT r EMPTY>\n"
       "<!ATTLIST r a CDATA #REQUIRED b CDATA #REQUIRED>")
BROKEN_DTD = "<!ELEMENT db (unclosed"


def _runner(manifest, backend=None, **policy_overrides):
    policy = RetryPolicy(retries=2, backoff_base_ms=0,
                         **policy_overrides)
    return BatchRunner(manifest, policy=policy, backend=backend,
                       sleeper=lambda ms: None)


def _mixed_tasks():
    """Four parsable specs with two unparsable ones interleaved —
    deterministic permanent in-task failures for breaker plumbing."""
    tasks = [{"id": f"ok-{i}", "op": "check", "dtd_text": DTD,
              "fds_text": "db.r.@a -> db.r.@b"} for i in range(4)]
    tasks.insert(1, {"id": "bad-1", "op": "check",
                     "dtd_text": BROKEN_DTD, "fds_text": ""})
    tasks.insert(3, {"id": "bad-2", "op": "check",
                     "dtd_text": BROKEN_DTD, "fds_text": ""})
    return tasks


def _corpus_summaries(count, seed, workers, **pool_kwargs):
    serial = _runner(corpus.stream_manifest(count, seed=seed)).run()
    pool = PoolBackend(workers, **pool_kwargs)
    parallel = _runner(corpus.stream_manifest(count, seed=seed),
                       backend=pool).run()
    return serial, parallel, pool


class TestResolveWorkers:
    def test_explicit_count_passes_through(self):
        assert resolve_workers(3) == 3
        assert resolve_workers("5") == 5

    def test_auto_is_at_least_one(self):
        assert resolve_workers("auto") >= 1

    def test_task_count_caps_the_pool(self):
        assert resolve_workers(8, task_count=3) == 3
        assert resolve_workers("auto", task_count=1) == 1

    def test_zero_tasks_still_resolves_to_one(self):
        assert resolve_workers(4, task_count=0) == 1

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            resolve_workers("many")
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_workers("-2")


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PoolBackend(0)
        with pytest.raises(ValueError):
            PoolBackend(2, crash_retries=-1)
        with pytest.raises(ValueError):
            PoolBackend(2, stall_timeout=-1.0)

    def test_rejects_unknown_chaos(self):
        with pytest.raises(ValueError):
            PoolBackend(2, chaos={"t": {0: ("meteor", "pre")}})
        with pytest.raises(ValueError):
            PoolBackend(2, chaos={"t": {0: ("sigkill", "sometime")}})

    def test_stats_start_clean(self):
        stats = PoolBackend(2).stats
        assert stats.to_json() == PoolStats().to_json()


class TestExecution:
    def test_clean_run_matches_serial_bytes(self):
        serial, parallel, pool = _corpus_summaries(10, 11, workers=2)
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(parallel, sort_keys=True)
        assert pool.stats.crashed == 0
        assert pool.stats.spawned == 2

    def test_single_worker_pool_matches_serial_bytes(self):
        serial, parallel, pool = _corpus_summaries(6, 3, workers=1)
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(parallel, sort_keys=True)
        assert pool.stats.workers == 1

    def test_empty_manifest_returns_no_outcomes(self):
        manifest = mf.build([])
        pool = PoolBackend(2)
        summary = _runner(manifest, backend=pool).run()
        assert summary["counts"] == {"total": 0, "ok": 0, "failed": 0,
                                     "lost": 0}
        assert pool.stats.spawned == 0

    def test_pool_never_spawns_more_workers_than_tasks(self):
        _, _, pool = _corpus_summaries(2, 1, workers=8)
        assert pool.stats.workers == 2
        assert pool.stats.spawned == 2

    def test_in_worker_dead_letters_match_serial_bytes(self):
        # Permanent in-task failures (parse errors) must flow through
        # the retry/breaker machinery and land in the summary exactly
        # as the serial path reports them — including the arbitrated
        # breaker board snapshot.
        serial = _runner(mf.build(_mixed_tasks())).run()
        pool = PoolBackend(2)
        parallel = _runner(mf.build(_mixed_tasks()),
                           backend=pool).run()
        assert serial["counts"]["failed"] == 2
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(parallel, sort_keys=True)

    def test_contract_breach_in_worker_crashes_the_batch(self):
        manifest = corpus.stream_manifest(4, seed=2)
        pool = PoolBackend(2)
        runner = _runner(manifest, backend=pool)

        def explode(task):
            raise RuntimeError("boom: not a ReproError")

        # Fork shares the patched method with the workers, mirroring
        # the serial backend's loud-crash contract for non-ReproErrors.
        runner._execute = explode
        with pytest.raises(RuntimeError, match="contract breach"):
            runner.run()
        assert pool.stats.crashed == 0  # breach, not a crash

    def test_breach_exitcode_without_report_is_still_a_breach(self):
        # The breach *message* can be lost (the worker's send raced
        # its own death): the exit code alone must classify the death
        # as a breach, never as an ordinary crash to requeue against
        # the crash budget.
        manifest = corpus.stream_manifest(4, seed=2)
        pool = PoolBackend(2)
        runner = _runner(manifest, backend=pool)

        def explode(task):
            os._exit(BREACH_EXITCODE)

        runner._execute = explode
        with pytest.raises(RuntimeError, match="contract breach"):
            runner.run()
        assert pool.stats.crashed == 0
        assert pool.stats.requeued == 0


class TestCrashBookkeeping:
    def test_poison_task_dead_letters_with_worker_crash_reason(self):
        chaos = {"corpus-0001": {attempt: ("sigkill", "pre")
                                 for attempt in range(5)}}
        pool = PoolBackend(2, crash_retries=2, chaos=chaos)
        summary = _runner(corpus.stream_manifest(5, seed=4),
                          backend=pool).run()
        assert summary["counts"]["lost"] == 0
        assert summary["counts"]["failed"] == 1
        [letter] = summary["dead_letters"]
        assert letter["id"] == "corpus-0001"
        assert letter["reason"] == REASON_WORKER_CRASH
        assert letter["signature"] == "crash:signal:SIGKILL"
        assert letter["attempts"] == 3          # 1 + crash_retries
        assert len(letter["failures"]) == 3
        assert all(f["transient"] for f in letter["failures"])
        assert letter["error_chain"][0]["type"] == "WorkerCrash"
        assert pool.stats.dead_lettered == 1
        assert pool.stats.crashed == 3

    def test_recovered_crash_is_invisible_in_the_summary(self):
        chaos = {"corpus-0002": {0: ("sigkill", "pre")}}
        serial = _runner(corpus.stream_manifest(6, seed=9)).run()
        pool = PoolBackend(2, chaos=chaos)
        parallel = _runner(corpus.stream_manifest(6, seed=9),
                           backend=pool).run()
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(parallel, sort_keys=True)
        assert pool.stats.crashed == 1
        assert pool.stats.requeued == 1

    def test_requeued_task_is_stolen_by_another_worker(self):
        chaos = {"corpus-0000": {0: ("sigkill", "pre")}}
        pool = PoolBackend(2, chaos=chaos)
        summary = _runner(corpus.stream_manifest(6, seed=9),
                          backend=pool).run()
        assert summary["counts"]["ok"] == 6
        assert pool.stats.stolen >= 1

    def test_crash_spawns_a_replacement_worker(self):
        chaos = {"corpus-0003": {0: ("sigkill", "pre")}}
        _, _, pool = _corpus_summaries(8, 1, workers=2, chaos=chaos)
        assert pool.stats.spawned == 3
        assert pool.stats.crashed == 1

    def test_liveness_reports_pool_shape(self):
        chaos = {"corpus-0001": {0: ("sigkill", "pre")}}
        pool = PoolBackend(2, chaos=chaos)
        _runner(corpus.stream_manifest(6, seed=9), backend=pool).run()
        liveness = pool.liveness()
        assert liveness["target"] == 2
        assert liveness["alive"] == 0            # pool shut down
        assert liveness["crashed"] == 1
        assert liveness["requeued"] == 1


class TestStallDetection:
    def test_wedged_worker_is_killed_and_task_requeued(self):
        chaos = {"corpus-0002": {0: ("sigstop", "pre")}}
        serial = _runner(corpus.stream_manifest(5, seed=6)).run()
        pool = PoolBackend(2, stall_timeout=1.0, chaos=chaos)
        parallel = _runner(corpus.stream_manifest(5, seed=6),
                           backend=pool).run()
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(parallel, sort_keys=True)
        assert pool.stats.stalls == 1
        assert "stall" in pool.stats.crash_details


class TestBreakerArbitration:
    """In-task breaker state lives in the parent: workers delegate
    every decision over their pipe to the supervisor, which applies
    it to the runner's own board — the one the summary reports and a
    heartbeat stream watches live."""

    def test_worker_failures_reach_the_runner_board(self):
        serial_runner = _runner(mf.build(_mixed_tasks()))
        serial_runner.run()
        pool_runner = _runner(mf.build(_mixed_tasks()),
                              backend=PoolBackend(2))
        pool_runner.run()
        snap = pool_runner.board.snapshot()
        assert snap                  # the parent saw in-task failures
        assert snap == serial_runner.board.snapshot()

    def test_tripped_breaker_is_pool_global_and_matches_serial(self):
        # threshold=1: the first parse failure trips the breaker.
        # Worker-private boards would each trip independently (the
        # two bad tasks usually land on different workers) and the
        # old numeric merge reported trips=2; the arbitrated board
        # must show the serial picture exactly, byte-for-byte.
        def one(backend):
            runner = BatchRunner(
                mf.build(_mixed_tasks()),
                policy=RetryPolicy(retries=2, backoff_base_ms=0),
                board=BreakerBoard(threshold=1), backend=backend,
                sleeper=lambda ms: None)
            return runner.run()

        serial = one(None)
        parallel = one(PoolBackend(2))
        [entry] = serial["breakers"].values()
        assert entry["state"] == "open"
        assert entry["trips"] == 1
        assert entry["consecutive_failures"] == 2
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(parallel, sort_keys=True)

    def test_heartbeat_sees_breaker_activity_during_pool_runs(self):
        import io

        from repro.runtime.heartbeat import (
            HeartbeatWriter,
            validate_heartbeat_lines,
        )
        board = BreakerBoard()
        pool = PoolBackend(2)
        manifest = mf.build(_mixed_tasks())
        stream = io.StringIO()
        writer = HeartbeatWriter(stream, total=manifest.task_count,
                                 board=board, pool=pool,
                                 interval_s=0.0)
        runner = BatchRunner(
            manifest,
            policy=RetryPolicy(retries=1, backoff_base_ms=0),
            board=board, backend=pool,
            on_task_done=writer.task_done, sleeper=lambda ms: None)
        runner.run()
        writer.close()
        records = validate_heartbeat_lines(stream.getvalue())
        # A worker's failure reaches the board before its result
        # message, so by the final beat the breaker is visible.
        assert records[-1]["breakers"]["total"] >= 1


class TestGracefulShutdown:
    def test_heartbeats_ahead_of_the_bye_do_not_swallow_the_dump(self):
        # With --stall-timeout > 0 a worker's heartbeat thread keeps
        # pinging until the stop is processed, so 'hb' messages can
        # sit in the pipe ahead of the 'bye'; the drain must skip
        # them rather than discard the metrics dump.
        from multiprocessing import Pipe

        from repro import obs
        from repro.runtime.pool import _Worker

        class _StubProc:
            exitcode = 0

            def join(self, timeout=None):
                pass

            def is_alive(self):
                return False

        pool = PoolBackend(2)
        parent_conn, child_conn = Pipe(duplex=True)
        pool._live[0] = _Worker(0, _StubProc(), parent_conn)
        child_conn.send(("hb",))
        child_conn.send(("hb",))
        child_conn.send(("bye", {"counters": {"test.pool.drained": 3},
                                 "gauges": {}, "histograms": {},
                                 "timers": {}}))
        was_enabled = obs.is_enabled()
        obs.enable()
        obs.reset()
        try:
            pool._shutdown_graceful()
            assert obs.snapshot()["counters"]["test.pool.drained"] == 3
        finally:
            obs.reset()
            if not was_enabled:
                obs.disable()
        assert not pool._live
        child_conn.close()


class TestSerialDelegation:
    def test_runner_without_backend_uses_serial(self):
        manifest = corpus.stream_manifest(3, seed=2)
        runner = _runner(manifest)
        assert isinstance(runner.backend, SerialBackend)

    def test_serial_backend_calls_instance_run_task(self):
        # The serial path must keep dispatching through the runner
        # instance so tests (and subclasses) can patch _run_task.
        manifest = corpus.stream_manifest(2, seed=2)
        runner = _runner(manifest)
        calls = []
        original = runner._run_task

        def spy(task):
            calls.append(task.id)
            return original(task)

        runner._run_task = spy
        runner.run()
        assert calls == ["corpus-0000", "corpus-0001"]
