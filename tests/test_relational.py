"""Unit tests for the flat relational substrate (schemas, BCNF)."""

import pytest

from repro.errors import ReproError
from repro.relational.schema import (
    RelationalFD,
    RelationSchema,
    armstrong_closure,
    bcnf_decompose,
    bcnf_violations,
    candidate_keys,
    implies_relational,
    is_in_bcnf,
    is_superkey,
    project_fds,
)


G = RelationSchema("G", ("A", "B", "C"))


def fds(*texts):
    return [RelationalFD.parse(t) for t in texts]


class TestClosure:
    def test_reflexive(self):
        assert armstrong_closure({"A"}, []) == {"A"}

    def test_transitive(self):
        closure = armstrong_closure({"A"}, fds("A -> B", "B -> C"))
        assert closure == {"A", "B", "C"}

    def test_combined_lhs(self):
        closure = armstrong_closure({"A"}, fds("A, B -> C"))
        assert closure == {"A"}

    def test_implies(self):
        assert implies_relational(fds("A -> B", "B -> C"),
                                  RelationalFD.parse("A -> C"))
        assert not implies_relational(fds("A -> B"),
                                      RelationalFD.parse("B -> A"))


class TestKeys:
    def test_superkey(self):
        assert is_superkey(G, fds("A -> B", "A -> C"), {"A"})
        assert not is_superkey(G, fds("A -> B"), {"A"})

    def test_candidate_keys(self):
        keys = candidate_keys(G, fds("A -> B", "B -> C"))
        assert keys == [frozenset({"A"})]

    def test_multiple_keys(self):
        keys = candidate_keys(G, fds("A -> B, C", "B -> A, C"))
        assert frozenset({"A"}) in keys and frozenset({"B"}) in keys


class TestBCNF:
    def test_violating_schema(self):
        assert not is_in_bcnf(G, fds("A -> B"))
        violations = list(bcnf_violations(G, fds("A -> B")))
        assert RelationalFD(frozenset({"A"}),
                            frozenset({"B"})) in violations

    def test_key_schema_in_bcnf(self):
        assert is_in_bcnf(G, fds("A -> B, C"))

    def test_two_keys_in_bcnf(self):
        assert is_in_bcnf(G, fds("A -> B, C", "B -> A"))

    def test_no_fds_is_bcnf(self):
        assert is_in_bcnf(G, [])

    def test_classic_decomposition(self):
        pieces = bcnf_decompose(G, fds("A -> B"))
        attr_sets = sorted(
            tuple(sorted(piece.attribute_set)) for piece, _ in pieces)
        assert attr_sets == [("A", "B"), ("A", "C")]
        for piece, piece_fds in pieces:
            assert is_in_bcnf(piece, piece_fds)

    def test_decomposition_of_bcnf_schema_is_identity(self):
        pieces = bcnf_decompose(G, fds("A -> B, C"))
        assert len(pieces) == 1

    def test_projection_keeps_implied_fds(self):
        projected = project_fds(fds("A -> B", "B -> C"),
                                frozenset({"A", "C"}))
        assert any(
            fd.lhs == {"A"} and "C" in fd.rhs for fd in projected)


class TestValidation:
    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ReproError):
            RelationSchema("R", ("A", "A"))

    def test_empty_fd_sides_rejected(self):
        with pytest.raises(ReproError):
            RelationalFD.parse("-> A")
        with pytest.raises(ReproError):
            RelationalFD.parse("A B")

    def test_trivial_detection(self):
        assert RelationalFD.parse("A, B -> A").is_trivial()
        assert not RelationalFD.parse("A -> B").is_trivial()
