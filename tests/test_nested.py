"""Unit tests for nested relations, unnesting, PNF (Figure 3)."""

import pytest

from repro.errors import ReproError
from repro.datasets.nested_geo import geo_instance, geo_schema
from repro.nested.instance import NestedRelation
from repro.nested.pnf import is_in_pnf
from repro.nested.schema import NestedSchema
from repro.nested.unnest import complete_unnesting
from repro.nested.xml_coding import (
    attribute_path,
    encode_nested_relation,
    nested_dtd,
    nested_sigma,
    schema_path,
)
from repro.dtd.paths import Path
from repro.relational.schema import RelationalFD


class TestSchema:
    def test_walk(self):
        schema = geo_schema()
        assert [s.name for s in schema.walk()] == ["H1", "H2", "H3"]

    def test_all_attributes(self):
        assert geo_schema().all_attributes == ("Country", "State", "City")

    def test_parent_of(self):
        schema = geo_schema()
        assert schema.parent_of("H3").name == "H2"
        assert schema.parent_of("H1") is None

    def test_schema_of_attribute(self):
        assert geo_schema().schema_of_attribute("State").name == "H2"

    def test_duplicate_names_rejected(self):
        inner = NestedSchema("X", ("A",))
        with pytest.raises(ReproError):
            NestedSchema("X", ("B",), (inner,))

    def test_duplicate_attributes_rejected(self):
        inner = NestedSchema("Y", ("A",))
        with pytest.raises(ReproError):
            NestedSchema("X", ("A",), (inner,))


class TestInstance:
    def test_build_and_back(self):
        instance = geo_instance()
        rows = instance.to_rows()
        assert rows[0]["Country"] == "United States"
        assert len(rows[0]["H2"]) == 2

    def test_missing_attribute_rejected(self):
        with pytest.raises(ReproError):
            NestedRelation.build(geo_schema(), [{"H2": []}])

    def test_unknown_key_rejected(self):
        with pytest.raises(ReproError):
            NestedRelation.build(geo_schema(),
                                 [{"Country": "US", "Bogus": 1}])


class TestUnnesting:
    def test_figure3b(self):
        """The complete unnesting of Figure 3(a) is exactly the four
        rows of Figure 3(b)."""
        flat = complete_unnesting(geo_instance())
        rows = {tuple(row[a] for a in ("Country", "State", "City"))
                for row in flat.rows}
        assert rows == {
            ("United States", "Texas", "Houston"),
            ("United States", "Texas", "Dallas"),
            ("United States", "Ohio", "Columbus"),
            ("United States", "Ohio", "Cleveland"),
        }

    def test_empty_nested_relation_contributes_nothing(self):
        instance = NestedRelation.build(geo_schema(), [
            {"Country": "Atlantis", "H2": []},
        ])
        assert len(complete_unnesting(instance)) == 0

    def test_fd_check_on_unnesting(self):
        flat = complete_unnesting(geo_instance())
        assert flat.satisfies_fd(["State"], ["Country"])
        assert not flat.satisfies_fd(["State"], ["City"])
        assert flat.satisfies_fd(["City"], ["State"])


class TestPNF:
    def test_figure3_is_pnf(self):
        assert is_in_pnf(geo_instance())

    def test_pnf_violation(self):
        instance = NestedRelation.build(geo_schema(), [
            {"Country": "US", "H2": [{"State": "TX", "H3": []}]},
            {"Country": "US", "H2": [{"State": "OH", "H3": []}]},
        ])
        assert not is_in_pnf(instance)

    def test_nested_pnf_violation(self):
        instance = NestedRelation.build(geo_schema(), [
            {"Country": "US", "H2": [
                {"State": "TX", "H3": [{"City": "Austin"}]},
                {"State": "TX", "H3": [{"City": "Dallas"}]},
            ]},
        ])
        assert not is_in_pnf(instance)

    def test_equal_duplicates_allowed(self):
        instance = NestedRelation.build(geo_schema(), [
            {"Country": "US", "H2": [{"State": "TX", "H3": []}]},
            {"Country": "US", "H2": [{"State": "TX", "H3": []}]},
        ])
        assert is_in_pnf(instance)


class TestXMLCoding:
    def test_dtd_matches_paper(self):
        dtd = nested_dtd(geo_schema())
        assert dtd.content("db").to_dtd() == "H1*"
        assert dtd.content("H1").to_dtd() == "H2*"
        assert dtd.content("H2").to_dtd() == "H3*"
        assert dtd.content("H3").to_dtd() == "EMPTY"
        assert dtd.attrs("H1") == {"@Country"}
        assert dtd.attrs("H3") == {"@City"}

    def test_paths_match_paper(self):
        schema = geo_schema()
        assert schema_path(schema, "H2") == Path.parse("db.H1.H2")
        assert attribute_path(schema, "City") == Path.parse(
            "db.H1.H2.H3.@City")

    def test_sigma_contains_pnf_keys(self):
        """The three PNF-enforcing FDs of Section 5."""
        sigma = nested_sigma(geo_schema(), [])
        rendered = {str(fd) for fd in sigma}
        assert "db.H1.@Country -> db.H1" in rendered
        assert "{db.H1, db.H1.H2.@State} -> db.H1.H2" in rendered
        assert "{db.H1.H2, db.H1.H2.H3.@City} -> db.H1.H2.H3" in rendered

    def test_encoded_instance_conforms_and_satisfies(self):
        from repro.fd.satisfaction import satisfies_all
        from repro.xmltree.conformance import conforms
        schema = geo_schema()
        dtd = nested_dtd(schema)
        sigma = nested_sigma(schema,
                             [RelationalFD.parse("State -> Country")])
        doc = encode_nested_relation(geo_instance())
        assert conforms(doc, dtd)
        assert satisfies_all(doc, dtd, sigma)

    def test_pnf_violation_breaks_coded_keys(self):
        from repro.fd.satisfaction import satisfies_all
        schema = geo_schema()
        dtd = nested_dtd(schema)
        sigma = nested_sigma(schema, [])
        bad = NestedRelation.build(schema, [
            {"Country": "US", "H2": [{"State": "TX", "H3": []}]},
            {"Country": "US", "H2": [{"State": "OH", "H3": []}]},
        ])
        doc = encode_nested_relation(bad)
        assert not satisfies_all(doc, dtd, sigma)
