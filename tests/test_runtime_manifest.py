"""Unit tests for batch manifests (repro.runtime.manifest)."""

import json

import pytest

from repro.errors import ManifestError
from repro.runtime import manifest as mf

DTD = ("<!ELEMENT db (r*)>\n<!ELEMENT r EMPTY>\n"
       "<!ATTLIST r a CDATA #REQUIRED>")


def _task(**overrides):
    base = {"op": "check", "dtd_text": DTD, "fds_text": "db.r.@a -> db.r"}
    base.update(overrides)
    return base


class TestValidation:
    def test_minimal_manifest_builds(self):
        manifest = mf.build([_task()])
        assert len(manifest.tasks) == 1
        task = manifest.tasks[0]
        assert task.id == "task-0000"        # auto-assigned
        assert task.op == "check"
        assert task.engine == "auto"

    def test_schema_discriminator_required(self):
        with pytest.raises(ManifestError, match="discriminator"):
            mf.from_payload({"version": 1, "tasks": []})

    def test_version_mismatch_rejected(self):
        with pytest.raises(ManifestError, match="version"):
            mf.from_payload({"schema": mf.MANIFEST_SCHEMA,
                             "version": 99, "tasks": []})

    def test_unknown_op_rejected(self):
        with pytest.raises(ManifestError, match="op must be one of"):
            mf.build([_task(op="frobnicate")])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ManifestError, match="duplicate task id"):
            mf.build([_task(id="t"), _task(id="t")])

    def test_exactly_one_dtd_source(self):
        with pytest.raises(ManifestError, match="exactly one"):
            mf.build([_task(dtd="d.dtd")])          # both
        task = _task()
        del task["dtd_text"]
        with pytest.raises(ManifestError, match="exactly one"):
            mf.build([task])                        # neither

    def test_implies_requires_fd_and_others_forbid_it(self):
        with pytest.raises(ManifestError, match="requires"):
            mf.build([_task(op="implies")])
        with pytest.raises(ManifestError, match="only meaningful"):
            mf.build([_task(op="normalize", fd="db.r.@a -> db.r")])

    def test_bad_engine_rejected(self):
        with pytest.raises(ManifestError, match="engine"):
            mf.build([_task(engine="quantum")])

    def test_ensemble_engine_accepted(self):
        manifest = mf.build([_task(engine="ensemble")])
        assert manifest.tasks[0].engine == "ensemble"

    def test_budget_knobs_must_be_positive(self):
        with pytest.raises(ManifestError, match="max_steps"):
            mf.build([_task(max_steps=-1)])
        with pytest.raises(ManifestError, match="timeout"):
            mf.build([_task(timeout=0)])

    def test_whole_manifest_fails_on_one_bad_task(self):
        """A typo'd task 2 stops the batch before task 1 could run."""
        with pytest.raises(ManifestError):
            mf.build([_task(), _task(op="nope")])


class TestDefaults:
    def test_defaults_flow_into_tasks(self):
        manifest = mf.build([_task()],
                            defaults={"engine": "closure",
                                      "max_steps": 500, "seed": 9})
        task = manifest.tasks[0]
        assert task.engine == "closure"
        assert task.max_steps == 500
        assert manifest.seed == 9

    def test_task_overrides_defaults(self):
        manifest = mf.build([_task(engine="chase", max_steps=7)],
                            defaults={"engine": "closure",
                                      "max_steps": 500})
        task = manifest.tasks[0]
        assert task.engine == "chase"
        assert task.max_steps == 7

    def test_budget_kwargs_shape(self):
        manifest = mf.build([_task(timeout=1.5, max_nodes=10)])
        assert manifest.tasks[0].budget_kwargs() == {
            "deadline": 1.5, "max_steps": None,
            "max_branches": None, "max_nodes": 10}


class TestFiles:
    def test_load_resolves_paths_against_manifest_dir(self, tmp_path):
        (tmp_path / "specs").mkdir()
        (tmp_path / "specs" / "d.dtd").write_text(DTD)
        (tmp_path / "specs" / "d.fds").write_text("db.r.@a -> db.r\n")
        payload = {"schema": mf.MANIFEST_SCHEMA,
                   "version": mf.MANIFEST_VERSION,
                   "tasks": [{"op": "check", "dtd": "specs/d.dtd",
                              "fds": "specs/d.fds"}]}
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(payload))
        manifest = mf.load(path)
        task = manifest.tasks[0]
        assert task.load_dtd_text() == DTD
        assert task.load_fds_text().strip() == "db.r.@a -> db.r"

    def test_missing_file_is_manifest_error(self, tmp_path):
        with pytest.raises(ManifestError, match="cannot read"):
            mf.load(tmp_path / "absent.json")

    def test_invalid_json_is_manifest_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ManifestError, match="not valid JSON"):
            mf.load(path)


class TestStreaming:
    """The lazy manifest layer (StreamingManifest, .jsonl loading)."""

    def _header(self, count, defaults=None):
        return {"schema": mf.MANIFEST_SCHEMA,
                "version": mf.MANIFEST_VERSION,
                "defaults": defaults or {}, "count": count}

    def _write_jsonl(self, tmp_path, tasks, count=None, defaults=None):
        path = tmp_path / "batch.jsonl"
        lines = [json.dumps(self._header(
            len(tasks) if count is None else count, defaults))]
        lines += [json.dumps(task) for task in tasks]
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_stream_yields_validated_tasks_lazily(self):
        built = []

        def raw():
            for i in range(3):
                built.append(i)
                yield _task(id=f"t{i}")

        manifest = mf.stream(raw, 3)
        assert manifest.task_count == 3
        assert built == []                      # nothing touched yet
        iterator = manifest.iter_tasks()
        first = next(iterator)
        assert first.id == "t0"
        assert built == [0]                     # only one task built
        assert [task.id for task in iterator] == ["t1", "t2"]

    def test_stream_is_reiterable(self):
        manifest = mf.stream(
            lambda: (_task(id=f"t{i}") for i in range(2)), 2)
        assert [t.id for t in manifest.iter_tasks()] \
            == [t.id for t in manifest.iter_tasks()] == ["t0", "t1"]

    def test_stream_defaults_flow_into_tasks(self):
        manifest = mf.stream(lambda: iter([{"op": "check",
                                            "dtd_text": DTD,
                                            "fds_text": ""}]), 1,
                             defaults={"seed": 9, "engine": "chase"})
        assert manifest.seed == 9
        [task] = manifest.iter_tasks()
        assert task.engine == "chase"

    def test_undercount_is_a_manifest_error(self):
        manifest = mf.stream(
            lambda: (_task(id=f"t{i}") for i in range(2)), 5)
        with pytest.raises(ManifestError, match="header declared"):
            list(manifest.iter_tasks())

    def test_overcount_is_a_manifest_error(self):
        manifest = mf.stream(
            lambda: (_task(id=f"t{i}") for i in range(5)), 2)
        with pytest.raises(ManifestError, match="more than the"):
            list(manifest.iter_tasks())

    def test_duplicate_ids_caught_during_iteration(self):
        manifest = mf.stream(
            lambda: iter([_task(id="same"), _task(id="same")]), 2)
        with pytest.raises(ManifestError, match="duplicate task id"):
            list(manifest.iter_tasks())

    def test_invalid_task_raises_at_its_position(self):
        manifest = mf.stream(
            lambda: iter([_task(id="ok"), {"op": "teleport"}]), 2)
        iterator = manifest.iter_tasks()
        assert next(iterator).id == "ok"
        with pytest.raises(ManifestError, match="task-0001"):
            next(iterator)

    def test_jsonl_file_round_trip(self, tmp_path):
        path = self._write_jsonl(
            tmp_path, [_task(id=f"t{i}") for i in range(4)],
            defaults={"seed": 6})
        manifest = mf.load(path)
        assert isinstance(manifest, mf.StreamingManifest)
        assert manifest.task_count == 4
        assert manifest.seed == 6
        assert [t.id for t in manifest.iter_tasks()] \
            == ["t0", "t1", "t2", "t3"]

    def test_jsonl_relative_paths_resolve_against_the_file(
            self, tmp_path):
        (tmp_path / "specs").mkdir()
        (tmp_path / "specs" / "d.dtd").write_text(DTD)
        (tmp_path / "specs" / "d.fds").write_text("db.r.@a -> db.r")
        path = self._write_jsonl(tmp_path, [
            {"op": "check", "dtd": "specs/d.dtd",
             "fds": "specs/d.fds"}])
        [task] = mf.load(path).iter_tasks()
        assert task.load_dtd_text() == DTD

    def test_jsonl_header_must_declare_count(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        header = self._header(0)
        del header["count"]
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(ManifestError, match="declare a"):
            mf.load(path)

    def test_jsonl_bad_task_line_reports_line_number(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        path.write_text(json.dumps(self._header(1)) + "\n{oops\n")
        manifest = mf.load(path)
        with pytest.raises(ManifestError, match="line 2"):
            list(manifest.iter_tasks())

    def test_jsonl_empty_file_is_a_manifest_error(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        path.write_text("")
        with pytest.raises(ManifestError, match="empty manifest"):
            mf.load(path)

    def test_eager_manifest_satisfies_the_streaming_protocol(self):
        manifest = mf.build([_task(id="a"), _task(id="b")])
        assert manifest.task_count == 2
        assert [t.id for t in manifest.iter_tasks()] == ["a", "b"]
