"""Unit tests for batch manifests (repro.runtime.manifest)."""

import json

import pytest

from repro.errors import ManifestError
from repro.runtime import manifest as mf

DTD = ("<!ELEMENT db (r*)>\n<!ELEMENT r EMPTY>\n"
       "<!ATTLIST r a CDATA #REQUIRED>")


def _task(**overrides):
    base = {"op": "check", "dtd_text": DTD, "fds_text": "db.r.@a -> db.r"}
    base.update(overrides)
    return base


class TestValidation:
    def test_minimal_manifest_builds(self):
        manifest = mf.build([_task()])
        assert len(manifest.tasks) == 1
        task = manifest.tasks[0]
        assert task.id == "task-0000"        # auto-assigned
        assert task.op == "check"
        assert task.engine == "auto"

    def test_schema_discriminator_required(self):
        with pytest.raises(ManifestError, match="discriminator"):
            mf.from_payload({"version": 1, "tasks": []})

    def test_version_mismatch_rejected(self):
        with pytest.raises(ManifestError, match="version"):
            mf.from_payload({"schema": mf.MANIFEST_SCHEMA,
                             "version": 99, "tasks": []})

    def test_unknown_op_rejected(self):
        with pytest.raises(ManifestError, match="op must be one of"):
            mf.build([_task(op="frobnicate")])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ManifestError, match="duplicate task id"):
            mf.build([_task(id="t"), _task(id="t")])

    def test_exactly_one_dtd_source(self):
        with pytest.raises(ManifestError, match="exactly one"):
            mf.build([_task(dtd="d.dtd")])          # both
        task = _task()
        del task["dtd_text"]
        with pytest.raises(ManifestError, match="exactly one"):
            mf.build([task])                        # neither

    def test_implies_requires_fd_and_others_forbid_it(self):
        with pytest.raises(ManifestError, match="requires"):
            mf.build([_task(op="implies")])
        with pytest.raises(ManifestError, match="only meaningful"):
            mf.build([_task(op="normalize", fd="db.r.@a -> db.r")])

    def test_bad_engine_rejected(self):
        with pytest.raises(ManifestError, match="engine"):
            mf.build([_task(engine="quantum")])

    def test_ensemble_engine_accepted(self):
        manifest = mf.build([_task(engine="ensemble")])
        assert manifest.tasks[0].engine == "ensemble"

    def test_budget_knobs_must_be_positive(self):
        with pytest.raises(ManifestError, match="max_steps"):
            mf.build([_task(max_steps=-1)])
        with pytest.raises(ManifestError, match="timeout"):
            mf.build([_task(timeout=0)])

    def test_whole_manifest_fails_on_one_bad_task(self):
        """A typo'd task 2 stops the batch before task 1 could run."""
        with pytest.raises(ManifestError):
            mf.build([_task(), _task(op="nope")])


class TestDefaults:
    def test_defaults_flow_into_tasks(self):
        manifest = mf.build([_task()],
                            defaults={"engine": "closure",
                                      "max_steps": 500, "seed": 9})
        task = manifest.tasks[0]
        assert task.engine == "closure"
        assert task.max_steps == 500
        assert manifest.seed == 9

    def test_task_overrides_defaults(self):
        manifest = mf.build([_task(engine="chase", max_steps=7)],
                            defaults={"engine": "closure",
                                      "max_steps": 500})
        task = manifest.tasks[0]
        assert task.engine == "chase"
        assert task.max_steps == 7

    def test_budget_kwargs_shape(self):
        manifest = mf.build([_task(timeout=1.5, max_nodes=10)])
        assert manifest.tasks[0].budget_kwargs() == {
            "deadline": 1.5, "max_steps": None,
            "max_branches": None, "max_nodes": 10}


class TestFiles:
    def test_load_resolves_paths_against_manifest_dir(self, tmp_path):
        (tmp_path / "specs").mkdir()
        (tmp_path / "specs" / "d.dtd").write_text(DTD)
        (tmp_path / "specs" / "d.fds").write_text("db.r.@a -> db.r\n")
        payload = {"schema": mf.MANIFEST_SCHEMA,
                   "version": mf.MANIFEST_VERSION,
                   "tasks": [{"op": "check", "dtd": "specs/d.dtd",
                              "fds": "specs/d.fds"}]}
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(payload))
        manifest = mf.load(path)
        task = manifest.tasks[0]
        assert task.load_dtd_text() == DTD
        assert task.load_fds_text().strip() == "db.r.@a -> db.r"

    def test_missing_file_is_manifest_error(self, tmp_path):
        with pytest.raises(ManifestError, match="cannot read"):
            mf.load(tmp_path / "absent.json")

    def test_invalid_json_is_manifest_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ManifestError, match="not valid JSON"):
            mf.load(path)
