"""Unit tests for conformance and compatibility (Definition 3)."""

import pytest

from repro.errors import ConformanceError
from repro.dtd.parser import parse_dtd
from repro.dtd.paths import Path
from repro.xmltree.conformance import (
    conformance_violations,
    conforms,
    conforms_unordered,
    is_compatible,
    tree_paths,
    validate_conformance,
)
from repro.xmltree.parser import parse_xml


@pytest.fixture
def dtd():
    return parse_dtd("""
        <!ELEMENT r (a, b*)>
        <!ELEMENT a (#PCDATA)>
        <!ELEMENT b EMPTY>
        <!ATTLIST b x CDATA #REQUIRED>
    """)


class TestConforms:
    def test_conforming(self, dtd):
        assert conforms(parse_xml('<r><a>t</a><b x="1"/></r>'), dtd)

    def test_wrong_root(self, dtd):
        assert not conforms(parse_xml("<a>t</a>"), dtd)

    def test_undeclared_element(self, dtd):
        assert not conforms(parse_xml("<r><z/></r>"), dtd)

    def test_word_not_in_language(self, dtd):
        assert not conforms(parse_xml('<r><b x="1"/><a>t</a></r>'), dtd)

    def test_missing_text(self, dtd):
        assert not conforms(parse_xml('<r><a/><b x="1"/></r>'), dtd)

    def test_unexpected_text(self, dtd):
        assert not conforms(parse_xml("<r>boom</r>"), dtd)

    def test_missing_attribute(self, dtd):
        assert not conforms(parse_xml("<r><a>t</a><b/></r>"), dtd)

    def test_extra_attribute(self, dtd):
        assert not conforms(
            parse_xml('<r><a>t</a><b x="1" y="2"/></r>'), dtd)

    def test_violations_are_descriptive(self, dtd):
        violations = conformance_violations(parse_xml("<r><z/></r>"), dtd)
        assert any("undeclared" in v for v in violations)
        assert any("do not match" in v for v in violations)

    def test_validate_raises_with_details(self, dtd):
        with pytest.raises(ConformanceError, match="undeclared"):
            validate_conformance(parse_xml("<r><z/></r>"), dtd)


class TestUnorderedConformance:
    def test_permutation_accepted(self, dtd):
        doc = parse_xml('<r><b x="1"/><a>t</a></r>')
        assert not conforms(doc, dtd)
        assert conforms_unordered(doc, dtd)

    def test_still_checks_counts(self, dtd):
        doc = parse_xml("<r><a>t</a><a>u</a></r>")
        assert not conforms_unordered(doc, dtd)


class TestPathsAndCompatibility:
    def test_tree_paths(self, dtd):
        doc = parse_xml('<r><a>t</a><b x="1"/></r>')
        paths = tree_paths(doc)
        assert Path.parse("r") in paths
        assert Path.parse("r.a.S") in paths
        assert Path.parse("r.b.@x") in paths
        assert len(paths) == 5

    def test_compatible_but_not_conforming(self, dtd):
        # two a's: incompatible word, but every path is a DTD path
        doc = parse_xml("<r><a>t</a><a>u</a></r>")
        assert not conforms(doc, dtd)
        assert is_compatible(doc, dtd)

    def test_incompatible(self, dtd):
        assert not is_compatible(parse_xml("<r><z/></r>"), dtd)

    def test_compatibility_with_recursive_dtd(self):
        dtd = parse_dtd("<!ELEMENT r (s)>\n<!ELEMENT s (s?)>")
        doc = parse_xml("<r><s><s><s/></s></s></r>")
        assert is_compatible(doc, dtd)
        assert conforms(doc, dtd)

    def test_conformance_implies_compatibility(self, dtd, uni_spec,
                                               uni_doc):
        assert conforms(uni_doc, uni_spec.dtd)
        assert is_compatible(uni_doc, uni_spec.dtd)
