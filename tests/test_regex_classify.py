"""Unit tests for the Section 7 regex taxonomy."""

import pytest

from repro.errors import ReproError
from repro.regex.classify import (
    disjunction_measure,
    is_disjunctive_production,
    is_simple,
    is_simple_disjunction,
    is_trivial,
    simple_multiplicities,
    trivial_equivalent,
)
from repro.regex.analysis import Multiplicity
from repro.regex.parser import parse_content_model as p


class TestTrivial:
    @pytest.mark.parametrize("text", [
        "(a)", "(a?)", "(a+)", "(a*)", "(a, b?, c*)", "EMPTY",
        "(title, taken_by)", "(course*)", "(#PCDATA)",
    ])
    def test_trivial(self, text):
        assert is_trivial(p(text))

    @pytest.mark.parametrize("text", [
        "(a, a)", "(a | b)", "((a, b)*)", "(a, (b | c))", "((a)+, a)",
    ])
    def test_not_trivial(self, text):
        assert not is_trivial(p(text))


class TestSimple:
    @pytest.mark.parametrize("text", [
        # the paper's own example: (a|b|c)* is simple (= a*, b*, c*)
        "((a | b | c)*)",
        "(a, b?, c*)",
        "(a*)",
        "EMPTY",
        "((a | b)*, c)",
        "((a?))",
        # a symbol shared by two star factors still factorizes
        "(doc*, x, (doc | y)*)",
    ])
    def test_simple(self, text):
        assert is_simple(p(text))

    @pytest.mark.parametrize("text", [
        "(a | b)",          # union of two distinct symbols is not simple
        "(b, b)",           # exactly two occurrences
        "((a, b))?",
        "((a, b)*)",        # counts are correlated
        "((a, b)+)",
        # found by hypothesis: the zero vector brings no companion for
        # b, so {} | {a b^n} is not a product ((a?, b*) accepts "b")
        "((a, b*))?",
        "((a, b?))?",
        "(qna+ | q+ | (p | div | section)+)",
    ])
    def test_not_simple(self, text):
        assert not is_simple(p(text))

    def test_trivial_equivalent_of_union_star(self):
        assert trivial_equivalent(p("((a | b | c)*)")).to_dtd() == \
            "(a*, b*, c*)"

    def test_simple_multiplicities(self):
        classes = simple_multiplicities(p("((a | b)*, c)"))
        assert classes == {"a": Multiplicity.STAR,
                           "b": Multiplicity.STAR,
                           "c": Multiplicity.ONE}

    def test_simple_multiplicities_raises_on_non_simple(self):
        with pytest.raises(ReproError):
            simple_multiplicities(p("(a | b)"))


class TestSimpleDisjunction:
    @pytest.mark.parametrize("text", [
        "(a | b)", "(a)", "EMPTY", "(a | b | c)", "(a?)",
    ])
    def test_yes(self, text):
        assert is_simple_disjunction(p(text))

    @pytest.mark.parametrize("text", [
        "(a | a)",          # same alphabet on both sides -> collapses,
    ])
    def test_degenerate_union_collapses(self, text):
        # smart constructors deduplicate (a | a) to a, which is fine
        assert is_simple_disjunction(p(text))

    @pytest.mark.parametrize("text", [
        "(a, b)", "((a, b) | c)", "(a+ | b)", "(a* | b)",
    ])
    def test_no(self, text):
        assert not is_simple_disjunction(p(text))


class TestDisjunctiveProduction:
    @pytest.mark.parametrize("text", [
        "((a | b), c)",          # simple disjunction then simple regex
        "(x*, (a | b))",
        "((a | b))",
        "(x, y?, z*)",           # purely simple is also disjunctive
        "((a | b), (c | d))",
    ])
    def test_yes(self, text):
        assert is_disjunctive_production(p(text))

    @pytest.mark.parametrize("text", [
        "(qna+ | q+ | (p | div | section)+)",  # the FAQ production
        "((a | b), (b | c))",                   # overlapping alphabets
        "(logo*, title, (qna+ | q+ | p+))",
    ])
    def test_no(self, text):
        assert not is_disjunctive_production(p(text))


class TestDisjunctionMeasure:
    def test_simple_has_measure_one(self):
        assert disjunction_measure(p("(a*, b?)")) == 1

    def test_single_disjunction(self):
        assert disjunction_measure(p("((a | b), c)")) == 2

    def test_three_way(self):
        assert disjunction_measure(p("((a | b | c), x)")) == 3

    def test_product_over_factors(self):
        assert disjunction_measure(p("((a | b), (c | d | e))")) == 6

    def test_raises_on_non_disjunctive(self):
        with pytest.raises(ReproError):
            disjunction_measure(p("(qna+ | q+ | (p | div | section)+)"))
