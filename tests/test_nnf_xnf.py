"""Unit tests for NNF and the Proposition 5 equivalence with XNF."""

import pytest

from repro.datasets.nested_geo import geo_schema
from repro.nested.nnf import ancestor_attributes, is_in_nnf, nnf_violations
from repro.nested.schema import NestedSchema
from repro.nested.xml_coding import nested_dtd, nested_sigma
from repro.relational.schema import RelationalFD
from repro.xnf.check import is_in_xnf


def fds(*texts):
    return [RelationalFD.parse(t) for t in texts]


class TestAncestor:
    def test_paper_example(self):
        """ancestor(State) = {Country, State}."""
        schema = geo_schema()
        assert ancestor_attributes(schema, "State") == {"Country", "State"}
        assert ancestor_attributes(schema, "City") == {
            "Country", "State", "City"}
        assert ancestor_attributes(schema, "Country") == {"Country"}


class TestNNF:
    def test_good_design(self):
        assert is_in_nnf(geo_schema(), fds("State -> Country"))

    def test_no_fds_is_nnf(self):
        assert is_in_nnf(geo_schema(), [])

    def test_upward_fd_violates(self):
        """City -> State is implied but City -> Country is not, while
        ancestor(State) contains Country."""
        violations = nnf_violations(geo_schema(), fds("City -> State"))
        assert violations
        assert not is_in_nnf(geo_schema(), fds("City -> State"))

    def test_top_level_target_is_fine(self):
        """City -> Country satisfies NNF even without City -> State:
        ancestor(Country) = {Country} because Country sits at the top
        level (its path mentions only H1)."""
        assert is_in_nnf(geo_schema(), fds("City -> Country"))

    def test_mid_level_target_needs_ancestors(self):
        """State -> City... reversed: a *mid*-level target does need
        its ancestors: B -> C alone violates on a fork where C's
        ancestor set contains attributes B does not determine."""
        from repro.nested.schema import NestedSchema
        inner = NestedSchema("Inner", ("C",))
        schema = NestedSchema("Outer", ("A",), (inner,))
        # B is not in this schema; instead test with City -> State on
        # the geo chain: ancestor(State) = {Country, State} and
        # closure(City) misses Country.
        assert not is_in_nnf(geo_schema(), fds("City -> State"))

    def test_full_chain_is_nnf(self):
        assert is_in_nnf(geo_schema(),
                         fds("City -> State", "City -> Country",
                             "State -> Country"))


class TestProposition5:
    """NNF iff XNF of the coded schema, on hand-picked FD families."""

    FAMILIES = [
        [],
        ["State -> Country"],
        ["City -> State"],
        ["City -> Country"],
        ["City -> State", "City -> Country", "State -> Country"],
        ["Country -> State"],
        ["State -> City"],
    ]

    @pytest.mark.parametrize("family", FAMILIES,
                             ids=[";".join(f) or "empty" for f in FAMILIES])
    def test_agreement(self, family):
        schema = geo_schema()
        relational = fds(*family)
        nnf = is_in_nnf(schema, relational)
        xnf = is_in_xnf(nested_dtd(schema),
                        nested_sigma(schema, relational))
        assert nnf == xnf, f"Proposition 5 fails on {family}"

    def test_flat_nested_schema(self):
        """A single-level nested schema behaves like a relation."""
        schema = NestedSchema("R", ("A", "B", "C"))
        good = fds("A -> B", "B -> A", "A -> C")  # A, B keys
        bad = fds("A -> B")
        assert is_in_nnf(schema, good) == is_in_xnf(
            nested_dtd(schema), nested_sigma(schema, good))
        assert is_in_nnf(schema, bad) == is_in_xnf(
            nested_dtd(schema), nested_sigma(schema, bad))

    def test_two_branch_schema(self):
        """A schema with two sibling nested relations."""
        left = NestedSchema("L", ("X",))
        right = NestedSchema("R", ("Y",))
        schema = NestedSchema("Top", ("K",), (left, right))
        for family in ([], ["X -> Y"], ["X -> K"], ["K -> X"]):
            relational = fds(*family)
            nnf = is_in_nnf(schema, relational)
            xnf = is_in_xnf(nested_dtd(schema),
                            nested_sigma(schema, relational))
            assert nnf == xnf, f"Proposition 5 fails on {family}"
