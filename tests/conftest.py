"""Shared fixtures: the paper's running examples and small helper DTDs."""

from __future__ import annotations

import pytest

from repro.datasets.dblp import dblp_document, dblp_spec
from repro.datasets.university import university_document, university_spec
from repro.dtd.parser import parse_dtd
from repro.spec import XMLSpec


@pytest.fixture
def uni_spec() -> XMLSpec:
    """Example 1.1: the university schema with FD1-FD3."""
    return university_spec()


@pytest.fixture
def uni_doc(uni_spec):
    """Figure 1(a)."""
    return university_document()


@pytest.fixture
def dblp() -> XMLSpec:
    """Example 1.2: the DBLP fragment with FD4-FD5."""
    return dblp_spec()


@pytest.fixture
def dblp_doc(dblp):
    return dblp_document()


@pytest.fixture
def flat_ab_dtd():
    """r -> a*, b* with one attribute each: the workhorse for
    implication corner cases."""
    return parse_dtd("""
        <!ELEMENT r (a*, b*)>
        <!ELEMENT a EMPTY>
        <!ELEMENT b EMPTY>
        <!ATTLIST a x CDATA #REQUIRED>
        <!ATTLIST b y CDATA #REQUIRED>
    """)


@pytest.fixture
def forced_ab_dtd():
    """r -> a+, b*: the cross-tuple (hybrid) implication case."""
    return parse_dtd("""
        <!ELEMENT r (a+, b*)>
        <!ELEMENT a EMPTY>
        <!ELEMENT b EMPTY>
        <!ATTLIST a x CDATA #REQUIRED>
        <!ATTLIST b y CDATA #REQUIRED>
    """)


@pytest.fixture
def disjunctive_dtd():
    """r -> (a | b), c*: closure is incomplete here; the chase decides."""
    return parse_dtd("""
        <!ELEMENT r ((a | b), c*)>
        <!ELEMENT a EMPTY>
        <!ELEMENT b EMPTY>
        <!ELEMENT c EMPTY>
        <!ATTLIST c x CDATA #REQUIRED>
    """)
