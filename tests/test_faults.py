"""Unit tests for the fault-injection substrate (plans, arms, specs)."""

from __future__ import annotations

import pytest

from repro import faults
from repro.errors import (
    InjectedAllocationFailure,
    InjectedFault,
    ReproError,
    ResourceExhausted,
)


@pytest.fixture(autouse=True)
def _clean():
    yield
    faults.teardown()


class TestArms:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            faults.FaultArm(site="x", kind="meteor")

    def test_negative_after_rejected(self):
        with pytest.raises(ValueError, match="after"):
            faults.FaultArm(site="x", after=-1)

    def test_arm_fires_once(self):
        plan = faults.FaultPlan([faults.FaultArm(site="s")])
        with faults.use(plan):
            with pytest.raises(InjectedFault):
                faults.fire("s")
            faults.fire("s")  # already fired: no second fault
        assert plan.fired == [("s", "exception")]
        assert plan.hits["s"] == 2

    def test_after_counts_hits(self):
        plan = faults.FaultPlan([faults.FaultArm(site="s", after=2)])
        with faults.use(plan):
            faults.fire("s")
            faults.fire("s")
            with pytest.raises(InjectedFault):
                faults.fire("s")

    def test_fnmatch_patterns(self):
        plan = faults.FaultPlan([faults.FaultArm(site="fd.*")])
        with faults.use(plan):
            faults.fire("xml.parser.tag")
            with pytest.raises(InjectedFault):
                faults.fire("fd.chase.step")

    def test_kinds_map_to_error_types(self):
        cases = [("exception", InjectedFault),
                 ("allocation", InjectedAllocationFailure),
                 ("exhaustion", ResourceExhausted)]
        for kind, error_type in cases:
            with faults.inject("s", kind=kind):
                with pytest.raises(error_type):
                    faults.fire("s")

    def test_truncate_degrades_to_exception_at_raise_site(self):
        with faults.inject("s", kind="truncate") as plan:
            with pytest.raises(InjectedFault):
                faults.fire("s")
        assert plan.fired == [("s", "exception")]


class TestMangle:
    def test_no_plan_returns_text(self):
        assert faults.mangle("s", "hello") == "hello"

    def test_truncation_is_deterministic(self):
        def run(seed):
            with faults.inject("s", kind="truncate", seed=seed):
                return faults.mangle("s", "abcdefghij")
        assert run(3) == run(3)

    def test_truncation_is_a_prefix(self):
        text = "abcdefghij"
        for seed in range(10):
            with faults.inject("s", kind="truncate", seed=seed):
                mangled = faults.mangle("s", text)
            assert text.startswith(mangled)
            assert len(mangled) < len(text)

    def test_raise_kinds_raise_from_input_site(self):
        with faults.inject("s", kind="allocation"):
            with pytest.raises(InjectedAllocationFailure):
                faults.mangle("s", "abc")


class TestInstallation:
    def test_inactive_without_plan(self):
        assert not faults.active
        faults.fire("anything")  # no-op

    def test_active_flag_tracks_stack(self):
        with faults.inject("a"):
            assert faults.active
            with faults.inject("b"):
                assert faults.active
            assert faults.active
        assert not faults.active

    def test_teardown_clears_everything(self):
        plan = faults.FaultPlan([faults.FaultArm(site="s")])
        leaked = faults.use(plan)
        leaked.__enter__()  # deliberately unbalanced
        assert faults.active
        assert faults.teardown() == 1
        assert not faults.active
        assert faults.current() is None


class TestPlanFromSpec:
    def test_full_spec(self):
        plan = faults.plan_from_spec(
            "fd.chase.step:exception:3, xml.parser.input:truncate",
            seed=9)
        assert [(a.site, a.kind, a.after) for a in plan.arms] == [
            ("fd.chase.step", "exception", 3),
            ("xml.parser.input", "truncate", 0)]
        assert plan.seed == 9

    def test_defaults(self):
        arm, = faults.plan_from_spec("some.site").arms
        assert (arm.kind, arm.after) == ("exception", 0)

    def test_bad_kind(self):
        with pytest.raises(ReproError, match="bad fault spec"):
            faults.plan_from_spec("s:meteor")

    def test_bad_after(self):
        with pytest.raises(ReproError, match="integer"):
            faults.plan_from_spec("s:exception:soon")

    def test_too_many_fields(self):
        with pytest.raises(ReproError, match="site\\[:kind"):
            faults.plan_from_spec("s:exception:1:2")

    def test_empty_spec(self):
        with pytest.raises(ReproError, match="empty"):
            faults.plan_from_spec(" , ")


class TestRegistrySurface:
    def test_register_is_idempotent(self):
        before = len(faults.registered_sites())
        name = faults.register_site("fd.chase.step", "fd", "dupe")
        assert name == "fd.chase.step"
        assert len(faults.registered_sites()) == before

    def test_sites_sorted_and_described(self):
        sites = faults.all_sites()
        names = [s.name for s in sites]
        assert names == sorted(names)
        assert all(s.description for s in sites)
        assert all(s.subsystem for s in sites)
