"""Unit tests for the Figure 4 decomposition algorithm."""

import pytest

from repro.errors import UnsupportedFeatureError
from repro.dtd.parser import parse_dtd
from repro.fd.model import FD
from repro.normalize.algorithm import normalize
from repro.normalize.transforms import NewElementNames
from repro.xnf.check import is_in_xnf


class TestPaperRuns:
    def test_university_reaches_example_11b(self, uni_spec):
        """The algorithm reproduces the paper's revised DTD exactly."""
        result = normalize(
            uni_spec.dtd, uni_spec.sigma,
            naming=lambda i, fd: NewElementNames(tau="info",
                                                 taus=["number"]))
        assert len(result.steps) == 1
        assert result.steps[0].kind == "create"
        dtd = result.dtd
        assert dtd.content("courses").to_dtd() == "(course*, info*)"
        assert dtd.content("info").to_dtd() == "(number*, name)"
        assert dtd.content("student").to_dtd() == "grade"
        assert dtd.content("name").to_dtd() == "(#PCDATA)"
        assert dtd.attrs("number") == {"@sno"}
        assert is_in_xnf(dtd, result.sigma)

    def test_dblp_moves_year(self, dblp):
        """Step (2) fires: issue -> S is implied, so the attribute
        moves instead of creating an element type."""
        result = normalize(dblp.dtd, dblp.sigma)
        assert len(result.steps) == 1
        assert result.steps[0].kind == "move"
        assert "@year" in result.dtd.attrs("issue")
        assert "@year" not in result.dtd.attrs("inproceedings")
        assert result.sigma == [dblp.sigma[0]]
        assert is_in_xnf(result.dtd, result.sigma)

    def test_already_normalized_is_noop(self, uni_spec):
        result = normalize(uni_spec.dtd, uni_spec.sigma[:2])
        assert result.steps == []
        assert result.dtd == uni_spec.dtd


class TestCombinedAnomalies:
    def test_two_anomalies_two_steps(self):
        """A schema with both a university-style and a DBLP-style
        anomaly normalizes in two steps."""
        dtd = parse_dtd("""
            <!ELEMENT db (course*)>
            <!ELEMENT course (student*)>
            <!ATTLIST course cno CDATA #REQUIRED>
            <!ELEMENT student (paper*)>
            <!ATTLIST student sno CDATA #REQUIRED
                              sname CDATA #REQUIRED>
            <!ELEMENT paper EMPTY>
            <!ATTLIST paper pno CDATA #REQUIRED
                            cyear CDATA #REQUIRED>
        """)
        sigma = [
            FD.parse("db.course.@cno -> db.course"),
            # university-style: sno determines the student name
            FD.parse("db.course.student.@sno -> db.course.student.@sname"),
            # DBLP-style: all papers of a course share cyear
            FD.parse("db.course -> db.course.student.paper.@cyear"),
        ]
        result = normalize(dtd, sigma)
        kinds = sorted(step.kind for step in result.steps)
        assert kinds == ["create", "move"]
        assert is_in_xnf(result.dtd, result.sigma)

    def test_progress_assertion_active(self, uni_spec):
        result = normalize(uni_spec.dtd, uni_spec.sigma,
                           check_progress=True)
        assert is_in_xnf(result.dtd, result.sigma)


class TestPreprocessing:
    def test_two_element_lhs_rejected(self, uni_spec):
        bad = FD.parse("{courses, courses.course} -> "
                       "courses.course.title.S")
        with pytest.raises(UnsupportedFeatureError):
            normalize(uni_spec.dtd, uni_spec.sigma + [bad])

    def test_attribute_only_lhs_gets_root(self, uni_spec):
        """FD3 has no element path on the left; the algorithm adds the
        root, matching the paper's reading of the example."""
        result = normalize(
            uni_spec.dtd, uni_spec.sigma,
            naming=lambda i, fd: NewElementNames(tau="info",
                                                 taus=["number"]))
        step = result.steps[0]
        assert step.kind == "create"
        # the new element hangs off the root
        assert "info" in step.dtd.child_element_types("courses")


class TestResultObject:
    def test_migrate_composes(self, uni_spec, uni_doc):
        from repro.xmltree.conformance import conforms
        result = normalize(uni_spec.dtd, uni_spec.sigma)
        migrated = result.migrate(uni_doc)
        assert conforms(migrated, result.dtd)

    def test_step_descriptions(self, dblp):
        result = normalize(dblp.dtd, dblp.sigma)
        assert any("move" in d for d in result.step_descriptions)


class TestIdempotence:
    def test_normalize_twice_is_noop(self, uni_spec):
        first = normalize(uni_spec.dtd, uni_spec.sigma)
        second = normalize(first.dtd, first.sigma)
        assert second.steps == []
        assert second.dtd == first.dtd

    def test_normalize_twice_dblp(self, dblp):
        first = normalize(dblp.dtd, dblp.sigma)
        second = normalize(first.dtd, first.sigma)
        assert second.steps == []
