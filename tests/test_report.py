"""Unit tests for the design-analysis report (redundancy counting)."""

from repro.datasets.dblp import dblp_document, dblp_spec
from repro.datasets.university import (
    synthetic_university_document,
    university_document,
    university_spec,
)
from repro.report import analyze, redundancy_of


class TestRedundancyOf:
    def test_paper_motivation_exactly(self, uni_spec, uni_doc):
        """'the name Deere for student st1 is stored twice': one
        redundant copy — the two Smiths belong to different students
        and do not count."""
        assert redundancy_of(uni_spec, uni_doc, uni_spec.sigma[2]) == 1

    def test_dblp_year(self, dblp, dblp_doc):
        """2002 stored twice in the two-paper issue: one redundant
        copy."""
        assert redundancy_of(dblp, dblp_doc, dblp.sigma[1]) == 1

    def test_no_redundancy_without_repeats(self, uni_spec):
        doc = uni_spec.parse_document("""
        <courses><course cno="c"><title>T</title><taken_by>
          <student sno="s"><name>N</name><grade>A</grade></student>
        </taken_by></course></courses>
        """)
        assert redundancy_of(uni_spec, doc, uni_spec.sigma[2]) == 0

    def test_element_rhs_counts_zero(self, uni_spec, uni_doc):
        assert redundancy_of(uni_spec, uni_doc, uni_spec.sigma[0]) == 0

    def test_scales_with_repeats(self, uni_spec):
        doc = synthetic_university_document(6, 4, seed=3,
                                            student_pool=5)
        fd3 = uni_spec.sigma[2]
        redundancy = redundancy_of(uni_spec, doc, fd3)
        # 6 courses x 4 students drawn from a pool of 5: many repeats
        assert redundancy >= 10


class TestAnalyze:
    def test_university_report(self, uni_spec, uni_doc):
        report = analyze(uni_spec, [uni_doc])
        assert not report.in_xnf
        assert report.simple
        assert report.plan
        assert report.documents[0].total_redundancy == 1
        assert report.migrated_redundancy == [0]

    def test_render_mentions_key_facts(self, uni_spec, uni_doc):
        text = analyze(uni_spec, [uni_doc]).render()
        assert "in XNF: NO" in text
        assert "anomalous" in text
        assert "redundant copies=1" in text
        assert "after normalization: 0" in text

    def test_clean_design_report(self, uni_spec):
        from repro.spec import XMLSpec
        clean = XMLSpec(uni_spec.dtd, uni_spec.sigma[:2])
        report = analyze(clean)
        assert report.in_xnf
        assert report.plan == []
        assert "in XNF: yes" in report.render()

    def test_dblp_report_round_trip(self, dblp, dblp_doc):
        report = analyze(dblp, [dblp_doc])
        assert report.documents[0].total_redundancy == 1
        assert report.migrated_redundancy == [0]


class TestExplain:
    def test_positive_derivation(self, uni_spec):
        text = uni_spec.explain(
            "courses.course.@cno -> courses.course.title.S")
        assert "goal reached" in text
        assert "FD courses.course.@cno -> courses.course" in text

    def test_negative_derivation(self, uni_spec):
        text = uni_spec.explain(
            "courses.course.taken_by.student.@sno -> "
            "courses.course.taken_by.student.name")
        assert "not implied" in text
        assert "complete for this simple DTD" in text

    def test_case_split_mentioned(self):
        from repro.nested import nested_dtd, nested_sigma
        from repro.datasets.nested_geo import geo_schema
        from repro.nested.schema import NestedSchema
        from repro.relational.schema import RelationalFD
        from repro.fd.explain import explain_implication
        left = NestedSchema("L", ("B",))
        right = NestedSchema("R", ("C",))
        schema = NestedSchema("H1", ("A",), (left, right))
        dtd = nested_dtd(schema)
        sigma = nested_sigma(schema, [RelationalFD.parse("A -> B")])
        text = explain_implication(dtd, sigma, "db.H1.@A -> db.H1.L")
        assert "case split" in text
        assert "goal reached" in text

    def test_multi_rhs_blocks(self, uni_spec):
        text = uni_spec.explain(
            "courses.course -> "
            "{courses.course.title, courses.course.taken_by}")
        assert text.count("hypothesis:") == 2
