"""Unit tests for the differential engine ensemble."""

import pytest

from repro.errors import (
    EnsembleDisagreementError,
    ResourceExhausted,
    UnsupportedFeatureError,
)
from repro.fd.model import FD
from repro.runtime import ensemble
from repro.spec import XMLSpec
from repro import guard

SIMPLE_DTD = ("<!ELEMENT db (r*)>\n<!ELEMENT r EMPTY>\n"
              "<!ATTLIST r a CDATA #REQUIRED b CDATA #REQUIRED>")
DISJUNCTIVE_DTD = """
    <!ELEMENT r ((a | b), c*)>
    <!ELEMENT a EMPTY>
    <!ELEMENT b EMPTY>
    <!ELEMENT c EMPTY>
    <!ATTLIST c x CDATA #REQUIRED>
"""
RECURSIVE_DTD = ("<!ELEMENT db (part*)>\n"
                 "<!ELEMENT part (part*)>\n"
                 "<!ATTLIST part pno CDATA #REQUIRED>")


def _spec(dtd_text, fds):
    return XMLSpec.parse(dtd_text, fds, engine="ensemble")


class TestAgreement:
    def test_simple_dtd_both_polarities(self):
        spec = _spec(SIMPLE_DTD, ["db.r.@a -> db.r.@b"])
        with ensemble.session("strict") as sess:
            assert spec.implies("db.r.@a -> db.r.@b")
            assert not spec.implies("db.r.@b -> db.r.@a")
        assert sess.disagreements == []

    def test_disjunctive_dtd_agrees_with_chase(self):
        """The classic closure-incomplete case: the disjunction forces
        a case split only the chase (and brute) can decide."""
        sigma = ["r.a -> r.c.@x", "r.b -> r.c.@x"]
        spec = _spec(DISJUNCTIVE_DTD, sigma)
        with ensemble.session("strict") as sess:
            assert spec.implies("r -> r.c.@x")
        assert sess.disagreements == []

    def test_spec_level_pipelines_run_under_the_oracle(self):
        spec = _spec(SIMPLE_DTD, ["db.r.@a -> db.r.@b"])
        with ensemble.session("strict") as sess:
            spec.xnf_violations()
            spec.normalize()
        assert sess.disagreements == []


class TestDisagreement:
    @pytest.fixture
    def rigged(self, monkeypatch):
        """Force the closure member to claim YES on everything; on a
        non-simple DTD where the chase proves NO, that is an
        authoritative contradiction."""
        monkeypatch.setattr(ensemble, "closure_implies",
                            lambda dtd, sigma, fd: True)

    def test_check_mode_records_and_resolves_with_chase(self, rigged):
        spec = _spec(DISJUNCTIVE_DTD, ["r.a -> r.c.@x"])
        with ensemble.session("check") as sess:
            answer = spec.implies("r -> r.c.@x")
        assert answer is False               # the exact engine wins
        [record] = sess.disagreements
        assert record.resolved_with == "chase"
        assert dict(record.verdicts)["closure"] == "YES"
        assert dict(record.verdicts)["chase"] == "NO"

    def test_strict_mode_raises_with_the_record(self, rigged):
        spec = _spec(DISJUNCTIVE_DTD, ["r.a -> r.c.@x"])
        with ensemble.session("strict") as sess:
            with pytest.raises(EnsembleDisagreementError) as info:
                spec.implies("r -> r.c.@x")
        assert info.value.record is not None
        assert info.value.record.resolved_with is None
        assert sess.disagreements      # escalated, never silent

    def test_closure_incompleteness_is_not_a_disagreement(self):
        """closure NO / chase YES on a non-simple DTD is the documented
        approximation gap, not a contradiction."""
        sigma = ["r.a -> r.c.@x", "r.b -> r.c.@x"]
        spec = _spec(DISJUNCTIVE_DTD, sigma)
        with ensemble.session("strict") as sess:
            assert spec.implies("r -> r.c.@x")
        assert sess.disagreements == []


class TestDegradation:
    def test_chase_limit_falls_back_to_sound_closure_yes(self,
                                                         monkeypatch):
        def exhausted(dtd, sigma, fd, **kwargs):
            raise ResourceExhausted("branches", spent=8, allowed=8)
        monkeypatch.setattr(ensemble, "chase_implies", exhausted)
        spec = _spec(DISJUNCTIVE_DTD, ["r.a -> r.c.@x"])
        with ensemble.session("check") as sess:
            assert spec.implies("r.a -> r.c.@x")   # closure proves YES
        assert sess.fallbacks == ["closure"]

    def test_chase_limit_with_unsound_closure_no_reraises(self,
                                                          monkeypatch):
        def exhausted(dtd, sigma, fd, **kwargs):
            raise ResourceExhausted("branches", spent=8, allowed=8)
        monkeypatch.setattr(ensemble, "chase_implies", exhausted)
        spec = _spec(DISJUNCTIVE_DTD, ["r.a -> r.c.@x"])
        with ensemble.session("check"):
            with pytest.raises(ResourceExhausted):
                spec.implies("r -> r.c.@x")   # closure NO is not sound

    def test_closure_limit_falls_back_to_exact_chase(self, monkeypatch):
        def exhausted(dtd, sigma, fd, **kwargs):
            raise ResourceExhausted("steps", spent=5, allowed=5)
        monkeypatch.setattr(ensemble, "closure_implies", exhausted)
        spec = _spec(DISJUNCTIVE_DTD, ["r.a -> r.c.@x"])
        with ensemble.session("check") as sess:
            assert not spec.implies("r -> r.c.@x")
        assert sess.fallbacks == ["chase"]

    def test_recursive_simple_dtd_served_by_closure(self):
        spec = _spec(RECURSIVE_DTD, ["db.part.@pno -> db.part"])
        with ensemble.session("strict") as sess:
            assert spec.implies("db.part.@pno -> db.part")
        assert sess.disagreements == []

    def test_recursive_non_simple_refusal_matches_auto(self):
        """A closure NO on a recursive non-simple DTD is unsound to
        serve, and no exact engine can run — refuse like auto."""
        dtd = ("<!ELEMENT db ((a | part), part)>\n<!ELEMENT a EMPTY>\n"
               "<!ELEMENT part (part?)>\n"
               "<!ATTLIST part pno CDATA #REQUIRED>")
        spec = _spec(dtd, [])
        with pytest.raises(UnsupportedFeatureError):
            spec.implies("db.part.@pno -> db.part")


class TestBruteMember:
    def test_small_inputs_include_brute(self):
        dtd = XMLSpec.parse(SIMPLE_DTD, []).dtd
        assert ensemble.brute_feasible(dtd, sigma_size=1)

    def test_large_sigma_excludes_brute(self):
        dtd = XMLSpec.parse(SIMPLE_DTD, []).dtd
        assert not ensemble.brute_feasible(
            dtd, sigma_size=ensemble.BRUTE_MAX_SIGMA + 1)

    def test_recursive_dtd_excludes_brute(self):
        dtd = XMLSpec.parse(RECURSIVE_DTD, []).dtd
        assert not ensemble.brute_feasible(dtd, sigma_size=1)

    def test_brute_countermodel_contradicts_rigged_exact_engines(
            self, monkeypatch):
        """brute finds a countermodel -> authoritative NO, even when
        both closure and chase are rigged to say YES."""
        monkeypatch.setattr(ensemble, "closure_implies",
                            lambda dtd, sigma, fd: True)
        monkeypatch.setattr(ensemble, "chase_implies",
                            lambda dtd, sigma, fd, **kw: True)
        spec = _spec(SIMPLE_DTD, [])
        with ensemble.session("check") as sess:
            answer = spec.implies("db.r.@a -> db.r.@b")
        assert answer is True          # resolved with the primary
        [record] = sess.disagreements
        assert dict(record.verdicts)["brute"] == "NO"


class TestSession:
    def test_sessions_nest_and_drain(self):
        outer = ensemble.current()
        with ensemble.session("check") as sess:
            assert ensemble.current() is sess
            sess.disagreements.append("marker")
            assert sess.drain() == ["marker"]
            assert sess.disagreements == []
        assert ensemble.current() is outer

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ensemble.Session("paranoid")
