"""Unit tests for Section 7 DTD classification and the N_D measure."""

import pytest

from repro.errors import RecursionLimitError, ReproError
from repro.dtd.classify import (
    disjunction_measure,
    dtd_size,
    is_disjunctive_dtd,
    is_simple_dtd,
)
from repro.dtd.parser import parse_dtd
from repro.datasets.ebxml import ebxml_dtd
from repro.datasets.faq import faq_dtd


class TestSimpleDTD:
    def test_university_is_simple(self, uni_spec):
        assert is_simple_dtd(uni_spec.dtd)

    def test_dblp_is_simple(self, dblp):
        assert is_simple_dtd(dblp.dtd)

    def test_ebxml_is_simple(self):
        """Figure 5: the paper's real-world simple DTD witness."""
        dtd = ebxml_dtd()
        assert is_simple_dtd(dtd)
        assert not dtd.is_recursive

    def test_faq_is_not_simple(self):
        assert not is_simple_dtd(faq_dtd())

    def test_plain_disjunction_not_simple(self):
        dtd = parse_dtd("""
            <!ELEMENT r (a | b)>
            <!ELEMENT a EMPTY>
            <!ELEMENT b EMPTY>
        """)
        assert not is_simple_dtd(dtd)
        assert is_disjunctive_dtd(dtd)

    def test_unreachable_elements_ignored_by_default(self):
        dtd = parse_dtd("""
            <!ELEMENT r (a?)>
            <!ELEMENT a EMPTY>
            <!ELEMENT orphan (x | y)>
            <!ELEMENT x EMPTY>
            <!ELEMENT y EMPTY>
        """)
        assert is_simple_dtd(dtd)
        assert not is_simple_dtd(dtd, reachable_only=False)


class TestDisjunctiveDTD:
    def test_simple_is_disjunctive(self, uni_spec):
        assert is_disjunctive_dtd(uni_spec.dtd)

    def test_faq_is_not_disjunctive(self):
        assert not is_disjunctive_dtd(faq_dtd())

    def test_disjunctive_example(self, disjunctive_dtd):
        assert is_disjunctive_dtd(disjunctive_dtd)
        assert not is_simple_dtd(disjunctive_dtd)


class TestMeasure:
    def test_simple_dtd_measure_is_one(self, uni_spec):
        assert disjunction_measure(uni_spec.dtd) == 1

    def test_single_disjunction(self, disjunctive_dtd):
        # r occurs at one path, production has one 2-way disjunction
        assert disjunction_measure(disjunctive_dtd) == 2

    def test_measure_multiplies_per_occurrence(self):
        dtd = parse_dtd("""
            <!ELEMENT r (m, m2)>
            <!ELEMENT m (x)>
            <!ELEMENT m2 (x)>
            <!ELEMENT x ((a | b))>
            <!ELEMENT a EMPTY>
            <!ELEMENT b EMPTY>
        """)
        # x occurs at two paths, each contributing the 2-way choice
        assert disjunction_measure(dtd) == 4

    def test_measure_rejects_recursive(self):
        # the FAQ DTD is recursive, so the path-count factor is infinite
        with pytest.raises(RecursionLimitError):
            disjunction_measure(faq_dtd())

    def test_measure_rejects_non_disjunctive(self):
        dtd = parse_dtd("""
            <!ELEMENT r (qna+ | q+ | p+)>
            <!ELEMENT qna EMPTY>
            <!ELEMENT q EMPTY>
            <!ELEMENT p EMPTY>
        """)
        with pytest.raises(ReproError):
            disjunction_measure(dtd)

    def test_size_positive(self, uni_spec):
        assert dtd_size(uni_spec.dtd) > 100
