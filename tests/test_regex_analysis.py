"""Unit tests for occurrence bounds and multiplicity classes."""

import math

import pytest

from repro.regex.analysis import (
    Multiplicity,
    add_multiplicity,
    multiplicity_from_bounds,
    occurrence_bounds,
    symbol_multiplicities,
    union_multiplicity,
)
from repro.regex.parser import parse_content_model as p


class TestOccurrenceBounds:
    @pytest.mark.parametrize("regex, symbol, expected", [
        ("(a)", "a", (1, 1)),
        ("(a)", "b", (0, 0)),
        ("(a*)", "a", (0, math.inf)),
        ("(a+)", "a", (1, math.inf)),
        ("(a?)", "a", (0, 1)),
        ("(a, a)", "a", (2, 2)),
        ("(a | b)", "a", (0, 1)),
        ("((a, a) | a)", "a", (1, 2)),
        ("((a | b)*)", "b", (0, math.inf)),
        ("(a, b, a?)", "a", (1, 2)),
        ("((a, a)+)", "a", (2, math.inf)),
    ])
    def test_bounds(self, regex, symbol, expected):
        assert occurrence_bounds(p(regex), symbol) == expected


class TestMultiplicityFromBounds:
    @pytest.mark.parametrize("bounds, expected", [
        ((0, 0), Multiplicity.ZERO),
        ((1, 1), Multiplicity.ONE),
        ((0, 1), Multiplicity.OPT),
        ((1, math.inf), Multiplicity.PLUS),
        ((0, math.inf), Multiplicity.STAR),
        ((2, 2), None),
        ((1, 2), None),
        ((2, math.inf), None),
    ])
    def test_mapping(self, bounds, expected):
        assert multiplicity_from_bounds(*bounds) is expected


class TestMultiplicityProperties:
    def test_forced(self):
        assert Multiplicity.ONE.forced
        assert Multiplicity.PLUS.forced
        assert not Multiplicity.OPT.forced
        assert not Multiplicity.STAR.forced
        assert not Multiplicity.ZERO.forced

    def test_at_most_one(self):
        assert Multiplicity.ONE.at_most_one
        assert Multiplicity.OPT.at_most_one
        assert Multiplicity.ZERO.at_most_one
        assert not Multiplicity.PLUS.at_most_one
        assert not Multiplicity.STAR.at_most_one

    def test_suffixes(self):
        assert Multiplicity.ONE.to_suffix() == ""
        assert Multiplicity.OPT.to_suffix() == "?"
        assert Multiplicity.PLUS.to_suffix() == "+"
        assert Multiplicity.STAR.to_suffix() == "*"


class TestClassAlgebra:
    def test_sum_with_zero_is_identity(self):
        for cls in Multiplicity:
            assert add_multiplicity(Multiplicity.ZERO, cls) is cls

    def test_one_plus_star_is_plus(self):
        assert add_multiplicity(
            Multiplicity.ONE, Multiplicity.STAR) is Multiplicity.PLUS

    def test_one_plus_one_has_no_class(self):
        assert add_multiplicity(Multiplicity.ONE, Multiplicity.ONE) is None

    def test_star_plus_star_is_star(self):
        assert add_multiplicity(
            Multiplicity.STAR, Multiplicity.STAR) is Multiplicity.STAR

    def test_union_total_on_classes(self):
        for a in Multiplicity:
            for b in Multiplicity:
                assert union_multiplicity(a, b) is not None

    def test_union_examples(self):
        assert union_multiplicity(
            Multiplicity.ZERO, Multiplicity.ONE) is Multiplicity.OPT
        assert union_multiplicity(
            Multiplicity.ZERO, Multiplicity.PLUS) is Multiplicity.STAR
        assert union_multiplicity(
            Multiplicity.OPT, Multiplicity.PLUS) is Multiplicity.STAR
        assert union_multiplicity(
            Multiplicity.ONE, Multiplicity.PLUS) is Multiplicity.PLUS

    def test_union_semantics_on_representatives(self):
        """The class union really is the set union of occurrence sets."""
        reps = {
            Multiplicity.ZERO: {0},
            Multiplicity.ONE: {1},
            Multiplicity.OPT: {0, 1},
            Multiplicity.PLUS: {1, 2, 3},
            Multiplicity.STAR: {0, 1, 2, 3},
        }
        for a in Multiplicity:
            for b in Multiplicity:
                merged = union_multiplicity(a, b)
                want = reps[a] | reps[b]
                got = {n for n in range(4)
                       if merged.min_count <= n <= merged.max_count}
                assert want <= got


class TestSymbolMultiplicities:
    def test_university_production(self):
        classes = symbol_multiplicities(p("(course*, info*)"))
        assert classes == {"course": Multiplicity.STAR,
                           "info": Multiplicity.STAR}

    def test_mixed(self):
        classes = symbol_multiplicities(p("(author+, title, booktitle?)"))
        assert classes["author"] is Multiplicity.PLUS
        assert classes["title"] is Multiplicity.ONE
        assert classes["booktitle"] is Multiplicity.OPT

    def test_unclassifiable_symbol(self):
        classes = symbol_multiplicities(p("(b, b)"))
        assert classes["b"] is None
