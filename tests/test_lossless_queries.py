"""Unit tests for the Codd-algebra formulation of Proposition 8."""

from repro.datasets.dblp import (
    dblp_document,
    dblp_spec,
    synthetic_dblp_document,
)
from repro.datasets.university import (
    synthetic_university_document,
    university_document,
    university_spec,
)
from repro.lossless.queries import (
    diagram_commutes,
    q1,
    q2,
    value_columns,
)
from repro.relational.codd import tuples_table


class TestValueColumns:
    def test_excludes_node_columns(self, uni_spec):
        columns = value_columns(uni_spec.dtd)
        assert "courses.course.@cno" in columns
        assert "courses.course" not in columns
        assert len(columns) == 5


class TestQ1:
    def test_projects_away_node_ids(self, uni_spec, uni_doc):
        result = uni_spec.normalize()
        table = tuples_table(uni_spec.dtd, uni_doc)
        projected = q1(result.steps[0], uni_spec.dtd, table)
        assert set(projected.attributes) <= set(
            value_columns(uni_spec.dtd))
        assert len(projected) == 4


class TestDiagram:
    def test_university_create_step(self):
        spec = university_spec()
        result = spec.normalize()
        assert diagram_commutes(result.steps[0], spec.dtd,
                                university_document())

    def test_dblp_move_step(self):
        spec = dblp_spec()
        result = spec.normalize()
        assert diagram_commutes(result.steps[0], spec.dtd,
                                dblp_document())

    def test_synthetic_university(self):
        spec = university_spec()
        result = spec.normalize()
        for seed in range(3):
            doc = synthetic_university_document(3, 3, seed=seed)
            assert diagram_commutes(result.steps[0], spec.dtd, doc)

    def test_synthetic_dblp(self):
        spec = dblp_spec()
        result = spec.normalize()
        for seed in range(3):
            doc = synthetic_dblp_document(2, 2, 2, seed=seed)
            assert diagram_commutes(result.steps[0], spec.dtd, doc)

    def test_empty_branches(self, uni_spec):
        """A course with no students: the create step's Q2 pads the
        value column with nulls via the no-branch selection."""
        result = uni_spec.normalize()
        doc = uni_spec.parse_document(
            '<courses><course cno="c"><title>T</title><taken_by/>'
            "</course></courses>")
        assert diagram_commutes(result.steps[0], uni_spec.dtd, doc)

    def test_agreement_with_projection_check(self):
        """The algebraic formulation and the direct reconstruction give
        the same verdict."""
        from repro.lossless.check import check_step_lossless
        spec = university_spec()
        result = spec.normalize()
        doc = synthetic_university_document(4, 3, seed=5)
        step = result.steps[0]
        assert diagram_commutes(step, spec.dtd, doc) == \
            check_step_lossless(step, spec.dtd, doc)


    def test_degenerate_create_diagram(self):
        """n = 0 (Proposition 7-style create): Q2 needs no null padding
        because the Codd selection drops nothing."""
        from repro.dtd.parser import parse_dtd
        from repro.fd.model import FD
        from repro.normalize.transforms import create_element_type
        from repro.xmltree.parser import parse_xml
        dtd = parse_dtd("""
            <!ELEMENT db (issue*)>
            <!ELEMENT issue (paper+)>
            <!ELEMENT paper EMPTY>
            <!ATTLIST paper year CDATA #REQUIRED>
        """)
        sigma = [FD.parse("db.issue -> db.issue.paper.@year")]
        step = create_element_type(dtd, sigma, sigma[0])
        doc = parse_xml(
            '<db><issue><paper year="2002"/><paper year="2002"/>'
            '</issue><issue><paper year="2001"/></issue></db>')
        assert diagram_commutes(step, dtd, doc)
