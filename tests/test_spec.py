"""Unit tests for the XMLSpec facade."""

import pytest

from repro.errors import ConformanceError, InvalidFDError
from repro.fd.model import FD
from repro.spec import XMLSpec


class TestConstruction:
    def test_parse_with_fd_string(self, uni_spec):
        assert len(uni_spec.sigma) == 3

    def test_parse_with_fd_list(self):
        spec = XMLSpec.parse(
            "<!ELEMENT db (G*)>\n<!ELEMENT G EMPTY>\n"
            "<!ATTLIST G A CDATA #REQUIRED>",
            ["db.G.@A -> db.G", FD.parse("db.G -> db.G.@A")])
        assert len(spec.sigma) == 2

    def test_invalid_fd_rejected(self):
        with pytest.raises(InvalidFDError):
            XMLSpec.parse("<!ELEMENT db EMPTY>", ["db.ghost -> db"])


class TestQueries:
    def test_implies_accepts_strings(self, uni_spec):
        assert uni_spec.implies(
            "courses.course -> courses.course.title")

    def test_is_trivial(self, uni_spec):
        assert uni_spec.is_trivial(
            "courses.course -> courses.course.@cno")
        assert not uni_spec.is_trivial(str(uni_spec.sigma[2]))

    def test_oracle_cached(self, uni_spec):
        assert uni_spec.oracle is uni_spec.oracle


class TestDocuments:
    def test_parse_document_validates(self, uni_spec):
        with pytest.raises(ConformanceError):
            uni_spec.parse_document("<courses><bogus/></courses>")

    def test_document_violations(self, uni_spec):
        doc = uni_spec.parse_document("""
        <courses>
          <course cno="c1"><title>T</title><taken_by>
            <student sno="s1"><name>A</name><grade>1</grade></student>
          </taken_by></course>
          <course cno="c2"><title>T</title><taken_by>
            <student sno="s1"><name>B</name><grade>2</grade></student>
          </taken_by></course>
        </courses>
        """)
        violations = uni_spec.document_violations(doc)
        assert violations[uni_spec.sigma[2]] >= 1
        assert violations[uni_spec.sigma[0]] == 0


class TestNormalization:
    def test_normalized_spec_round_trip(self, uni_spec):
        result = uni_spec.normalize()
        normalized = uni_spec.normalized_spec(result)
        assert normalized.is_in_xnf()
        assert not uni_spec.is_in_xnf()

    def test_str_rendering(self, uni_spec):
        text = str(uni_spec)
        assert "<!ELEMENT courses" in text
        assert "FD:" in text
