"""Integration tests replaying every worked example of the paper.

Each test class corresponds to a numbered example or figure; together
they certify that the implementation reproduces the paper's artifacts
verbatim (see EXPERIMENTS.md for the index).
"""

from repro.datasets.dblp import dblp_document, dblp_spec
from repro.datasets.university import university_document, university_spec
from repro.dtd.paths import Path
from repro.fd.model import FD
from repro.normalize.transforms import NewElementNames
from repro.tuples.extract import tuples_of
from repro.xmltree.conformance import conforms
from repro.xmltree.parser import parse_xml
from repro.xmltree.subsumption import isomorphic_unordered


P = Path.parse


class TestExample11Figure1:
    """Example 1.1 / Figure 1: the university redesign."""

    def test_fd3_causes_redundancy(self):
        """'Deere' for st1 is stored twice in Figure 1(a)."""
        spec = university_spec()
        doc = university_document()
        deere_nodes = [
            node for node in doc.iter_nodes()
            if doc.label(node) == "name" and doc.text(node) == "Deere"]
        assert len(deere_nodes) == 2

    def test_update_anomaly_detected(self):
        """Renaming st1 in only one course breaks FD3."""
        spec = university_spec()
        doc = university_document()
        for node in doc.iter_nodes():
            if doc.label(node) == "name" and doc.text(node) == "Deere":
                doc.content[node] = "Renamed"
                break
        assert not spec.document_satisfies(doc)

    def test_normalization_produces_figure_1b_schema(self):
        spec = university_spec()
        result = spec.normalize(
            naming=lambda i, fd: NewElementNames(tau="info",
                                                 taus=["number"]))
        dtd = result.dtd
        # the revised DTD, declaration by declaration
        assert dtd.content("courses").to_dtd() == "(course*, info*)"
        assert dtd.content("course").to_dtd() == "(title, taken_by)"
        assert dtd.attrs("course") == {"@cno"}
        assert dtd.content("taken_by").to_dtd() == "student*"
        assert dtd.content("student").to_dtd() == "grade"
        assert dtd.attrs("student") == {"@sno"}
        assert dtd.content("info").to_dtd() == "(number*, name)"
        assert dtd.content("number").to_dtd() == "EMPTY"
        assert dtd.attrs("number") == {"@sno"}
        assert dtd.content("name").to_dtd() == "(#PCDATA)"

    def test_migrated_document_is_figure_1b(self):
        """The restructured document matches Figure 1(b) node for node
        (up to ordering and node ids): st2 and st3 grouped under Smith."""
        spec = university_spec()
        result = spec.normalize(
            naming=lambda i, fd: NewElementNames(tau="info",
                                                 taus=["number"]))
        migrated = result.migrate(university_document())
        expected = parse_xml("""
        <courses>
          <course cno="csc200"><title>Automata Theory</title><taken_by>
              <student sno="st1"><grade>A+</grade></student>
              <student sno="st2"><grade>B-</grade></student>
          </taken_by></course>
          <course cno="mat100"><title>Calculus I</title><taken_by>
              <student sno="st1"><grade>A-</grade></student>
              <student sno="st3"><grade>B+</grade></student>
          </taken_by></course>
          <info><number sno="st1"/><name>Deere</name></info>
          <info><number sno="st2"/><number sno="st3"/><name>Smith</name>
          </info>
        </courses>
        """)
        assert isomorphic_unordered(migrated, expected)


class TestExample12Figure5_2:
    """Example 1.2 / Example 5.2: the DBLP redesign."""

    def test_year_redundancy(self):
        doc = dblp_document()
        years_2002 = [
            value for (node, attr), value in doc.attributes.items()
            if attr == "@year" and value == "2002"]
        assert len(years_2002) == 2  # stored once per paper

    def test_normalization_moves_year(self):
        spec = dblp_spec()
        result = spec.normalize()
        assert [step.kind for step in result.steps] == ["move"]
        dtd = result.dtd
        assert dtd.attrs("issue") == {"@year"}
        assert dtd.attrs("inproceedings") == {"@key", "@pages"}

    def test_fd5_dropped_as_trivial(self):
        """Example 5.2: issue -> issue.@year is trivial in the revised
        DTD and therefore not kept in Σ'."""
        spec = dblp_spec()
        result = spec.normalize()
        assert result.sigma == [spec.sigma[0]]
        normalized = spec.normalized_spec(result)
        assert normalized.is_trivial("db.conf.issue -> db.conf.issue.@year")


class TestExample31_32Figure2:
    """Examples 3.1/3.2 and Figure 2: one tree tuple and its tree."""

    def test_figure2_tuple(self):
        spec = university_spec()
        doc = university_document()
        tuples = tuples_of(doc, spec.dtd)
        chosen = next(
            t for t in tuples
            if t.get(P("courses.course.@cno")) == "csc200"
            and t.get(P("courses.course.taken_by.student.@sno")) == "st1")
        assert chosen.get(P("courses")) is not None
        assert chosen.get(P("courses.course.title.S")) == "Automata Theory"
        assert chosen.get(
            P("courses.course.taken_by.student.name.S")) == "Deere"
        assert chosen.get(
            P("courses.course.taken_by.student.grade.S")) == "A+"
        assert len(chosen.paths) == 12

    def test_figure2b_tree(self):
        from repro.tuples.build import tree_of
        spec = university_spec()
        doc = university_document()
        tuples = tuples_of(doc, spec.dtd)
        chosen = next(
            t for t in tuples
            if t.get(P("courses.course.@cno")) == "csc200"
            and t.get(P("courses.course.taken_by.student.@sno")) == "st1")
        tree = tree_of(chosen, spec.dtd)
        expected = parse_xml("""
        <courses><course cno="csc200"><title>Automata Theory</title>
          <taken_by><student sno="st1"><name>Deere</name>
          <grade>A+</grade></student></taken_by>
        </course></courses>
        """)
        assert isomorphic_unordered(tree, expected)


class TestExample41:
    """Example 4.1: FD1-FD3 hold on Figure 1(a)."""

    def test_all_hold(self):
        spec = university_spec()
        assert spec.document_satisfies(university_document())


class TestExample51_52:
    """Examples 5.1/5.2: the XNF analyses."""

    def test_university_xnf_analysis(self):
        spec = university_spec()
        assert not spec.is_in_xnf()
        assert spec.xnf_violations() == [spec.sigma[2]]
        # the missing node-level FD of Example 5.1:
        assert not spec.implies(
            "courses.course.taken_by.student.@sno -> "
            "courses.course.taken_by.student.name")

    def test_revised_university_in_xnf(self):
        spec = university_spec()
        result = spec.normalize(
            naming=lambda i, fd: NewElementNames(tau="info",
                                                 taus=["number"]))
        revised = spec.normalized_spec(result)
        assert revised.is_in_xnf()
        # the paper's revised key FD is implied:
        assert revised.implies(
            "courses.info.number.@sno -> courses.info")

    def test_dblp_xnf_analysis(self):
        spec = dblp_spec()
        assert not spec.is_in_xnf()
        assert not spec.implies(
            "db.conf.issue -> db.conf.issue.inproceedings")
        revised = spec.normalized_spec(spec.normalize())
        assert revised.is_in_xnf()


class TestMigratedDocumentsStaySound:
    def test_university(self):
        spec = university_spec()
        result = spec.normalize()
        migrated = result.migrate(university_document())
        assert conforms(migrated, result.dtd)
        from repro.fd.satisfaction import satisfies_all
        assert satisfies_all(migrated, result.dtd, result.sigma)

    def test_dblp(self):
        spec = dblp_spec()
        result = spec.normalize()
        migrated = result.migrate(dblp_document())
        assert conforms(migrated, result.dtd)
        from repro.fd.satisfaction import satisfies_all
        assert satisfies_all(migrated, result.dtd, result.sigma)
