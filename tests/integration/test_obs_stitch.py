"""Cross-process trace stitching acceptance (the ISSUE tentpole).

A parallel ``--trace`` batch must produce ONE coherent trace forest —
every worker's ``runtime.task`` subtree rebased onto the parent's
clock under the batch root — that downstream tooling (``obs report``
/ ``flame`` / ``diff``) consumes identically to a serial trace.
"""

from __future__ import annotations

import collections
import json
import os
import subprocess
import sys

import pytest

from repro.obs.profile import (
    build_forest,
    build_profile,
    load_trace,
    task_attribution,
)
from repro.runtime import corpus
from repro.runtime.pool import pool_available

#: Big enough that task work dominates pool spawn/teardown — the
#: >=95% attribution bar is about instrumentation coverage, not about
#: how tiny a batch can get before fixed overhead wins.
TASKS = 16

pytestmark = pytest.mark.skipif(
    not pool_available(), reason="fork start method unavailable")


def run_traced_batch(tmp_path, tag, *, workers, hash_seed="0"):
    """Run a traced+ledgered batch in a subprocess (so the
    interpreter's hash seed is actually applied) and load the trace."""
    manifest_path = tmp_path / f"manifest-{tag}.json"
    manifest_path.write_text(json.dumps(
        corpus.generate_manifest(TASKS, seed=5)))
    trace_path = tmp_path / f"trace-{tag}.jsonl"
    env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH="src")
    env.pop("REPRO_FAULTS", None)  # faults force serial execution
    result = subprocess.run(
        [sys.executable, "-m", "repro", "batch", str(manifest_path),
         "--workers", str(workers), "--trace", str(trace_path)],
        capture_output=True, cwd="/root/repo", env=env)
    assert result.returncode == 0, result.stderr
    return load_trace(trace_path)


def spans_per_task(records):
    """The multiset of span names under each task id."""
    multiset: dict[str, collections.Counter] = {}
    for record in records:
        task = record.get("task")
        if task is not None:
            multiset.setdefault(
                task, collections.Counter())[record["name"]] += 1
    return multiset


class TestStitchedTrace:
    @pytest.fixture(scope="class")
    def parallel_records(self, tmp_path_factory):
        return run_traced_batch(tmp_path_factory.mktemp("stitch"),
                                "par", workers=4)

    def test_one_root_with_every_task_subtree(self, parallel_records):
        roots = build_forest(parallel_records)
        assert len(roots) == 1
        assert roots[0].name == "cli.batch"
        tasks = {record["task"] for record in parallel_records
                 if record["name"] == "runtime.task"}
        assert tasks == {f"corpus-{i:04d}" for i in range(TASKS)}
        # Every task span names the worker that ran it, and the whole
        # trace shares the invocation's trace id.
        workers = {record["worker"] for record in parallel_records
                   if record["name"] == "runtime.task"}
        assert workers and all(isinstance(w, int) for w in workers)
        trace_ids = {record.get("trace_id")
                     for record in parallel_records}
        assert len(trace_ids) == 1 and trace_ids != {None}

    def test_monotone_parent_child_timings(self, parallel_records):
        roots = build_forest(parallel_records)
        slack = 5e-6  # record start/duration rounding (6/4 dp)

        def check(node):
            end = node.start + node.duration_ms / 1e3
            for child in node.children:
                child_end = child.start + child.duration_ms / 1e3
                assert child.start >= node.start - slack
                assert child_end <= end + slack
                check(child)

        check(roots[0])

    def test_single_epoch_anchor_on_the_root(self, parallel_records):
        anchored = [record for record in parallel_records
                    if "epoch" in record]
        assert len(anchored) == 1
        assert anchored[0]["parent"] is None
        assert anchored[0]["v"] == 2
        assert anchored[0]["epoch"] > 1.6e9  # a real wall-clock stamp

    def test_by_task_attribution_bar(self, parallel_records):
        """The acceptance metric: >=95% of the batch root's wall time
        is attributed to per-task subtrees (parallel overlap can push
        it past 100%)."""
        profile = build_profile(parallel_records)
        assert task_attribution(profile) >= 0.95

    def test_parallel_and_serial_traces_are_equivalent(self, tmp_path):
        """Same manifest, same span multiset per task — serial vs 4
        workers, across different interpreter hash seeds."""
        serial = run_traced_batch(tmp_path, "ser", workers=1,
                                  hash_seed="0")
        parallel = run_traced_batch(tmp_path, "par2", workers=4,
                                    hash_seed="4242")
        assert spans_per_task(serial) == spans_per_task(parallel)

    def test_report_and_flame_consume_the_stitched_trace(
            self, tmp_path, capsys):
        records = run_traced_batch(tmp_path, "tools", workers=4)
        trace_path = tmp_path / "trace-tools.jsonl"
        from repro.obs.cli import main as obs_main
        assert obs_main(["report", str(trace_path),
                         "--by-task"]) == 0
        out = capsys.readouterr().out
        assert "anchored" in out
        assert "-- by task:" in out
        assert "corpus-0000" in out
        assert obs_main(["flame", str(trace_path)]) == 0
        flame = capsys.readouterr().out
        assert "cli.batch;runtime.task" in flame


class TestStdinTraces:
    def test_report_reads_stdin(self):
        """Satellite: `-` pipes a trace through report/flame/diff."""
        records = [
            {"id": 1, "parent": None, "depth": 0, "name": "root",
             "start": 0.0, "duration_ms": 8.0, "attrs": {},
             "v": 2, "epoch": 1700000000.0},
            {"id": 2, "parent": 1, "depth": 1, "name": "child",
             "start": 0.001, "duration_ms": 3.0, "attrs": {}},
        ]
        payload = "".join(json.dumps(record) + "\n"
                          for record in records)
        env = dict(os.environ, PYTHONPATH="src")
        for args, expect in (
                (["report", "-"], "== trace profile"),
                (["flame", "-"], "root;child"),
                (["report", "-", "--by-task"], "-- by task:")):
            result = subprocess.run(
                [sys.executable, "-m", "repro.obs", *args],
                input=payload, capture_output=True, text=True,
                cwd="/root/repo", env=env)
            assert result.returncode == 0, result.stderr
            assert expect in result.stdout

    def test_diff_reads_stdin_for_one_side(self, tmp_path):
        record = {"id": 1, "parent": None, "depth": 0, "name": "root",
                  "start": 0.0, "duration_ms": 8.0, "attrs": {},
                  "counters": {"x.ops": 3}}
        trace_path = tmp_path / "base.jsonl"
        trace_path.write_text(json.dumps(record) + "\n")
        env = dict(os.environ, PYTHONPATH="src")
        result = subprocess.run(
            [sys.executable, "-m", "repro.obs", "diff",
             str(trace_path), "-"],
            input=json.dumps(record) + "\n", capture_output=True,
            text=True, cwd="/root/repo", env=env)
        assert result.returncode == 0, result.stderr
        assert "OK: no counter regressions" in result.stdout

    def test_empty_stdin_is_a_usage_error(self):
        env = dict(os.environ, PYTHONPATH="src")
        result = subprocess.run(
            [sys.executable, "-m", "repro.obs", "report", "-"],
            input="", capture_output=True, text=True,
            cwd="/root/repo", env=env)
        assert result.returncode == 2
        assert "no span records" in result.stderr
