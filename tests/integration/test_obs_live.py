"""Live-observability acceptance: scrape a running batch, validate
heartbeats, and hold the profiler to its coverage bar.

Scale knob: ``REPRO_OBS_LIVE_TASKS`` sets the batch size (CI: 200;
default 40 keeps the local tier-1 run fast).
"""

from __future__ import annotations

import io
import json
import os
import re
import subprocess
import sys
import urllib.request

import pytest

from repro import obs
from repro.cli import main
from repro.obs.export import MetricsExporter
from repro.obs.profile import load_profile
from repro.runtime import corpus
from repro.runtime import manifest as mf
from repro.runtime.batch import run_batch
from repro.runtime.breaker import BreakerBoard
from repro.runtime.heartbeat import (
    HeartbeatWriter,
    validate_heartbeat_lines,
)

LIVE_TASKS = int(os.environ.get("REPRO_OBS_LIVE_TASKS", "40"))


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def scrape(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read().decode("utf-8")


def series_value(body: str, family: str) -> float:
    match = re.search(rf"^{re.escape(family)} (\S+)$", body,
                      flags=re.MULTILINE)
    assert match, f"{family} not found in scrape"
    return float(match.group(1))


def live_manifest() -> mf.Manifest:
    return mf.from_payload(
        corpus.generate_manifest(LIVE_TASKS, seed=1))


class TestLiveScrape:
    def test_metrics_increase_during_batch(self):
        """The tentpole acceptance: /metrics answers *during* the run
        with valid text whose runtime counters are present and
        growing."""
        obs.enable()
        manifest = live_manifest()
        checkpoints = sorted({1, LIVE_TASKS // 2, LIVE_TASKS})
        samples: list[float] = []
        bodies: list[str] = []
        done = 0

        with MetricsExporter(port=0) as exporter:
            url = exporter.url("/metrics")

            def hook(outcome) -> None:
                nonlocal done
                done += 1
                if done in checkpoints:
                    body = scrape(url)
                    bodies.append(body)
                    samples.append(
                        series_value(body, "runtime_tasks_total"))

            summary = run_batch(manifest, on_task_done=hook)

        assert summary["counts"]["lost"] == 0
        assert len(samples) == len(checkpoints)
        # Present, non-zero, and strictly increasing across the run.
        assert all(value > 0 for value in samples)
        assert samples == sorted(samples)
        assert samples[0] < samples[-1]
        assert samples[-1] == LIVE_TASKS
        final = bodies[-1]
        assert series_value(final, "runtime_tasks_ok_total") > 0
        assert series_value(final, "runtime_attempts_total") \
            >= LIVE_TASKS
        # The batch drives the engines, so implication work shows up.
        assert re.search(r"^implication_\w+ [1-9]", final,
                         flags=re.MULTILINE)

    def test_heartbeats_for_a_real_batch(self):
        obs.enable()
        manifest = live_manifest()
        board = BreakerBoard()
        stream = io.StringIO()
        writer = HeartbeatWriter(stream, total=len(manifest.tasks),
                                 board=board, interval_s=0.0)
        summary = run_batch(manifest, board=board,
                            on_task_done=writer.task_done)
        writer.close()
        records = validate_heartbeat_lines(stream.getvalue())
        assert len(records) == len(manifest.tasks)
        last = records[-1]
        assert last["tasks"]["done"] == len(manifest.tasks)
        assert last["tasks"]["ok"] == summary["counts"]["ok"]
        assert last["tasks"]["deadletter"] == summary["counts"]["failed"]
        # The live gauges mirror the last record.
        gauges = obs.snapshot()["gauges"]
        assert gauges["runtime.batch.tasks.done"] \
            == len(manifest.tasks)


class TestCliBatch:
    def test_heartbeat_file_end_to_end(self, tmp_path, capsys):
        manifest_path = tmp_path / "batch.json"
        manifest_path.write_text(json.dumps(
            corpus.generate_manifest(8, seed=3)))
        heartbeat_path = tmp_path / "hb.jsonl"
        code = main(["batch", str(manifest_path),
                     "--heartbeat", str(heartbeat_path),
                     "--heartbeat-interval", "0"])
        summary = json.loads(capsys.readouterr().out)
        records = validate_heartbeat_lines(heartbeat_path.read_text())
        assert code in (0, 5)
        assert records[-1]["tasks"]["done"] \
            == summary["counts"]["total"] == 8

    def test_heartbeat_dash_goes_to_stderr(self, tmp_path, capsys):
        manifest_path = tmp_path / "batch.json"
        manifest_path.write_text(json.dumps(
            corpus.generate_manifest(3, seed=3)))
        code = main(["batch", str(manifest_path), "--heartbeat", "-",
                     "--heartbeat-interval", "0"])
        captured = capsys.readouterr()
        assert code in (0, 5)
        json.loads(captured.out)  # stdout stays pure JSON
        heartbeat_lines = [line for line in captured.err.splitlines()
                           if line.startswith("{")]
        assert validate_heartbeat_lines("\n".join(heartbeat_lines))

    def test_unwritable_heartbeat_file_is_an_error(self, tmp_path,
                                                   capsys):
        manifest_path = tmp_path / "batch.json"
        manifest_path.write_text(json.dumps(
            corpus.generate_manifest(1, seed=3)))
        code = main(["batch", str(manifest_path),
                     "--heartbeat", str(tmp_path / "no" / "dir.jsonl")])
        assert code == 3
        assert "cannot open heartbeat file" \
            in capsys.readouterr().err


class TestProfileAcceptance:
    def _scaled_files(self, tmp_path, k: int = 8):
        lines = ["<!ELEMENT uni (%s)>" % ", ".join(
            f"courses{i}" for i in range(k))]
        fd_lines: list[str] = []
        for i in range(k):
            lines.extend([
                f"<!ELEMENT courses{i} (course{i}*)>",
                f"<!ELEMENT course{i} (title{i}, taken_by{i})>",
                f"<!ATTLIST course{i} cno CDATA #REQUIRED>",
                f"<!ELEMENT title{i} (#PCDATA)>",
                f"<!ELEMENT taken_by{i} (student{i}*)>",
                f"<!ELEMENT student{i} (name{i}, grade{i})>",
                f"<!ATTLIST student{i} sno CDATA #REQUIRED>",
                f"<!ELEMENT name{i} (#PCDATA)>",
                f"<!ELEMENT grade{i} (#PCDATA)>",
            ])
            course = f"uni.courses{i}.course{i}"
            student = f"{course}.taken_by{i}.student{i}"
            fd_lines.extend([
                f"{course}.@cno -> {course}",
                f"{{{course}, {student}.@sno}} -> {student}",
                f"{student}.@sno -> {student}.name{i}.S",
            ])
        dtd = tmp_path / "scaled.dtd"
        dtd.write_text("\n".join(lines) + "\n")
        fds = tmp_path / "scaled.fds"
        fds.write_text("\n".join(fd_lines) + "\n")
        return str(dtd), str(fds)

    def test_scaled_normalize_coverage(self, tmp_path, capsys):
        """The ISSUE acceptance bar: >=95% of the root CLI span's wall
        time is attributed to named child spans."""
        dtd, fds = self._scaled_files(tmp_path)
        trace = tmp_path / "trace.jsonl"
        code = main(["--trace", str(trace), "normalize", dtd, fds])
        capsys.readouterr()  # swallow the normalized DTD
        assert code == 0
        profile = load_profile(trace)
        assert profile.roots[0].name == "cli.normalize"
        assert profile.coverage >= 0.95, \
            f"only {profile.coverage:.1%} of root wall time attributed"
        assert "spec.parse" in profile.by_name

    def test_report_bytes_independent_of_hash_seed(self, tmp_path):
        """`xnf obs report`/`flame` output is byte-identical across
        interpreter hash seeds."""
        trace = tmp_path / "trace.jsonl"
        records = [
            {"id": 1, "name": "root", "duration_ms": 10.0, "start": 0.0,
             "counters": {"b.ops": 2, "a.ops": 1, "z.ops": 9}},
            {"id": 2, "name": "child", "duration_ms": 4.0, "parent": 1,
             "start": 1.0, "counters": {"z.ops": 5, "a.ops": 1}},
        ]
        trace.write_text("".join(json.dumps(record) + "\n"
                                 for record in records))
        outputs = {}
        for seed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=seed,
                       PYTHONPATH="src")
            result = subprocess.run(
                [sys.executable, "-m", "repro.obs", "report",
                 str(trace)],
                capture_output=True, cwd="/root/repo", env=env)
            assert result.returncode == 0, result.stderr
            flame = subprocess.run(
                [sys.executable, "-m", "repro.obs", "flame",
                 str(trace)],
                capture_output=True, cwd="/root/repo", env=env)
            assert flame.returncode == 0, flame.stderr
            outputs[seed] = result.stdout + flame.stdout
        assert outputs["0"] == outputs["4242"]


class TestGaugeDrain:
    """Satellite acceptance: pool/breaker liveness gauges return to 0
    once the pool drains, observed through a real exporter scrape."""

    BAD_DTD = "<!ELEMENT broken"  # unparseable: same permanent
    # failure signature for every task that carries it.

    def _faulted_manifest(self):
        payload = corpus.generate_manifest(6, seed=2)
        tasks = [{"id": f"bad-{i:02d}", "op": "check",
                  "dtd_text": self.BAD_DTD} for i in range(4)]
        tasks.extend(payload["tasks"])
        payload["tasks"] = tasks
        payload["count"] = len(tasks)
        return mf.from_payload(payload)

    def test_gauges_return_to_zero_after_pool_drain(self):
        from repro.runtime.breaker import BreakerBoard as Board
        from repro.runtime.pool import PoolBackend, pool_available

        if not pool_available():
            pytest.skip("fork start method unavailable")

        obs.enable()
        manifest = self._faulted_manifest()
        board = Board(threshold=2)
        pool = PoolBackend(2)
        in_flight: list[str] = []

        with MetricsExporter(port=0) as exporter:
            url = exporter.url("/metrics")

            def hook(outcome) -> None:
                in_flight.append(scrape(url))

            summary = run_batch(manifest, board=board,
                                on_task_done=hook, backend=pool)
            drained = scrape(url)

        assert summary["counts"]["failed"] == 4
        assert summary["counts"]["lost"] == 0
        # Mid-run the gauges were live: workers up, and the repeated
        # failure signature opened (and kept open) a breaker.
        assert any(series_value(body, "runtime_pool_workers_alive") > 0
                   for body in in_flight)
        assert series_value(in_flight[-1], "runtime_breaker_open") >= 1
        # After the drain both liveness gauges read exactly 0 — not
        # stale, not absent.
        assert series_value(drained, "runtime_pool_workers_alive") == 0
        assert series_value(drained, "runtime_breaker_open") == 0
