"""Live HTTP tests for ``xnf serve``: overload, drain, signals.

In-process :class:`~repro.serve.server.NormalizationServer` instances
cover the wire contract (shedding, readiness, error envelopes); the
subprocess tests drive the real ``xnf serve`` CLI under load and
SIGTERM, asserting the acceptance criteria: 429 within bounded time
under overload, a clean drain that loses no accepted request, exit 0.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.serve import BudgetDefaults, NormalizationServer, run_load

SIMPLE_DTD = ("<!ELEMENT db (row*)>\n<!ELEMENT row EMPTY>\n"
              "<!ATTLIST row a CDATA #REQUIRED b CDATA #REQUIRED>")
SIMPLE_FDS = "db.row.@a -> db.row.@b"

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _post(url: str, payload: dict, timeout: float = 30.0):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), resp.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


def _get(url: str, timeout: float = 10.0):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


@pytest.fixture
def server():
    srv = NormalizationServer(0).start()
    yield srv
    srv.stop()


class TestWireContract:
    def test_all_endpoints_round_trip(self, server):
        base = server.url()
        status, body, _ = _post(base + "/v1/implication",
                                {"dtd": SIMPLE_DTD, "fds": SIMPLE_FDS,
                                 "fd": SIMPLE_FDS})
        assert (status, body["verdict"]) == (200, "yes")
        status, body, _ = _post(base + "/v1/xnf-check",
                                {"dtd": SIMPLE_DTD, "fds": SIMPLE_FDS})
        assert (status, body["in_xnf"]) == (200, False)
        status, body, _ = _post(base + "/v1/normalize",
                                {"dtd": SIMPLE_DTD, "fds": SIMPLE_FDS})
        assert status == 200 and body["steps"]

    def test_control_plane(self, server):
        base = server.url()
        status, body = _get(base + "/healthz")
        assert status == 200
        assert json.loads(body)["draining"] is False
        status, body = _get(base + "/readyz")
        assert status == 200
        status, body = _get(base + "/metrics")
        assert status == 200

    def test_unknown_path_and_wrong_method(self, server):
        base = server.url()
        status, body = _get(base + "/v1/implication")
        assert status == 405
        status, body, _ = _post(base + "/v1/nope", {})
        assert status == 404
        assert body["error"]["kind"] == "usage"

    def test_invalid_json_is_400(self, server):
        request = urllib.request.Request(
            server.url("/v1/normalize"), data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_oversized_body_is_400(self):
        srv = NormalizationServer(0, max_body_bytes=64).start()
        try:
            payload = {"dtd": SIMPLE_DTD, "fds": SIMPLE_FDS}
            status, body, _ = _post(srv.url("/v1/normalize"), payload)
            assert status == 400
            assert "exceeds" in body["error"]["message"]
        finally:
            srv.stop()


class TestOverload:
    def test_sheds_429_with_retry_after_within_bounded_time(self):
        srv = NormalizationServer(0, max_inflight=1, max_queue=0).start()
        try:
            assert srv.gate.admit().value == "admitted"  # occupy
            started = time.monotonic()
            status, body, headers = _post(
                srv.url("/v1/xnf-check"),
                {"dtd": SIMPLE_DTD, "fds": SIMPLE_FDS})
            elapsed = time.monotonic() - started
            assert status == 429
            assert body["error"]["kind"] == "shed"
            assert headers["Retry-After"] == "1"
            # Shedding is immediate — not queued behind the slot.
            assert elapsed < 2.0
            srv.gate.release()
            status, _, _ = _post(srv.url("/v1/xnf-check"),
                                 {"dtd": SIMPLE_DTD,
                                  "fds": SIMPLE_FDS})
            assert status == 200
        finally:
            srv.stop()

    def test_queue_timeout_is_503(self):
        srv = NormalizationServer(0, max_inflight=1, max_queue=4,
                                  queue_timeout_s=0.1).start()
        try:
            assert srv.gate.admit().value == "admitted"
            status, body, _ = _post(
                srv.url("/v1/xnf-check"),
                {"dtd": SIMPLE_DTD, "fds": SIMPLE_FDS})
            assert status == 503
            assert body["error"]["kind"] == "queue-timeout"
            srv.gate.release()
        finally:
            srv.stop()

    def test_one_pathological_request_leaves_neighbors_healthy(self):
        """A request burning its whole budget degrades alone: the
        spec-level isolation the thread-scoped guard provides."""
        srv = NormalizationServer(
            0, max_inflight=4,
            defaults=BudgetDefaults(timeout=30.0)).start()
        try:
            from repro.datasets.university import (
                UNIVERSITY_DTD, UNIVERSITY_FDS)
            hard = {"dtd": UNIVERSITY_DTD, "fds": UNIVERSITY_FDS,
                    "fd": "courses.course.title.S -> "
                          "courses.course.@cno",
                    "budget": {"max_steps": 1}}
            easy = {"dtd": SIMPLE_DTD, "fds": SIMPLE_FDS,
                    "fd": SIMPLE_FDS}
            results = {}

            def fire(name, payload):
                results[name] = _post(
                    srv.url("/v1/implication"), payload)

            threads = [
                threading.Thread(target=fire, args=("hard", hard)),
                threading.Thread(target=fire, args=("easy", easy)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            status, body, _ = results["hard"]
            assert (status, body["verdict"]) == (200, "unknown")
            status, body, _ = results["easy"]
            assert (status, body["verdict"]) == (200, "yes")
        finally:
            srv.stop()


class TestDrain:
    def test_readiness_flips_and_inflight_completes(self):
        srv = NormalizationServer(0, max_inflight=2).start()
        base = srv.url()
        assert srv.gate.admit().value == "admitted"  # fake in-flight
        outcome = []
        drainer = threading.Thread(
            target=lambda: outcome.append(srv.drain(10.0)))
        drainer.start()
        for _ in range(200):
            if srv.gate.draining:
                break
            time.sleep(0.01)
        # Mid-drain: not ready, still alive, still refusing politely.
        status, _ = _get(base + "/readyz")
        assert status == 503
        status, body = _get(base + "/healthz")
        assert status == 200
        assert json.loads(body)["draining"] is True
        status, body, _ = _post(base + "/v1/xnf-check",
                                {"dtd": SIMPLE_DTD,
                                 "fds": SIMPLE_FDS})
        assert status == 503
        assert body["error"]["kind"] == "draining"
        srv.gate.release()
        drainer.join(timeout=10)
        assert outcome == [True]
        # The listener is gone after a completed drain.
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(base + "/healthz", timeout=2)

    def test_drain_with_no_traffic_is_immediate_and_repeatable(self):
        srv = NormalizationServer(0).start()
        assert srv.drain(5.0) is True
        assert srv.drain(5.0) is True  # idempotent after completion


def _spawn_serve(*extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         *extra_args],
        env=env, stderr=subprocess.PIPE, text=True)
    line = proc.stderr.readline()
    match = re.search(r"http://[\d.]+:\d+", line)
    if match is None:
        proc.kill()
        raise AssertionError(f"no announce line, got: {line!r}")
    return proc, match.group(0)


class TestServeProcess:
    def test_sigterm_under_load_drains_cleanly_exit_0(self):
        proc, url = _spawn_serve()
        try:
            report_box = {}

            def load():
                report_box["report"] = run_load(
                    url, requests=60, concurrency=4, seed=11)

            loader = threading.Thread(target=load)
            loader.start()
            # Scrape the control plane mid-run.
            status, body = _get(url + "/readyz")
            assert status == 200
            status, body = _get(url + "/metrics")
            assert status == 200
            assert b"serve_" in body or b"obs_export" in body
            time.sleep(0.2)  # let traffic be genuinely in flight
            proc.send_signal(signal.SIGTERM)
            loader.join(timeout=60)
            returncode = proc.wait(timeout=30)
            stderr = proc.stderr.read()
            report = report_box["report"]
            assert returncode == 0, stderr
            assert "drained cleanly" in stderr
            # No accepted request may be lost: every task got either a
            # real answer (200) or a polite refusal (503 draining /
            # connection refused after the listener closed, which the
            # load generator counts as lost only if the server died
            # mid-request — a clean drain closes between requests).
            assert report.count(status_class=2) >= 1
            assert report.statuses.keys() <= {200, 503}
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_mid_drain_sigterm_is_idempotent(self):
        proc, url = _spawn_serve("--drain-deadline", "5")
        try:
            proc.send_signal(signal.SIGTERM)
            time.sleep(0.1)
            proc.send_signal(signal.SIGTERM)  # mid-drain repeat
            returncode = proc.wait(timeout=30)
            assert returncode == 0
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_sigint_also_drains(self):
        proc, url = _spawn_serve()
        try:
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()


class TestCacheWarmth:
    def test_repeat_requests_hit_the_spec_cache(self):
        was_enabled = obs.is_enabled()
        obs.enable()
        obs.reset()
        srv = NormalizationServer(0).start()
        try:
            payload = {"dtd": SIMPLE_DTD, "fds": SIMPLE_FDS}
            for _ in range(3):
                status, _, _ = _post(srv.url("/v1/xnf-check"), payload)
                assert status == 200
            counters = obs.snapshot()["counters"]
            assert counters["serve.cache.miss"] == 1
            assert counters["serve.cache.hit"] == 2
        finally:
            srv.stop()
            obs.reset()
            if not was_enabled:
                obs.disable()
