"""End-to-end integration: full pipelines over mixed workloads."""

import random

import pytest

from repro.datasets.generators import (
    random_document,
    random_simple_dtd,
    scaled_university_spec,
)
from repro.fd.satisfaction import satisfies_all
from repro.lossless.check import check_normalization_lossless
from repro.spec import XMLSpec
from repro.xmltree.conformance import conforms
from repro.xmltree.parser import parse_xml
from repro.xmltree.serializer import serialize_xml
from repro.xnf.check import is_in_xnf


class TestScaledPipeline:
    def test_k3_pipeline(self):
        spec = scaled_university_spec(3)
        assert not spec.is_in_xnf()
        result = spec.normalize()
        assert len(result.steps) == 3
        assert is_in_xnf(result.dtd, result.sigma)
        # every new info group hangs off the root
        assert sum(
            1 for t in result.dtd.child_element_types("uni")
        ) >= 3 + 3  # original courses + new groups


class TestSerializationStability:
    def test_dtd_round_trip_through_cli_format(self):
        from repro.dtd.parser import parse_dtd
        from repro.dtd.serializer import serialize_dtd
        spec = scaled_university_spec(2)
        result = spec.normalize()
        text = serialize_dtd(result.dtd)
        reparsed = parse_dtd(text, root=result.dtd.root)
        assert reparsed == result.dtd

    def test_migrated_document_round_trips_as_xml(self):
        from repro.datasets.university import (
            university_document, university_spec)
        spec = university_spec()
        result = spec.normalize()
        migrated = result.migrate(university_document())
        text = serialize_xml(migrated)
        reparsed = parse_xml(text)
        assert conforms(reparsed, result.dtd)
        assert satisfies_all(reparsed, result.dtd, result.sigma)


class TestMixedAnomalySchema:
    """A schema exhibiting both paper anomalies plus a clean part."""

    DTD = """
    <!ELEMENT store (dept*, customer*)>
    <!ELEMENT dept (product*)>
    <!ATTLIST dept dno CDATA #REQUIRED floor CDATA #REQUIRED>
    <!ELEMENT product EMPTY>
    <!ATTLIST product sku CDATA #REQUIRED
                      vendor CDATA #REQUIRED
                      vendor_city CDATA #REQUIRED>
    <!ELEMENT customer EMPTY>
    <!ATTLIST customer cid CDATA #REQUIRED>
    """

    FDS = """
    store.dept.@dno -> store.dept
    store.customer.@cid -> store.customer
    # vendor determines its city (university-style anomaly)
    store.dept.product.@vendor -> store.dept.product.@vendor_city
    # all products of a dept share ... nothing; keep floor on dept (clean)
    """

    def test_full_pipeline(self):
        spec = XMLSpec.parse(self.DTD, self.FDS)
        assert not spec.is_in_xnf()
        result = spec.normalize()
        assert is_in_xnf(result.dtd, result.sigma)
        doc = spec.parse_document("""
        <store>
          <dept dno="d1" floor="2">
            <product sku="s1" vendor="acme" vendor_city="nyc"/>
            <product sku="s2" vendor="acme" vendor_city="nyc"/>
          </dept>
          <dept dno="d2" floor="3">
            <product sku="s3" vendor="bolt" vendor_city="sfo"/>
          </dept>
          <customer cid="c1"/>
        </store>
        """)
        assert spec.document_satisfies(doc)
        migrated = result.migrate(doc)
        assert conforms(migrated, result.dtd)
        assert satisfies_all(migrated, result.dtd, result.sigma)
        assert check_normalization_lossless(result, spec.dtd, doc)
        # vendor_city now stored once per vendor
        cities = [v for (n, a), v in migrated.attributes.items()
                  if a == "@vendor_city"]
        assert sorted(cities) == ["nyc", "sfo"]


class TestRandomSpecPipelines:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_roundtrip(self, seed):
        rng = random.Random(seed * 977 + 13)
        dtd = random_simple_dtd(rng, max_depth=3, max_children=2)
        doc = random_document(rng, dtd)
        text = serialize_xml(doc)
        reparsed = parse_xml(text)
        assert conforms(reparsed, dtd)
        from repro.tuples.build import trees_of
        from repro.tuples.extract import tuples_of
        from repro.xmltree.subsumption import isomorphic_unordered
        merged = trees_of(tuples_of(reparsed, dtd), dtd)
        assert isomorphic_unordered(merged, reparsed)
