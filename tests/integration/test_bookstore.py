"""Integration: the multi-anomaly bookstore workload.

Exercises a two-step normalization mixing both transformation kinds,
plus the correct *non*-anomaly: ``isbn -> format`` is harmless because
``isbn`` is a key (``isbn -> book`` is in Σ), so the algorithm must
leave ``format`` in place.
"""

import pytest

from repro.datasets.bookstore import bookstore_document, bookstore_spec
from repro.fd.satisfaction import satisfies_all
from repro.lossless.check import check_normalization_lossless
from repro.report import analyze
from repro.xmltree.conformance import conforms
from repro.xnf.check import is_in_xnf


@pytest.fixture(scope="module")
def pipeline():
    spec = bookstore_spec()
    result = spec.normalize()
    return spec, result


class TestSchema:
    def test_two_anomalies_only(self, pipeline):
        spec, result = pipeline
        assert len(spec.xnf_violations()) == 2
        assert len(result.steps) == 2

    def test_both_transformations_used(self, pipeline):
        _spec, result = pipeline
        assert sorted(step.kind for step in result.steps) == \
            ["create", "move"]

    def test_key_protected_fd_not_touched(self, pipeline):
        """isbn -> format is not anomalous: format stays on book."""
        _spec, result = pipeline
        assert "@format" in result.dtd.attrs("book")

    def test_currency_moved_to_order(self, pipeline):
        _spec, result = pipeline
        assert "@currency" in result.dtd.attrs("order")
        assert "@currency" not in result.dtd.attrs("item")

    def test_publisher_city_grouped(self, pipeline):
        _spec, result = pipeline
        assert "@publisher_city" not in result.dtd.attrs("book")
        new_types = result.dtd.element_types - \
            bookstore_spec().dtd.element_types
        assert any("@publisher_city" in result.dtd.attrs(t)
                   for t in new_types)

    def test_result_in_xnf(self, pipeline):
        _spec, result = pipeline
        assert is_in_xnf(result.dtd, result.sigma)


class TestDocuments:
    @pytest.mark.parametrize("seed", range(3))
    def test_migration_and_losslessness(self, pipeline, seed):
        spec, result = pipeline
        doc = bookstore_document(5, 3, 2, seed=seed)
        assert spec.document_satisfies(doc)
        migrated = result.migrate(doc)
        assert conforms(migrated, result.dtd)
        assert satisfies_all(migrated, result.dtd, result.sigma)
        assert check_normalization_lossless(result, spec.dtd, doc)

    def test_redundancy_eliminated(self, pipeline):
        spec, _result = pipeline
        doc = bookstore_document(8, 5, 4, publishers=3, seed=1)
        report = analyze(spec, [doc])
        assert report.documents[0].total_redundancy > 0
        assert report.migrated_redundancy == [0]

    def test_larger_scale(self, pipeline):
        spec, result = pipeline
        doc = bookstore_document(20, 10, 4, seed=2)
        migrated = result.migrate(doc)
        assert conforms(migrated, result.dtd)
