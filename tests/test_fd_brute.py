"""Unit tests for the bounded-exhaustive oracle engine."""

import pytest

from repro.errors import RecursionLimitError
from repro.dtd.parser import parse_dtd
from repro.fd.brute import (
    bounded_words,
    brute_implies,
    enumerate_trees,
    find_countermodel,
)
from repro.fd.model import FD
from repro.regex.parser import parse_content_model as p
from repro.xmltree.conformance import conforms


class TestBoundedWords:
    def test_star(self):
        words = sorted(bounded_words(p("(a*)"), 2))
        assert words == [[], ["a"], ["a", "a"]]

    def test_choice(self):
        words = {tuple(w) for w in bounded_words(p("(a | b)"), 3)}
        assert words == {("a",), ("b",)}

    def test_concat(self):
        words = {tuple(w) for w in bounded_words(p("(a, b?)"), 3)}
        assert words == {("a",), ("a", "b")}

    def test_length_bound_respected(self):
        words = list(bounded_words(p("(a+)"), 3))
        assert max(len(w) for w in words) == 3


class TestEnumerateTrees:
    def test_all_conform(self):
        dtd = parse_dtd("""
            <!ELEMENT r (a?, b?)>
            <!ELEMENT a EMPTY>
            <!ELEMENT b (#PCDATA)>
            <!ATTLIST a x CDATA #REQUIRED>
        """)
        trees = list(enumerate_trees(dtd, domain=("0", "1"), max_word=2))
        assert trees
        assert all(conforms(tree, dtd) for tree in trees)
        # shapes: {}, {a(x in 2)}, {b(text in 2)}, {a, b} (2*2) => 9
        assert len(trees) == 9

    def test_max_trees_cap(self):
        dtd = parse_dtd("<!ELEMENT r (a*)>\n<!ELEMENT a EMPTY>")
        trees = list(enumerate_trees(dtd, max_word=3, max_trees=2))
        assert len(trees) == 2

    def test_recursive_rejected(self):
        dtd = parse_dtd("<!ELEMENT r (s)>\n<!ELEMENT s (s?)>")
        with pytest.raises(RecursionLimitError):
            list(enumerate_trees(dtd))


class TestBruteImplication:
    def test_finds_countermodel(self, flat_ab_dtd):
        sigma = [FD.parse("r.a -> r.b.@y")]
        query = FD.parse("r -> r.b.@y")
        model = find_countermodel(flat_ab_dtd, sigma, query)
        assert model is not None
        assert not brute_implies(flat_ab_dtd, sigma, query)

    def test_confirms_implication(self, forced_ab_dtd):
        sigma = [FD.parse("r.a -> r.b.@y")]
        assert brute_implies(forced_ab_dtd, sigma,
                             FD.parse("r -> r.b.@y"))

    def test_disjunction_case(self, disjunctive_dtd):
        sigma = [FD.parse("r.a -> r.c.@x"), FD.parse("r.b -> r.c.@x")]
        assert brute_implies(disjunctive_dtd, sigma,
                             FD.parse("r -> r.c.@x"))
        assert not brute_implies(disjunctive_dtd, sigma[:1],
                                 FD.parse("r -> r.c.@x"))

    def test_countermodel_satisfies_sigma(self, flat_ab_dtd):
        sigma = [FD.parse("r.a.@x -> r.b.@y")]
        query = FD.parse("r -> r.a.@x")
        model = find_countermodel(flat_ab_dtd, sigma, query)
        assert model is not None
        from repro.fd.satisfaction import satisfies, satisfies_all
        assert satisfies_all(model, flat_ab_dtd, sigma)
        assert not satisfies(model, flat_ab_dtd, query)
