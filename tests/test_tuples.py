"""Unit tests for tree tuples (Section 3, Definitions 4-7)."""

import pytest

from repro.errors import ConformanceError, InvalidTreeError
from repro.dtd.paths import Path
from repro.tuples.build import tree_of, trees_of
from repro.tuples.compat import is_d_compatible, set_subsumed
from repro.tuples.extract import count_tuples, tuples_of
from repro.tuples.model import TreeTuple, validate_tuple
from repro.xmltree.parser import parse_xml
from repro.xmltree.subsumption import equivalent, subsumed_by


P = Path.parse


class TestTreeTupleModel:
    def test_get_returns_none_for_null(self):
        tuple_ = TreeTuple({P("r"): "v0"})
        assert tuple_.get(P("r")) == "v0"
        assert tuple_.get(P("r.a")) is None
        assert tuple_[P("r.a")] is None

    def test_agreement(self):
        first = TreeTuple({P("r"): "v0", P("r.a.@x"): "1"})
        second = TreeTuple({P("r"): "v0", P("r.a.@x"): "1"})
        third = TreeTuple({P("r"): "v0"})
        assert first.agrees_with(second, [P("r.a.@x")])
        # null-tolerant: both null counts as agreement
        assert third.agrees_with(
            TreeTuple({P("r"): "v0"}), [P("r.a.@x")])
        assert not first.agrees_with(third, [P("r.a.@x")])

    def test_non_null(self):
        tuple_ = TreeTuple({P("r"): "v0", P("r.a.@x"): "1"})
        assert tuple_.non_null([P("r"), P("r.a.@x")])
        assert not tuple_.non_null([P("r.b")])

    def test_subsumption_ordering(self):
        smaller = TreeTuple({P("r"): "v0"})
        bigger = TreeTuple({P("r"): "v0", P("r.a.@x"): "1"})
        assert smaller.subsumed_by(bigger)
        assert smaller.strictly_subsumed_by(bigger)
        assert not bigger.subsumed_by(smaller)

    def test_hash_eq(self):
        first = TreeTuple({P("r"): "v0"})
        second = TreeTuple({P("r"): "v0"})
        assert first == second and hash(first) == hash(second)


class TestValidateTuple:
    def test_root_required(self, uni_spec):
        with pytest.raises(InvalidTreeError):
            validate_tuple(TreeTuple({P("courses.course"): "v1"}),
                           uni_spec.dtd)

    def test_prefix_closure_required(self, uni_spec):
        bad = TreeTuple({P("courses"): "v0",
                         P("courses.course.@cno"): "csc200"})
        with pytest.raises(InvalidTreeError):
            validate_tuple(bad, uni_spec.dtd)

    def test_node_injectivity(self, uni_spec):
        bad = TreeTuple({
            P("courses"): "v0",
            P("courses.course"): "v0",
        })
        with pytest.raises(InvalidTreeError):
            validate_tuple(bad, uni_spec.dtd)

    def test_valid_tuple_passes(self, uni_spec, uni_doc):
        for tuple_ in tuples_of(uni_doc, uni_spec.dtd):
            validate_tuple(tuple_, uni_spec.dtd)


class TestTuplesOf:
    def test_figure2_tuple_count(self, uni_spec, uni_doc):
        # 2 courses x 2 students each: one tuple per (course, student)
        assert len(tuples_of(uni_doc, uni_spec.dtd)) == 4

    def test_figure2_tuple_paths(self, uni_spec, uni_doc):
        """Example 3.1 / Figure 2: each tuple assigns the 12 paths."""
        tuples = tuples_of(uni_doc, uni_spec.dtd)
        for tuple_ in tuples:
            assert len(tuple_.paths) == 12

    def test_figure2_values(self, uni_spec, uni_doc):
        tuples = tuples_of(uni_doc, uni_spec.dtd)
        snapshot = {
            (t.get(P("courses.course.@cno")),
             t.get(P("courses.course.taken_by.student.@sno")),
             t.get(P("courses.course.taken_by.student.name.S")),
             t.get(P("courses.course.taken_by.student.grade.S")))
            for t in tuples
        }
        assert snapshot == {
            ("csc200", "st1", "Deere", "A+"),
            ("csc200", "st2", "Smith", "B-"),
            ("mat100", "st1", "Deere", "A-"),
            ("mat100", "st3", "Smith", "B+"),
        }

    def test_empty_branches_give_nulls(self, uni_spec):
        doc = parse_xml(
            '<courses><course cno="c1"><title>T</title><taken_by/>'
            "</course></courses>")
        tuples = tuples_of(doc, uni_spec.dtd)
        assert len(tuples) == 1
        student = P("courses.course.taken_by.student")
        assert tuples[0].get(student) is None

    def test_incompatible_tree_rejected(self, uni_spec):
        doc = parse_xml("<courses><bogus/></courses>")
        with pytest.raises(ConformanceError):
            tuples_of(doc, uni_spec.dtd)

    def test_count_matches_enumeration(self, uni_spec, uni_doc):
        assert count_tuples(uni_doc) == 4

    def test_cross_product_of_independent_branches(self):
        from repro.dtd.parser import parse_dtd
        dtd = parse_dtd("""
            <!ELEMENT r (a*, b*)>
            <!ELEMENT a EMPTY>
            <!ELEMENT b EMPTY>
        """)
        doc = parse_xml("<r><a/><a/><a/><b/><b/></r>")
        assert len(tuples_of(doc, dtd)) == 6
        assert count_tuples(doc) == 6


class TestTreeOf:
    def test_single_tuple_tree(self, uni_spec, uni_doc):
        """Example 3.2 / Figure 2(b)."""
        tuples = tuples_of(uni_doc, uni_spec.dtd)
        chosen = next(
            t for t in tuples
            if t.get(P("courses.course.@cno")) == "csc200"
            and t.get(P("courses.course.taken_by.student.@sno")) == "st1")
        tree = tree_of(chosen, uni_spec.dtd)
        assert tree.size() == 7  # courses, course, title, taken_by,
        #                          student, name, grade
        assert subsumed_by(tree, uni_doc)

    def test_tree_of_is_compatible(self, uni_spec, uni_doc):
        """Proposition 1: tree_D(t) < D."""
        from repro.xmltree.conformance import is_compatible
        for tuple_ in tuples_of(uni_doc, uni_spec.dtd):
            assert is_compatible(tree_of(tuple_, uni_spec.dtd),
                                 uni_spec.dtd)


class TestTreesOf:
    def test_theorem1_roundtrip(self, uni_spec, uni_doc):
        """Theorem 1: trees_D(tuples_D(T)) = [T]."""
        tuples = tuples_of(uni_doc, uni_spec.dtd)
        merged = trees_of(tuples, uni_spec.dtd)
        assert equivalent(merged, uni_doc)

    def test_subset_of_tuples_is_subsumed(self, uni_spec, uni_doc):
        """Proposition 2 (monotonicity flavour)."""
        tuples = tuples_of(uni_doc, uni_spec.dtd)
        merged = trees_of(tuples[:2], uni_spec.dtd)
        assert subsumed_by(merged, uni_doc)

    def test_conflicting_labels_rejected(self, uni_spec):
        bad = [
            TreeTuple({P("courses"): "v0", P("courses.course"): "v1"}),
            TreeTuple({P("courses"): "v1"}),
        ]
        with pytest.raises(InvalidTreeError):
            trees_of(bad, uni_spec.dtd)

    def test_empty_set_rejected(self, uni_spec):
        with pytest.raises(InvalidTreeError):
            trees_of([], uni_spec.dtd)


class TestDCompatibility:
    def test_tuples_of_document_are_compatible(self, uni_spec, uni_doc):
        tuples = tuples_of(uni_doc, uni_spec.dtd)
        assert is_d_compatible(tuples, uni_spec.dtd)

    def test_prop3_containment(self, uni_spec, uni_doc):
        """Proposition 3(b): X ⊑' tuples_D(trees_D(X))."""
        tuples = tuples_of(uni_doc, uni_spec.dtd)
        subset = tuples[:2]
        merged = trees_of(subset, uni_spec.dtd)
        assert set_subsumed(subset, tuples_of(merged, uni_spec.dtd))

    def test_incompatible_set(self, uni_spec):
        # two root nodes with different ids cannot coexist
        bad = [TreeTuple({P("courses"): "v0"}),
               TreeTuple({P("courses"): "other"})]
        assert not is_d_compatible(bad, uni_spec.dtd)

    def test_empty_set_compatible(self, uni_spec):
        assert is_d_compatible([], uni_spec.dtd)
