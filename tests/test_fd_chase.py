"""Unit tests for the chase implication engine (general DTDs)."""

import pytest

from repro.errors import RecursionLimitError
from repro.dtd.parser import parse_dtd
from repro.fd.chase import chase_implies
from repro.fd.model import FD


class TestAgreesWithClosureOnSimple:
    """On simple DTDs the chase must reproduce the closure's answers."""

    CASES = [
        ("courses.course.@cno -> courses.course.title.S", True),
        # FD1 itself: implied because it is in Σ
        ("courses.course.@cno -> courses.course", True),
        ("courses.course -> courses.course.@cno", True),
        ("courses.course.taken_by.student.@sno -> "
         "courses.course.taken_by.student.name", False),
        ("courses.course.taken_by.student.@sno -> "
         "courses.course.taken_by.student.name.S", True),
    ]

    @pytest.mark.parametrize("fd_text, expected", CASES)
    def test_university(self, uni_spec, fd_text, expected):
        assert chase_implies(uni_spec.dtd, uni_spec.sigma,
                             FD.parse(fd_text)) is expected

    def test_hybrid_case(self, forced_ab_dtd):
        sigma = [FD.parse("r.a -> r.b.@y")]
        assert chase_implies(forced_ab_dtd, sigma,
                             FD.parse("r -> r.b.@y"))

    def test_unforced_variant(self, flat_ab_dtd):
        sigma = [FD.parse("r.a -> r.b.@y")]
        assert not chase_implies(flat_ab_dtd, sigma,
                                 FD.parse("r -> r.b.@y"))


class TestDisjunction:
    def test_case_split_derives(self, disjunctive_dtd):
        """Both branches force the conclusion -> implied (the case the
        closure engine cannot see)."""
        sigma = [FD.parse("r.a -> r.c.@x"), FD.parse("r.b -> r.c.@x")]
        assert chase_implies(disjunctive_dtd, sigma,
                             FD.parse("r -> r.c.@x"))

    def test_one_branch_escapes(self, disjunctive_dtd):
        sigma = [FD.parse("r.a -> r.c.@x")]
        assert not chase_implies(disjunctive_dtd, sigma,
                                 FD.parse("r -> r.c.@x"))

    def test_three_way_disjunction(self):
        dtd = parse_dtd("""
            <!ELEMENT r ((a | b | c), d*)>
            <!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY>
            <!ELEMENT d EMPTY>
            <!ATTLIST d v CDATA #REQUIRED>
        """)
        sigma = [FD.parse("r.a -> r.d.@v"), FD.parse("r.b -> r.d.@v"),
                 FD.parse("r.c -> r.d.@v")]
        assert chase_implies(dtd, sigma, FD.parse("r -> r.d.@v"))
        assert not chase_implies(dtd, sigma[:2], FD.parse("r -> r.d.@v"))


class TestNodeMerging:
    def test_key_merges_nodes(self, uni_spec):
        """FD1 forces courses with equal cno to be the same node, so
        cno determines everything below the course."""
        assert chase_implies(uni_spec.dtd, uni_spec.sigma, FD.parse(
            "courses.course.@cno -> courses.course.taken_by"))

    def test_two_keys_chain(self, uni_spec):
        """cno + sno pin down the student node (FD1 + FD2), hence the
        grade text."""
        assert chase_implies(uni_spec.dtd, uni_spec.sigma, FD.parse(
            "{courses.course.@cno, "
            "courses.course.taken_by.student.@sno} -> "
            "courses.course.taken_by.student.grade.S"))

    def test_without_fd2_no_student_merge(self, uni_spec):
        sigma = [uni_spec.sigma[0]]  # only FD1
        assert not chase_implies(uni_spec.dtd, sigma, FD.parse(
            "{courses.course.@cno, "
            "courses.course.taken_by.student.@sno} -> "
            "courses.course.taken_by.student.grade.S"))


class TestGuards:
    def test_recursive_rejected(self):
        dtd = parse_dtd("<!ELEMENT r (s)>\n<!ELEMENT s (s?)>")
        with pytest.raises(RecursionLimitError):
            chase_implies(dtd, [], FD.parse("r -> r.s"))

    def test_trivial_shortcuts(self, uni_spec):
        assert chase_implies(uni_spec.dtd, [], FD.parse(
            "courses.course -> courses.course"))

    def test_exact_count_regex(self):
        """(b, b): not simple, no multiplicity class, still decidable."""
        dtd = parse_dtd("""
            <!ELEMENT r (b, b)>
            <!ELEMENT b EMPTY>
            <!ATTLIST b y CDATA #REQUIRED>
        """)
        # two b children always exist and may differ
        assert not chase_implies(dtd, [], FD.parse("r -> r.b.@y"))
        assert not chase_implies(dtd, [], FD.parse("r -> r.b"))


class TestBranchCap:
    def test_branch_explosion_raises(self):
        """The N_D fork count is capped; exceeding it is a clear error,
        not silence (Theorem 5's exponential regime made visible)."""
        from repro.errors import ReproError
        from repro.dtd.parser import parse_dtd
        dtd = parse_dtd("""
            <!ELEMENT r ((a0 | b0), (a1 | b1), c*)>
            <!ELEMENT a0 EMPTY><!ELEMENT b0 EMPTY>
            <!ELEMENT a1 EMPTY><!ELEMENT b1 EMPTY>
            <!ELEMENT c EMPTY>
            <!ATTLIST c x CDATA #REQUIRED>
        """)
        sigma = [FD.parse("r.a0 -> r.c.@x"), FD.parse("r.b0 -> r.c.@x"),
                 FD.parse("r.a1 -> r.c.@x"), FD.parse("r.b1 -> r.c.@x")]
        query = FD.parse("r -> r.c.@x")
        with pytest.raises(ReproError, match="branches"):
            chase_implies(dtd, sigma, query, max_branches=2)
        # with room to fork, the same query decides fine
        assert chase_implies(dtd, sigma, query, max_branches=64)
