"""Unit tests for the implication facade and engine dispatch."""

import pytest

from repro.errors import UnsupportedFeatureError
from repro.dtd.parser import parse_dtd
from repro.fd.implication import ImplicationEngine, implies, is_trivial
from repro.fd.model import FD


class TestFacade:
    def test_auto_on_simple_uses_closure_result(self, uni_spec):
        assert implies(uni_spec.dtd, uni_spec.sigma, uni_spec.sigma[2])
        assert not implies(uni_spec.dtd, uni_spec.sigma, FD.parse(
            "courses.course.taken_by.student.@sno -> "
            "courses.course.taken_by.student.name"))

    def test_auto_escalates_to_chase(self, disjunctive_dtd):
        sigma = [FD.parse("r.a -> r.c.@x"), FD.parse("r.b -> r.c.@x")]
        query = FD.parse("r -> r.c.@x")
        assert not implies(disjunctive_dtd, sigma, query,
                           engine="closure")
        assert implies(disjunctive_dtd, sigma, query)  # auto

    def test_forced_engine(self, uni_spec):
        for engine in ("closure", "chase"):
            assert implies(uni_spec.dtd, [], FD.parse(
                "courses.course -> courses.course.title"),
                engine=engine)
        # the brute engine explodes on deep schemas with its default
        # bounds; call it directly with tight ones
        from repro.fd.brute import brute_implies
        assert brute_implies(
            uni_spec.dtd, [], FD.parse(
                "courses.course -> courses.course.title"),
            max_word=1, domain=("0",))

    def test_brute_engine_caps_explosions(self, uni_spec):
        """The default-bounds brute engine reports the blow-up instead
        of consuming the machine."""
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="variants"):
            implies(uni_spec.dtd, [], FD.parse(
                "courses.course -> courses.course.title"),
                engine="brute")

    def test_multi_rhs_expansion(self, uni_spec):
        fd = FD.parse("courses.course -> "
                      "{courses.course.title, courses.course.taken_by}")
        assert implies(uni_spec.dtd, [], fd)
        fd2 = FD.parse(
            "courses.course -> "
            "{courses.course.title, courses.course.taken_by.student}")
        assert not implies(uni_spec.dtd, [], fd2)

    def test_recursive_non_simple_raises(self):
        dtd = parse_dtd("""
            <!ELEMENT r (s)>
            <!ELEMENT s ((a, a) | s)>
            <!ELEMENT a EMPTY>
            <!ATTLIST a x CDATA #REQUIRED>
        """)
        with pytest.raises(UnsupportedFeatureError):
            implies(dtd, [], FD.parse("r -> r.s.a.@x"))

    def test_recursive_simple_uses_closure(self):
        dtd = parse_dtd("""
            <!ELEMENT r (s)>
            <!ELEMENT s (s*)>
            <!ATTLIST s x CDATA #REQUIRED>
        """)
        assert implies(dtd, [], FD.parse("r -> r.s"))
        assert not implies(dtd, [], FD.parse("r -> r.s.s"))


class TestEngineObject:
    def test_caching(self, uni_spec):
        oracle = ImplicationEngine(uni_spec.dtd, uni_spec.sigma)
        fd = FD.parse("courses.course.@cno -> courses.course.title.S")
        assert oracle.implies(fd)
        assert oracle.implies(fd)  # cached path
        assert fd.expand().__next__() in oracle._cache or True

    def test_validates_sigma(self, uni_spec):
        from repro.errors import InvalidFDError
        with pytest.raises(InvalidFDError):
            ImplicationEngine(uni_spec.dtd,
                              [FD.parse("courses.nope -> courses")])

    def test_is_trivial(self, uni_spec):
        oracle = ImplicationEngine(uni_spec.dtd, uni_spec.sigma)
        assert oracle.is_trivial(FD.parse(
            "courses.course -> courses.course.@cno"))
        # FD3 is implied but not trivial
        assert not oracle.is_trivial(uni_spec.sigma[2])


class TestIsTrivial:
    def test_trivial_examples_from_section4(self, uni_spec):
        # p -> p' for prefixes, p -> p.@l
        assert is_trivial(uni_spec.dtd, FD.parse(
            "courses.course.taken_by.student -> courses.course"))
        assert is_trivial(uni_spec.dtd, FD.parse(
            "courses.course.taken_by.student -> "
            "courses.course.taken_by.student.@sno"))

    def test_non_trivial(self, uni_spec):
        assert not is_trivial(uni_spec.dtd, uni_spec.sigma[2])
