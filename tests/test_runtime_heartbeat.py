"""Unit tests for batch heartbeats and breaker state telemetry."""

from __future__ import annotations

import io
import json

import pytest

from repro import obs
from repro.runtime.breaker import BreakerBoard
from repro.runtime.heartbeat import (
    HEARTBEAT_SCHEMA,
    HEARTBEAT_VERSION,
    HeartbeatWriter,
    validate_heartbeat,
    validate_heartbeat_lines,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeOutcome:
    def __init__(self, *, ok: bool = True, attempts: int = 1) -> None:
        self.ok = ok
        self.attempts = attempts


def parse_lines(stream: io.StringIO) -> list[dict]:
    return [json.loads(line)
            for line in stream.getvalue().splitlines() if line]


class TestWriterValidation:
    def test_negative_total_rejected(self):
        with pytest.raises(ValueError, match="total"):
            HeartbeatWriter(io.StringIO(), total=-1)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="interval_s"):
            HeartbeatWriter(io.StringIO(), total=1, interval_s=-0.1)


class TestEmission:
    def test_interval_throttles(self):
        clock = FakeClock()
        stream = io.StringIO()
        writer = HeartbeatWriter(stream, total=10, interval_s=1.0,
                                 clock=clock)
        for _ in range(5):
            clock.advance(0.3)
            writer.task_done(FakeOutcome())
        records = parse_lines(stream)
        # First task emits (nothing emitted yet), then throttled until
        # a full second has passed: 0.3 (emit), 0.6, 0.9, 1.2, 1.5
        # (emit at 1.5, 1.2s after the first emit).
        assert len(records) == 2
        assert records[0]["tasks"]["done"] == 1
        assert records[1]["tasks"]["done"] == 5

    def test_final_task_always_emits(self):
        clock = FakeClock()
        stream = io.StringIO()
        writer = HeartbeatWriter(stream, total=3, interval_s=1000.0,
                                 clock=clock)
        for _ in range(3):
            clock.advance(0.01)
            writer.task_done(FakeOutcome())
        records = parse_lines(stream)
        assert records[-1]["tasks"]["done"] == 3

    def test_zero_interval_emits_every_task(self):
        clock = FakeClock()
        stream = io.StringIO()
        writer = HeartbeatWriter(stream, total=4, interval_s=0.0,
                                 clock=clock)
        for _ in range(4):
            clock.advance(0.1)
            writer.task_done(FakeOutcome())
        assert len(parse_lines(stream)) == 4

    def test_record_fields(self):
        clock = FakeClock()
        stream = io.StringIO()
        writer = HeartbeatWriter(stream, total=10, interval_s=0.0,
                                 clock=clock)
        clock.advance(2.0)
        writer.task_done(FakeOutcome(ok=True, attempts=3))
        writer.task_done(FakeOutcome(ok=False, attempts=2))
        record = parse_lines(stream)[-1]
        assert record["schema"] == HEARTBEAT_SCHEMA
        assert record["version"] == HEARTBEAT_VERSION
        assert record["tasks"] == {"total": 10, "done": 2, "ok": 1,
                                   "deadletter": 1}
        assert record["retries"] == 3  # (3-1) + (2-1)
        assert record["elapsed_s"] == pytest.approx(2.0)
        assert record["throughput_tps"] == pytest.approx(1.0)
        assert record["eta_s"] == pytest.approx(8.0)

    def test_throughput_null_before_time_passes(self):
        clock = FakeClock()
        writer = HeartbeatWriter(io.StringIO(), total=5, clock=clock)
        record = writer.record()
        assert record["throughput_tps"] is None
        assert record["eta_s"] is None

    def test_breaker_states_reported(self):
        board = BreakerBoard(threshold=1)
        breaker = board.get("site:x")
        breaker.record_failure()  # threshold 1: trips straight OPEN
        clock = FakeClock()
        writer = HeartbeatWriter(io.StringIO(), total=5, board=board,
                                 clock=clock)
        record = writer.record()
        assert record["breakers"] == {"total": 1, "open": 1,
                                      "half-open": 0, "closed": 0}

    def test_close_emits_pending_mid_run_state(self):
        clock = FakeClock()
        stream = io.StringIO()
        writer = HeartbeatWriter(stream, total=10, interval_s=1000.0,
                                 clock=clock)
        writer.task_done(FakeOutcome())   # emits (first)
        clock.advance(0.1)
        writer.task_done(FakeOutcome())   # throttled
        writer.close()
        records = parse_lines(stream)
        assert records[-1]["tasks"]["done"] == 2
        validate_heartbeat_lines(stream.getvalue())

    def test_close_without_tasks_emits_nothing(self):
        stream = io.StringIO()
        HeartbeatWriter(stream, total=5, clock=FakeClock()).close()
        assert stream.getvalue() == ""

    def test_gauges_published_while_enabled(self):
        obs.enable()
        clock = FakeClock()
        writer = HeartbeatWriter(io.StringIO(), total=2,
                                 interval_s=0.0, clock=clock)
        clock.advance(1.0)
        writer.task_done(FakeOutcome())
        snap = obs.snapshot()
        assert snap["gauges"]["runtime.batch.tasks.total"] == 2
        assert snap["gauges"]["runtime.batch.tasks.done"] == 1
        assert snap["gauges"]["runtime.batch.throughput_tps"] == 1.0
        assert snap["counters"]["runtime.heartbeats"] == 1


class TestValidation:
    def _valid(self, **overrides):
        record = {
            "schema": HEARTBEAT_SCHEMA, "version": HEARTBEAT_VERSION,
            "seq": 1, "elapsed_s": 0.5,
            "tasks": {"total": 10, "done": 3, "ok": 2, "deadletter": 1},
            "retries": 0,
            "breakers": {"total": 0, "open": 0, "half-open": 0,
                         "closed": 0},
            "throughput_tps": 6.0, "eta_s": 1.2,
        }
        record.update(overrides)
        return record

    def test_valid_record_passes(self):
        validate_heartbeat(self._valid())

    def test_nulls_allowed_for_rates(self):
        validate_heartbeat(self._valid(throughput_tps=None, eta_s=None))

    def test_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate_heartbeat(self._valid(schema="nope"))

    def test_wrong_version(self):
        with pytest.raises(ValueError, match="version"):
            validate_heartbeat(self._valid(version=99))

    def test_done_mismatch(self):
        bad = self._valid()
        bad["tasks"]["ok"] = 3
        with pytest.raises(ValueError, match="ok\\+deadletter"):
            validate_heartbeat(bad)

    def test_done_exceeds_total(self):
        bad = self._valid()
        bad["tasks"].update(done=11, ok=11, deadletter=0)
        with pytest.raises(ValueError, match="exceeds"):
            validate_heartbeat(bad)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="throughput_tps"):
            validate_heartbeat(self._valid(throughput_tps=-1.0))

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="object"):
            validate_heartbeat([1, 2, 3])

    def test_lines_seq_must_increase(self):
        lines = "\n".join(
            json.dumps(self._valid(seq=seq)) for seq in (1, 1))
        with pytest.raises(ValueError, match="strictly increasing"):
            validate_heartbeat_lines(lines)

    def test_lines_done_must_not_decrease(self):
        first = self._valid(seq=1)
        second = self._valid(seq=2)
        second["tasks"].update(done=2, ok=1, deadletter=1)
        lines = json.dumps(first) + "\n" + json.dumps(second)
        with pytest.raises(ValueError, match="done decreased"):
            validate_heartbeat_lines(lines)

    def test_lines_reports_line_number(self):
        lines = json.dumps(self._valid()) + "\n{broken\n"
        with pytest.raises(ValueError, match="line 2"):
            validate_heartbeat_lines(lines)


class TestBreakerTelemetry:
    def test_transition_counters(self):
        obs.enable()
        board = BreakerBoard(threshold=2, probe_interval=1)
        breaker = board.get("site:x")
        breaker.record_failure()
        breaker.record_failure()  # trips: CLOSED -> OPEN
        assert obs.counter_value(
            "runtime.breaker.transitions.open") == 1
        breaker.record_skip()
        assert breaker.allows_retries()  # probe: OPEN -> HALF_OPEN
        assert obs.counter_value(
            "runtime.breaker.transitions.half_open") == 1
        breaker.record_success()  # HALF_OPEN -> CLOSED
        assert obs.counter_value(
            "runtime.breaker.transitions.closed") == 1

    def test_open_gauge_tracks_count(self):
        obs.enable()
        board = BreakerBoard(threshold=1)
        board.get("site:a").record_failure()
        assert obs.snapshot()["gauges"]["runtime.breaker.open"] == 1
        board.get("site:b").record_failure()
        assert obs.snapshot()["gauges"]["runtime.breaker.open"] == 2
        board.get("site:a").record_success()
        assert obs.snapshot()["gauges"]["runtime.breaker.open"] == 1

    def test_reasserting_state_emits_nothing(self):
        obs.enable()
        board = BreakerBoard(threshold=1)
        breaker = board.get("site:x")
        breaker.record_success()  # already CLOSED: no transition
        assert obs.counter_value(
            "runtime.breaker.transitions.closed") == 0

    def test_state_counts(self):
        board = BreakerBoard(threshold=1)
        board.get("site:a").record_failure()
        board.get("site:b")
        counts = board.state_counts()
        assert counts == {"closed": 1, "open": 1, "half-open": 0}
