"""The complete CLI exit-code contract, audited in one place.

Every exit code the ``xnf`` tool can produce, each pinned by at least
one invocation that actually produces it::

    0  success / positive answer
    1  negative answer (and: every batch task dead-lettered)
    2  usage error (argparse, bad checkpoint, bad batch manifest)
    3  input / pipeline error (any other ReproError)
    4  resource limit tripped before the answer was decided
    5  partial batch failure (some ok, some dead-lettered)

The table in ``repro.cli``'s module docstring and the constants below
must stay in lockstep; ``test_constants_match_the_documented_table``
fails if either side drifts.
"""

import json

import pytest

import repro.cli as cli
from repro.cli import main
from repro.datasets.university import UNIVERSITY_DTD, UNIVERSITY_FDS

SIMPLE_DTD = ("<!ELEMENT db (r*)>\n<!ELEMENT r EMPTY>\n"
              "<!ATTLIST r a CDATA #REQUIRED b CDATA #REQUIRED>")
BROKEN_DTD = "<!ELEMENT db (unclosed"


@pytest.fixture
def university(tmp_path):
    dtd = tmp_path / "u.dtd"
    dtd.write_text(UNIVERSITY_DTD)
    fds = tmp_path / "u.fds"
    fds.write_text(UNIVERSITY_FDS)
    return str(dtd), str(fds)


def _manifest_file(tmp_path, tasks):
    path = tmp_path / "batch.json"
    path.write_text(json.dumps({
        "schema": "repro.runtime.manifest", "version": 1,
        "tasks": tasks}))
    return str(path)


def _good_task(task_id="good"):
    return {"id": task_id, "op": "implies", "dtd_text": SIMPLE_DTD,
            "fds_text": "db.r.@a -> db.r.@b",
            "fd": "db.r.@a -> db.r.@b"}


def _bad_task(task_id="bad"):
    return {"id": task_id, "op": "check", "dtd_text": BROKEN_DTD}


class TestConstants:
    def test_constants_match_the_documented_table(self):
        assert (cli.EXIT_OK, cli.EXIT_NEGATIVE, cli.EXIT_USAGE,
                cli.EXIT_ERROR, cli.EXIT_RESOURCE, cli.EXIT_PARTIAL) \
            == (0, 1, 2, 3, 4, 5)
        for code in range(6):
            assert f"    {code}  " in cli.__doc__


class TestExit0:
    def test_positive_implication(self, university):
        dtd, fds = university
        assert main(["implies", dtd, fds,
                     "courses.course.@cno -> courses.course"]) == 0

    def test_all_batch_tasks_ok(self, tmp_path, capsys):
        manifest = _manifest_file(tmp_path, [_good_task()])
        assert main(["batch", manifest, "--backoff-base", "0"]) == 0


class TestExit1:
    def test_negative_implication(self, university):
        dtd, fds = university
        assert main(["implies", dtd, fds,
                     "courses.course.title.S -> courses.course"]) == 1

    def test_not_in_xnf(self, university):
        dtd, fds = university
        assert main(["check", dtd, fds]) == 1

    def test_every_batch_task_dead_lettered(self, tmp_path, capsys):
        manifest = _manifest_file(tmp_path,
                                  [_bad_task("b1"), _bad_task("b2")])
        assert main(["batch", manifest, "--backoff-base", "0"]) == 1


class TestExit2:
    def test_argparse_usage_error(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["implies"])          # missing arguments
        assert info.value.code == 2

    def test_bad_batch_flag_value(self, tmp_path, capsys):
        manifest = _manifest_file(tmp_path, [_good_task()])
        with pytest.raises(SystemExit) as info:
            main(["batch", manifest, "--retries", "-3"])
        assert info.value.code == 2

    def test_bad_checkpoint(self, university, tmp_path, capsys):
        dtd, fds = university
        bad = tmp_path / "bad.ckpt"
        bad.write_text("{}")
        assert main(["normalize", dtd, fds, "--checkpoint", str(bad),
                     "--resume"]) == 2

    def test_bad_batch_manifest(self, tmp_path, capsys):
        path = tmp_path / "nope.json"
        path.write_text('{"schema": "something-else"}')
        assert main(["batch", str(path)]) == 2

    def test_missing_batch_manifest(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path / "absent.json")]) == 2

    def test_resume_without_journal_flag(self, tmp_path, capsys):
        manifest = _manifest_file(tmp_path, [_good_task()])
        assert main(["batch", manifest, "--resume"]) == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_journal_meta_mismatch_on_resume(self, tmp_path, capsys):
        manifest = _manifest_file(tmp_path, [_good_task()])
        journal = tmp_path / "j.journal"
        assert main(["batch", manifest, "--backoff-base", "0",
                     "--journal", str(journal)]) == 0
        capsys.readouterr()
        # Same journal, different manifest: the meta fingerprint
        # cannot apply to this invocation.
        (tmp_path / "other").mkdir()
        other = _manifest_file(tmp_path / "other",
                               [_good_task(), _good_task("g2")])
        assert main(["batch", other, "--backoff-base", "0",
                     "--journal", str(journal), "--resume"]) == 2
        assert "mismatch" in capsys.readouterr().err

    def test_corrupt_journal_body_on_resume(self, tmp_path, capsys):
        manifest = _manifest_file(tmp_path, [_good_task()])
        journal = tmp_path / "j.journal"
        assert main(["batch", manifest, "--backoff-base", "0",
                     "--journal", str(journal)]) == 0
        capsys.readouterr()
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text(lines[0] + "{not json\n"
                           + "".join(lines[1:]))
        assert main(["batch", manifest, "--backoff-base", "0",
                     "--journal", str(journal), "--resume"]) == 2
        assert "malformed record" in capsys.readouterr().err

    def test_serve_port_in_use(self, capsys):
        import socket
        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            # Startup failure before any request is structural: the
            # flags named a socket this process can never own.
            assert main(["serve", "--port", str(port)]) == 2
        finally:
            blocker.close()
        assert "cannot bind" in capsys.readouterr().err

    def test_serve_metrics_port_conflict(self, capsys):
        # serve publishes /metrics on the service port itself; asking
        # for a *different* exporter port is refused, not honored.
        assert main(["serve", "--port", "8300",
                     "--metrics-port", "9999"]) == 2
        assert "second exporter" in capsys.readouterr().err


class TestExit3:
    def test_broken_dtd_input(self, tmp_path, capsys):
        dtd = tmp_path / "broken.dtd"
        dtd.write_text(BROKEN_DTD)
        fds = tmp_path / "empty.fds"
        fds.write_text("")
        assert main(["check", str(dtd), str(fds)]) == 3


class TestExit4:
    def test_budget_trip_on_single_query(self, tmp_path, capsys):
        dtd = tmp_path / "d.dtd"
        # Disjunctive spec whose chase needs real branch budget.
        dtd.write_text("""
            <!ELEMENT r ((a | b), c*)>
            <!ELEMENT a EMPTY>
            <!ELEMENT b EMPTY>
            <!ELEMENT c EMPTY>
            <!ATTLIST c x CDATA #REQUIRED>
        """)
        fds = tmp_path / "d.fds"
        fds.write_text("r.a -> r.c.@x\nr.b -> r.c.@x\n")
        assert main(["implies", str(dtd), str(fds), "r -> r.c.@x",
                     "--max-branches", "1"]) == 4


class TestExit5:
    def test_partial_batch_failure(self, tmp_path, capsys):
        manifest = _manifest_file(tmp_path,
                                  [_good_task(), _bad_task()])
        assert main(["batch", manifest, "--backoff-base", "0"]) == 5
        summary = json.loads(capsys.readouterr().out)
        assert summary["counts"] == {"total": 2, "ok": 1,
                                     "failed": 1, "lost": 0}
        [letter] = summary["dead_letters"]
        assert letter["id"] == "bad"
