"""Smoke tests: every bundled example script runs to completion."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    spec = importlib.util.spec_from_file_location(
        f"example_{script.stem}", script)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 200  # each example narrates its pipeline


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "university", "dblp",
            "nested_relations", "relational_bcnf"} <= names
