"""Unit tests for the from-scratch XML parser and serializer."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmltree.parser import parse_xml
from repro.xmltree.serializer import serialize_xml
from repro.xmltree.subsumption import isomorphic_unordered


class TestBasics:
    def test_single_element(self):
        tree = parse_xml("<a/>")
        assert tree.label(tree.root) == "a"
        assert tree.children(tree.root) == []

    def test_text_content(self):
        tree = parse_xml("<a>hello world</a>")
        assert tree.text(tree.root) == "hello world"

    def test_attributes(self):
        tree = parse_xml('<a x="1" y=\'two\'/>')
        assert tree.attrs_of(tree.root) == {"@x": "1", "@y": "two"}

    def test_nesting(self):
        tree = parse_xml("<a><b><c/></b><b/></a>")
        assert [tree.label(c) for c in tree.children(tree.root)] == \
            ["b", "b"]

    def test_document_order_ids(self):
        tree = parse_xml("<a><b/><c/></a>")
        assert tree.root == "v0"
        assert tree.children(tree.root) == ["v1", "v2"]

    def test_whitespace_between_elements_ignored(self):
        tree = parse_xml("<a>\n  <b/>\n  <c/>\n</a>")
        assert len(tree.children(tree.root)) == 2

    def test_entities_unescaped(self):
        tree = parse_xml("<a x=\"&lt;&amp;&gt;\">&quot;&#65;&#x42;&apos;"
                         "</a>")
        assert tree.attr(tree.root, "x") == "<&>"
        assert tree.text(tree.root) == '"AB\''

    def test_comments_and_pi_skipped(self):
        tree = parse_xml(
            "<?xml version='1.0'?><!-- hi --><a><!-- there --><b/></a>")
        assert len(tree.children(tree.root)) == 1

    def test_doctype_skipped(self):
        tree = parse_xml(
            "<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>")
        assert tree.label(tree.root) == "a"


class TestErrors:
    @pytest.mark.parametrize("text", [
        "<a>",                      # unclosed
        "<a></b>",                  # mismatched
        "<a/><b/>",                 # two roots
        "text only",                # no element
        "<a><b/>text</a>",          # mixed content
        "<a x='1' x='2'/>",         # duplicate attribute
        "<a x=1/>",                 # unquoted attribute
        "</a>",                     # stray end tag
        "<a>&bogus;</a>",           # unknown entity
        "<a><!-- unterminated</a>",
    ])
    def test_malformed(self, text):
        with pytest.raises(XMLSyntaxError):
            parse_xml(text)

    def test_error_carries_line_number(self):
        try:
            parse_xml("<a>\n<b>\n</c>\n</a>")
        except XMLSyntaxError as error:
            assert error.line == 3
        else:  # pragma: no cover
            pytest.fail("expected XMLSyntaxError")


class TestRoundTrip:
    @pytest.mark.parametrize("text", [
        "<a/>",
        "<a x=\"1\"/>",
        "<a><b>text</b><c/></a>",
        '<courses><course cno="csc200"><title>AT</title></course>'
        "</courses>",
    ])
    def test_parse_serialize_parse(self, text):
        once = parse_xml(text)
        again = parse_xml(serialize_xml(once))
        assert isomorphic_unordered(once, again)

    def test_escaping_survives(self):
        tree = parse_xml('<a x="a&amp;b">1 &lt; 2</a>')
        again = parse_xml(serialize_xml(tree))
        assert again.attr(again.root, "x") == "a&b"
        assert again.text(again.root) == "1 < 2"

    def test_sorted_serialization_canonical(self):
        first = parse_xml("<a><b i=\"1\"/><c/></a>")
        second = parse_xml("<a><c/><b i=\"1\"/></a>")
        assert serialize_xml(first, sort_children=True) == \
            serialize_xml(second, sort_children=True)


class TestErrorPositions:
    def test_error_carries_column(self):
        try:
            parse_xml("<a>\n  <b></a>\n</a>")
        except XMLSyntaxError as error:
            assert error.line == 2
            assert error.column == 6
            assert "line 2" in str(error)
            assert "column 6" in str(error)
        else:  # pragma: no cover
            pytest.fail("expected XMLSyntaxError")

    def test_unclosed_element_points_at_end(self):
        try:
            parse_xml("<a>\n<b>\n")
        except XMLSyntaxError as error:
            assert error.line == 3
        else:  # pragma: no cover
            pytest.fail("expected XMLSyntaxError")
