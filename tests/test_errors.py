"""Unit tests for the exception hierarchy and diagnostics."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("subclass", [
        errors.ParseError, errors.RegexSyntaxError,
        errors.DTDSyntaxError, errors.XMLSyntaxError,
        errors.FDSyntaxError, errors.InvalidDTDError,
        errors.InvalidTreeError, errors.InvalidPathError,
        errors.InvalidFDError, errors.ConformanceError,
        errors.RecursionLimitError, errors.NormalizationError,
        errors.UnsupportedFeatureError,
    ])
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, errors.ReproError)

    def test_syntax_errors_are_parse_errors(self):
        for cls in (errors.RegexSyntaxError, errors.DTDSyntaxError,
                    errors.XMLSyntaxError, errors.FDSyntaxError):
            assert issubclass(cls, errors.ParseError)


class TestPositions:
    def test_line_and_column_in_message(self):
        error = errors.ParseError("boom", line=3, column=7)
        assert "line 3" in str(error)
        assert "column 7" in str(error)
        assert error.line == 3 and error.column == 7

    def test_line_only(self):
        error = errors.ParseError("boom", line=2)
        assert "line 2" in str(error)
        assert "column" not in str(error)

    def test_no_position(self):
        error = errors.ParseError("boom")
        assert str(error) == "boom"


class TestOneCatchAll:
    def test_library_failures_are_catchable_at_one_type(self, uni_spec):
        from repro.fd.model import FD
        with pytest.raises(errors.ReproError):
            FD.parse("no arrow here")
        with pytest.raises(errors.ReproError):
            uni_spec.parse_document("<broken")
        with pytest.raises(errors.ReproError):
            uni_spec.implies("courses.ghost -> courses")
