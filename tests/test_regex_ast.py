"""Unit tests for the regex AST and smart constructors."""

import pytest

from repro.regex.ast import (
    EMPTY_SET,
    EPSILON,
    PCDATA,
    Concat,
    Optional,
    Plus,
    Star,
    Sym,
    Union,
    concat,
    desugar,
    optional,
    plus,
    star,
    sym,
    union,
)


class TestAlphabet:
    def test_symbol(self):
        assert sym("a").alphabet() == {"a"}

    def test_epsilon_and_empty(self):
        assert EPSILON.alphabet() == frozenset()
        assert EMPTY_SET.alphabet() == frozenset()

    def test_pcdata_uses_reserved_s(self):
        assert PCDATA.alphabet() == {"S"}

    def test_composite(self):
        regex = concat([sym("a"), star(union([sym("b"), sym("c")]))])
        assert regex.alphabet() == {"a", "b", "c"}


class TestNullable:
    def test_epsilon_nullable(self):
        assert EPSILON.nullable()

    def test_symbol_not_nullable(self):
        assert not sym("a").nullable()

    def test_star_nullable(self):
        assert star(sym("a")).nullable()

    def test_plus_not_nullable(self):
        assert not plus(sym("a")).nullable()

    def test_optional_nullable(self):
        assert optional(sym("a")).nullable()

    def test_concat_nullable_iff_all(self):
        assert concat([star(sym("a")), optional(sym("b"))]).nullable()
        assert not concat([star(sym("a")), sym("b")]).nullable()

    def test_union_nullable_iff_any(self):
        assert union([sym("a"), EPSILON]).nullable()
        assert not union([sym("a"), sym("b")]).nullable()


class TestSmartConstructors:
    def test_union_flattens(self):
        regex = union([union([sym("a"), sym("b")]), sym("c")])
        assert isinstance(regex, Union)
        assert len(regex.parts) == 3

    def test_union_deduplicates(self):
        assert union([sym("a"), sym("a")]) == sym("a")

    def test_union_drops_empty_language(self):
        assert union([sym("a"), EMPTY_SET]) == sym("a")

    def test_union_of_nothing_is_empty(self):
        assert union([]) is EMPTY_SET

    def test_concat_flattens(self):
        regex = concat([concat([sym("a"), sym("b")]), sym("c")])
        assert isinstance(regex, Concat)
        assert len(regex.parts) == 3

    def test_concat_absorbs_epsilon(self):
        assert concat([EPSILON, sym("a"), EPSILON]) == sym("a")

    def test_concat_with_empty_language_is_empty(self):
        assert concat([sym("a"), EMPTY_SET]) is EMPTY_SET

    def test_empty_concat_is_epsilon(self):
        assert concat([]) is EPSILON

    def test_star_idempotent(self):
        assert star(star(sym("a"))) == star(sym("a"))

    def test_star_of_epsilon(self):
        assert star(EPSILON) is EPSILON

    def test_star_of_plus_collapses(self):
        assert star(plus(sym("a"))) == star(sym("a"))

    def test_star_of_optional_collapses(self):
        assert star(optional(sym("a"))) == star(sym("a"))

    def test_plus_of_star_is_star(self):
        assert plus(star(sym("a"))) == star(sym("a"))

    def test_optional_of_star_is_star(self):
        assert optional(star(sym("a"))) == star(sym("a"))

    def test_optional_of_plus_is_star(self):
        assert optional(plus(sym("a"))) == star(sym("a"))


class TestRendering:
    @pytest.mark.parametrize("regex, expected", [
        (sym("a"), "a"),
        (EPSILON, "EMPTY"),
        (PCDATA, "(#PCDATA)"),
        (star(sym("a")), "a*"),
        (plus(sym("a")), "a+"),
        (optional(sym("a")), "a?"),
        (concat([sym("a"), sym("b")]), "(a, b)"),
        (union([sym("a"), sym("b")]), "(a | b)"),
        (star(union([sym("a"), sym("b")])), "(a | b)*"),
    ])
    def test_to_dtd(self, regex, expected):
        assert regex.to_dtd() == expected


class TestDesugar:
    def test_plus_desugars_to_concat_star(self):
        assert desugar(plus(sym("a"))) == concat([sym("a"),
                                                  star(sym("a"))])

    def test_optional_desugars_to_union_epsilon(self):
        result = desugar(optional(sym("a")))
        assert result.nullable()
        assert result.alphabet() == {"a"}

    def test_core_nodes_unchanged(self):
        regex = concat([sym("a"), star(sym("b"))])
        assert desugar(regex) == regex

    def test_desugar_preserves_language(self):
        from repro.regex.matching import matches
        regex = concat([plus(sym("a")), optional(sym("b"))])
        core = desugar(regex)
        for word in ([], ["a"], ["a", "a"], ["a", "b"], ["b"],
                     ["a", "a", "b"], ["b", "a"]):
            assert matches(regex, word) == matches(core, word)


class TestHashability:
    def test_equal_structures_hash_equal(self):
        first = concat([sym("a"), star(sym("b"))])
        second = concat([sym("a"), star(sym("b"))])
        assert first == second
        assert hash(first) == hash(second)

    def test_usable_in_sets(self):
        assert len({sym("a"), sym("a"), sym("b")}) == 2
