"""Unit tests for the Prometheus exporter (repro.obs.export)."""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs import export
from repro.obs.export import (
    MetricsExporter,
    format_value,
    metric_name,
    prometheus_text,
)

METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"           # metric name
    r'(\{quantile="0\.\d+"\})?'            # optional summary label
    r" (NaN|[+-]Inf|-?\d+(\.\d+)?([eE][+-]?\d+)?)$")
COMMENT_LINE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)$")


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def assert_parse_valid(text: str) -> None:
    """Every line must be a TYPE comment or a sample line."""
    for line in text.splitlines():
        assert METRIC_LINE.match(line) or COMMENT_LINE.match(line), \
            f"not valid exposition format: {line!r}"


class TestMetricName:
    def test_dots_fold_to_underscores(self):
        assert metric_name("implication.cache.hit") \
            == "implication_cache_hit"

    def test_suffix_appends(self):
        assert metric_name("runtime.tasks", "_total") \
            == "runtime_tasks_total"

    def test_invalid_chars_folded(self):
        assert metric_name("a-b c/d") == "a_b_c_d"

    def test_leading_digit_guarded(self):
        assert metric_name("9lives") == "_9lives"

    def test_empty_name_guarded(self):
        assert metric_name("") == "_"


class TestFormatValue:
    def test_int_stays_int(self):
        assert format_value(42) == "42"

    def test_bool_is_numeric(self):
        assert format_value(True) == "1"
        assert format_value(False) == "0"

    def test_float_repr(self):
        assert format_value(0.1) == "0.1"

    def test_non_finite_spellings(self):
        assert format_value(float("nan")) == "NaN"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"


class TestPrometheusText:
    def test_empty_snapshot_renders_empty(self):
        assert prometheus_text(obs.snapshot()) == ""

    def test_counter_family(self):
        obs.enable()
        obs.inc("implication.cache.hit", 3)
        text = prometheus_text(obs.snapshot())
        assert "# TYPE implication_cache_hit_total counter" in text
        assert "implication_cache_hit_total 3" in text
        assert_parse_valid(text)

    def test_gauge_family(self):
        obs.enable()
        obs.set_gauge("runtime.breaker.open", 2)
        text = prometheus_text(obs.snapshot())
        assert "# TYPE runtime_breaker_open gauge" in text
        assert "runtime_breaker_open 2" in text

    def test_timer_gets_seconds_suffix(self):
        obs.enable()
        with obs.timer("closure.time"):
            pass
        text = prometheus_text(obs.snapshot())
        assert "# TYPE closure_time_seconds summary" in text
        assert 'closure_time_seconds{quantile="0.5"}' in text
        assert "closure_time_seconds_sum" in text
        assert "closure_time_seconds_count 1" in text
        assert_parse_valid(text)

    def test_histogram_has_no_unit_suffix(self):
        obs.enable()
        obs.observe("chase.tableau.nodes", 17)
        text = prometheus_text(obs.snapshot())
        assert "# TYPE chase_tableau_nodes summary" in text
        assert "chase_tableau_nodes_seconds" not in text
        assert "chase_tableau_nodes_count 1" in text

    def test_single_sample_quantiles_collapse(self):
        obs.enable()
        obs.observe("h", 7.0)
        text = prometheus_text(obs.snapshot())
        for quantile in ("0.5", "0.95", "0.99"):
            assert f'h{{quantile="{quantile}"}} 7' in text

    def test_min_max_companion_gauges(self):
        obs.enable()
        for value in (1, 9):
            obs.observe("h", value)
        text = prometheus_text(obs.snapshot())
        assert "# TYPE h_min gauge" in text
        assert "h_min 1" in text
        assert "h_max 9" in text

    def test_families_key_sorted(self):
        obs.enable()
        obs.inc("zeta.ops")
        obs.inc("alpha.ops")
        obs.set_gauge("mid.level", 1.0)
        text = prometheus_text(obs.snapshot())
        families = [line.split()[2] for line in text.splitlines()
                    if line.startswith("# TYPE")]
        assert families == sorted(families)

    def test_pre_v2_snapshot_timers_default_to_seconds(self):
        # A v1-shaped snapshot (no unit fields) still renders: timers
        # fall back to the seconds suffix, histograms to none.
        snapshot = {
            "counters": {}, "gauges": {},
            "histograms": {"h": {"count": 1, "total": 2.0, "min": 2.0,
                                 "max": 2.0, "mean": 2.0, "p50": 2.0,
                                 "p95": 2.0, "p99": 2.0}},
            "timers": {"t": {"count": 1, "total": 0.5, "min": 0.5,
                             "max": 0.5, "mean": 0.5, "p50": 0.5,
                             "p95": 0.5, "p99": 0.5}},
        }
        text = prometheus_text(snapshot)
        assert "# TYPE t_seconds summary" in text
        assert "# TYPE h summary" in text

    def test_byte_identical_across_insertion_orders(self):
        stats = {"count": 2, "total": 3.0, "min": 1.0, "max": 2.0,
                 "mean": 1.5, "p50": 1.0, "p95": 2.0, "p99": 2.0,
                 "unit": "1"}
        forward = {"counters": {"a": 1, "b": 2},
                   "gauges": {"g": 1.0},
                   "histograms": {"h": dict(stats)}, "timers": {}}
        backward = {"counters": {"b": 2, "a": 1},
                    "gauges": {"g": 1.0},
                    "histograms": {"h": dict(reversed(stats.items()))},
                    "timers": {}}
        assert prometheus_text(forward) == prometheus_text(backward)


class TestExporter:
    def _get(self, url: str):
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode("utf-8"), \
                response.headers

    def test_metrics_endpoint_serves_live_snapshot(self):
        obs.enable()
        obs.inc("runtime.tasks", 5)
        with MetricsExporter(port=0) as exporter:
            status, body, headers = self._get(exporter.url("/metrics"))
        assert status == 200
        assert headers["Content-Type"] == export.CONTENT_TYPE
        assert "runtime_tasks_total 5" in body
        assert_parse_valid(body)

    def test_scrapes_counter_self_observation(self):
        obs.enable()
        with MetricsExporter(port=0) as exporter:
            self._get(exporter.url("/metrics"))
            _, body, _ = self._get(exporter.url("/metrics"))
        # The counter increments before rendering, so the second
        # scrape sees both itself and the first one.
        assert "obs_export_scrapes_total 2" in body

    def test_healthz(self):
        with MetricsExporter(port=0) as exporter:
            status, body, _ = self._get(exporter.url("/healthz"))
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0

    def test_unknown_path_404(self):
        with MetricsExporter(port=0) as exporter:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(exporter.url("/nope"))
        assert excinfo.value.code == 404

    def test_custom_snapshot_fn(self):
        with MetricsExporter(
                port=0,
                snapshot_fn=lambda: {"counters": {"fixed": 9}},
        ) as exporter:
            _, body, _ = self._get(exporter.url("/metrics"))
        assert "fixed_total 9" in body

    def test_port_property_requires_start(self):
        exporter = MetricsExporter(port=0)
        with pytest.raises(RuntimeError):
            exporter.port

    def test_double_start_rejected(self):
        with MetricsExporter(port=0) as exporter:
            with pytest.raises(RuntimeError):
                exporter.start()

    def test_stop_is_idempotent(self):
        exporter = MetricsExporter(port=0).start()
        exporter.stop()
        exporter.stop()
