"""Property tests for Section 3: Theorem 1 and Propositions 1-3 on
random simple DTDs and random conforming documents."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.datasets.generators import random_document, random_simple_dtd
from repro.tuples.build import tree_of, trees_of
from repro.tuples.compat import is_d_compatible, set_subsumed
from repro.tuples.extract import count_tuples, tuples_of
from repro.tuples.model import validate_tuple
from repro.xmltree.conformance import is_compatible
from repro.xmltree.subsumption import equivalent, subsumed_by


def _instance(seed: int):
    rng = random.Random(seed)
    dtd = random_simple_dtd(rng, max_depth=3, max_children=2)
    doc = random_document(rng, dtd, max_repeat=2)
    return dtd, doc


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_theorem1_roundtrip(seed):
    """trees_D(tuples_D(T)) ≡ T for every conforming document."""
    dtd, doc = _instance(seed)
    tuples = tuples_of(doc, dtd)
    assert tuples
    merged = trees_of(tuples, dtd)
    assert equivalent(merged, doc)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_proposition1_tuple_trees_compatible(seed):
    """tree_D(t) < D for every maximal tuple (Proposition 1)."""
    dtd, doc = _instance(seed)
    for tuple_ in tuples_of(doc, dtd):
        validate_tuple(tuple_, dtd)
        assert is_compatible(tree_of(tuple_, dtd), dtd)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_tuple_trees_subsumed_by_document(seed):
    dtd, doc = _instance(seed)
    for tuple_ in tuples_of(doc, dtd):
        assert subsumed_by(tree_of(tuple_, dtd), doc)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 3))
def test_proposition3_subset_compatibility(seed, take):
    """Subsets of tuples_D(T) are D-compatible, and
    X ⊑' tuples_D(trees_D(X)) (Proposition 3)."""
    dtd, doc = _instance(seed)
    tuples = tuples_of(doc, dtd)
    subset = tuples[:take]
    assert is_d_compatible(subset, dtd)
    merged = trees_of(subset, dtd)
    assert set_subsumed(subset, tuples_of(merged, dtd))


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_count_matches_enumeration(seed):
    dtd, doc = _instance(seed)
    assert count_tuples(doc) == len(tuples_of(doc, dtd))


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_monotonicity_of_tuples(seed):
    """Proposition 2: T1 <= T2 implies tuples(T1) ⊑' tuples(T2) —
    exercised by deleting one starred leaf child."""
    dtd, doc = _instance(seed)
    target = None
    for node in doc.iter_nodes():
        parent = doc.parent(node)
        if parent is None:
            continue
        label = doc.label(node)
        if not doc.children(node) and \
                len(doc.children_with_label(parent, label)) > 1:
            target = (parent, node)
            break
    if target is None:
        return
    parent, node = target
    smaller = doc.copy()
    siblings = smaller.content[parent]
    assert isinstance(siblings, list)
    smaller.content[parent] = [c for c in siblings if c != node]
    del smaller.labels[node]
    smaller.content.pop(node, None)
    for key in [k for k in smaller.attributes if k[0] == node]:
        del smaller.attributes[key]
    smaller.freeze()
    assert subsumed_by(smaller, doc)
    assert set_subsumed(tuples_of(smaller, dtd), tuples_of(doc, dtd))
