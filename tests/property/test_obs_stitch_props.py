"""Property tests for span-context serialization and trace stitching.

The wire form of :class:`repro.obs.trace.SpanContext` crosses the
fork/pipe boundary between the pool supervisor and its workers; the
round-trip must be lossless for every representable context, and
:func:`repro.obs.trace.ingest_records` must preserve span counts and
parent/child containment for arbitrary well-formed shipments.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro import obs
from repro.obs import trace
from repro.obs.trace import SpanContext


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    obs.clear_sinks()
    trace.clear_context()
    yield
    obs.disable()
    obs.reset()
    obs.clear_sinks()
    trace.clear_context()


identifiers = st.text(
    alphabet="abcdef0123456789-", min_size=1, max_size=24)

contexts = st.builds(
    SpanContext,
    trace_id=st.none() | identifiers,
    task=st.none() | identifiers,
    worker=st.none() | st.integers(min_value=0, max_value=1 << 16))


class TestWireRoundTrip:
    @given(context=contexts)
    def test_round_trip_is_identity(self, context):
        assert SpanContext.from_wire(context.to_wire()) == context

    @given(context=contexts)
    def test_wire_form_is_json_plain(self, context):
        import json
        wire = context.to_wire()
        assert json.loads(json.dumps(wire)) == wire


@st.composite
def span_forests(draw):
    """A worker-style shipment: a forest of span records with
    worker-local ids, children listed before their parents (the order
    a buffering sink sees spans finish)."""
    count = draw(st.integers(min_value=1, max_value=12))
    records = []
    for span_id in range(1, count + 1):
        parent = None
        if span_id > 1:
            parent = draw(st.none()
                          | st.integers(min_value=1,
                                        max_value=span_id - 1))
        start = draw(st.floats(min_value=0.0, max_value=10.0,
                               allow_nan=False))
        duration = draw(st.floats(min_value=0.0, max_value=50.0,
                                  allow_nan=False))
        records.append({"id": span_id, "parent": parent,
                        "depth": 0, "name": f"span-{span_id}",
                        "start": start, "duration_ms": duration,
                        "attrs": {}})
    # Children finish before parents: ship deepest-first.
    return list(reversed(records))


class TestIngestProperties:
    @settings(max_examples=50, deadline=None)
    @given(records=span_forests(),
           offset=st.floats(min_value=-100.0, max_value=100.0,
                            allow_nan=False))
    def test_count_structure_and_rebase(self, records, offset):
        import time
        obs.disable()  # reset between hypothesis examples
        obs.enable()
        obs.clear_sinks()
        sink = obs.InMemorySink()
        obs.add_sink(sink)
        with obs.span("anchor") as anchor:
            ingested = trace.ingest_records(records, offset=offset,
                                            worker=1)
            ingest_done = time.perf_counter()
        assert ingested == len(records)

        by_name = {span_.name: span_ for span_ in sink.spans
                   if span_.name != "anchor"}
        assert len(by_name) == len(records)
        # The rebase applies ONE uniform shift: the requested offset,
        # pulled back only if it would place spans in our future
        # (shipped spans provably finished before arrival).
        shifts = {round(by_name[f"span-{r['id']}"].start - r["start"],
                        6) for r in records}
        assert max(shifts) - min(shifts) <= 1e-5
        assert min(shifts) <= offset + 1e-6
        for record in records:
            rebuilt = by_name[f"span-{record['id']}"]
            assert rebuilt.end <= ingest_done + 1e-6
            assert rebuilt.duration * 1e3 \
                == pytest.approx(record["duration_ms"], abs=1e-6)
            assert rebuilt.worker == 1
            # Shipment-local parent links survive; shipment tops hang
            # off the anchor.
            parent = record["parent"]
            if parent is None:
                assert rebuilt.parent_id == anchor.span_id
                assert rebuilt.depth == anchor.depth + 1
            else:
                assert rebuilt.parent_id \
                    == by_name[f"span-{parent}"].span_id
                assert rebuilt.depth \
                    == by_name[f"span-{parent}"].depth + 1

    @settings(max_examples=25, deadline=None)
    @given(records=span_forests())
    def test_ids_never_collide_with_local_spans(self, records):
        obs.disable()
        obs.enable()
        obs.clear_sinks()
        sink = obs.InMemorySink()
        obs.add_sink(sink)
        with obs.span("anchor"):
            trace.ingest_records(records, worker=0)
            with obs.span("local-after"):
                pass
        ids = [span_.span_id for span_ in sink.spans]
        assert len(ids) == len(set(ids))
