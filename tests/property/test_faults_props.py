"""Chaos suite: sweep every registered fault site under seeded plans.

The exception-safety contract under test (docs/ROBUSTNESS.md):

* a fault injected at *any* site surfaces from the public entry points
  only as a :class:`~repro.errors.ReproError` subclass — never a raw
  ``ValueError``/``KeyError``/``RecursionError``;
* no cache is poisoned — an aborted implication query is never stored,
  and the same engine re-queried without faults gives the right answer;
* the pipeline is reusable afterwards: fresh runs over the same inputs
  succeed and agree with ground truth.

All plans are seeded, so every failing example here replays exactly.
"""

from __future__ import annotations

import os
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro import faults, obs
from repro.errors import FaultError, ReproError, ResourceExhausted
from repro.datasets.university import (
    UNIVERSITY_DOCUMENT,
    UNIVERSITY_DTD,
    UNIVERSITY_FDS,
)
from repro.dtd.parser import parse_dtd
from repro.fd.chase import chase_implies
from repro.fd.implication import ImplicationEngine
from repro.fd.model import FD, parse_fds
from repro.normalize import checkpoint as ckpt
from repro.normalize.algorithm import normalize
from repro.tuples.extract import tuples_of
from repro.xmltree.conformance import conforms, conforms_unordered
from repro.xmltree.parser import parse_xml

DISJUNCTIVE_DTD = """
    <!ELEMENT r ((a | b), c*)>
    <!ELEMENT a EMPTY>
    <!ELEMENT b EMPTY>
    <!ELEMENT c EMPTY>
    <!ATTLIST c x CDATA #REQUIRED>
"""

#: (site name, valid kinds) for the complete pipeline registry.
ALL_SITES = faults.all_sites()
#: The ``serve`` subsystem's containment contract is HTTP-shaped — a
#: fault becomes a structured error *response*, it never escapes — and
#: is swept by tests/property/test_serve_chaos.py; the raise-contract
#: driver below never opens a socket, so those sites are excluded here.
SITE_NAMES = [site.name for site in ALL_SITES
              if site.subsystem != "serve"]

#: Ground truth probes: (query, expected) over the university spec.
TRUE_QUERY = "courses.course.@cno -> courses.course"
FALSE_QUERY = "courses.course.title.S -> courses.course.@cno"

#: Sweep depth: CI runs the default; the nightly workflow raises it
#: for the full chaos sweep (see .github/workflows/nightly-bench.yml).
CHAOS_EXAMPLES = int(os.environ.get("REPRO_CHAOS_EXAMPLES", "80"))


@pytest.fixture(autouse=True)
def _no_leaked_plans():
    """A test that escapes a ``with faults.use(...)`` abnormally must
    not leave a plan installed for the next test."""
    yield
    faults.teardown()


def _drive_pipeline() -> None:
    """One end-to-end run visiting every registered fault site:
    both parsers, ordered + multiset conformance, the closure and
    chase implication engines, tuple extraction, normalization, a
    checkpoint save (the atomic-write crash window), and a batch
    journal append + resume read-back."""
    dtd = parse_dtd(UNIVERSITY_DTD)
    sigma = parse_fds(UNIVERSITY_FDS)
    doc = parse_xml(UNIVERSITY_DOCUMENT)
    conforms(doc, dtd)
    conforms_unordered(doc, dtd)
    tuples_of(doc, dtd)
    engine = ImplicationEngine(dtd, sigma)
    engine.implies(FD.parse(TRUE_QUERY))
    normalize(dtd, sigma)
    with tempfile.TemporaryDirectory() as tmp:
        snapshot = ckpt.NormalizationCheckpoint.capture(
            ckpt.fingerprint(dtd, sigma), dtd, sigma, [])
        ckpt.save(os.path.join(tmp, "drive.ckpt"), snapshot)
        _drive_journal(os.path.join(tmp, "drive.journal"))
    chase_implies(parse_dtd(DISJUNCTIVE_DTD),
                  [FD.parse("r.a -> r.c.@x"), FD.parse("r.b -> r.c.@x")],
                  FD.parse("r -> r.c.@x"))


def _drive_journal(path: str) -> None:
    """Visit ``runtime.journal.append`` (meta + one intent) and
    ``runtime.journal.replay`` (one resume read-back)."""
    from repro.runtime import journal as journal_mod
    from repro.runtime import manifest as manifest_mod
    from repro.runtime.breaker import BreakerBoard
    from repro.runtime.retry import RetryPolicy

    manifest = manifest_mod.build(
        [{"id": "drive", "op": "check",
          "dtd_text": "<!ELEMENT r (a*)>\n<!ELEMENT a EMPTY>"}])
    journal = journal_mod.open_journal(
        path, manifest=manifest, policy=RetryPolicy(),
        board=BreakerBoard(), fsync=False, warn=lambda message: None)
    journal.intent(0, manifest.tasks[0])
    journal.close()
    journal_mod.open_journal(
        path, manifest=manifest, policy=RetryPolicy(),
        board=BreakerBoard(), resume=True, fsync=False,
        warn=lambda message: None).close()


def _assert_pipeline_healthy() -> None:
    """The post-fault probe: fresh runs agree with ground truth."""
    assert not faults.active
    dtd = parse_dtd(UNIVERSITY_DTD)
    sigma = parse_fds(UNIVERSITY_FDS)
    engine = ImplicationEngine(dtd, sigma)
    assert engine.implies(FD.parse(TRUE_QUERY))
    assert not engine.implies(FD.parse(FALSE_QUERY))
    result = normalize(dtd, sigma)
    assert result.steps


class TestRegistry:
    def test_expected_sites_registered(self):
        assert set(SITE_NAMES) >= {
            "dtd.parser.input", "dtd.parser.decl",
            "xml.parser.input", "xml.parser.tag",
            "regex.matching.search",
            "fd.chase.branch", "fd.chase.step",
            "fd.closure.iteration",
            "tuples.extract.node",
            "normalize.round", "normalize.checkpoint",
            "checkpoint.save",
            "runtime.journal.append", "runtime.journal.replay",
        }

    def test_every_site_reachable_by_the_driver(self):
        """``after=0`` at each site must actually fire — otherwise the
        sweep would vacuously pass on sites the driver never visits."""
        for name in SITE_NAMES:
            plan = faults.FaultPlan([faults.FaultArm(site=name)])
            with faults.use(plan):
                with pytest.raises(ReproError):
                    _drive_pipeline()
            assert plan.fired == [(name, "exception")], name

    def test_input_sites_allow_truncation(self):
        by_name = {site.name: site for site in ALL_SITES}
        assert "truncate" in by_name["dtd.parser.input"].kinds
        assert "truncate" in by_name["xml.parser.input"].kinds
        assert "truncate" not in by_name["fd.chase.step"].kinds


@settings(max_examples=CHAOS_EXAMPLES, deadline=None)
@given(site=st.sampled_from(SITE_NAMES),
       kind=st.sampled_from(sorted(faults.INPUT_KINDS)),
       after=st.integers(0, 8),
       seed=st.integers(0, 1_000))
def test_chaos_sweep_only_repro_errors_escape(site, kind, after, seed):
    """Any fault at any site, on any hit: either the pipeline survives
    (fault never fired or a truncation parsed as a valid prefix) or a
    ReproError escapes — and afterwards everything still works."""
    plan = faults.FaultPlan(
        [faults.FaultArm(site=site, kind=kind, after=after)], seed=seed)
    try:
        with faults.use(plan):
            _drive_pipeline()
    except ReproError:
        pass
    except BaseException as error:  # noqa: BLE001 — the contract itself
        raise AssertionError(
            f"non-ReproError {type(error).__name__} escaped for "
            f"{kind}@{site} after={after}: {error}") from error
    _assert_pipeline_healthy()


@settings(max_examples=max(25, CHAOS_EXAMPLES // 3), deadline=None)
@given(after=st.integers(0, 6),
       kind=st.sampled_from(sorted(faults.RAISE_KINDS)))
def test_aborted_implication_queries_are_never_cached(after, kind):
    dtd = parse_dtd(UNIVERSITY_DTD)
    sigma = parse_fds(UNIVERSITY_FDS)
    probe = FD.parse(FALSE_QUERY)
    expected = ImplicationEngine(dtd, sigma).implies(probe)

    engine = ImplicationEngine(dtd, sigma)
    fired = False
    try:
        with faults.inject("fd.closure.*", kind=kind, after=after):
            engine.implies(probe)
    except ReproError:
        fired = True
    info = engine.cache_info()
    # Coherent stats: every stored entry was a completed miss.
    assert info.currsize <= info.misses
    assert info.hits >= 0
    # The same engine, re-queried without faults, is correct — an
    # aborted (or poisoned) entry would surface here as a wrong hit.
    assert engine.implies(probe) == expected
    if fired and after == 0:
        # The very first closure iteration aborted: nothing from this
        # probe may have been stored.
        assert engine.cache_info().currsize >= info.currsize


def test_allocation_fault_is_both_repro_and_memory_error():
    with faults.inject("fd.closure.iteration", kind="allocation"):
        with pytest.raises(ReproError) as excinfo:
            _drive_pipeline()
    assert isinstance(excinfo.value, MemoryError)
    assert isinstance(excinfo.value, FaultError)


def test_exhaustion_fault_reports_injected_limit():
    with faults.inject("tuples.extract.node", kind="exhaustion"):
        with pytest.raises(ResourceExhausted) as excinfo:
            _drive_pipeline()
    assert excinfo.value.limit == "injected"
    assert excinfo.value.partial["site"] == "tuples.extract.node"


def test_truncation_is_deterministic_per_seed():
    def outcome(seed):
        plan = faults.FaultPlan(
            [faults.FaultArm(site="xml.parser.input", kind="truncate")],
            seed=seed)
        with faults.use(plan):
            try:
                tree = parse_xml(UNIVERSITY_DOCUMENT)
                return ("parsed", len(tree.nodes))
            except ReproError as error:
                return ("error", str(error))
    assert outcome(7) == outcome(7)
    assert outcome(11) == outcome(11)


def test_fired_log_and_obs_counters():
    obs.enable()
    obs.reset()
    try:
        plan = faults.FaultPlan(
            [faults.FaultArm(site="fd.chase.step", kind="exception",
                             after=2)])
        with faults.use(plan):
            with pytest.raises(ReproError):
                chase_implies(
                    parse_dtd(DISJUNCTIVE_DTD),
                    [FD.parse("r.a -> r.c.@x"),
                     FD.parse("r.b -> r.c.@x")],
                    FD.parse("r -> r.c.@x"))
        assert plan.fired == [("fd.chase.step", "exception")]
        counters = obs.snapshot()["counters"]
        assert counters["faults.injected"] == 1
        assert counters["faults.injected.exception"] == 1
    finally:
        obs.reset()
        obs.disable()


def test_plans_nest_innermost_wins():
    outer = faults.FaultPlan(
        [faults.FaultArm(site="fd.closure.iteration", after=0)])
    inner = faults.FaultPlan(
        [faults.FaultArm(site="fd.closure.iteration", kind="exhaustion",
                         after=0)])
    dtd = parse_dtd(UNIVERSITY_DTD)
    sigma = parse_fds(UNIVERSITY_FDS)
    with faults.use(outer):
        with faults.use(inner):
            with pytest.raises(ResourceExhausted):
                ImplicationEngine(dtd, sigma).implies(
                    FD.parse(TRUE_QUERY))
        assert outer.fired == []
    assert not faults.active
