"""Property test for Proposition 5: NNF ⇔ XNF under the nested coding.

Random two- or three-level nested schemas with random FDs over their
atomic attributes; the NNF test (Armstrong closure + ancestor sets)
must agree with the XNF test of the coded specification.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.nested.nnf import is_in_nnf
from repro.nested.schema import NestedSchema
from repro.nested.xml_coding import nested_dtd, nested_sigma
from repro.relational.schema import RelationalFD
from repro.xnf.check import is_in_xnf


def _random_schema(rng: random.Random) -> NestedSchema:
    shape = rng.choice(["chain3", "chain2", "fork"])
    if shape == "chain3":
        h3 = NestedSchema("H3", ("C",))
        h2 = NestedSchema("H2", ("B",), (h3,))
        return NestedSchema("H1", ("A",), (h2,))
    if shape == "chain2":
        h2 = NestedSchema("H2", ("B", "C"))
        return NestedSchema("H1", ("A",), (h2,))
    left = NestedSchema("L", ("B",))
    right = NestedSchema("R", ("C",))
    return NestedSchema("H1", ("A",), (left, right))


def _random_fds(rng: random.Random,
                attributes: tuple[str, ...]) -> list[RelationalFD]:
    fds = []
    for _ in range(rng.randint(0, 2)):
        lhs = frozenset(rng.sample(attributes,
                                   rng.randint(1, len(attributes) - 1)))
        remaining = [a for a in attributes if a not in lhs]
        rhs = frozenset({rng.choice(remaining)})
        fds.append(RelationalFD(lhs, rhs))
    return fds


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 100_000))
def test_proposition5(seed):
    rng = random.Random(seed)
    schema = _random_schema(rng)
    fds = _random_fds(rng, schema.all_attributes)
    nnf = is_in_nnf(schema, fds)
    xnf = is_in_xnf(nested_dtd(schema), nested_sigma(schema, fds))
    assert nnf == xnf, (
        str(schema), [str(fd) for fd in fds], nnf, xnf)
