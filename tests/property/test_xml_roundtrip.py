"""Property tests: the XML parser/serializer round-trips arbitrary
trees, including hostile text/attribute content."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.xmltree.model import XMLTree, elem
from repro.xmltree.parser import parse_xml
from repro.xmltree.serializer import serialize_xml
from repro.xmltree.subsumption import canonical_key, isomorphic_unordered

_names = st.sampled_from(["a", "b", "c", "item", "x-y", "ns:tag"])
_text = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x2FF,
                           blacklist_characters="\x7f"),
    min_size=0, max_size=12)
_attrs = st.dictionaries(
    st.sampled_from(["k", "v", "id"]), _text, max_size=2)


def _nested(depth: int):
    if depth == 0:
        return st.builds(
            lambda label, attrs, text: elem(
                label, attrs, text=text if text.strip() else None),
            _names, _attrs, _text)
    return st.builds(
        lambda label, attrs, children: elem(label, attrs, children),
        _names, _attrs,
        st.lists(_nested(depth - 1), max_size=3))


trees = st.builds(XMLTree.from_nested, _nested(2))


@settings(max_examples=80, deadline=None)
@given(trees)
def test_serialize_parse_round_trip(tree):
    text = serialize_xml(tree)
    reparsed = parse_xml(text)
    assert isomorphic_unordered(tree, reparsed), text


@settings(max_examples=80, deadline=None)
@given(trees)
def test_canonical_key_stable_across_round_trip(tree):
    reparsed = parse_xml(serialize_xml(tree))
    assert canonical_key(tree) == canonical_key(reparsed)


@settings(max_examples=50, deadline=None)
@given(trees)
def test_sorted_serialization_idempotent(tree):
    once = serialize_xml(tree, sort_children=True)
    again = serialize_xml(parse_xml(once), sort_children=True)
    assert once == again
