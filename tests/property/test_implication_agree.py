"""Cross-validation of the three implication engines.

On tiny simple DTDs the closure (claimed complete), the chase (exact)
and the brute-force oracle (exhaustive within bounds) must agree; on
tiny disjunctive DTDs the chase and brute must agree while the closure
stays sound (never answers True when brute finds a countermodel).
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.dtd.model import DTD
from repro.dtd.paths import Path
from repro.fd.brute import brute_implies
from repro.fd.chase import chase_implies
from repro.fd.closure import closure_implies
from repro.fd.model import FD
from repro.regex.ast import EPSILON, concat, optional, plus, star, sym, union


def _tiny_simple_dtd(rng: random.Random) -> DTD:
    """Depth-2 simple DTDs: r with 2 leaf children, each with one
    attribute, random multiplicities."""
    wrappers = [lambda r: r, optional, plus, star]
    parts = []
    productions = {"a": EPSILON, "b": EPSILON}
    attributes = {"a": frozenset({"@x"}), "b": frozenset({"@y"})}
    for name in ("a", "b"):
        parts.append(rng.choice(wrappers)(sym(name)))
    productions["r"] = concat(parts)
    return DTD(root="r", productions=productions, attributes=attributes)


def _tiny_disjunctive_dtd(rng: random.Random) -> DTD:
    wrappers = [lambda r: r, optional, plus, star]
    productions = {
        "a": EPSILON, "b": EPSILON, "c": EPSILON,
        "r": concat([union([sym("a"), sym("b")]),
                     rng.choice(wrappers)(sym("c"))]),
    }
    attributes = {"a": frozenset({"@x"}), "b": frozenset({"@y"}),
                  "c": frozenset({"@z"})}
    return DTD(root="r", productions=productions, attributes=attributes)


def _paths(dtd: DTD) -> list[Path]:
    return sorted(dtd.paths, key=str)


def _random_fd(rng: random.Random, dtd: DTD) -> FD:
    paths = _paths(dtd)
    lhs_size = rng.randint(1, 2)
    lhs = frozenset(rng.sample(paths, lhs_size))
    rhs = rng.choice(paths)
    return FD(lhs, frozenset({rhs}))


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000))
def test_simple_dtd_engines_agree(seed):
    rng = random.Random(seed)
    dtd = _tiny_simple_dtd(rng)
    sigma = [_random_fd(rng, dtd) for _ in range(rng.randint(0, 2))]
    query = _random_fd(rng, dtd)
    closure = closure_implies(dtd, sigma, query)
    chase = chase_implies(dtd, sigma, query)
    brute = brute_implies(dtd, sigma, query, max_word=4)
    assert closure == chase == brute, (
        str(dtd), [str(f) for f in sigma], str(query),
        closure, chase, brute)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000))
def test_disjunctive_dtd_chase_matches_brute(seed):
    rng = random.Random(seed)
    dtd = _tiny_disjunctive_dtd(rng)
    sigma = [_random_fd(rng, dtd) for _ in range(rng.randint(0, 2))]
    query = _random_fd(rng, dtd)
    chase = chase_implies(dtd, sigma, query)
    brute = brute_implies(dtd, sigma, query, max_word=4)
    assert chase == brute, (
        str(dtd), [str(f) for f in sigma], str(query), chase, brute)
    # the closure must stay sound: True only if the chase agrees
    if closure_implies(dtd, sigma, query):
        assert chase


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000))
def test_implication_is_reflexive_and_monotone(seed):
    rng = random.Random(seed)
    dtd = _tiny_simple_dtd(rng)
    sigma = [_random_fd(rng, dtd) for _ in range(2)]
    for fd in sigma:
        assert closure_implies(dtd, sigma, fd)
    query = _random_fd(rng, dtd)
    # adding premises never destroys implication
    if closure_implies(dtd, sigma[:1], query):
        assert closure_implies(dtd, sigma, query)
