"""Property tests: the Prometheus renderer is parse-valid, sorted,
and insertion-order-blind for every snapshot shape."""

from __future__ import annotations

import re

from hypothesis import given, strategies as st

from repro.obs.export import format_value, metric_name, prometheus_text

VALID_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{quantile="[0-9.]+"\})?'
    r" (NaN|[+-]Inf|-?\d+(\.\d+)?([eE][+-]?\d+)?)$")
COMMENT_LINE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)$")

obs_names = st.text(
    alphabet=st.characters(codec="ascii",
                           blacklist_categories=("Cc", "Cs")),
    min_size=1, max_size=30)
finite = st.floats(allow_nan=False, allow_infinity=False,
                   width=32)


def summary_stats(values: list[float], unit: str) -> dict:
    ordered = sorted(values)
    return {"count": len(values), "total": sum(values),
            "min": ordered[0], "max": ordered[-1],
            "mean": sum(values) / len(values),
            "p50": ordered[len(ordered) // 2],
            "p95": ordered[-1], "p99": ordered[-1], "unit": unit}


snapshots = st.fixed_dictionaries({
    "counters": st.dictionaries(obs_names, st.integers(min_value=0),
                                max_size=6),
    "gauges": st.dictionaries(obs_names, finite, max_size=6),
    "histograms": st.dictionaries(
        obs_names,
        st.lists(finite, min_size=1, max_size=8).map(
            lambda vs: summary_stats(vs, "1")),
        max_size=4),
    "timers": st.dictionaries(
        obs_names,
        st.lists(finite.map(abs), min_size=1, max_size=8).map(
            lambda vs: summary_stats(vs, "seconds")),
        max_size=4),
})


@given(name=obs_names)
def test_metric_names_always_valid(name):
    assert VALID_NAME.match(metric_name(name))
    assert VALID_NAME.match(metric_name(name, "_total"))


@given(value=st.one_of(st.integers(), st.floats(), st.booleans()))
def test_format_value_never_raises(value):
    text = format_value(value)
    assert re.match(
        r"^(NaN|[+-]Inf|-?\d+(\.\d+)?([eE][+-]?\d+)?)$", text), text


@given(snapshot=snapshots)
def test_output_is_parse_valid(snapshot):
    text = prometheus_text(snapshot)
    for line in text.splitlines():
        assert SAMPLE_LINE.match(line) or COMMENT_LINE.match(line), \
            f"invalid exposition line: {line!r}"
    assert text == "" or text.endswith("\n")


def primary_families(text: str) -> list[str]:
    """The family block order: every TYPE line except the ``_min`` /
    ``_max`` companion gauges that trail their summary block."""
    families: list[str] = []
    last_summary = None
    for line in text.splitlines():
        if not line.startswith("# TYPE"):
            continue
        name, kind = line.split()[2:4]
        if kind == "summary":
            last_summary = name
            families.append(name)
        elif last_summary is not None and kind == "gauge" \
                and name in (last_summary + "_min",
                             last_summary + "_max"):
            continue  # companion of the block, not a new family
        else:
            families.append(name)
    return families


@given(snapshot=snapshots)
def test_family_blocks_sorted(snapshot):
    # Blocks are emitted key-sorted by exported family name
    # (duplicates may collapse distinct obs names onto one exported
    # name; the order still holds).
    families = primary_families(prometheus_text(snapshot))
    assert families == sorted(families)


@given(snapshot=snapshots, seed=st.randoms(use_true_random=False))
def test_insertion_order_never_matters(snapshot, seed):
    """Rebuilding every dict in a shuffled insertion order must render
    the same bytes — the PYTHONHASHSEED-independence property."""
    shuffled = {}
    for section, mapping in snapshot.items():
        keys = list(mapping)
        seed.shuffle(keys)
        shuffled[section] = {
            key: (dict(reversed(mapping[key].items()))
                  if isinstance(mapping[key], dict) else mapping[key])
            for key in keys}
    assert prometheus_text(snapshot) == prometheus_text(shuffled)
