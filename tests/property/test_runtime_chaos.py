"""Chaos acceptance for the batch runtime: zero task loss, ever.

The invariant the whole ``repro.runtime`` layer exists for
(docs/ROBUSTNESS.md): whatever faults fire inside the engines, every
manifest task is accounted for in the batch summary as ``ok`` or
``failed`` — ``counts.lost`` is 0, every dead letter carries a full
error chain, and the report is valid JSON.  The second acceptance
criterion rides along: across a seeded random spec corpus the
differential engine ensemble records **zero** disagreements — the
three implication engines really do implement the same relation.

Scale knobs (CI raises both; see .github/workflows/ci.yml):

* ``REPRO_BATCH_CHAOS_TASKS`` — tasks in the big chaos batch (CI: 200)
* ``REPRO_ENSEMBLE_SPECS`` — specs in the agreement sweep (CI: 200)

All fault plans and corpora are seeded, so every failure replays.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import faults
from repro.runtime import corpus
from repro.runtime import manifest as mf
from repro.runtime.batch import run_batch
from repro.runtime.breaker import BreakerBoard
from repro.runtime.retry import RetryPolicy

BATCH_CHAOS_TASKS = int(os.environ.get("REPRO_BATCH_CHAOS_TASKS", "40"))
ENSEMBLE_SPECS = int(os.environ.get("REPRO_ENSEMBLE_SPECS", "40"))

#: Sites inside the engines a batch task actually drives, from parse
#: through implication to normalization.
TASK_SITES = (
    "dtd.parser.input", "dtd.parser.decl",
    "fd.closure.iteration", "fd.chase.branch", "fd.chase.step",
    "normalize.round", "normalize.checkpoint",
)


@pytest.fixture(autouse=True)
def _no_leaked_plans():
    yield
    faults.teardown()


def _manifest(count: int, seed: int) -> mf.Manifest:
    return mf.from_payload(corpus.generate_manifest(count, seed=seed))


def _assert_nothing_lost(summary: dict, total: int) -> None:
    counts = summary["counts"]
    assert counts["lost"] == 0
    assert counts["total"] == total
    assert counts["ok"] + counts["failed"] == total
    assert len(summary["tasks"]) == total
    assert len(summary["dead_letters"]) == counts["failed"]
    for letter in summary["dead_letters"]:
        assert letter["error_chain"], letter["id"]
        assert letter["reason"] in ("permanent", "retries_exhausted",
                                    "breaker_open")
    json.dumps(summary)       # the report itself must serialize


def test_clean_corpus_batch_is_all_ok():
    """The baseline: without faults the corpus is fully green, so any
    dead letter in the chaos runs below is injection, not corpus."""
    total = max(10, BATCH_CHAOS_TASKS // 4)
    summary = run_batch(_manifest(total, seed=1),
                        policy=RetryPolicy(backoff_base_ms=0, seed=1))
    assert summary["counts"] == {"total": total, "ok": total,
                                 "failed": 0, "lost": 0}


def test_big_batch_under_sustained_fault_storm_loses_nothing():
    """The headline acceptance run: a storm of transient faults across
    every engine site, enough arms to outlast retry budgets and trip
    breakers — and still every task is accounted for."""
    total = BATCH_CHAOS_TASKS
    arms = []
    for site in TASK_SITES:
        arms.extend([f"{site}:exception"] * (total // 2))
    plan = faults.plan_from_spec(",".join(arms), seed=17)
    with faults.use(plan):
        summary = run_batch(
            _manifest(total, seed=17),
            policy=RetryPolicy(retries=2, backoff_base_ms=0, seed=17),
            board=BreakerBoard(threshold=3, probe_interval=5))
    _assert_nothing_lost(summary, total)
    # The storm really happened: faults fired and the runner retried.
    assert plan.fired
    assert any(task["retried"] for task in summary["tasks"])


def test_chaos_batches_are_replay_identical():
    """Same manifest, same fault plan, same seed: byte-identical
    summaries — a failing chaos run is always reproducible."""
    def one_run():
        with faults.use(faults.plan_from_spec(
                "fd.closure.iteration:exception:1,"
                "fd.chase.step:allocation,"
                "normalize.round:exhaustion", seed=23)):
            return json.dumps(run_batch(
                _manifest(12, seed=23),
                policy=RetryPolicy(retries=2, backoff_base_ms=50,
                                   seed=23),
                sleeper=lambda ms: None), sort_keys=True)
    assert one_run() == one_run()


@settings(max_examples=25, deadline=None)
@given(site=st.sampled_from(TASK_SITES),
       kind=st.sampled_from(sorted(faults.RAISE_KINDS)),
       after=st.integers(0, 6),
       arms=st.integers(1, 30),
       seed=st.integers(0, 1_000))
def test_chaos_sweep_any_plan_loses_nothing(site, kind, after, arms,
                                            seed):
    """Property form: any single-site plan — any kind, any delay, any
    arm count — against a small corpus batch keeps the invariant."""
    spec = ",".join([f"{site}:{kind}:{after}"] * arms)
    with faults.use(faults.plan_from_spec(spec, seed=seed)):
        summary = run_batch(
            _manifest(6, seed=seed),
            policy=RetryPolicy(retries=1, backoff_base_ms=0, seed=seed),
            board=BreakerBoard(threshold=2, probe_interval=3))
    _assert_nothing_lost(summary, 6)


def test_ensemble_agreement_over_random_spec_corpus():
    """Acceptance: the three engines agree on every corpus spec.  Run
    in ``check`` mode so a disagreement would be *recorded* (and the
    assertion message would carry it) rather than crash the sweep."""
    summary = run_batch(
        _manifest(ENSEMBLE_SPECS, seed=5),
        policy=RetryPolicy(backoff_base_ms=0, seed=5),
        ensemble_mode="check")
    _assert_nothing_lost(summary, ENSEMBLE_SPECS)
    assert summary["counts"]["failed"] == 0
    disagreements = [task.get("disagreements")
                     for task in summary["tasks"]
                     if task.get("disagreements")]
    assert summary["ensemble_disagreements"] == 0, disagreements


def test_ensemble_batch_under_faults_still_loses_nothing():
    """Chaos and the oracle composed: injected faults inside ensemble
    members degrade or dead-letter, never lose tasks or fabricate
    disagreements."""
    with faults.use(faults.plan_from_spec(
            ",".join(["fd.chase.step:exception"] * 20), seed=9)):
        summary = run_batch(
            _manifest(10, seed=9),
            policy=RetryPolicy(retries=1, backoff_base_ms=0, seed=9),
            ensemble_mode="check")
    _assert_nothing_lost(summary, 10)
    assert summary["ensemble_disagreements"] == 0
