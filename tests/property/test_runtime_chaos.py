"""Chaos acceptance for the batch runtime: zero task loss, ever.

The invariant the whole ``repro.runtime`` layer exists for
(docs/ROBUSTNESS.md): whatever faults fire inside the engines, every
manifest task is accounted for in the batch summary as ``ok`` or
``failed`` — ``counts.lost`` is 0, every dead letter carries a full
error chain, and the report is valid JSON.  The second acceptance
criterion rides along: across a seeded random spec corpus the
differential engine ensemble records **zero** disagreements — the
three implication engines really do implement the same relation.

Scale knobs (CI raises both; see .github/workflows/ci.yml):

* ``REPRO_BATCH_CHAOS_TASKS`` — tasks in the big chaos batch (CI: 200)
* ``REPRO_ENSEMBLE_SPECS`` — specs in the agreement sweep (CI: 200)

All fault plans and corpora are seeded, so every failure replays.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import faults
from repro.runtime import corpus
from repro.runtime import manifest as mf
from repro.runtime.batch import run_batch
from repro.runtime.breaker import BreakerBoard
from repro.runtime.retry import RetryPolicy

BATCH_CHAOS_TASKS = int(os.environ.get("REPRO_BATCH_CHAOS_TASKS", "40"))
ENSEMBLE_SPECS = int(os.environ.get("REPRO_ENSEMBLE_SPECS", "40"))

#: Sites inside the engines a batch task actually drives, from parse
#: through implication to normalization.
TASK_SITES = (
    "dtd.parser.input", "dtd.parser.decl",
    "fd.closure.iteration", "fd.chase.branch", "fd.chase.step",
    "normalize.round", "normalize.checkpoint",
)


@pytest.fixture(autouse=True)
def _no_leaked_plans():
    yield
    faults.teardown()


def _manifest(count: int, seed: int) -> mf.Manifest:
    return mf.from_payload(corpus.generate_manifest(count, seed=seed))


def _assert_nothing_lost(summary: dict, total: int) -> None:
    counts = summary["counts"]
    assert counts["lost"] == 0
    assert counts["total"] == total
    assert counts["ok"] + counts["failed"] == total
    assert len(summary["tasks"]) == total
    assert len(summary["dead_letters"]) == counts["failed"]
    for letter in summary["dead_letters"]:
        assert letter["error_chain"], letter["id"]
        assert letter["reason"] in ("permanent", "retries_exhausted",
                                    "breaker_open", "worker_crash")
    json.dumps(summary)       # the report itself must serialize


def test_clean_corpus_batch_is_all_ok():
    """The baseline: without faults the corpus is fully green, so any
    dead letter in the chaos runs below is injection, not corpus."""
    total = max(10, BATCH_CHAOS_TASKS // 4)
    summary = run_batch(_manifest(total, seed=1),
                        policy=RetryPolicy(backoff_base_ms=0, seed=1))
    assert summary["counts"] == {"total": total, "ok": total,
                                 "failed": 0, "lost": 0}


def test_big_batch_under_sustained_fault_storm_loses_nothing():
    """The headline acceptance run: a storm of transient faults across
    every engine site, enough arms to outlast retry budgets and trip
    breakers — and still every task is accounted for."""
    total = BATCH_CHAOS_TASKS
    arms = []
    for site in TASK_SITES:
        arms.extend([f"{site}:exception"] * (total // 2))
    plan = faults.plan_from_spec(",".join(arms), seed=17)
    with faults.use(plan):
        summary = run_batch(
            _manifest(total, seed=17),
            policy=RetryPolicy(retries=2, backoff_base_ms=0, seed=17),
            board=BreakerBoard(threshold=3, probe_interval=5))
    _assert_nothing_lost(summary, total)
    # The storm really happened: faults fired and the runner retried.
    assert plan.fired
    assert any(task["retried"] for task in summary["tasks"])


def test_chaos_batches_are_replay_identical():
    """Same manifest, same fault plan, same seed: byte-identical
    summaries — a failing chaos run is always reproducible."""
    def one_run():
        with faults.use(faults.plan_from_spec(
                "fd.closure.iteration:exception:1,"
                "fd.chase.step:allocation,"
                "normalize.round:exhaustion", seed=23)):
            return json.dumps(run_batch(
                _manifest(12, seed=23),
                policy=RetryPolicy(retries=2, backoff_base_ms=50,
                                   seed=23),
                sleeper=lambda ms: None), sort_keys=True)
    assert one_run() == one_run()


@settings(max_examples=25, deadline=None)
@given(site=st.sampled_from(TASK_SITES),
       kind=st.sampled_from(sorted(faults.RAISE_KINDS)),
       after=st.integers(0, 6),
       arms=st.integers(1, 30),
       seed=st.integers(0, 1_000))
def test_chaos_sweep_any_plan_loses_nothing(site, kind, after, arms,
                                            seed):
    """Property form: any single-site plan — any kind, any delay, any
    arm count — against a small corpus batch keeps the invariant."""
    spec = ",".join([f"{site}:{kind}:{after}"] * arms)
    with faults.use(faults.plan_from_spec(spec, seed=seed)):
        summary = run_batch(
            _manifest(6, seed=seed),
            policy=RetryPolicy(retries=1, backoff_base_ms=0, seed=seed),
            board=BreakerBoard(threshold=2, probe_interval=3))
    _assert_nothing_lost(summary, 6)


def test_ensemble_agreement_over_random_spec_corpus():
    """Acceptance: the three engines agree on every corpus spec.  Run
    in ``check`` mode so a disagreement would be *recorded* (and the
    assertion message would carry it) rather than crash the sweep."""
    summary = run_batch(
        _manifest(ENSEMBLE_SPECS, seed=5),
        policy=RetryPolicy(backoff_base_ms=0, seed=5),
        ensemble_mode="check")
    _assert_nothing_lost(summary, ENSEMBLE_SPECS)
    assert summary["counts"]["failed"] == 0
    disagreements = [task.get("disagreements")
                     for task in summary["tasks"]
                     if task.get("disagreements")]
    assert summary["ensemble_disagreements"] == 0, disagreements


# -- worker-crash chaos (the pool backend) ---------------------------
#
# The parallel counterpart of the fault storms above: instead of
# exceptions *inside* the engines, whole worker processes die —
# SIGKILL, SIGTERM, plain exits, corrupted result pipes — at chosen
# points of a task's life.  The invariants are stronger than
# zero-task-loss: a run whose every task eventually succeeds must
# produce a summary *byte-identical* to the serial backend's (crash
# recovery is telemetry, not report content; docs/ROBUSTNESS.md).

POOL_CRASH_ACTIONS = ("sigkill", "sigterm", "exit", "garbage")


def _pool_run(count, seed, *, workers=2, chaos=None, crash_retries=3):
    from repro.runtime.batch import BatchRunner
    from repro.runtime.pool import PoolBackend
    pool = PoolBackend(workers, crash_retries=crash_retries,
                       chaos=chaos)
    runner = BatchRunner(corpus.stream_manifest(count, seed=seed),
                         policy=RetryPolicy(backoff_base_ms=0,
                                            seed=seed),
                         backend=pool, sleeper=lambda ms: None)
    return runner.run(), pool


def _serial_run(count, seed):
    return run_batch(corpus.stream_manifest(count, seed=seed),
                     policy=RetryPolicy(backoff_base_ms=0, seed=seed),
                     sleeper=lambda ms: None)


@pytest.mark.parametrize("action", POOL_CRASH_ACTIONS)
@pytest.mark.parametrize("timing", ("pre", "post"))
def test_worker_crash_sweep_first_attempt(action, timing):
    """Kill a worker around its first dispatch of one task — before
    the task runs or after it ran but before the result shipped — for
    every crash detection source.  Zero loss, byte-identical report."""
    chaos = {"corpus-0002": {0: (action, timing)}}
    summary, pool = _pool_run(6, seed=31, chaos=chaos)
    _assert_nothing_lost(summary, 6)
    assert summary["counts"]["ok"] == 6
    assert pool.stats.crashed == 1
    assert pool.stats.requeued == 1
    assert json.dumps(summary, sort_keys=True) \
        == json.dumps(_serial_run(6, 31), sort_keys=True)


@pytest.mark.parametrize("action", ("sigkill", "exit"))
def test_worker_crash_sweep_mid_retry(action):
    """The same task kills two workers in a row (its first and second
    crash attempts) and still recovers on the third dispatch."""
    chaos = {"corpus-0001": {0: (action, "pre"), 1: (action, "post")}}
    summary, pool = _pool_run(6, seed=31, chaos=chaos)
    _assert_nothing_lost(summary, 6)
    assert summary["counts"]["ok"] == 6
    assert pool.stats.crashed == 2
    assert pool.stats.requeued == 2
    assert json.dumps(summary, sort_keys=True) \
        == json.dumps(_serial_run(6, 31), sort_keys=True)


def test_poison_task_dead_letter_is_deterministic():
    """A task that kills every worker it lands on exhausts its crash
    budget and dead-letters with reason ``worker_crash`` — and two
    runs of that losing battle report byte-identical summaries."""
    chaos = {"corpus-0003": {attempt: ("sigkill", "pre")
                             for attempt in range(6)}}
    first, pool = _pool_run(8, seed=13, chaos=chaos, crash_retries=2)
    second, _ = _pool_run(8, seed=13, chaos=chaos, crash_retries=2)
    _assert_nothing_lost(first, 8)
    assert first["counts"]["failed"] == 1
    [letter] = first["dead_letters"]
    assert letter["reason"] == "worker_crash"
    assert json.dumps(first, sort_keys=True) \
        == json.dumps(second, sort_keys=True)
    assert pool.stats.dead_lettered == 1


def test_random_sigkill_storm_still_byte_identical():
    """An *external* killer SIGKILLs live workers at random times
    while the batch runs — timing the chaos plan cannot script.  As
    long as every task survives its crash budget, the merged summary
    must still equal the serial bytes exactly."""
    import os as _os
    import signal as _signal
    import threading
    import time as _time

    from repro.runtime.batch import BatchRunner
    from repro.runtime.pool import PoolBackend

    total, seed, kills = 24, 37, 3
    pool = PoolBackend(2, crash_retries=10_000)
    runner = BatchRunner(corpus.stream_manifest(total, seed=seed),
                         policy=RetryPolicy(backoff_base_ms=0,
                                            seed=seed),
                         backend=pool, sleeper=lambda ms: None)
    done = threading.Event()
    delivered = []

    def killer():
        while not done.is_set() and len(delivered) < kills:
            _time.sleep(0.15)
            for worker in list(pool._live.values()):
                if worker.proc.pid is None:
                    continue
                try:
                    _os.kill(worker.proc.pid, _signal.SIGKILL)
                except OSError:
                    continue
                delivered.append(worker.proc.pid)
                break

    thread = threading.Thread(target=killer, daemon=True)
    thread.start()
    try:
        summary = runner.run()
    finally:
        done.set()
        thread.join(timeout=5)
    _assert_nothing_lost(summary, total)
    assert summary["counts"]["ok"] == total
    assert pool.stats.crashed == len(delivered)
    assert json.dumps(summary, sort_keys=True) \
        == json.dumps(_serial_run(total, seed), sort_keys=True)


def test_ensemble_batch_under_faults_still_loses_nothing():
    """Chaos and the oracle composed: injected faults inside ensemble
    members degrade or dead-letter, never lose tasks or fabricate
    disagreements."""
    with faults.use(faults.plan_from_spec(
            ",".join(["fd.chase.step:exception"] * 20), seed=9)):
        summary = run_batch(
            _manifest(10, seed=9),
            policy=RetryPolicy(retries=1, backoff_base_ms=0, seed=9),
            ensemble_mode="check")
    _assert_nothing_lost(summary, 10)
    assert summary["ensemble_disagreements"] == 0
