"""Property test for Proposition 4: BCNF ⇔ XNF under the flat coding.

Random relational schemas with random FD sets; the relational BCNF
test (pure Armstrong reasoning) must agree with the XNF test of the
coded specification (tree-tuple reasoning) on every instance.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.relational.schema import RelationalFD, RelationSchema, is_in_bcnf
from repro.relational.xml_coding import relational_dtd, relational_sigma
from repro.xnf.check import is_in_xnf


def _random_instance(seed: int):
    rng = random.Random(seed)
    width = rng.randint(2, 4)
    attributes = tuple("ABCD"[:width])
    schema = RelationSchema("G", attributes)
    fds = []
    for _ in range(rng.randint(0, 3)):
        lhs = frozenset(rng.sample(attributes, rng.randint(1, width - 1)))
        remaining = [a for a in attributes if a not in lhs]
        if not remaining:
            continue
        rhs = frozenset(rng.sample(remaining, rng.randint(1,
                                                          len(remaining))))
        fds.append(RelationalFD(lhs, rhs))
    return schema, fds


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 100_000))
def test_proposition4(seed):
    schema, fds = _random_instance(seed)
    bcnf = is_in_bcnf(schema, fds)
    xnf = is_in_xnf(relational_dtd(schema),
                    relational_sigma(schema, fds))
    assert bcnf == xnf, (
        str(schema), [str(fd) for fd in fds], bcnf, xnf)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000))
def test_bcnf_decomposition_pieces_translate_to_xnf(seed):
    """Each BCNF piece of the classical decomposition codes to an XNF
    XML specification."""
    from repro.relational.schema import bcnf_decompose
    schema, fds = _random_instance(seed)
    for piece, piece_fds in bcnf_decompose(schema, fds):
        assert is_in_xnf(relational_dtd(piece),
                         relational_sigma(piece, piece_fds))
