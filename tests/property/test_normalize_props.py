"""Property tests for the decomposition algorithm (Thm 2, Prop 6-8).

Random simple specifications are normalized; we check termination, the
XNF postcondition, the shrinking anomalous-path measure, and instance
losslessness on random conforming documents.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.errors import (
    NormalizationError,
    ReproError,
    UnsupportedFeatureError,
)
from repro.datasets.generators import (
    random_document,
    random_fds,
    random_simple_dtd,
)
from repro.fd.implication import ImplicationEngine
from repro.fd.satisfaction import satisfies_all
from repro.lossless.check import check_normalization_lossless
from repro.normalize.algorithm import normalize
from repro.xnf.anomalous import anomalous_paths
from repro.xnf.check import is_in_xnf


def _spec(seed: int):
    rng = random.Random(seed)
    dtd = random_simple_dtd(rng, max_depth=3, max_children=2, max_attrs=2)
    sigma = random_fds(rng, dtd, rng.randint(1, 3))
    return rng, dtd, sigma


#: The message of the one *known* open normalizer bug (ROADMAP: the
#: Prop. 6 progress check can trip when a create step's key storage
#: surfaces a previously-shadowed anomalous path).  Pinned as a
#: strict-xfail regression below; filtered here so the property
#: sweeps stay deterministic instead of failing on whichever random
#: seeds happen to reach the same corner.  When the bug is fixed, the
#: xfail flips to XPASS (strict) and both the filter and the pin get
#: deleted together.
_KNOWN_PROP6_BUG = "Proposition 6 progress violated"


def _normalize(dtd, sigma):
    try:
        return normalize(dtd, sigma)
    except UnsupportedFeatureError:
        # a random transformation target occurs at several paths —
        # outside the Section 6 fragment; not a failure of the theorem
        return None
    except NormalizationError as error:
        if _KNOWN_PROP6_BUG in str(error):
            # the pinned open bug, not a new finding — see
            # test_known_prop6_progress_violation_seed_69910
            return None
        raise


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
@example(seed=69910)   # the pinned Prop 6 bug seed, via the filter
def test_theorem2_terminates_in_xnf(seed):
    _rng, dtd, sigma = _spec(seed)
    result = _normalize(dtd, sigma)
    if result is None:
        return
    assert is_in_xnf(result.dtd, result.sigma)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
@example(seed=69910)   # the pinned Prop 6 bug seed, via the filter
def test_proposition6_measure_shrinks(seed):
    """Each step strictly reduces the anomalous-path set (checked
    inside normalize when check_progress=True, re-asserted here on the
    endpoints)."""
    _rng, dtd, sigma = _spec(seed)
    before = anomalous_paths(ImplicationEngine(dtd, sigma))
    result = _normalize(dtd, sigma)
    if result is None:
        return
    after = anomalous_paths(ImplicationEngine(result.dtd, result.sigma))
    assert not after
    if result.steps:
        assert before


@pytest.mark.xfail(
    strict=True, raises=NormalizationError,
    reason="known open bug (ROADMAP): the create step keyed by "
    "e1.e4.e7.e8.@a9 storing @a10 clears one anomalous path but "
    "surfaces e1.e4.@a6, violating the Prop. 6 strict-progress "
    "measure.  Strict: a fix flips this to XPASS, which is the "
    "signal to delete this pin and the _KNOWN_PROP6_BUG filter.")
def test_known_prop6_progress_violation_seed_69910():
    """Deterministic regression pin for the seed-69910 progress
    violation the hypothesis sweeps kept rediscovering at random."""
    _rng, dtd, sigma = _spec(69910)
    result = normalize(dtd, sigma)   # raises NormalizationError today
    assert is_in_xnf(result.dtd, result.sigma)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000))
# Discovered failure: a create step whose key path is null on some
# tuples silently dropped the moved value; migration now refuses.
@example(seed=2138)
def test_proposition8_lossless_on_random_documents(seed):
    rng, dtd, sigma = _spec(seed)
    result = _normalize(dtd, sigma)
    if result is None or not result.steps:
        return
    found = 0
    for attempt in range(40):
        doc = random_document(rng, dtd, max_repeat=2)
        if not satisfies_all(doc, dtd, sigma):
            continue
        found += 1
        try:
            migrated = result.migrate(doc)
            assert satisfies_all(migrated, result.dtd, result.sigma)
            assert check_normalization_lossless(result, dtd, doc)
        except ReproError:
            # The document carries a value with no target node to
            # receive it: the paper's lossless witness invents carrier
            # nodes here, while our value-preserving migrator refuses
            # loudly (see EXPERIMENTS.md) — not a losslessness failure.
            continue
        if found >= 3:
            break
