"""Property tests for the decomposition algorithm (Thm 2, Prop 6-8).

Random simple specifications are normalized; we check termination, the
XNF postcondition, the shrinking anomalous-path measure, and instance
losslessness on random conforming documents.
"""

from __future__ import annotations

import random

from hypothesis import example, given, settings, strategies as st

from repro.errors import ReproError, UnsupportedFeatureError
from repro.datasets.generators import (
    random_document,
    random_fds,
    random_simple_dtd,
)
from repro.fd.implication import ImplicationEngine
from repro.fd.satisfaction import satisfies_all
from repro.lossless.check import check_normalization_lossless
from repro.normalize.algorithm import normalize
from repro.xnf.anomalous import anomalous_paths
from repro.xnf.check import is_in_xnf


def _spec(seed: int):
    rng = random.Random(seed)
    dtd = random_simple_dtd(rng, max_depth=3, max_children=2, max_attrs=2)
    sigma = random_fds(rng, dtd, rng.randint(1, 3))
    return rng, dtd, sigma


def _normalize(dtd, sigma):
    try:
        return normalize(dtd, sigma)
    except UnsupportedFeatureError:
        # a random transformation target occurs at several paths —
        # outside the Section 6 fragment; not a failure of the theorem
        return None


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
@example(seed=69910)   # the pinned Prop 6 bug seed, via the filter
def test_theorem2_terminates_in_xnf(seed):
    _rng, dtd, sigma = _spec(seed)
    result = _normalize(dtd, sigma)
    if result is None:
        return
    assert is_in_xnf(result.dtd, result.sigma)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
@example(seed=69910)   # the pinned Prop 6 bug seed, via the filter
def test_proposition6_measure_shrinks(seed):
    """Each step strictly reduces the anomalous-path set (checked
    inside normalize when check_progress=True, re-asserted here on the
    endpoints)."""
    _rng, dtd, sigma = _spec(seed)
    before = anomalous_paths(ImplicationEngine(dtd, sigma))
    result = _normalize(dtd, sigma)
    if result is None:
        return
    after = anomalous_paths(ImplicationEngine(result.dtd, result.sigma))
    assert not after
    if result.steps:
        assert before


def test_known_prop6_progress_violation_seed_69910():
    """Regression pin for the once-open seed-69910 progress violation.

    Two fixes keep this green: the closure engine's case-split
    candidates now include derived-equal element paths with unshared
    parents (so ``e1.e2.@a3 -> e1.e4`` stays derivable after the
    create step rewrites Σ and ``e1.e4.@a6`` never looks newly
    anomalous), and the runtime progress check asserts Proposition 6's
    lexicographic depth-multiset measure instead of strict set
    inclusion.  Historically this raised ``NormalizationError``
    ("Proposition 6 progress violated") and was pinned as a strict
    xfail; it must now normalize to XNF in a single create step."""
    _rng, dtd, sigma = _spec(69910)
    result = normalize(dtd, sigma)
    assert is_in_xnf(result.dtd, result.sigma)
    assert [step.kind for step in result.steps] == ["create"]


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000))
# Discovered failure: a create step whose key path is null on some
# tuples silently dropped the moved value; migration now refuses.
@example(seed=2138)
def test_proposition8_lossless_on_random_documents(seed):
    rng, dtd, sigma = _spec(seed)
    result = _normalize(dtd, sigma)
    if result is None or not result.steps:
        return
    found = 0
    for attempt in range(40):
        doc = random_document(rng, dtd, max_repeat=2)
        if not satisfies_all(doc, dtd, sigma):
            continue
        found += 1
        try:
            migrated = result.migrate(doc)
            assert satisfies_all(migrated, result.dtd, result.sigma)
            assert check_normalization_lossless(result, dtd, doc)
        except ReproError:
            # The document carries a value with no target node to
            # receive it: the paper's lossless witness invents carrier
            # nodes here, while our value-preserving migrator refuses
            # loudly (see EXPERIMENTS.md) — not a losslessness failure.
            continue
        if found >= 3:
            break
