"""Property tests for the regex substrate.

Random regexes are generated structurally with hypothesis; matching is
cross-checked against a naive language enumerator, and the simplicity
classifier is checked against its defining property (permutation
equivalence with the trivial equivalent).
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.regex.ast import (
    EPSILON,
    Regex,
    concat,
    desugar,
    optional,
    plus,
    star,
    sym,
    union,
)
from repro.regex.classify import is_simple, trivial_equivalent
from repro.regex.matching import matches, matches_multiset

_SYMBOLS = ("a", "b", "c")


def regexes(max_depth: int = 3) -> st.SearchStrategy[Regex]:
    leaves = st.sampled_from([sym(s) for s in _SYMBOLS] + [EPSILON])
    return st.recursive(
        leaves,
        lambda inner: st.one_of(
            st.builds(lambda x, y: union([x, y]), inner, inner),
            st.builds(lambda x, y: concat([x, y]), inner, inner),
            st.builds(star, inner),
            st.builds(plus, inner),
            st.builds(optional, inner),
        ),
        max_leaves=6,
    )


def language_upto(regex: Regex, max_len: int) -> set[tuple[str, ...]]:
    """Naive reference: enumerate all words up to a length and filter
    by the derivative matcher... no — by *independent* brute-force NFA
    semantics via desugared structural recursion."""
    return {
        word
        for length in range(max_len + 1)
        for word in itertools.product(_SYMBOLS, repeat=length)
        if _naive_match(regex, list(word))
    }


def _naive_match(regex: Regex, word: list[str]) -> bool:
    """Reference matcher by recursive splitting (exponential, tiny
    inputs only) on the desugared core grammar."""
    from repro.regex.ast import Concat, Epsilon, Star, Sym, Union

    regex = desugar(regex)

    def match(r: Regex, w: tuple[str, ...]) -> bool:
        if isinstance(r, Epsilon):
            return not w
        if isinstance(r, Sym):
            return w == (r.name,)
        if isinstance(r, Union):
            return any(match(p, w) for p in r.parts)
        if isinstance(r, Concat):
            first, *rest = r.parts
            tail = concat(rest)
            return any(
                match(first, w[:i]) and match(tail, w[i:])
                for i in range(len(w) + 1))
        if isinstance(r, Star):
            if not w:
                return True
            return any(
                i > 0 and match(r.inner, w[:i]) and match(r, w[i:])
                for i in range(1, len(w) + 1))
        raise AssertionError(f"unexpected node {r!r}")

    return match(regex, tuple(word))


@settings(max_examples=60, deadline=None)
@given(regexes(), st.lists(st.sampled_from(_SYMBOLS), max_size=4))
def test_derivative_matcher_agrees_with_reference(regex, word):
    assert matches(regex, word) == _naive_match(regex, word)


@settings(max_examples=60, deadline=None)
@given(regexes(), st.lists(st.sampled_from(_SYMBOLS), max_size=4))
def test_multiset_matcher_is_permutation_closure(regex, word):
    expected = any(
        _naive_match(regex, list(permutation))
        for permutation in set(itertools.permutations(word)))
    assert matches_multiset(regex, word) == expected


@settings(max_examples=60, deadline=None)
@given(regexes())
def test_simple_regexes_match_their_trivial_equivalent(regex):
    """The defining property of simplicity (Section 7): the language
    equals the trivial equivalent's language up to permutation."""
    if not is_simple(regex):
        return
    trivial = trivial_equivalent(regex)
    for length in range(4):
        for word in itertools.product(_SYMBOLS, repeat=length):
            ours = matches_multiset(regex, word)
            theirs = matches_multiset(trivial, word)
            assert ours == theirs, (regex.to_dtd(), trivial.to_dtd(), word)


@settings(max_examples=80, deadline=None)
@given(regexes())
def test_desugar_preserves_language(regex):
    core = desugar(regex)
    for length in range(4):
        for word in itertools.product(_SYMBOLS, repeat=length):
            assert matches(regex, word) == matches(core, word)
