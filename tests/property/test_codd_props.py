"""Property tests for the Codd-table algebra."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.relational.codd import CoddTable

_ATTRS = ("A", "B", "C")

_value = st.one_of(st.none(), st.sampled_from(("0", "1", "2")))
_row = st.fixed_dictionaries({a: _value for a in _ATTRS})
_rows = st.lists(_row, max_size=6)


def _table(rows) -> CoddTable:
    return CoddTable(_ATTRS, rows)


@settings(max_examples=60, deadline=None)
@given(_rows)
def test_projection_never_grows(rows):
    table = _table(rows)
    assert len(table.project(["A", "B"])) <= len(table)


@settings(max_examples=60, deadline=None)
@given(_rows)
def test_projection_composes(rows):
    table = _table(rows)
    once = table.project(["A", "B"]).project(["A"])
    direct = table.project(["A"])
    assert once == direct


@settings(max_examples=60, deadline=None)
@given(_rows, _rows)
def test_union_commutes(first, second):
    assert _table(first).union(_table(second)) == \
        _table(second).union(_table(first))


@settings(max_examples=60, deadline=None)
@given(_rows, _rows)
def test_difference_then_union_recovers_subset(first, second):
    left = _table(first)
    right = _table(second)
    recovered = left.difference(right).union(right)
    for row in left.rows:
        assert row in recovered.union(left).rows


@settings(max_examples=60, deadline=None)
@given(_rows)
def test_join_with_projection_is_contained(rows):
    """π_AB(t) ⋈ π_BC(t) ⊇ the non-null-B rows of t (lossless-join
    direction of the classical decomposition, under Codd semantics)."""
    table = _table(rows)
    joined = table.project(["A", "B"]).natural_join(
        table.project(["B", "C"]))
    for row in table.rows:
        if row["B"] is not None:
            assert row in joined.rows


@settings(max_examples=60, deadline=None)
@given(_rows)
def test_fd_satisfaction_antitone_in_rows(rows):
    """Removing rows never breaks an FD."""
    table = _table(rows)
    if table.satisfies_fd(["A"], ["B"]):
        smaller = _table(rows[: len(rows) // 2])
        subset = CoddTable(_ATTRS, [
            row for row in smaller.rows if row in table.rows])
        assert subset.satisfies_fd(["A"], ["B"])


@settings(max_examples=60, deadline=None)
@given(_rows)
def test_rename_round_trip(rows):
    table = _table(rows)
    there = table.rename({"A": "X"})
    back = there.rename({"X": "A"})
    assert back == table
