"""Fuzz harness for the resource governor.

Random specifications decided under hostile budgets must uphold the
degradation contract of ``docs/ROBUSTNESS.md``:

* a wall-clock deadline is honored within a factor of two;
* tiny step/branch/node budgets never crash the pipeline — every query
  comes back ``YES``/``NO``/``UNKNOWN``;
* ``UNKNOWN`` is only ever returned when a limit actually tripped; and
* whenever a budgeted run *does* decide, it agrees with the unbudgeted
  answer (budgets can only withhold an answer, never change it).
"""

from __future__ import annotations

import random
import time

from hypothesis import given, settings, strategies as st

from repro import guard
from repro.datasets.generators import random_fds, random_simple_dtd
from repro.dtd.model import DTD
from repro.fd.implication import UNKNOWN, YES, NO, ImplicationEngine
from repro.fd.model import FD
from repro.regex.ast import EPSILON, concat, optional, plus, star, sym, union


def _random_disjunctive_dtd(rng: random.Random) -> DTD:
    """Unions force the general engines; stars admit countermodels."""
    wrappers = [lambda r: r, optional, plus, star]
    leaves = ["a", "b", "c", "d", "e"]
    productions = {leaf: EPSILON for leaf in leaves}
    attributes = {"a": frozenset({"@x"}), "c": frozenset({"@y"}),
                  "e": frozenset({"@u", "@v"})}
    parts = [union([sym("a"), sym("b")]),
             rng.choice(wrappers)(union([sym("c"), sym("d")])),
             star(sym("e"))]
    rng.shuffle(parts)
    productions["r"] = concat(parts)
    return DTD(root="r", productions=productions, attributes=attributes)


def _random_fd(rng: random.Random, dtd: DTD) -> FD:
    paths = sorted(dtd.paths, key=str)
    lhs = frozenset(rng.sample(paths, rng.randint(1, min(2, len(paths)))))
    return FD(lhs, frozenset({rng.choice(paths)}))


def _random_spec(rng: random.Random):
    if rng.random() < 0.5:
        dtd = random_simple_dtd(rng, max_depth=2, max_children=2)
    else:
        dtd = _random_disjunctive_dtd(rng)
    # random_fds can come back short on degenerate DTDs; top up from
    # the raw path set so there is always a query.
    sigma = random_fds(rng, dtd, rng.randint(0, 2))
    query = _random_fd(rng, dtd)
    return dtd, sigma, query


def _random_budget_kwargs(rng: random.Random) -> dict:
    kwargs = {}
    if rng.random() < 0.7:
        kwargs["max_steps"] = rng.randint(1, 20)
    if rng.random() < 0.5:
        kwargs["max_branches"] = rng.randint(1, 4)
    if rng.random() < 0.5:
        kwargs["max_nodes"] = rng.randint(1, 30)
    if not kwargs:
        kwargs["max_steps"] = rng.randint(1, 20)
    return kwargs


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_tiny_budgets_never_crash_and_unknown_means_tripped(seed):
    rng = random.Random(seed)
    dtd, sigma, query = _random_spec(rng)
    engine = ImplicationEngine(dtd, sigma)
    with guard.limits(**_random_budget_kwargs(rng)) as budget:
        verdict = engine.decide(query)
    assert verdict.value in (YES, NO, UNKNOWN)
    if verdict.value == UNKNOWN:
        assert budget.tripped is not None, (
            str(dtd), [str(f) for f in sigma], str(query), verdict)
        assert verdict.limit == budget.tripped
    else:
        assert verdict.limit is None


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_budgeted_decisions_agree_with_unbudgeted(seed):
    rng = random.Random(seed)
    dtd, sigma, query = _random_spec(rng)
    with guard.limits(**_random_budget_kwargs(rng)):
        budgeted = ImplicationEngine(dtd, sigma).decide(query)
    if budgeted.value == UNKNOWN:
        return  # withheld answers carry no claim
    unbudgeted = ImplicationEngine(dtd, sigma).implies(query)
    assert budgeted.value == (YES if unbudgeted else NO), (
        str(dtd), [str(f) for f in sigma], str(query), budgeted)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000))
def test_deadline_honored_within_factor_two(seed):
    rng = random.Random(seed)
    dtd, sigma, query = _random_spec(rng)
    requested = 0.25
    engine = ImplicationEngine(dtd, sigma)
    started = time.monotonic()
    with guard.limits(deadline=requested):
        verdict = engine.decide(query)
    elapsed = time.monotonic() - started
    assert elapsed < 2 * requested, (
        f"decide ran {elapsed:.3f}s against a {requested}s deadline",
        str(dtd), str(query), verdict)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000))
def test_budget_state_always_restored(seed):
    """Neither completion nor a trip may leak the ambient budget."""
    rng = random.Random(seed)
    dtd, sigma, query = _random_spec(rng)
    with guard.limits(**_random_budget_kwargs(rng)):
        ImplicationEngine(dtd, sigma).decide(query)
    assert guard.current() is None
