"""Chaos suite for the service: faults at every ``serve.*`` site.

The HTTP containment contract under test (docs/SERVE.md):

* a fault injected at admission, cache fill, or any handler surfaces
  to the client only as a **structured error response** (the uniform
  ``{"error": {...}}`` envelope with the right kind/exit-code pair) —
  never a dropped connection, never a wedged thread;
* the spec cache is never poisoned — after the fault clears, the very
  same request succeeds with the correct answer;
* ``serve.contract_breach`` stays 0: every injected fault is a
  ``ReproError`` and must be classified, not escape;
* admission accounting never leaks — in-flight and queue depth return
  to zero after every faulted request.

One live server is shared by the sweep (faults are process-global, so
a plan installed by the test governs the handler threads); all plans
are seeded and replay exactly.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings, strategies as st

from repro import faults, obs
from repro.serve import NormalizationServer

SERVE_SITES = sorted(
    site.name for site in faults.all_sites()
    if site.subsystem == "serve")

SIMPLE_DTD = ("<!ELEMENT db (row*)>\n<!ELEMENT row EMPTY>\n"
              "<!ATTLIST row a CDATA #REQUIRED b CDATA #REQUIRED>")
SIMPLE_FDS = "db.row.@a -> db.row.@b"

CHAOS_EXAMPLES = int(os.environ.get("REPRO_CHAOS_EXAMPLES", "80"))

_ENDPOINTS = {
    "/v1/implication": {"dtd": SIMPLE_DTD, "fds": SIMPLE_FDS,
                        "fd": SIMPLE_FDS},
    "/v1/xnf-check": {"dtd": SIMPLE_DTD, "fds": SIMPLE_FDS},
    "/v1/normalize": {"dtd": SIMPLE_DTD, "fds": SIMPLE_FDS},
}

#: What a healthy answer looks like, per endpoint.
_HEALTHY = {
    "/v1/implication": lambda body: body["verdict"] == "yes",
    "/v1/xnf-check": lambda body: body["in_xnf"] is False,
    "/v1/normalize": lambda body: bool(body["steps"]),
}


@pytest.fixture(scope="module")
def server():
    was_enabled = obs.is_enabled()
    obs.enable()
    obs.reset()
    srv = NormalizationServer(0, max_inflight=4).start()
    yield srv
    srv.stop()
    obs.reset()
    if not was_enabled:
        obs.disable()


@pytest.fixture(autouse=True)
def _no_leaked_plans():
    yield
    faults.teardown()


def _settled(gate, timeout_s: float = 5.0) -> tuple[int, int]:
    """The gate's (inflight, queue_depth) once it quiesces.

    A client finishes reading its response a moment before the handler
    thread releases the permit (the permit must cover the write — the
    drain guarantee), so observers poll briefly instead of asserting
    the instant the body arrives.
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        state = gate.inflight, gate.queue_depth
        if state == (0, 0):
            break
        time.sleep(0.005)
    return gate.inflight, gate.queue_depth


def _post(url: str, payload: dict):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_serve_sites_are_registered():
    assert SERVE_SITES == [
        "serve.admission",
        "serve.cache.fill",
        "serve.handler.implication",
        "serve.handler.normalize",
        "serve.handler.xnf",
    ]


@settings(max_examples=CHAOS_EXAMPLES, deadline=None)
@given(site=st.sampled_from(SERVE_SITES),
       kind=st.sampled_from(sorted(faults.RAISE_KINDS)),
       endpoint=st.sampled_from(sorted(_ENDPOINTS)),
       after=st.integers(0, 2),
       seed=st.integers(0, 1_000))
def test_chaos_sweep_http_contract(server, site, kind, endpoint,
                                   after, seed):
    breaches_before = obs.snapshot()["counters"].get(
        "serve.contract_breach", 0)
    plan = faults.FaultPlan(
        [faults.FaultArm(site=site, kind=kind, after=after)], seed=seed)
    payload = _ENDPOINTS[endpoint]
    with faults.use(plan):
        status, body = _post(server.url(endpoint), payload)
    if plan.fired:
        # The fault surfaced as a structured error, correctly typed.
        assert "error" in body, (site, kind, endpoint, status)
        error = body["error"]
        assert set(error) == {"type", "message", "status",
                              "exit_code", "kind"}
        assert error["status"] == status
        if kind == "exhaustion":
            assert (status, error["kind"],
                    error["exit_code"]) == (408, "resource", 4)
        else:
            assert (status, error["kind"],
                    error["exit_code"]) == (500, "fault", 3)
    else:
        # ``after`` outlived the request's site visits: normal answer.
        assert status == 200, (site, kind, endpoint, body)
        assert _HEALTHY[endpoint](body)
    # Contract intact: a ReproError fault is never a breach.
    assert obs.snapshot()["counters"].get(
        "serve.contract_breach", 0) == breaches_before
    # No admission leak: the permit was released on every path.
    assert _settled(server.gate) == (0, 0)
    # No cache poisoning, server serviceable: the identical request
    # now gives the correct answer.
    status, body = _post(server.url(endpoint), payload)
    assert status == 200, (site, kind, endpoint, body)
    assert _HEALTHY[endpoint](body)


@settings(max_examples=max(20, CHAOS_EXAMPLES // 4), deadline=None)
@given(seed=st.integers(0, 1_000),
       after=st.integers(0, 1))
def test_admission_fault_never_leaks_a_permit(server, seed, after):
    """The ``serve.admission`` site fires before any accounting; a
    fault there must leave the gate exactly as it found it."""
    plan = faults.FaultPlan(
        [faults.FaultArm(site="serve.admission", kind="exception",
                         after=after)], seed=seed)
    with faults.use(plan):
        for _ in range(3):
            _post(server.url("/v1/xnf-check"),
                  _ENDPOINTS["/v1/xnf-check"])
    assert _settled(server.gate) == (0, 0)
    status, body = _post(server.url("/v1/xnf-check"),
                         _ENDPOINTS["/v1/xnf-check"])
    assert (status, body["in_xnf"]) == (200, False)


def test_cache_fill_fault_then_identical_request_fills_cleanly(server):
    """The no-poisoning guarantee, end to end over HTTP: a failed fill
    leaves no entry, and the retry builds and caches the real spec."""
    counters = obs.snapshot()["counters"]
    hits_before = counters.get("serve.cache.hit", 0)
    payload = {"dtd": SIMPLE_DTD + "\n<!-- chaos-fill -->",
               "fds": SIMPLE_FDS}
    with faults.inject("serve.cache.fill"):
        status, body = _post(server.url("/v1/xnf-check"), payload)
    assert status == 500
    assert body["error"]["kind"] == "fault"
    # First clean request: a miss (nothing was poisoned in), then hits.
    status, body = _post(server.url("/v1/xnf-check"), payload)
    assert (status, body["in_xnf"]) == (200, False)
    status, body = _post(server.url("/v1/xnf-check"), payload)
    assert status == 200
    assert obs.snapshot()["counters"].get(
        "serve.cache.hit", 0) > hits_before
