"""Property tests for the MVD extension.

The defining structural fact: tree-induced MVDs hold on *every*
conforming document — the per-label child choices below a node are
independent in ``tuples_D`` (Definition 6), so exchanging a full branch
always lands on an existing maximal tuple.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.datasets.generators import random_document, random_simple_dtd
from repro.mvd.induced import is_induced, tree_induced_mvds
from repro.mvd.satisfaction import satisfies_mvd


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_induced_mvds_hold_on_every_document(seed):
    rng = random.Random(seed)
    dtd = random_simple_dtd(rng, max_depth=3, max_children=2)
    doc = random_document(rng, dtd, max_repeat=2)
    for mvd in tree_induced_mvds(dtd):
        assert satisfies_mvd(doc, dtd, mvd), (str(dtd), str(mvd))


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_induced_detector_accepts_its_own_mvds(seed):
    rng = random.Random(seed)
    dtd = random_simple_dtd(rng, max_depth=3, max_children=2)
    for mvd in tree_induced_mvds(dtd):
        assert is_induced(dtd, mvd), str(mvd)
