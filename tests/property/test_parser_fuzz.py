"""Fuzzing the DTD/XML/content-model parsers with arbitrary input.

The contract: whatever bytes arrive, a parser either returns a valid
model or raises a :class:`~repro.errors.ReproError` subclass with a
message — never a raw ``RecursionError``, ``IndexError``,
``ValueError``, or ``UnicodeDecodeError`` leaking from the internals.
Regressions found by earlier fuzz rounds are pinned as explicit
examples.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.errors import (
    DTDSyntaxError,
    ParseError,
    ReproError,
    XMLSyntaxError,
)
from repro.dtd.parser import parse_dtd
from repro.regex.parser import parse_content_model
from repro.xmltree.parser import parse_xml


def _assert_only_repro_errors(parser, text):
    try:
        parser(text)
    except ReproError:
        pass
    except BaseException as error:  # noqa: BLE001 — the contract itself
        raise AssertionError(
            f"{parser.__name__} leaked {type(error).__name__} "
            f"on {text!r}: {error}") from error


# Fragments that steer the fuzzer toward the grammars' edges far more
# often than uniform text would.
_DTD_ATOMS = st.sampled_from([
    "<!ELEMENT ", "<!ATTLIST ", "(#PCDATA)", "EMPTY", "ANY", "CDATA",
    "#REQUIRED", "#IMPLIED", "<!--", "-->", "(", ")", "*", "+", "?",
    "|", ",", ">", "<", "a", "r", " ", "\n", '"', "x1",
])
_XML_ATOMS = st.sampled_from([
    "<a>", "</a>", "<a/>", "<a ", 'x="1"', "&lt;", "&#65;", "&#x41;",
    "&amp;", "&bogus;", "<?xml?>", "<!--", "-->", "<![CDATA[", "]]>",
    "text", ">", "<", "=", '"', "'", " ", "\n",
])
_REGEX_ATOMS = st.sampled_from([
    "#PCDATA", "(", ")", "*", "+", "?", "|", ",", "a", "b", "EMPTY",
    "ANY", " ", "#", "x",
])


def _soup(atoms):
    return st.lists(atoms, max_size=30).map("".join)


#: Fuzz depth: CI runs the default; the nightly workflow raises it
#: for the full sweep (see .github/workflows/nightly-bench.yml).
FUZZ_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "150"))


@settings(max_examples=FUZZ_EXAMPLES, deadline=None)
@given(st.one_of(st.text(max_size=80), _soup(_DTD_ATOMS)))
@example("<!ELEMENT r (a,>")
@example("<!ELEMENT r (a*)><!ATTLIST r")
@example("<!-- unterminated")
@example("<!ELEMENT r ((((((((((a))))))))))>")
def test_dtd_parser_never_leaks(text):
    _assert_only_repro_errors(parse_dtd, text)


@settings(max_examples=FUZZ_EXAMPLES, deadline=None)
@given(st.one_of(st.text(max_size=80), _soup(_XML_ATOMS)))
@example("<a>&#99999999999;</a>")
@example("<a>&#xFFFFFFFFFF;</a>")
@example("<a>&#ABC;</a>")  # hex digits without the 'x' prefix
@example("<a><b></a></b>")
@example("<a" + " " * 5)
@example("<![CDATA[")
def test_xml_parser_never_leaks(text):
    _assert_only_repro_errors(parse_xml, text)


@settings(max_examples=FUZZ_EXAMPLES, deadline=None)
@given(st.one_of(st.text(max_size=60), _soup(_REGEX_ATOMS)))
@example("((a|b)")
@example("a||b")
@example("*")
@example("(" * 40)
def test_content_model_parser_never_leaks(text):
    _assert_only_repro_errors(parse_content_model, text)


@settings(max_examples=max(60, FUZZ_EXAMPLES // 2), deadline=None)
@given(st.binary(max_size=60))
def test_parsers_survive_arbitrary_bytes(blob):
    """Garbage decoded as latin-1 (every byte sequence is valid) must
    still respect the errors contract."""
    text = blob.decode("latin-1")
    _assert_only_repro_errors(parse_dtd, text)
    _assert_only_repro_errors(parse_xml, text)
    _assert_only_repro_errors(parse_content_model, text)


def test_deep_nesting_raises_parse_error_not_recursion_error():
    # Far beyond any real content model; must degrade to a ReproError.
    _assert_only_repro_errors(parse_content_model, "(" * 50_000)
    _assert_only_repro_errors(
        parse_xml, "<a>" * 50_000)


class TestPinnedRegressions:
    """Failures found by fuzzing, kept as exact regressions."""

    def test_huge_character_reference(self):
        with pytest.raises(XMLSyntaxError):
            parse_xml("<a>&#99999999999;</a>")

    def test_hex_digits_without_x_prefix(self):
        # The reference regex admits hex digits after '#' without the
        # 'x' marker; int(..., 10) used to raise a raw ValueError.
        with pytest.raises(XMLSyntaxError):
            parse_xml("<a>&#ABC;</a>")

    def test_errors_carry_messages(self):
        for parser, text in ((parse_dtd, "<!ELEMENT r (a,>"),
                             (parse_xml, "<a><b></a>"),
                             (parse_content_model, "((a")):
            with pytest.raises(ParseError) as excinfo:
                parser(text)
            assert str(excinfo.value)

    def test_dtd_error_type(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT r (a,>")
