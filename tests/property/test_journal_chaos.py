"""Parent-kill chaos: SIGKILL the ``xnf batch`` supervisor at seeded
random points and prove ``--resume`` loses nothing and changes no
bytes.

This is the acceptance harness for the batch journal: each case runs
the real CLI in a subprocess, kills it with SIGKILL (no cleanup, no
atexit — the honest crash), then loops ``--resume`` until a run
completes, and byte-compares the final summary against an
uninterrupted serial run of the same manifest.  The manifest carries
deterministic per-task failures (broken DTDs → permanent
dead-letters) rather than ``REPRO_FAULTS`` arms: fault plans fire at
process-global hit counts, so a resumed tail would see different
faults than the uninterrupted run and the byte-identity oracle would
be meaningless.  ``--breaker-threshold`` is set high for the same
reason the contract scopes byte-identity to no-breaker-opened runs.

Scale knobs (CI raises them in the chaos-resume job):
``REPRO_RESUME_TASKS`` manifest size, ``REPRO_RESUME_KILL_POINTS``
kill points per backend.
"""

import json
import os
import random
import signal
import subprocess
import sys
import time

import pytest

TASKS = int(os.environ.get("REPRO_RESUME_TASKS", "40"))
KILL_POINTS = int(os.environ.get("REPRO_RESUME_KILL_POINTS", "3"))
MAX_RESUMES = 25

GOOD_DTD = ("<!ELEMENT r (a*)>\n<!ELEMENT a EMPTY>\n"
            "<!ATTLIST a id CDATA #REQUIRED>")
BROKEN_DTD = "<!ELEMENT r (unclosed"


def _write_manifest(path, count=TASKS):
    with open(path, "w") as stream:
        stream.write(json.dumps(
            {"schema": "repro.runtime.manifest", "version": 1,
             "defaults": {"seed": 7}, "count": count}) + "\n")
        for index in range(count):
            dtd = BROKEN_DTD if index % 7 == 3 else GOOD_DTD
            stream.write(json.dumps(
                {"id": f"t-{index:04d}", "op": "check",
                 "dtd_text": dtd}) + "\n")


def _cmd(manifest, workers=1, journal=None, resume=False):
    cmd = [sys.executable, "-m", "repro", "batch", str(manifest),
           "--backoff-base", "0", "--breaker-threshold", "1000000",
           "--workers", str(workers)]
    if journal is not None:
        cmd += ["--journal", str(journal)]
    if resume:
        cmd += ["--resume"]
    return cmd


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.path.dirname(__file__),
                                 "..", "..", "src"),
                    env.get("PYTHONPATH")) if p)
    env.pop("REPRO_FAULTS", None)
    return env


def _expected(manifest):
    """The uninterrupted serial run: the byte-identity oracle."""
    start = time.monotonic()
    proc = subprocess.run(_cmd(manifest), capture_output=True,
                          env=_env())
    assert proc.returncode == 5, proc.stderr.decode()
    return proc.stdout, time.monotonic() - start


def _assert_journal_invariants(journal):
    """No task result duplicated; every line before the last intact."""
    text = journal.read_bytes().decode()
    seen = set()
    lines = text.splitlines(keepends=True)
    for position, line in enumerate(lines):
        if not line.endswith("\n"):
            assert position == len(lines) - 1, \
                "torn record not at the tail"
            continue
        record = json.loads(line)
        if record["record"] == "result":
            assert record["index"] not in seen, \
                f"duplicate result for index {record['index']}"
            seen.add(record["index"])


def _kill_until_resumed(manifest, journal, workers, rng, baseline_s):
    """Launch fresh, SIGKILL after a random delay, then resume (each
    resume killed again with decreasing probability) until a run
    completes.  Returns the completed process."""
    resume = False
    for attempt in range(MAX_RESUMES):
        proc = subprocess.Popen(
            _cmd(manifest, workers, journal, resume),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=_env())
        resume = True
        # Kill points spread across the whole run, including the
        # startup window (journal may not exist yet) and the tail.
        must_kill = attempt == 0 or rng.random() < 0.5
        if must_kill:
            time.sleep(rng.uniform(0.05, 1.1) * baseline_s)
            if proc.poll() is None:
                os.kill(proc.pid, signal.SIGKILL)
            proc.wait()
            _assert_journal_invariants(journal) \
                if journal.exists() else None
            continue
        stdout, stderr = proc.communicate(timeout=120)
        if proc.returncode == 5:
            return stdout, stderr
        pytest.fail(f"resume exited {proc.returncode}: "
                    f"{stderr.decode()}")
    pytest.fail(f"no resume completed within {MAX_RESUMES} attempts")


@pytest.mark.parametrize("workers", [1, 4])
def test_parent_sigkill_resume_is_byte_identical(tmp_path, workers):
    if workers > 1:
        pool_mod = pytest.importorskip("repro.runtime.pool")
        if not pool_mod.pool_available():
            pytest.skip("fork start method unavailable")
    manifest = tmp_path / "m.jsonl"
    _write_manifest(manifest)
    expected, baseline_s = _expected(manifest)
    rng = random.Random(0xD1E + workers)
    for point in range(KILL_POINTS):
        journal = tmp_path / f"w{workers}-p{point}.journal"
        stdout, stderr = _kill_until_resumed(
            manifest, journal, workers, rng, baseline_s)
        assert stdout == expected, \
            f"workers={workers} point={point}: summary diverged"
        summary = json.loads(stdout)
        assert summary["counts"]["lost"] == 0
        _assert_journal_invariants(journal)


def test_mid_append_tear_is_recoverable(tmp_path):
    """The mid-append kill window, forced deterministically: the
    ``truncate`` kind at ``runtime.journal.append`` writes a torn
    record and aborts (exit 2); ``--resume`` truncates the tear with
    a warning and completes byte-identically."""
    manifest = tmp_path / "m.jsonl"
    _write_manifest(manifest)
    expected, _ = _expected(manifest)
    journal = tmp_path / "torn.journal"
    env = _env()
    env["REPRO_FAULTS"] = "runtime.journal.append:truncate:17"
    env["REPRO_FAULTS_SEED"] = "3"
    first = subprocess.run(_cmd(manifest, journal=journal),
                           capture_output=True, env=env)
    assert first.returncode == 2, first.stderr.decode()
    assert b"torn append" in first.stderr
    assert not journal.read_bytes().endswith(b"\n")
    resumed = subprocess.run(
        _cmd(manifest, journal=journal, resume=True),
        capture_output=True, env=_env())
    assert resumed.returncode == 5, resumed.stderr.decode()
    assert b"torn trailing record" in resumed.stderr
    assert resumed.stdout == expected
    _assert_journal_invariants(journal)
