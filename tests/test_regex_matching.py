"""Unit tests for derivative-based word and multiset matching."""

import pytest

from repro.regex.matching import (
    accepts_single_symbol,
    derivative,
    matches,
    matches_multiset,
)
from repro.regex.parser import parse_content_model as p


class TestMatches:
    @pytest.mark.parametrize("regex, word, expected", [
        ("(a, b)", ["a", "b"], True),
        ("(a, b)", ["b", "a"], False),
        ("(a, b)", ["a"], False),
        ("(a*)", [], True),
        ("(a*)", ["a", "a", "a"], True),
        ("(a+)", [], False),
        ("(a+)", ["a"], True),
        ("(a?)", ["a", "a"], False),
        ("(a | b)", ["a"], True),
        ("(a | b)", ["a", "b"], False),
        ("((a | b)*)", ["b", "a", "b"], True),
        ("(title, taken_by)", ["title", "taken_by"], True),
        ("(author+, title, booktitle)",
         ["author", "author", "title", "booktitle"], True),
        ("(author+, title, booktitle)", ["title", "booktitle"], False),
        ("EMPTY", [], True),
        ("EMPTY", ["a"], False),
    ])
    def test_words(self, regex, word, expected):
        assert matches(p(regex), word) is expected

    def test_pcdata_matches_text_symbol(self):
        assert matches(p("(#PCDATA)"), ["S"])
        assert not matches(p("(#PCDATA)"), [])
        assert not matches(p("(#PCDATA)"), ["S", "S"])

    def test_unknown_symbol_fails_fast(self):
        assert not matches(p("(a, b)"), ["z"])


class TestMatchesMultiset:
    @pytest.mark.parametrize("regex, counts, expected", [
        ("(a, b)", {"a": 1, "b": 1}, True),
        ("(a, b)", {"a": 1}, False),
        ("(a, b)", {"b": 1, "a": 1}, True),
        ("(a, b, a)", {"a": 2, "b": 1}, True),
        ("(a, b, a)", {"a": 1, "b": 2}, False),
        ("((a | b)*)", {"a": 3, "b": 2}, True),
        ("(a+, b?)", {"a": 2}, True),
        ("(a+, b?)", {"b": 1}, False),
        ("EMPTY", {}, True),
    ])
    def test_multisets(self, regex, counts, expected):
        assert matches_multiset(p(regex), counts) is expected

    def test_accepts_iterables(self):
        assert matches_multiset(p("(a, b)"), ["b", "a"])

    def test_symbol_outside_alphabet(self):
        assert not matches_multiset(p("(a, b)"), {"a": 1, "z": 1})

    def test_permutation_of_long_sequence(self):
        regex = p("(a, b, c, d, e)")
        assert matches_multiset(regex, ["e", "c", "a", "d", "b"])
        assert not matches_multiset(regex, ["e", "c", "a", "d"])


class TestDerivative:
    def test_derivative_of_symbol(self):
        assert derivative(p("(a)"), "a").nullable()
        assert derivative(p("(a)"), "b").is_empty_language()

    def test_derivative_chains(self):
        regex = p("(a, b)")
        assert derivative(derivative(regex, "a"), "b").nullable()

    def test_accepts_single_symbol(self):
        assert accepts_single_symbol(p("(a | b)"), "a")
        assert not accepts_single_symbol(p("(a, b)"), "a")
        assert accepts_single_symbol(p("((a | b)*)"), "b")
