"""Resumable normalization: checkpoint format, resume correctness.

The core guarantee: a run interrupted at *any* checkpoint boundary and
resumed produces byte-identical output (serialized DTD, Σ, step log
length) to the uninterrupted run — for the paper examples and for a
population of generated specifications.
"""

from __future__ import annotations

import json
import random

import pytest

from repro import faults
from repro.errors import CheckpointError, InjectedFault
from repro.datasets.generators import (
    random_fds,
    random_simple_dtd,
    scaled_university_spec,
)
from repro.datasets.dblp import dblp_spec
from repro.datasets.university import university_spec
from repro.dtd.serializer import serialize_dtd
from repro.errors import UnsupportedFeatureError
from repro.normalize import checkpoint as ck
from repro.normalize.algorithm import normalize


def _output(result):
    """The byte-comparable rendering of a normalization outcome."""
    return (serialize_dtd(result.dtd),
            [str(fd) for fd in result.sigma],
            [step.description for step in result.steps])


def _assert_resume_identical(dtd, sigma):
    """Interrupt at every checkpoint boundary; resume must reproduce
    the uninterrupted run exactly (through a JSON round-trip)."""
    base = normalize(dtd, sigma)
    expected = _output(base)
    boundaries = []
    normalize(dtd, sigma, on_step=boundaries.append)
    assert len(boundaries) == len(base.steps)
    for checkpoint in boundaries:
        restored = ck.NormalizationCheckpoint.from_json(
            checkpoint.to_json())
        resumed = normalize(dtd, sigma, resume=restored)
        assert _output(resumed) == expected


class TestResumeCorrectness:
    def test_university_example(self):
        spec = university_spec()
        _assert_resume_identical(spec.dtd, list(spec.sigma))

    def test_dblp_example(self):
        spec = dblp_spec()
        _assert_resume_identical(spec.dtd, list(spec.sigma))

    @pytest.mark.parametrize("k", [2, 4])
    def test_scaled_multi_step(self, k):
        spec = scaled_university_spec(k)
        base = normalize(spec.dtd, list(spec.sigma))
        assert len(base.steps) == k  # genuinely multi-boundary
        _assert_resume_identical(spec.dtd, list(spec.sigma))

    def test_fifty_generated_specs(self):
        covered = 0
        seed = 0
        while covered < 50:
            seed += 1
            rng = random.Random(seed)
            dtd = random_simple_dtd(rng, max_depth=3, max_children=2,
                                    max_attrs=2)
            sigma = random_fds(rng, dtd, rng.randint(1, 3))
            try:
                if not normalize(dtd, sigma).steps:
                    continue
            except UnsupportedFeatureError:
                continue
            _assert_resume_identical(dtd, sigma)
            covered += 1

    def test_resume_after_injected_fault(self, tmp_path):
        """The advertised workflow: a fault kills the run right after a
        snapshot; resuming from the file completes identically."""
        spec = scaled_university_spec(3)
        base = normalize(spec.dtd, list(spec.sigma))
        path = tmp_path / "run.ckpt"
        with faults.inject("normalize.checkpoint", after=1):
            with pytest.raises(InjectedFault):
                normalize(spec.dtd, list(spec.sigma),
                          on_step=lambda cp: ck.save(path, cp))
        restored = ck.load(path)
        assert restored.rounds_completed == 2
        resumed = normalize(spec.dtd, list(spec.sigma), resume=restored)
        assert _output(resumed) == _output(base)

    def test_recorded_steps_refuse_migration(self):
        spec = scaled_university_spec(2)
        boundaries = []
        normalize(spec.dtd, list(spec.sigma),
                  on_step=boundaries.append)
        resumed = normalize(spec.dtd, list(spec.sigma),
                            resume=boundaries[0])
        from repro.datasets.university import university_document
        with pytest.raises(CheckpointError, match="migrate"):
            resumed.migrate(university_document())


class TestCheckpointFormat:
    def _one(self):
        spec = university_spec()
        boundaries = []
        normalize(spec.dtd, list(spec.sigma), on_step=boundaries.append)
        return spec, boundaries[-1]

    def test_json_round_trip(self):
        _spec, checkpoint = self._one()
        restored = ck.NormalizationCheckpoint.from_json(
            checkpoint.to_json())
        assert restored == checkpoint

    def test_schema_discriminator_and_version(self):
        _spec, checkpoint = self._one()
        payload = json.loads(checkpoint.to_json())
        assert payload["schema"] == ck.CHECKPOINT_SCHEMA
        assert payload["version"] == ck.CHECKPOINT_VERSION

    def test_version_mismatch_rejected(self):
        _spec, checkpoint = self._one()
        payload = json.loads(checkpoint.to_json())
        payload["version"] = ck.CHECKPOINT_VERSION + 1
        with pytest.raises(CheckpointError, match="version"):
            ck.NormalizationCheckpoint.from_json(json.dumps(payload))

    def test_not_a_checkpoint_rejected(self):
        with pytest.raises(CheckpointError):
            ck.NormalizationCheckpoint.from_json("{}")
        with pytest.raises(CheckpointError):
            ck.NormalizationCheckpoint.from_json("not json")
        with pytest.raises(CheckpointError):
            ck.NormalizationCheckpoint.from_json("[1, 2]")

    def test_missing_fields_rejected(self):
        _spec, checkpoint = self._one()
        payload = json.loads(checkpoint.to_json())
        del payload["dtd"]
        with pytest.raises(CheckpointError, match="missing"):
            ck.NormalizationCheckpoint.from_json(json.dumps(payload))

    def test_fingerprint_mismatch_refused(self):
        spec, checkpoint = self._one()
        other = dblp_spec()
        with pytest.raises(CheckpointError, match="different"):
            normalize(other.dtd, list(other.sigma), resume=checkpoint)

    def test_fingerprint_insensitive_to_fd_order(self):
        spec = university_spec()
        sigma = list(spec.sigma)
        assert ck.fingerprint(spec.dtd, sigma) \
            == ck.fingerprint(spec.dtd, list(reversed(sigma)))

    def test_corrupt_state_rejected(self):
        _spec, checkpoint = self._one()
        payload = json.loads(checkpoint.to_json())
        payload["dtd"] = "<!ELEMENT broken ("
        broken = ck.NormalizationCheckpoint.from_json(
            json.dumps(payload))
        with pytest.raises(CheckpointError, match="parse"):
            broken.restore()

    def test_save_and_load_round_trip(self, tmp_path):
        _spec, checkpoint = self._one()
        path = tmp_path / "a.ckpt"
        ck.save(path, checkpoint)
        assert ck.load(path) == checkpoint
        # atomic write: no stray temp files left behind
        assert [p.name for p in tmp_path.iterdir()] == ["a.ckpt"]

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            ck.load(tmp_path / "absent.ckpt")

    def test_obs_counters(self, tmp_path):
        from repro import obs
        _spec, checkpoint = self._one()
        obs.enable()
        obs.reset()
        try:
            path = tmp_path / "c.ckpt"
            ck.save(path, checkpoint)
            ck.load(path).restore()
            counters = obs.snapshot()["counters"]
            assert counters["checkpoint.saved"] == 1
            assert counters["checkpoint.restored"] == 1
        finally:
            obs.reset()
            obs.disable()


class TestAtomicSaveCrashWindow:
    """The ``checkpoint.save`` fault site sits between writing the
    temp file and renaming it into place — the window where a naive
    implementation leaks ``*.tmp`` files on every crashed save."""

    def _one(self):
        spec = university_spec()
        boundaries = []
        normalize(spec.dtd, list(spec.sigma), on_step=boundaries.append)
        return boundaries[-1]

    @pytest.mark.parametrize("kind", ["exception", "allocation"])
    def test_failed_save_leaves_no_temp_files(self, tmp_path, kind):
        checkpoint = self._one()
        path = tmp_path / "c.ckpt"
        with faults.use(faults.plan_from_spec(f"checkpoint.save:{kind}")):
            with pytest.raises(Exception) as info:
                ck.save(path, checkpoint)
        from repro.errors import ReproError
        assert isinstance(info.value, ReproError)
        # Neither a torn checkpoint nor a leaked temp file survives.
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_failed_save_preserves_previous_checkpoint(self, tmp_path):
        checkpoint = self._one()
        path = tmp_path / "c.ckpt"
        ck.save(path, checkpoint)
        before = path.read_text()
        with faults.use(faults.plan_from_spec("checkpoint.save")):
            with pytest.raises(InjectedFault):
                ck.save(path, checkpoint)
        # The atomic protocol never tears the existing file.
        assert path.read_text() == before
        assert list(tmp_path.iterdir()) == [path]

    def test_save_succeeds_after_the_transient_fault(self, tmp_path):
        """The transient model: the arm fires once; a retry lands."""
        checkpoint = self._one()
        path = tmp_path / "c.ckpt"
        with faults.use(faults.plan_from_spec("checkpoint.save")):
            with pytest.raises(InjectedFault):
                ck.save(path, checkpoint)
            ck.save(path, checkpoint)     # same plan, arm spent
        assert ck.load(path).fingerprint == checkpoint.fingerprint
