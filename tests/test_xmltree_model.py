"""Unit tests for the XML tree model (Definition 2)."""

import pytest

from repro.errors import InvalidTreeError
from repro.xmltree.model import XMLTree, elem


class TestElemLiteral:
    def test_simple(self):
        tree = XMLTree.from_nested(
            elem("courses", children=[
                elem("course", {"cno": "csc200"}, [
                    elem("title", text="Automata Theory"),
                ]),
            ]))
        assert tree.label(tree.root) == "courses"
        course = tree.children(tree.root)[0]
        assert tree.attr(course, "cno") == "csc200"
        assert tree.attr(course, "@cno") == "csc200"
        title = tree.children(course)[0]
        assert tree.text(title) == "Automata Theory"

    def test_mixed_content_rejected(self):
        with pytest.raises(InvalidTreeError):
            elem("a", text="hi", children=[elem("b")])

    def test_attrs_normalized_to_at(self):
        tree = XMLTree.from_nested(elem("a", {"@x": "1", "y": "2"}))
        assert tree.attrs_of(tree.root) == {"@x": "1", "@y": "2"}


class TestAddNode:
    def test_first_node_is_root(self):
        tree = XMLTree()
        node = tree.add_node("r")
        assert tree.root == node

    def test_second_root_rejected(self):
        tree = XMLTree()
        tree.add_node("r")
        with pytest.raises(InvalidTreeError):
            tree.add_node("r2")

    def test_duplicate_id_rejected(self):
        tree = XMLTree()
        tree.add_node("r", node_id="n1")
        with pytest.raises(InvalidTreeError):
            tree.add_node("x", node_id="n1", parent="n1")

    def test_cannot_attach_to_text_node(self):
        tree = XMLTree()
        root = tree.add_node("r", text="hello")
        with pytest.raises(InvalidTreeError):
            tree.add_node("x", parent=root)

    def test_text_after_children_rejected(self):
        tree = XMLTree()
        root = tree.add_node("r")
        tree.add_node("x", parent=root)
        with pytest.raises(InvalidTreeError):
            tree.set_text(root, "boom")


class TestFreeze:
    def test_no_root(self):
        with pytest.raises(InvalidTreeError):
            XMLTree().freeze()

    def test_unreachable_node(self):
        tree = XMLTree()
        tree.add_node("r")
        tree.labels["ghost"] = "g"
        tree.content["ghost"] = []
        with pytest.raises(InvalidTreeError):
            tree.freeze()

    def test_shared_child_rejected(self):
        tree = XMLTree()
        root = tree.add_node("r")
        child = tree.add_node("c", parent=root)
        body = tree.content[root]
        assert isinstance(body, list)
        body.append(child)  # the same node twice
        with pytest.raises(InvalidTreeError):
            tree.freeze()


class TestAccessors:
    @pytest.fixture
    def tree(self):
        return XMLTree.from_nested(
            elem("r", children=[
                elem("a", {"x": "1"}),
                elem("b", children=[elem("a", {"x": "2"})]),
            ]))

    def test_nodes(self, tree):
        assert len(tree.nodes) == 4

    def test_parent(self, tree):
        a1, b = tree.children(tree.root)
        assert tree.parent(a1) == tree.root
        assert tree.parent(tree.root) is None
        inner = tree.children(b)[0]
        assert tree.parent(inner) == b

    def test_children_with_label(self, tree):
        assert len(tree.children_with_label(tree.root, "a")) == 1
        assert len(tree.children_with_label(tree.root, "zzz")) == 0

    def test_iter_nodes_preorder(self, tree):
        order = [tree.label(n) for n in tree.iter_nodes()]
        assert order == ["r", "a", "b", "a"]

    def test_size(self, tree):
        assert tree.size() == 4

    def test_copy_is_independent(self, tree):
        duplicate = tree.copy()
        duplicate.attributes[(duplicate.children(duplicate.root)[0],
                              "@x")] = "changed"
        original_a = tree.children(tree.root)[0]
        assert tree.attr(original_a, "x") == "1"
