"""Axiom battery for XML FD implication.

Section 4 notes that XML FDs satisfy relational-style laws plus extra
DTD-induced trivial FDs.  This module checks the classical Armstrong
behaviours (reflexivity, augmentation, transitivity, union,
decomposition, pseudo-transitivity) and the XML-specific axioms
(ancestor, attribute, text, forced-child) hold under the implemented
implication — on the university schema, under several Σ sets.
"""

import pytest

from repro.fd.implication import ImplicationEngine
from repro.fd.model import FD

C = "courses.course"
S = "courses.course.taken_by.student"


@pytest.fixture
def oracle(uni_spec):
    return ImplicationEngine(uni_spec.dtd, uni_spec.sigma)


@pytest.fixture
def empty_oracle(uni_spec):
    return ImplicationEngine(uni_spec.dtd, [])


class TestArmstrongStyle:
    def test_reflexivity(self, empty_oracle):
        assert empty_oracle.implies(FD.parse(f"{S}.@sno -> {S}.@sno"))
        assert empty_oracle.implies(
            FD.parse(f"{{{C}, {S}.@sno}} -> {S}.@sno"))

    def test_augmentation(self, oracle, uni_spec):
        """X -> Y implies XZ -> Y."""
        base = FD.parse(f"{S}.@sno -> {S}.name.S")
        assert oracle.implies(base)
        augmented = FD(base.lhs | {FD.parse(f"{C} -> {C}").single_rhs},
                       base.rhs)
        assert oracle.implies(augmented)

    def test_transitivity_via_key(self, oracle):
        """cno -> course (FD1), course -> title (DTD) => cno -> title."""
        assert oracle.implies(FD.parse(f"{C}.@cno -> {C}"))
        assert oracle.implies(FD.parse(f"{C} -> {C}.title"))
        assert oracle.implies(FD.parse(f"{C}.@cno -> {C}.title"))

    def test_union(self, oracle):
        """X -> Y and X -> Z give X -> YZ."""
        assert oracle.implies(FD.parse(f"{C}.@cno -> {C}.title"))
        assert oracle.implies(FD.parse(f"{C}.@cno -> {C}.taken_by"))
        assert oracle.implies(FD.parse(
            f"{C}.@cno -> {{{C}.title, {C}.taken_by}}"))

    def test_decomposition(self, oracle):
        """X -> YZ gives X -> Y."""
        assert oracle.implies(FD.parse(
            f"{C}.@cno -> {{{C}.title, {C}.taken_by}}"))
        assert oracle.implies(FD.parse(f"{C}.@cno -> {C}.title"))

    def test_pseudo_transitivity(self, oracle):
        """FD2: {course, sno} -> student; student -> grade.S (DTD);
        so {course, sno} -> grade.S."""
        assert oracle.implies(FD.parse(
            f"{{{C}, {S}.@sno}} -> {S}.grade.S"))

    def test_non_implication_controls(self, oracle):
        """Sanity: implication is not trivially everything."""
        assert not oracle.implies(FD.parse(f"{C}.@cno -> {S}"))
        assert not oracle.implies(FD.parse(f"{S}.@sno -> {S}"))
        assert not oracle.implies(FD.parse(
            f"{S}.name.S -> {S}.@sno"))


class TestXMLSpecificAxioms:
    """The DTD-induced trivial FDs of Section 4."""

    def test_ancestor_axiom(self, empty_oracle):
        """p -> p' for every prefix p' of an element path p."""
        assert empty_oracle.implies(FD.parse(f"{S} -> {C}"))
        assert empty_oracle.implies(FD.parse(f"{S} -> courses"))

    def test_attribute_axiom(self, empty_oracle):
        """p -> p.@l."""
        assert empty_oracle.implies(FD.parse(f"{S} -> {S}.@sno"))
        assert empty_oracle.implies(FD.parse(f"{C} -> {C}.@cno"))

    def test_text_axiom(self, empty_oracle):
        """p -> p.S for #PCDATA elements."""
        assert empty_oracle.implies(
            FD.parse(f"{S}.name -> {S}.name.S"))

    def test_forced_single_child_axiom(self, empty_oracle):
        """p -> p.c when c occurs at most once in P(last(p))."""
        assert empty_oracle.implies(FD.parse(f"{C} -> {C}.title"))
        assert empty_oracle.implies(FD.parse(f"{S} -> {S}.grade"))

    def test_starred_child_not_trivial(self, empty_oracle):
        assert not empty_oracle.implies(FD.parse(f"courses -> {C}"))
        assert not empty_oracle.implies(
            FD.parse(f"{C}.taken_by -> {S}"))

    def test_attribute_never_determines_node_trivially(
            self, empty_oracle):
        assert not empty_oracle.implies(FD.parse(f"{C}.@cno -> {C}"))

    def test_root_determined_by_everything(self, empty_oracle):
        assert empty_oracle.implies(
            FD.parse(f"{S}.grade.S -> courses"))


class TestMonotonicityLaws:
    def test_sigma_monotone(self, uni_spec):
        """More FDs never retract implications."""
        small = ImplicationEngine(uni_spec.dtd, uni_spec.sigma[:1])
        big = ImplicationEngine(uni_spec.dtd, uni_spec.sigma)
        probes = [
            FD.parse(f"{C}.@cno -> {C}.title.S"),
            FD.parse(f"{S}.@sno -> {S}.name.S"),
            FD.parse(f"{{{C}, {S}.@sno}} -> {S}"),
        ]
        for probe in probes:
            if small.implies(probe):
                assert big.implies(probe)

    def test_lhs_monotone(self, oracle):
        """Bigger LHS never loses an implication."""
        base = FD.parse(f"{S}.@sno -> {S}.name.S")
        assert oracle.implies(base)
        bigger = FD(base.lhs | {FD.parse(
            f"{C}.@cno -> {C}.@cno").single_rhs}, base.rhs)
        assert oracle.implies(bigger)
