"""Unit tests for *moving attributes* applied to a text value.

When the anomalous value is ``p.S`` (the text of a #PCDATA element),
the paper's coding turns it into an attribute first; the implementation
folds the whole text element into an attribute of ``q`` directly —
the element type disappears from the schema.
"""

import pytest

from repro.dtd.parser import parse_dtd
from repro.fd.model import FD
from repro.lossless.check import check_normalization_lossless
from repro.spec import XMLSpec
from repro.xmltree.conformance import conforms


DTD = """
<!ELEMENT catalog (product*)>
<!ELEMENT product (maker*)>
<!ATTLIST product pid CDATA #REQUIRED>
<!ELEMENT maker (#PCDATA)>
"""

# every maker listed under one product carries the same name text:
FDS = """
catalog.product.@pid -> catalog.product
catalog.product -> catalog.product.maker.S
"""

DOC = """
<catalog>
  <product pid="p1"><maker>acme</maker><maker>acme</maker></product>
  <product pid="p2"><maker>bolt</maker></product>
</catalog>
"""


@pytest.fixture
def spec():
    return XMLSpec.parse(DTD, FDS)


class TestMoveTextValue:
    def test_anomaly_detected(self, spec):
        violations = spec.xnf_violations()
        assert [str(v) for v in violations] == [
            "catalog.product -> catalog.product.maker.S"]

    def test_element_folds_into_attribute(self, spec):
        result = spec.normalize()
        assert [s.kind for s in result.steps] == ["move"]
        # the maker element type is gone; product gained an attribute
        assert "maker" not in result.dtd.element_types
        new_attrs = result.dtd.attrs("product") - {"@pid"}
        assert len(new_attrs) == 1

    def test_migration(self, spec):
        result = spec.normalize()
        doc = spec.parse_document(DOC)
        migrated = result.migrate(doc)
        assert conforms(migrated, result.dtd)
        attr = next(iter(result.dtd.attrs("product") - {"@pid"}))
        values = sorted(
            v for (n, a), v in migrated.attributes.items() if a == attr)
        assert values == ["acme", "bolt"]

    def test_lossless(self, spec):
        result = spec.normalize()
        doc = spec.parse_document(DOC)
        assert check_normalization_lossless(result, spec.dtd, doc)

    def test_result_in_xnf(self, spec):
        result = spec.normalize()
        from repro.xnf.check import is_in_xnf
        assert is_in_xnf(result.dtd, result.sigma)


class TestGuards:
    def test_text_element_with_attributes_rejected(self):
        from repro.errors import UnsupportedFeatureError
        from repro.normalize.transforms import move_attribute
        from repro.dtd.paths import Path
        dtd = parse_dtd("""
            <!ELEMENT r (x*)>
            <!ELEMENT x (t)>
            <!ELEMENT t (#PCDATA)>
            <!ATTLIST t lang CDATA #REQUIRED>
        """)
        with pytest.raises(UnsupportedFeatureError):
            move_attribute(dtd, [], Path.parse("r.x.t.S"),
                           Path.parse("r.x"))
