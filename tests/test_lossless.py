"""Unit tests for the instance-level losslessness checks (Prop. 8)."""

from repro.datasets.university import (
    synthetic_university_document,
    university_document,
    university_spec,
)
from repro.datasets.dblp import (
    dblp_document,
    dblp_spec,
    synthetic_dblp_document,
)
from repro.lossless.check import (
    check_normalization_lossless,
    check_step_lossless,
    reconstruct_projection,
    string_projection,
)


class TestStringProjection:
    def test_row_count(self, uni_spec, uni_doc):
        rows = string_projection(uni_spec.dtd, uni_doc)
        assert len(rows) == 4

    def test_rows_carry_values(self, uni_spec, uni_doc):
        rows = string_projection(uni_spec.dtd, uni_doc)
        sample = {dict(row)["courses.course.@cno"] for row in rows}
        assert sample == {"csc200", "mat100"}

    def test_nulls_omitted(self, uni_spec):
        from repro.xmltree.parser import parse_xml
        doc = parse_xml(
            '<courses><course cno="c"><title>T</title><taken_by/>'
            "</course></courses>")
        (row,) = string_projection(uni_spec.dtd, doc)
        keys = {key for key, _ in row}
        assert "courses.course.taken_by.student.@sno" not in keys


class TestStepLossless:
    def test_university_create_step(self, uni_spec, uni_doc):
        result = uni_spec.normalize()
        assert check_step_lossless(result.steps[0], uni_spec.dtd, uni_doc)

    def test_dblp_move_step(self, dblp, dblp_doc):
        result = dblp.normalize()
        assert check_step_lossless(result.steps[0], dblp.dtd, dblp_doc)

    def test_reconstruction_matches_projection(self, dblp, dblp_doc):
        result = dblp.normalize()
        step = result.steps[0]
        original = string_projection(dblp.dtd, dblp_doc)
        migrated = step.migrate(dblp_doc)
        rebuilt = reconstruct_projection(step, dblp.dtd, migrated)
        assert rebuilt == original


class TestEndToEnd:
    def test_university_chain(self):
        spec = university_spec()
        result = spec.normalize()
        assert check_normalization_lossless(
            result, spec.dtd, university_document())

    def test_dblp_chain(self):
        spec = dblp_spec()
        result = spec.normalize()
        assert check_normalization_lossless(
            result, spec.dtd, dblp_document())

    def test_synthetic_university_documents(self):
        spec = university_spec()
        result = spec.normalize()
        for seed in range(3):
            doc = synthetic_university_document(
                courses=3, students_per_course=3, seed=seed)
            assert spec.document_satisfies(doc)
            assert check_normalization_lossless(result, spec.dtd, doc)

    def test_synthetic_dblp_documents(self):
        spec = dblp_spec()
        result = spec.normalize()
        for seed in range(3):
            doc = synthetic_dblp_document(
                confs=2, issues_per_conf=2, papers_per_issue=2, seed=seed)
            assert spec.document_satisfies(doc)
            assert check_normalization_lossless(result, spec.dtd, doc)

    def test_prop7_variant_lossless_on_university(self):
        spec = university_spec()
        result = spec.normalize_simple()
        assert check_normalization_lossless(
            result, spec.dtd, university_document())
