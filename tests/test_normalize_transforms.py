"""Unit tests for the two Section 6 transformations."""

import pytest

from repro.errors import ConformanceError, UnsupportedFeatureError
from repro.dtd.parser import parse_dtd
from repro.dtd.paths import Path
from repro.fd.model import FD
from repro.normalize.transforms import (
    NewElementNames,
    create_element_type,
    move_attribute,
)
from repro.xmltree.conformance import conforms
from repro.xmltree.parser import parse_xml


P = Path.parse


class TestMoveAttribute:
    def test_dblp_move(self, dblp):
        step = move_attribute(
            dblp.dtd, dblp.sigma,
            P("db.conf.issue.inproceedings.@year"), P("db.conf.issue"))
        assert step.kind == "move"
        assert "@year" in step.dtd.attrs("issue")
        assert "@year" not in step.dtd.attrs("inproceedings")
        # FD5 became trivial and was dropped; FD4 survives
        assert step.sigma == [dblp.sigma[0]]

    def test_renaming_map(self, dblp):
        step = move_attribute(
            dblp.dtd, dblp.sigma,
            P("db.conf.issue.inproceedings.@year"), P("db.conf.issue"))
        assert step.renaming == {
            P("db.conf.issue.inproceedings.@year"):
            P("db.conf.issue.@year")}

    def test_fresh_attribute_on_clash(self, dblp):
        dtd = parse_dtd("""
            <!ELEMENT db (conf*)>
            <!ELEMENT conf (issue+)>
            <!ELEMENT issue (paper+)>
            <!ATTLIST issue year CDATA #REQUIRED>
            <!ELEMENT paper EMPTY>
            <!ATTLIST paper year CDATA #REQUIRED>
        """)
        step = move_attribute(dtd, [], P("db.conf.issue.paper.@year"),
                              P("db.conf.issue"))
        assert "@year1" in step.dtd.attrs("issue")

    def test_migration(self, dblp, dblp_doc):
        step = move_attribute(
            dblp.dtd, dblp.sigma,
            P("db.conf.issue.inproceedings.@year"), P("db.conf.issue"))
        migrated = step.migrate(dblp_doc)
        assert conforms(migrated, step.dtd)
        years = sorted(
            value for (node, attr), value in migrated.attributes.items()
            if attr == "@year" and migrated.label(node) == "issue")
        assert years == ["2001", "2002"]

    def test_migration_rejects_violating_document(self, dblp):
        doc = parse_xml("""
        <db><conf><title>X</title><issue>
          <inproceedings key="a" pages="1" year="2001">
            <author>A</author><title>P</title><booktitle>B</booktitle>
          </inproceedings>
          <inproceedings key="b" pages="2" year="2002">
            <author>B</author><title>Q</title><booktitle>B</booktitle>
          </inproceedings>
        </issue></conf></db>
        """)
        step = move_attribute(
            dblp.dtd, dblp.sigma,
            P("db.conf.issue.inproceedings.@year"), P("db.conf.issue"))
        with pytest.raises(ConformanceError):
            step.migrate(doc)

    def test_element_value_path_rejected(self, dblp):
        from repro.errors import InvalidFDError
        with pytest.raises(InvalidFDError):
            move_attribute(dblp.dtd, dblp.sigma,
                           P("db.conf.issue"), P("db.conf"))

    def test_shared_type_guard(self, dblp):
        # 'title' occurs at two paths; moving its text is ambiguous
        with pytest.raises(UnsupportedFeatureError):
            move_attribute(dblp.dtd, dblp.sigma,
                           P("db.conf.title.S"), P("db.conf"))


class TestCreateElementType:
    def test_university_create(self, uni_spec):
        fd = uni_spec.sigma[2]
        fd = FD(fd.lhs | {P("courses")}, fd.rhs)
        step = create_element_type(
            uni_spec.dtd, uni_spec.sigma, fd,
            names=NewElementNames(tau="info", taus=["number"]))
        dtd = step.dtd
        assert dtd.content("courses").to_dtd() == "(course*, info*)"
        assert dtd.content("info").to_dtd() == "(number*, name)"
        assert dtd.content("student").to_dtd() == "grade"
        assert dtd.attrs("number") == {"@sno"}
        assert dtd.attrs("info") == frozenset()

    def test_structural_fds_added(self, uni_spec):
        fd = FD(uni_spec.sigma[2].lhs | {P("courses")},
                uni_spec.sigma[2].rhs)
        step = create_element_type(
            uni_spec.dtd, uni_spec.sigma, fd,
            names=NewElementNames(tau="info", taus=["number"]))
        rendered = {str(f) for f in step.sigma}
        assert ("{courses, courses.info.number.@sno} -> courses.info"
                in rendered)
        assert ("{courses.info, courses.info.number.@sno} -> "
                "courses.info.number" in rendered)

    def test_migration_reproduces_figure_1b(self, uni_spec, uni_doc):
        fd = FD(uni_spec.sigma[2].lhs | {P("courses")},
                uni_spec.sigma[2].rhs)
        step = create_element_type(
            uni_spec.dtd, uni_spec.sigma, fd,
            names=NewElementNames(tau="info", taus=["number"]))
        migrated = step.migrate(uni_doc)
        assert conforms(migrated, step.dtd)
        # group content: Deere -> {st1}, Smith -> {st2, st3}
        groups = {}
        for node in migrated.iter_nodes():
            if migrated.label(node) == "info":
                name = next(
                    migrated.text(c) for c in migrated.children(node)
                    if migrated.label(c) == "name")
                numbers = sorted(
                    migrated.attr(c, "sno")
                    for c in migrated.children(node)
                    if migrated.label(c) == "number")
                groups[name] = numbers
        assert groups == {"Deere": ["st1"], "Smith": ["st2", "st3"]}

    def test_attribute_value_variant(self):
        """The value is an attribute rather than text."""
        dtd = parse_dtd("""
            <!ELEMENT shop (item*)>
            <!ELEMENT item EMPTY>
            <!ATTLIST item sku CDATA #REQUIRED price CDATA #REQUIRED>
        """)
        sigma = [FD.parse("shop.item.@sku -> shop.item.@price")]
        fd = FD.parse("{shop, shop.item.@sku} -> shop.item.@price")
        step = create_element_type(dtd, sigma, fd)
        assert "@price" not in step.dtd.attrs("item")
        tau = next(t for t in step.dtd.element_types
                   if t not in dtd.element_types
                   and "@price" in step.dtd.attrs(t))
        doc = parse_xml(
            '<shop><item sku="a" price="10"/><item sku="b" price="10"/>'
            '<item sku="a" price="10"/></shop>')
        migrated = step.migrate(doc)
        assert conforms(migrated, step.dtd)
        # one tau group per distinct price... keyed by sku: price 10
        # stored once per group
        taus = [n for n in migrated.iter_nodes()
                if migrated.label(n) == tau]
        assert len(taus) == 1

    def test_degenerate_no_keys(self):
        """n = 0: a lone element path determines the value (the
        Proposition 7 shape)."""
        dtd = parse_dtd("""
            <!ELEMENT db (issue*)>
            <!ELEMENT issue (paper+)>
            <!ELEMENT paper EMPTY>
            <!ATTLIST paper year CDATA #REQUIRED>
        """)
        sigma = [FD.parse("db.issue -> db.issue.paper.@year")]
        step = create_element_type(dtd, sigma, sigma[0])
        assert conforms(
            step.migrate(parse_xml(
                '<db><issue><paper year="2002"/><paper year="2002"/>'
                "</issue></db>")),
            step.dtd)

    def test_two_element_paths_rejected(self, uni_spec):
        fd = FD(frozenset({P("courses"), P("courses.course"),
                           P("courses.course.@cno")}),
                frozenset({P("courses.course.title.S")}))
        with pytest.raises(UnsupportedFeatureError):
            create_element_type(uni_spec.dtd, uni_spec.sigma, fd)
