"""Unit tests for FD satisfaction on documents (Section 4, Example 4.1)."""

from repro.fd.model import FD
from repro.fd.satisfaction import satisfies, satisfies_all, violating_pairs
from repro.xmltree.parser import parse_xml


class TestPaperExample41(object):
    """Figure 1(a) satisfies FD1-FD3."""

    def test_satisfies_all_three(self, uni_spec, uni_doc):
        assert satisfies_all(uni_doc, uni_spec.dtd, uni_spec.sigma)

    def test_each_individually(self, uni_spec, uni_doc):
        for fd in uni_spec.sigma:
            assert satisfies(uni_doc, uni_spec.dtd, fd)


class TestViolations:
    def test_fd3_violation_detected(self, uni_spec):
        # st1 has two different names
        doc = parse_xml("""
        <courses>
          <course cno="c1"><title>T1</title><taken_by>
            <student sno="st1"><name>Deere</name><grade>A</grade></student>
          </taken_by></course>
          <course cno="c2"><title>T2</title><taken_by>
            <student sno="st1"><name>Impostor</name><grade>B</grade>
            </student>
          </taken_by></course>
        </courses>
        """)
        fd3 = uni_spec.sigma[2]
        assert not satisfies(doc, uni_spec.dtd, fd3)
        pairs = violating_pairs(doc, uni_spec.dtd, fd3)
        assert len(pairs) == 1

    def test_key_violation(self, uni_spec):
        # two courses with the same cno but different nodes
        doc = parse_xml("""
        <courses>
          <course cno="c1"><title>T1</title><taken_by/></course>
          <course cno="c1"><title>T2</title><taken_by/></course>
        </courses>
        """)
        fd1 = uni_spec.sigma[0]
        assert not satisfies(doc, uni_spec.dtd, fd1)

    def test_limit_short_circuits(self, uni_spec):
        doc = parse_xml("""
        <courses>
          <course cno="c1"><title>T</title><taken_by>
            <student sno="s"><name>A</name><grade>1</grade></student>
          </taken_by></course>
          <course cno="c2"><title>T</title><taken_by>
            <student sno="s"><name>B</name><grade>1</grade></student>
          </taken_by></course>
          <course cno="c3"><title>T</title><taken_by>
            <student sno="s"><name>C</name><grade>1</grade></student>
          </taken_by></course>
        </courses>
        """)
        fd3 = uni_spec.sigma[2]
        limited = violating_pairs(doc, uni_spec.dtd, fd3, limit=1)
        assert len(limited) == 1
        unlimited = violating_pairs(doc, uni_spec.dtd, fd3)
        assert len(unlimited) >= 2


class TestNullSemantics:
    def test_null_lhs_disables_fd(self, uni_spec):
        """A document with no students vacuously satisfies FD3."""
        doc = parse_xml(
            '<courses><course cno="c1"><title>T</title><taken_by/>'
            "</course></courses>")
        assert satisfies_all(doc, uni_spec.dtd, uni_spec.sigma)

    def test_rhs_null_equality_is_tolerant(self, flat_ab_dtd):
        # two tuples agree on r (always) and both have b null
        doc = parse_xml('<r><a x="1"/><a x="2"/></r>')
        fd = FD.parse("r -> r.b")
        assert satisfies(doc, flat_ab_dtd, fd)

    def test_rhs_null_vs_value_is_violation(self, flat_ab_dtd):
        # same a value; one tuple sees a b node, the other cannot exist
        # in a single tree... instead test value-vs-null via two a's:
        doc = parse_xml('<r><a x="1"/><b y="1"/></r>')
        # tuples: (a, b); single tuple -> no pair -> satisfied
        assert satisfies(doc, flat_ab_dtd, FD.parse("r.a.@x -> r.b.@y"))


class TestDBLP:
    def test_fd5_satisfied(self, dblp, dblp_doc):
        assert satisfies_all(dblp_doc, dblp.dtd, dblp.sigma)

    def test_fd5_violation(self, dblp):
        doc = parse_xml("""
        <db><conf><title>X</title>
          <issue>
            <inproceedings key="a" pages="1" year="2001">
              <author>A</author><title>P1</title><booktitle>B</booktitle>
            </inproceedings>
            <inproceedings key="b" pages="2" year="2002">
              <author>B</author><title>P2</title><booktitle>B</booktitle>
            </inproceedings>
          </issue>
        </conf></db>
        """)
        fd5 = dblp.sigma[1]
        assert not satisfies(doc, dblp.dtd, fd5)
