"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs import metrics


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts disabled and empty, and leaves no residue."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestEnableDisable:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()

    def test_enable_flips_module_flag(self):
        obs.enable()
        assert metrics.enabled is True
        obs.disable()
        assert metrics.enabled is False


class TestDisabledNoOp:
    def test_inc_is_noop_while_disabled(self):
        obs.inc("some.counter")
        obs.set_gauge("some.gauge", 7.0)
        obs.observe("some.histogram", 1.0)
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        assert snap["timers"] == {}

    def test_timer_is_noop_while_disabled(self):
        with obs.timer("some.timer"):
            pass
        assert obs.snapshot()["timers"] == {}


class TestCounters:
    def test_inc_accumulates(self):
        obs.enable()
        obs.inc("c")
        obs.inc("c", 4)
        assert obs.counter_value("c") == 5
        assert obs.snapshot()["counters"] == {"c": 5}

    def test_unknown_counter_reads_zero(self):
        assert obs.counter_value("never.touched") == 0

    def test_thread_safety(self):
        obs.enable()

        def work():
            for _ in range(1000):
                obs.inc("threads")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert obs.counter_value("threads") == 8000


class TestGaugesAndHistograms:
    def test_gauge_keeps_last_value(self):
        obs.enable()
        obs.set_gauge("g", 1.0)
        obs.set_gauge("g", 2.5)
        assert obs.snapshot()["gauges"] == {"g": 2.5}

    def test_histogram_summary(self):
        obs.enable()
        for value in (1, 2, 3):
            obs.observe("h", value)
        stats = obs.snapshot()["histograms"]["h"]
        assert stats["count"] == 3
        assert stats["total"] == 6
        assert stats["min"] == 1
        assert stats["max"] == 3
        assert stats["mean"] == pytest.approx(2.0)

    def test_timer_records_duration(self):
        obs.enable()
        with obs.timer("t"):
            pass
        stats = obs.snapshot()["timers"]["t"]
        assert stats["count"] == 1
        assert stats["total"] >= 0.0

    def test_histogram_percentiles_exact_when_small(self):
        obs.enable()
        for value in range(1, 101):
            obs.observe("h", value)
        stats = obs.snapshot()["histograms"]["h"]
        assert stats["p50"] == 50
        assert stats["p95"] == 95
        assert stats["p99"] == 99

    def test_single_observation_percentiles(self):
        obs.enable()
        obs.observe("h", 7.0)
        stats = obs.snapshot()["histograms"]["h"]
        assert stats["p50"] == stats["p95"] == stats["p99"] == 7.0

    def test_percentiles_survive_decimation(self):
        # Push well past the sample cap; the decimated reservoir must
        # still put the percentiles in the right region.
        obs.enable()
        n = 40_000
        for value in range(n):
            obs.observe("big", value)
        stats = obs.snapshot()["histograms"]["big"]
        assert stats["count"] == n
        assert stats["min"] == 0
        assert stats["max"] == n - 1
        assert abs(stats["p50"] - n / 2) < n * 0.05
        assert abs(stats["p95"] - n * 0.95) < n * 0.05


class TestSnapshotReset:
    def test_snapshot_is_a_copy(self):
        obs.enable()
        obs.inc("c")
        snap = obs.snapshot()
        snap["counters"]["c"] = 999
        assert obs.counter_value("c") == 1

    def test_reset_clears_but_keeps_enabled(self):
        obs.enable()
        obs.inc("c")
        obs.observe("h", 1.0)
        obs.reset()
        assert obs.is_enabled()
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}


class TestRender:
    def test_table_lists_all_sections(self):
        obs.enable()
        obs.inc("implication.cache.hit", 3)
        obs.inc("implication.cache.miss", 1)
        obs.observe("h", 2.0)
        with obs.timer("t"):
            pass
        table = obs.render.metrics_table(obs.snapshot())
        assert "implication.cache.hit " in table
        assert "-- histograms --" in table
        # The timers section names its storage unit (satellite fix for
        # the seconds-vs-ms ambiguity).
        assert "-- timers (stored: seconds, shown: ms) --" in table
        assert "implication.cache.hit_rate" in table
        assert "75.0%" in table

    def test_snapshot_schema_and_units(self):
        obs.enable()
        obs.observe("h", 2.0)
        with obs.timer("t"):
            pass
        snap = obs.snapshot()
        assert snap["schema"] == "repro.obs.snapshot"
        assert snap["schema_version"] == 2
        assert snap["histograms"]["h"]["unit"] == "1"
        assert snap["timers"]["t"]["unit"] == "seconds"

    def test_empty_table(self):
        table = obs.render.metrics_table(obs.snapshot())
        assert "no metrics recorded" in table
