"""Unit tests for the content-model parser."""

import pytest

from repro.errors import RegexSyntaxError
from repro.regex.ast import (
    EPSILON,
    PCDATA,
    concat,
    optional,
    plus,
    star,
    sym,
    union,
)
from repro.regex.parser import parse_content_model


class TestBasics:
    def test_empty(self):
        assert parse_content_model("EMPTY") is EPSILON

    def test_pcdata(self):
        assert parse_content_model("(#PCDATA)") == PCDATA

    def test_single_name(self):
        assert parse_content_model("(title)") == sym("title")

    def test_any_is_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse_content_model("ANY")


class TestCompound:
    def test_sequence(self):
        assert parse_content_model("(title, taken_by)") == concat(
            [sym("title"), sym("taken_by")])

    def test_choice(self):
        assert parse_content_model("(a | b)") == union(
            [sym("a"), sym("b")])

    def test_occurrence_suffixes(self):
        assert parse_content_model("(course*)") == star(sym("course"))
        assert parse_content_model("(issue+)") == plus(sym("issue"))
        assert parse_content_model("(logo?)") == optional(sym("logo"))

    def test_suffix_on_group(self):
        regex = parse_content_model("((a | b)*)")
        assert regex == star(union([sym("a"), sym("b")]))

    def test_nested_groups(self):
        regex = parse_content_model(
            "(logo*, title, (qna+ | q+ | (p | div | section)+))")
        assert regex.alphabet() == {
            "logo", "title", "qna", "q", "p", "div", "section"}

    def test_whitespace_insensitive(self):
        compact = parse_content_model("(a,b,c)")
        spaced = parse_content_model("( a ,\n  b , c )")
        assert compact == spaced

    def test_names_with_dots_and_dashes(self):
        regex = parse_content_model("(xs:element, my-name, a.b)")
        assert regex.alphabet() == {"xs:element", "my-name", "a.b"}


class TestErrors:
    @pytest.mark.parametrize("text", [
        "(a,", "(a))", "(a | )", "(,a)", "(a b)", "(a,,b)", "()", "",
    ])
    def test_malformed(self, text):
        with pytest.raises(RegexSyntaxError):
            parse_content_model(text)

    def test_mixed_separators_rejected(self):
        # Standard DTD syntax forbids (a, b | c) at one nesting level.
        with pytest.raises(RegexSyntaxError):
            parse_content_model("(a, b | c)")

    def test_unknown_character(self):
        with pytest.raises(RegexSyntaxError):
            parse_content_model("(a & b)")


class TestRoundTrip:
    @pytest.mark.parametrize("text", [
        "(title, taken_by)",
        "(course*, info*)",
        "(a | b)*",
        "(author+, title, booktitle)",
        "(ConditionExpression?, Documentation*)",
    ])
    def test_parse_render_parse(self, text):
        once = parse_content_model(text)
        again = parse_content_model(once.to_dtd())
        assert once == again


class TestNestingDepthLimit:
    """Regression: deep nesting must raise ParseError, never a raw
    RecursionError from the recursive-descent parser."""

    def test_10k_deep_nesting_raises_parse_error(self):
        deep = "(" * 10_000 + "a" + ")" * 10_000
        with pytest.raises(RegexSyntaxError) as excinfo:
            parse_content_model(deep)
        message = str(excinfo.value)
        assert "nested deeper than" in message
        assert "201" in message  # the offending depth is reported

    def test_depth_at_limit_is_accepted(self):
        from repro.regex.parser import MAX_NESTING_DEPTH
        depth = MAX_NESTING_DEPTH
        text = "(" * depth + "a" + ")" * depth
        assert parse_content_model(text) == sym("a")

    def test_custom_max_depth(self):
        with pytest.raises(RegexSyntaxError):
            parse_content_model("((a))", max_depth=1)
        assert parse_content_model("((a))", max_depth=2) == sym("a")
