"""Unit tests for the DTD model (Definition 1)."""

import pytest

from repro.errors import (
    InvalidDTDError,
    InvalidPathError,
    RecursionLimitError,
)
from repro.dtd.model import DTD
from repro.dtd.paths import Path
from repro.regex.analysis import Multiplicity


def university() -> DTD:
    return DTD.build("courses", {
        "courses": "(course*)",
        "course": "(title, taken_by)",
        "title": "(#PCDATA)",
        "taken_by": "(student*)",
        "student": "(name, grade)",
        "name": "(#PCDATA)",
        "grade": "(#PCDATA)",
    }, {"course": ["cno"], "student": ["sno"]})


class TestValidation:
    def test_root_must_be_declared(self):
        with pytest.raises(InvalidDTDError):
            DTD.build("missing", {"a": "EMPTY"})

    def test_undeclared_child_rejected(self):
        with pytest.raises(InvalidDTDError):
            DTD.build("r", {"r": "(ghost)"})

    def test_root_in_production_rejected(self):
        with pytest.raises(InvalidDTDError):
            DTD.build("r", {"r": "(a)", "a": "(r?)"})

    def test_attlist_for_undeclared_element(self):
        with pytest.raises(InvalidDTDError):
            DTD.build("r", {"r": "EMPTY"}, {"ghost": ["x"]})

    def test_reserved_name_s_rejected(self):
        with pytest.raises(InvalidDTDError):
            DTD.build("r", {"r": "(S)", "S": "EMPTY"})

    def test_mixed_content_rejected(self):
        from repro.regex.ast import concat, sym, PCDATA
        with pytest.raises(InvalidDTDError):
            DTD(root="r", productions={
                "r": concat([sym("a"), PCDATA]), "a": PCDATA})


class TestAccessors:
    def test_element_types(self):
        dtd = university()
        assert "student" in dtd.element_types
        assert len(dtd.element_types) == 7

    def test_attrs(self):
        dtd = university()
        assert dtd.attrs("course") == {"@cno"}
        assert dtd.attrs("title") == frozenset()

    def test_attribute_names(self):
        assert university().attribute_names == {"@cno", "@sno"}

    def test_has_text(self):
        dtd = university()
        assert dtd.has_text("title")
        assert not dtd.has_text("course")

    def test_child_element_types(self):
        dtd = university()
        assert dtd.child_element_types("course") == {"title", "taken_by"}
        assert dtd.child_element_types("title") == frozenset()

    def test_unknown_element_raises(self):
        with pytest.raises(InvalidDTDError):
            university().content("ghost")


class TestPaths:
    def test_paths_count(self):
        # 7 element paths + 2 attribute paths + 3 text paths = 12
        assert len(university().paths) == 12

    def test_epaths(self):
        dtd = university()
        assert len(dtd.epaths) == 7
        assert all(p.is_element for p in dtd.epaths)

    def test_specific_paths_present(self):
        dtd = university()
        for text in ("courses",
                     "courses.course.@cno",
                     "courses.course.taken_by.student.name.S"):
            assert Path.parse(text) in dtd.paths

    def test_is_path(self):
        dtd = university()
        assert dtd.is_path(Path.parse("courses.course.title"))
        assert not dtd.is_path(Path.parse("courses.title"))
        assert not dtd.is_path(Path.parse("course.title"))
        assert not dtd.is_path(Path.parse("courses.course.@ghost"))

    def test_check_path_raises(self):
        with pytest.raises(InvalidPathError):
            university().check_path(Path.parse("courses.ghost"))

    def test_breadth_first_order(self):
        paths = list(university().iter_paths())
        lengths = [p.length for p in paths]
        # attribute/text extensions directly follow their element, so
        # lengths never decrease by more than one step overall
        assert paths[0] == Path.root("courses")
        assert sorted(lengths) != lengths or True
        assert max(lengths) == 6


class TestRecursion:
    def test_non_recursive(self):
        assert not university().is_recursive

    def test_recursive_detected(self):
        dtd = DTD.build("r", {
            "r": "(sec)", "sec": "(sec?, p)", "p": "(#PCDATA)"})
        assert dtd.is_recursive

    def test_recursive_paths_need_bound(self):
        dtd = DTD.build("r", {"r": "(sec)", "sec": "(sec?)"})
        with pytest.raises(RecursionLimitError):
            list(dtd.iter_paths())
        bounded = list(dtd.iter_paths(max_depth=4))
        assert Path.parse("r.sec.sec.sec") in bounded

    def test_is_path_works_on_recursive(self):
        dtd = DTD.build("r", {"r": "(sec)", "sec": "(sec?)"})
        assert dtd.is_path(Path.parse("r.sec.sec.sec.sec.sec"))

    def test_unreachable_cycle_not_counted(self):
        dtd = DTD.build("r", {"r": "EMPTY", "loop": "(loop?)"})
        assert not dtd.is_recursive


class TestMultiplicities:
    def test_child_multiplicity(self):
        dtd = university()
        assert dtd.child_multiplicity(
            "courses", "course") is Multiplicity.STAR
        assert dtd.child_multiplicity(
            "course", "title") is Multiplicity.ONE
        assert dtd.child_multiplicity(
            "courses", "student") is Multiplicity.ZERO

    def test_path_multiplicity_of_root(self):
        dtd = university()
        assert dtd.path_multiplicity(
            Path.root("courses")) is Multiplicity.ONE

    def test_non_simple_fallback(self):
        dtd = DTD.build("r", {"r": "(b, b)", "b": "EMPTY"})
        # (b, b) has no exact class; the coarsening keeps soundness:
        multiplicity = dtd.child_multiplicity("r", "b")
        assert multiplicity.forced
        assert not multiplicity.at_most_one


class TestEquality:
    def test_structural_equality(self):
        assert university() == university()
        assert hash(university()) == hash(university())

    def test_empty_attribute_sets_ignored(self):
        first = DTD.build("r", {"r": "EMPTY"})
        second = DTD.build("r", {"r": "EMPTY"}, {"r": []})
        assert first == second

    def test_different_root_differs(self):
        first = DTD.build("a", {"a": "EMPTY", "b": "EMPTY"})
        second = DTD.build("b", {"a": "EMPTY", "b": "EMPTY"})
        assert first != second


class TestFreshNames:
    def test_fresh_element_name(self):
        dtd = university()
        assert dtd.fresh_element_name("info") == "info"
        assert dtd.fresh_element_name("course") == "course1"

    def test_fresh_attribute_name(self):
        dtd = university()
        assert dtd.fresh_attribute_name("course", "year") == "@year"
        assert dtd.fresh_attribute_name("course", "cno") == "@cno1"
