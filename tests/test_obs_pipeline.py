"""Integration tests: the instrumented pipeline and the CLI flags.

Covers the two contract points of the observability layer:

* enabled, it reports the pipeline's real work (cache hits, chase
  steps, spans with the documented schema);
* disabled OR enabled, it never changes pipeline *results* — the
  normalization regression below asserts byte-identical output DTDs.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.datasets.bookstore import bookstore_spec
from repro.datasets.dblp import dblp_spec
from repro.datasets.university import (
    UNIVERSITY_DOCUMENT,
    UNIVERSITY_DTD,
    UNIVERSITY_FDS,
    university_spec,
)
from repro.dtd.serializer import serialize_dtd
from repro.fd.implication import ImplicationEngine
from repro.fd.model import FD


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    obs.clear_sinks()
    yield
    obs.disable()
    obs.reset()
    obs.clear_sinks()


@pytest.fixture
def university_files(tmp_path):
    dtd = tmp_path / "university.dtd"
    dtd.write_text(UNIVERSITY_DTD)
    fds = tmp_path / "university.fds"
    fds.write_text(UNIVERSITY_FDS)
    xml = tmp_path / "university.xml"
    xml.write_text(UNIVERSITY_DOCUMENT)
    return str(dtd), str(fds), str(xml)


class TestEngineCacheInfo:
    def test_mirrors_lru_cache(self):
        spec = university_spec()
        oracle = ImplicationEngine(spec.dtd, spec.sigma)
        info = oracle.cache_info()
        assert info == (0, 0, None, 0)
        fd = spec.sigma[0]
        oracle.implies(fd)
        oracle.implies(fd)
        info = oracle.cache_info()
        assert info.misses == 1
        assert info.hits == 1
        assert info.currsize == 1
        assert info.maxsize is None
        oracle.cache_clear()
        assert oracle.cache_info() == (0, 0, None, 0)

    def test_cache_key_is_canonical(self):
        # Different spellings of the same query share one cache slot.
        first = FD.parse("a.b, a.c.@x -> a.d.@y")
        second = FD.parse("a.c.@x, a.b -> a.d.@y")
        assert ImplicationEngine.cache_key(first) == \
            ImplicationEngine.cache_key(second)

    def test_query_count(self):
        spec = university_spec()
        oracle = ImplicationEngine(spec.dtd, spec.sigma)
        oracle.implies(spec.sigma[0])
        oracle.implies(spec.sigma[0])
        assert oracle.query_count() == \
            oracle.cache_info().hits + oracle.cache_info().misses


class TestPipelineMetrics:
    def test_xnf_check_records_candidates_and_queries(self):
        obs.enable()
        spec = university_spec()
        violations = spec.xnf_violations()
        assert violations
        counters = obs.snapshot()["counters"]
        assert counters["xnf.candidates.examined"] >= 3
        assert counters["xnf.violations.found"] == len(violations)
        assert counters["closure.iterations"] > 0

    def test_normalize_records_rounds_and_rule(self):
        obs.enable()
        spec = university_spec()
        spec.normalize()
        counters = obs.snapshot()["counters"]
        assert counters["normalize.rounds"] >= 1
        assert counters.get("normalize.steps.create", 0) \
            + counters.get("normalize.steps.move", 0) \
            == counters["normalize.rounds"]
        timers = obs.snapshot()["timers"]
        assert timers["normalize.total"]["count"] == 1

    def test_chase_records_branches_and_steps(self):
        from repro.dtd.parser import parse_dtd
        from repro.fd.chase import chase_implies
        obs.enable()
        dtd = parse_dtd("""
            <!ELEMENT r ((a | b), c*)>
            <!ELEMENT a EMPTY>
            <!ELEMENT b EMPTY>
            <!ELEMENT c EMPTY>
            <!ATTLIST c x CDATA #REQUIRED>
        """)
        chase_implies(dtd, [], FD.parse("r -> r.c.@x"))
        counters = obs.snapshot()["counters"]
        assert counters["chase.branches.explored"] >= 1
        assert obs.snapshot()["timers"]["chase.implies"]["count"] == 1

    def test_normalize_emits_round_spans(self):
        obs.enable()
        sink = obs.InMemorySink()
        obs.add_sink(sink)
        university_spec().normalize()
        rounds = [s for s in sink.spans if s.name == "normalize.round"]
        assert rounds
        assert rounds[0].attrs["rule"] in ("move", "create")
        assert rounds[0].attrs["anomalous_before"] >= 1
        assert rounds[0].attrs["implication_queries"] > 0
        assert rounds[-1].attrs["rule"] == "converged"


class TestCliStats:
    def test_analyze_stats_reports_cache_hits(self, university_files,
                                              capsys):
        dtd, fds, xml = university_files
        code = main(["analyze", dtd, fds, xml, "--stats"])
        assert code == 1  # not in XNF
        err = capsys.readouterr().err
        assert "== metrics ==" in err
        assert "implication.cache.hit_rate" in err
        # Nonzero implication-cache hits on the university pipeline.
        hits = [line for line in err.splitlines()
                if line.strip().startswith("implication.cache.hit ")]
        assert hits and int(hits[0].split()[-1]) > 0
        # Per-phase timings are present.
        assert "xnf.check" in err
        assert "normalize.total" in err

    def test_stats_flag_before_subcommand(self, university_files,
                                          capsys):
        dtd, fds, _xml = university_files
        assert main(["--stats", "check", dtd, fds]) == 1
        assert "== metrics ==" in capsys.readouterr().err

    def test_without_stats_no_table(self, university_files, capsys):
        dtd, fds, _xml = university_files
        assert main(["check", dtd, fds]) == 1
        assert "== metrics ==" not in capsys.readouterr().err

    def test_repro_obs_env_toggle(self, university_files, capsys,
                                  monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        dtd, fds, _xml = university_files
        assert main(["check", dtd, fds]) == 1
        assert "== metrics ==" in capsys.readouterr().err

    def test_stats_leaves_obs_disabled_afterwards(self, university_files,
                                                  capsys):
        dtd, fds, _xml = university_files
        main(["check", dtd, fds, "--stats"])
        assert not obs.is_enabled()

    def test_trace_file_is_json_lines(self, university_files, tmp_path,
                                      capsys):
        dtd, fds, _xml = university_files
        trace_file = tmp_path / "trace.jsonl"
        assert main(["check", dtd, fds, "--trace",
                     str(trace_file)]) == 1
        records = [json.loads(line) for line in
                   trace_file.read_text().splitlines()]
        assert records
        names = {record["name"] for record in records}
        assert "cli.check" in names
        assert "xnf.check" in names
        roots = [r for r in records if r["parent"] is None]
        assert [r["name"] for r in roots] == ["cli.check"]


class TestDisabledEnabledRegression:
    """Instrumentation must never change pipeline results."""

    @pytest.mark.parametrize("spec_factory", [bookstore_spec, dblp_spec],
                             ids=["bookstore", "dblp"])
    def test_normalize_output_identical(self, spec_factory):
        obs.disable()
        baseline = spec_factory().normalize()
        baseline_dtd = serialize_dtd(baseline.dtd)
        baseline_sigma = sorted(map(str, baseline.sigma))

        obs.enable()
        instrumented = spec_factory().normalize()
        assert serialize_dtd(instrumented.dtd) == baseline_dtd
        assert sorted(map(str, instrumented.sigma)) == baseline_sigma
        assert [s.description for s in instrumented.steps] == \
            [s.description for s in baseline.steps]
        # ... and the run was actually observed.
        assert obs.counter_value("normalize.rounds") >= 1

    def test_implication_answers_identical(self):
        spec = university_spec()
        queries = [fd for sigma_fd in spec.sigma
                   for fd in sigma_fd.expand()]
        obs.disable()
        baseline = [ImplicationEngine(spec.dtd, spec.sigma).implies(q)
                    for q in queries]
        obs.enable()
        observed = [ImplicationEngine(spec.dtd, spec.sigma).implies(q)
                    for q in queries]
        assert observed == baseline
