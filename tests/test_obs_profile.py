"""Unit tests for the trace profiler (repro.obs.profile)."""

from __future__ import annotations

import json

import pytest

from repro.obs import profile as prof
from repro.obs.profile import TraceError


def span(span_id, name, duration_ms, *, parent=None, start=0.0,
         counters=None):
    record = {"id": span_id, "name": name, "duration_ms": duration_ms,
              "start": start}
    if parent is not None:
        record["parent"] = parent
    if counters:
        record["counters"] = counters
    return record


def write_trace(path, records):
    path.write_text(
        "".join(json.dumps(record) + "\n" for record in records))
    return path


#: A small but structurally complete trace: one root, two rounds, one
#: of them with a nested step, and counter deltas at every boundary.
TRACE = [
    span(1, "cli.normalize", 100.0, start=0.0,
         counters={"closure.iterations": 50, "spans": 4}),
    span(2, "normalize.round", 60.0, parent=1, start=5.0,
         counters={"closure.iterations": 30}),
    span(3, "normalize.round", 30.0, parent=1, start=66.0,
         counters={"closure.iterations": 20}),
    span(4, "normalize.steps.create", 12.0, parent=2, start=7.0,
         counters={"closure.iterations": 4}),
]


class TestLoadTrace:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            prof.load_trace(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n\n")
        with pytest.raises(TraceError, match="no span records"):
            prof.load_trace(path)

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": 1, "name": "a", "duration_ms": 1}\n{oops\n')
        with pytest.raises(TraceError, match="bad.jsonl:2"):
            prof.load_trace(path)

    def test_missing_required_key(self, tmp_path):
        path = tmp_path / "short.jsonl"
        path.write_text('{"id": 1, "name": "a"}\n')
        with pytest.raises(TraceError, match="missing 'duration_ms'"):
            prof.load_trace(path)

    def test_non_object_line(self, tmp_path):
        path = tmp_path / "arr.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(TraceError, match="expected a span object"):
            prof.load_trace(path)


class TestForest:
    def test_parent_links_and_child_order(self):
        roots = prof.build_forest(list(TRACE))
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "cli.normalize"
        assert [child.span_id for child in root.children] == [2, 3]
        assert [child.span_id
                for child in root.children[0].children] == [4]

    def test_orphans_become_roots(self):
        records = [span(7, "lost.child", 5.0, parent=99)]
        roots = prof.build_forest(records)
        assert len(roots) == 1
        assert roots[0].name == "lost.child"

    def test_self_time_subtracts_children(self):
        roots = prof.build_forest(list(TRACE))
        root = roots[0]
        assert root.self_ms == pytest.approx(100.0 - 60.0 - 30.0)
        round_one = root.children[0]
        assert round_one.self_ms == pytest.approx(60.0 - 12.0)

    def test_self_time_clamped_at_zero(self):
        # Overlapping clocks can make children sum past the parent;
        # self time must never go negative.
        records = [span(1, "p", 10.0),
                   span(2, "c", 15.0, parent=1)]
        roots = prof.build_forest(records)
        assert roots[0].self_ms == 0.0

    def test_self_counters_subtract_children(self):
        roots = prof.build_forest(list(TRACE))
        root = roots[0]
        assert root.self_counters() == {"spans": 4}
        round_one = root.children[0]
        assert round_one.self_counters() == {"closure.iterations": 26}


class TestProfile:
    def test_by_name_rollup(self):
        profile = prof.build_profile(list(TRACE))
        assert profile.spans == 4
        stat = profile.by_name["normalize.round"]
        assert stat.calls == 2
        assert stat.total_ms == pytest.approx(90.0)
        assert stat.self_ms == pytest.approx(48.0 + 30.0)

    def test_coverage_is_child_share_of_roots(self):
        profile = prof.build_profile(list(TRACE))
        assert profile.coverage == pytest.approx(0.9)

    def test_total_counters_recompose(self):
        # Self-attribution is a partition: summing the self deltas
        # back up reproduces the root's cumulative deltas.
        profile = prof.build_profile(list(TRACE))
        assert profile.total_counters() == {"closure.iterations": 50,
                                            "spans": 4}

    def test_critical_path(self):
        profile = prof.build_profile(list(TRACE))
        path = prof.critical_path(profile)
        assert [node.name for node in path] == [
            "cli.normalize", "normalize.round", "normalize.steps.create"]

    def test_critical_path_empty_profile(self):
        assert prof.critical_path(
            prof.Profile(roots=[], spans=0, by_name={}, by_stack={})) \
            == []


class TestRendering:
    def test_report_contents(self):
        profile = prof.build_profile(list(TRACE))
        report = prof.render_report(profile)
        assert "4 span(s), 1 root(s)" in report
        assert "child coverage 90.0%" in report
        assert "-- by span name --" in report
        assert "-- critical path --" in report
        assert "-- counter deltas (self-attributed) --" in report
        # Both rounds' self deltas fold into one by-name row:
        # (30-4) from the first round plus 20 from the second.
        assert "closure.iterations +46" in report

    def test_report_counters_off(self):
        profile = prof.build_profile(list(TRACE))
        report = prof.render_report(profile, counters=False)
        assert "counter deltas" not in report

    def test_folded_stacks(self):
        profile = prof.build_profile(list(TRACE))
        folded = prof.folded_stacks(profile)
        lines = folded.splitlines()
        assert lines == sorted(lines)
        assert "cli.normalize;normalize.round 78000" in lines
        assert ("cli.normalize;normalize.round;"
                "normalize.steps.create 12000") in lines

    def test_deterministic_across_record_order(self):
        forward = prof.build_profile(list(TRACE))
        backward = prof.build_profile(list(reversed(TRACE)))
        assert prof.render_report(forward) \
            == prof.render_report(backward)
        assert prof.folded_stacks(forward) \
            == prof.folded_stacks(backward)


class TestDiff:
    def _trace_file(self, tmp_path, name, iterations):
        records = [span(1, "root", 50.0,
                        counters={"closure.iterations": iterations})]
        return write_trace(tmp_path / name, records)

    def test_identical_traces_pass(self, tmp_path):
        base = self._trace_file(tmp_path, "a.jsonl", 100)
        report, code = prof.diff(base, base)
        assert code == 0
        assert "OK: no counter regressions" in report

    def test_counter_growth_gates(self, tmp_path):
        base = self._trace_file(tmp_path, "a.jsonl", 100)
        curr = self._trace_file(tmp_path, "b.jsonl", 150)
        report, code = prof.diff(base, curr)
        assert code == 1
        assert "closure.iterations" in report
        assert "regression" in report.lower()

    def test_growth_within_tolerance_passes(self, tmp_path):
        base = self._trace_file(tmp_path, "a.jsonl", 100)
        curr = self._trace_file(tmp_path, "b.jsonl", 104)
        _, code = prof.diff(base, curr)
        assert code == 0

    def test_improvement_is_a_note_not_a_gate(self, tmp_path):
        base = self._trace_file(tmp_path, "a.jsonl", 150)
        curr = self._trace_file(tmp_path, "b.jsonl", 100)
        report, code = prof.diff(base, curr)
        assert code == 0
        assert "improved" in report

    def test_time_growth_is_advisory(self, tmp_path):
        slow = write_trace(tmp_path / "slow.jsonl",
                           [span(1, "root", 500.0,
                                 counters={"ops": 10})])
        fast = write_trace(tmp_path / "fast.jsonl",
                           [span(1, "root", 50.0,
                                 counters={"ops": 10})])
        report, code = prof.diff(fast, slow)
        assert code == 0
        assert "advisory" in report

    def test_snapshot_vs_trace(self, tmp_path):
        snapshot = tmp_path / "stats.json"
        snapshot.write_text(json.dumps(
            {"counters": {"closure.iterations": 100},
             "gauges": {}, "histograms": {}, "timers": {}}))
        trace = self._trace_file(tmp_path, "t.jsonl", 160)
        report, code = prof.diff(snapshot, trace)
        assert code == 1
        assert "comparing a snapshot against a trace" in report

    def test_unreadable_input_raises_trace_error(self, tmp_path):
        with pytest.raises(TraceError):
            prof.diff(tmp_path / "missing.json",
                      tmp_path / "missing2.json")

    def test_empty_file_raises(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        with pytest.raises(TraceError, match="empty file"):
            prof.load_comparable(empty)
