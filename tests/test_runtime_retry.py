"""Unit tests for retry classification/backoff and circuit breakers."""

import pytest

from repro.errors import (
    FDSyntaxError,
    EnsembleDisagreementError,
    InjectedAllocationFailure,
    InjectedFault,
    ResourceExhausted,
)
from repro.runtime.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    Breaker,
    BreakerBoard,
    failure_signature,
)
from repro.runtime.retry import RetryPolicy, is_transient


class TestClassification:
    def test_injected_faults_are_transient(self):
        assert is_transient(InjectedFault("fd.chase.step", "exception"))
        assert is_transient(
            InjectedAllocationFailure("fd.chase.step", "allocation"))

    def test_injected_and_deadline_exhaustion_are_transient(self):
        assert is_transient(ResourceExhausted("injected"))
        assert is_transient(ResourceExhausted("deadline"))

    def test_counted_limits_are_permanent(self):
        """Deterministic engines: the same budget buys the same trip."""
        for limit in ("steps", "branches", "nodes"):
            assert not is_transient(ResourceExhausted(limit))

    def test_input_and_ensemble_errors_are_permanent(self):
        assert not is_transient(FDSyntaxError("bad FD"))
        assert not is_transient(EnsembleDisagreementError("split vote"))


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_ms=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_should_retry_respects_budget_and_class(self):
        policy = RetryPolicy(retries=2)
        fault = InjectedFault("s", "exception")
        assert policy.should_retry(fault, attempt=0)
        assert policy.should_retry(fault, attempt=1)
        assert not policy.should_retry(fault, attempt=2)  # budget gone
        assert not policy.should_retry(FDSyntaxError("x"), attempt=0)

    def test_delay_is_deterministic_and_jittered(self):
        policy = RetryPolicy(backoff_base_ms=100, seed=42)
        first = policy.delay_ms("task-1", 0)
        assert first == policy.delay_ms("task-1", 0)  # replayable
        # Full-decorrelation window around the exponential curve.
        assert 50 <= first < 150
        assert 100 <= policy.delay_ms("task-1", 1) < 300
        # Different tasks and seeds spread out.
        assert first != policy.delay_ms("task-2", 0)
        assert first != RetryPolicy(backoff_base_ms=100,
                                    seed=43).delay_ms("task-1", 0)

    def test_zero_base_disables_waiting(self):
        assert RetryPolicy(backoff_base_ms=0).delay_ms("t", 3) == 0.0


class TestFailureSignature:
    def test_signatures_by_error_shape(self):
        assert failure_signature(
            InjectedFault("fd.chase.step", "exception")) \
            == "site:fd.chase.step"
        assert failure_signature(ResourceExhausted("steps")) \
            == "guard:steps"
        assert failure_signature(FDSyntaxError("x")) \
            == "error:FDSyntaxError"


class TestBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = Breaker(signature="s", threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_success_resets_the_count(self):
        breaker = Breaker(signature="s", threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_skips_then_admits_a_probe(self):
        breaker = Breaker(signature="s", threshold=1, probe_interval=3)
        breaker.record_failure()
        assert breaker.state == OPEN
        admitted = []
        for _ in range(4):
            if breaker.allows_retries():
                admitted.append(True)
                break
            breaker.record_skip()
        # Three skips, then the fourth request is the HALF_OPEN probe.
        assert admitted and breaker.skips == 3
        assert breaker.state == HALF_OPEN
        assert breaker.probes == 1

    def test_probe_failure_reopens_probe_success_closes(self):
        breaker = Breaker(signature="s", threshold=1, probe_interval=1)
        breaker.record_failure()
        breaker.record_skip()
        assert breaker.allows_retries()          # the probe
        breaker.record_failure()
        assert breaker.state == OPEN             # probe failed
        breaker.record_skip()
        assert breaker.allows_retries()
        breaker.record_success()
        assert breaker.state == CLOSED           # probe succeeded
        assert breaker.consecutive_failures == 0


class TestBreakerBoard:
    def test_lazy_per_signature_instances(self):
        board = BreakerBoard(threshold=2)
        a = board.get("site:x")
        assert board.get("site:x") is a
        assert board.get("guard:steps") is not a
        assert a.threshold == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerBoard(threshold=0)
        with pytest.raises(ValueError):
            BreakerBoard(probe_interval=0)

    def test_snapshot_is_key_sorted(self):
        board = BreakerBoard()
        board.get("site:z").record_failure()
        board.get("site:a").record_failure()
        assert list(board.snapshot()) == ["site:a", "site:z"]
