"""Unit tests for the bundled datasets and generators."""

import random

import pytest

from repro.datasets.dblp import (
    dblp_document,
    dblp_spec,
    synthetic_dblp_document,
)
from repro.datasets.ebxml import ebxml_dtd
from repro.datasets.faq import faq_dtd
from repro.datasets.generators import (
    random_document,
    random_fds,
    random_simple_dtd,
    scaled_university_spec,
)
from repro.datasets.nested_geo import geo_instance, geo_schema
from repro.datasets.university import (
    synthetic_university_document,
    university_document,
    university_spec,
)
from repro.dtd.classify import is_disjunctive_dtd, is_simple_dtd
from repro.xmltree.conformance import conforms


class TestUniversity:
    def test_document_conforms_and_satisfies(self):
        spec = university_spec()
        doc = university_document()
        assert conforms(doc, spec.dtd)
        assert spec.document_satisfies(doc)

    def test_synthetic_deterministic(self):
        first = synthetic_university_document(3, 2, seed=7)
        second = synthetic_university_document(3, 2, seed=7)
        from repro.xmltree.subsumption import isomorphic_unordered
        assert isomorphic_unordered(first, second)

    def test_synthetic_conforms(self):
        spec = university_spec()
        doc = synthetic_university_document(4, 3, seed=1)
        assert conforms(doc, spec.dtd)
        assert spec.document_satisfies(doc)


class TestDBLP:
    def test_document(self):
        spec = dblp_spec()
        doc = dblp_document()
        assert conforms(doc, spec.dtd)
        assert spec.document_satisfies(doc)

    def test_title_shared_across_levels(self):
        """The paper's DTD reuses `title` under conf and inproceedings."""
        spec = dblp_spec()
        paths = {str(p) for p in spec.dtd.paths}
        assert "db.conf.title" in paths
        assert "db.conf.issue.inproceedings.title" in paths

    def test_synthetic(self):
        spec = dblp_spec()
        doc = synthetic_dblp_document(2, 2, 3, seed=0)
        assert conforms(doc, spec.dtd)
        assert spec.document_satisfies(doc)


class TestEbxml:
    def test_figure5_is_simple(self):
        """Figure 5 / Section 7: the BPSS fragment is a simple DTD."""
        dtd = ebxml_dtd()
        assert is_simple_dtd(dtd)

    def test_non_trivial_size(self):
        dtd = ebxml_dtd()
        assert len(dtd.element_types) >= 15
        assert len(dtd.paths) >= 30


class TestFaq:
    def test_recursive_and_not_simple(self):
        dtd = faq_dtd()
        assert dtd.is_recursive
        assert not is_simple_dtd(dtd)
        assert not is_disjunctive_dtd(dtd)


class TestNestedGeo:
    def test_instance_matches_figure3(self):
        instance = geo_instance()
        assert len(instance) == 1
        assert geo_schema().all_attributes == ("Country", "State", "City")


class TestGenerators:
    def test_random_simple_dtds_are_simple(self):
        rng = random.Random(11)
        for _ in range(10):
            dtd = random_simple_dtd(rng)
            assert is_simple_dtd(dtd)
            assert not dtd.is_recursive

    def test_random_documents_conform(self):
        rng = random.Random(12)
        for _ in range(10):
            dtd = random_simple_dtd(rng)
            doc = random_document(rng, dtd)
            assert conforms(doc, dtd)

    def test_random_fds_are_valid(self):
        rng = random.Random(13)
        dtd = random_simple_dtd(rng)
        for fd in random_fds(rng, dtd, 5):
            fd.validate(dtd)
            assert len(fd.lhs_element_paths()) <= 1

    def test_scaled_university(self):
        spec = scaled_university_spec(2)
        assert not spec.dtd.is_recursive
        assert is_simple_dtd(spec.dtd)
        assert len(spec.sigma) == 6
        assert not spec.is_in_xnf()

    def test_scaled_university_normalizes(self):
        spec = scaled_university_spec(2)
        result = spec.normalize()
        assert len(result.steps) == 2
        from repro.xnf.check import is_in_xnf
        assert is_in_xnf(result.dtd, result.sigma)
