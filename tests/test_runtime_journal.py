"""Unit tests for the batch write-ahead journal (repro.runtime.journal).

The heavy parent-kill chaos harness lives in
tests/property/test_journal_chaos.py; this file pins the journal
format, the resume contract (including an exhaustive in-process
kill-point sweep at line granularity), the torn-record policy, the
breaker-board reconstruction, and the streaming-manifest skip path.
"""

import json

import pytest

from repro import faults
from repro.errors import JournalError
from repro.obs import metrics
from repro.runtime import journal as jm
from repro.runtime import manifest as mf
from repro.runtime.batch import run_batch
from repro.runtime.breaker import BreakerBoard
from repro.runtime.heartbeat import HeartbeatWriter, validate_heartbeat
from repro.runtime.retry import RetryPolicy

GOOD_DTD = "<!ELEMENT r (a*)>\n<!ELEMENT a EMPTY>"
BROKEN_DTD = "<!ELEMENT r (unclosed"


@pytest.fixture(autouse=True)
def _no_leaked_plans():
    yield
    faults.teardown()


def _tasks(count=8, bad_every=3):
    return [{"id": f"t{index}", "op": "check",
             "dtd_text": BROKEN_DTD if bad_every
             and index % bad_every == 1 else GOOD_DTD}
            for index in range(count)]


def _manifest(tasks=None):
    return mf.build(tasks if tasks is not None else _tasks(),
                    defaults={"seed": 7})


def _fresh(threshold=2):
    return {"policy": RetryPolicy(backoff_base_ms=0, seed=7),
            "board": BreakerBoard(threshold=threshold)}


def _open(path, manifest, kwargs, **extra):
    extra.setdefault("fsync", False)
    extra.setdefault("warn", lambda message: None)
    return jm.open_journal(str(path), manifest=manifest,
                           policy=kwargs["policy"],
                           board=kwargs["board"], **extra)


def _dumps(summary):
    return json.dumps(summary, indent=2, sort_keys=True)


def _journaled_run(path, tasks=None, threshold=2, resume=False,
                   **extra):
    manifest = _manifest(tasks)
    kwargs = _fresh(threshold=threshold)
    journal = _open(path, manifest, kwargs, resume=resume, **extra)
    try:
        summary = run_batch(manifest, journal=journal, **kwargs)
    finally:
        journal.close()
    return summary, journal


class TestJournalFile:
    def test_meta_record_is_first_and_deterministic(self, tmp_path):
        path = tmp_path / "j.journal"
        _journaled_run(path)
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        assert meta["record"] == "meta"
        assert meta["schema"] == jm.JOURNAL_SCHEMA
        assert meta["version"] == jm.JOURNAL_VERSION
        assert meta["count"] == 8
        # Deterministic: a second identical run writes identical bytes.
        path2 = tmp_path / "j2.journal"
        _journaled_run(path2)
        assert path.read_bytes() == path2.read_bytes()

    def test_intent_precedes_result_for_every_task(self, tmp_path):
        path = tmp_path / "j.journal"
        _journaled_run(path)
        seen_intent = set()
        for line in path.read_text().splitlines()[1:]:
            record = json.loads(line)
            if record["record"] == "intent":
                seen_intent.add(record["index"])
            else:
                assert record["index"] in seen_intent
        assert seen_intent == set(range(8))

    def test_journaled_run_matches_unjournaled_bytes(self, tmp_path):
        base = run_batch(_manifest(), **_fresh())
        summary, _ = _journaled_run(tmp_path / "j.journal")
        assert _dumps(summary) == _dumps(base)


class TestResume:
    def test_full_journal_resume_executes_nothing(self, tmp_path):
        path = tmp_path / "j.journal"
        base, _ = _journaled_run(path)
        metrics.enable()
        metrics.reset()
        try:
            resumed, journal = _journaled_run(path, resume=True)
            assert metrics.counter_value("runtime.tasks") == 0
            assert metrics.counter_value(
                "runtime.journal.skipped") == 8
        finally:
            metrics.reset()
            metrics.disable()
        assert _dumps(resumed) == _dumps(base)
        assert journal.skipped == 8 and journal.replayed == 0

    def test_every_line_prefix_resumes_to_identical_bytes(
            self, tmp_path):
        """The in-process kill-point sweep: chopping the journal at
        every record boundary — including mid-breaker-open, the
        threshold here is 2 and the manifest trips it — must resume
        to the exact bytes of the uninterrupted run."""
        path = tmp_path / "j.journal"
        base, _ = _journaled_run(path)
        lines = path.read_text().splitlines(keepends=True)
        assert len(lines) > 12
        for cut in range(len(lines) + 1):
            prefix = tmp_path / f"cut{cut}.journal"
            prefix.write_text("".join(lines[:cut]))
            resumed, _ = _journaled_run(prefix, resume=True)
            assert _dumps(resumed) == _dumps(base), f"cut at {cut}"
            assert resumed["counts"]["lost"] == 0

    def test_intent_without_result_counts_replayed(self, tmp_path):
        path = tmp_path / "j.journal"
        manifest = _manifest()
        kwargs = _fresh()
        journal = _open(path, manifest, kwargs)
        journal.intent(0, manifest.tasks[0])
        journal.close()
        metrics.enable()
        metrics.reset()
        try:
            resumed, journal = _journaled_run(path, resume=True)
            assert metrics.counter_value(
                "runtime.journal.replayed") == 1
        finally:
            metrics.reset()
            metrics.disable()
        assert journal.replayed == 1
        assert resumed["counts"]["lost"] == 0
        assert _dumps(resumed) == _dumps(run_batch(_manifest(),
                                                   **_fresh()))

    def test_torn_trailing_record_is_truncated_and_counted(
            self, tmp_path):
        path = tmp_path / "j.journal"
        base, _ = _journaled_run(path)
        intact = path.read_bytes()
        path.write_bytes(intact[:-9])  # tear the last record mid-byte
        warnings = []
        metrics.enable()
        metrics.reset()
        try:
            resumed, _ = _journaled_run(path, resume=True,
                                        warn=warnings.append)
            assert metrics.counter_value("runtime.journal.torn") == 1
        finally:
            metrics.reset()
            metrics.disable()
        assert any("torn trailing record" in w for w in warnings)
        assert _dumps(resumed) == _dumps(base)
        # The torn tail was physically dropped before re-appending:
        # the healed journal parses end to end.
        state = jm.read_journal(str(path))
        assert not state.torn
        assert len(state.results) == 8

    def test_resume_with_missing_file_starts_fresh(self, tmp_path):
        path = tmp_path / "absent.journal"
        warnings = []
        resumed, journal = _journaled_run(path, resume=True,
                                          warn=warnings.append)
        assert any("does not exist" in w for w in warnings)
        assert journal.skipped == 0
        assert resumed["counts"]["lost"] == 0
        assert path.exists()

    def test_resume_of_resumed_journal_is_idempotent(self, tmp_path):
        path = tmp_path / "j.journal"
        base, _ = _journaled_run(path)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:5]))
        first, _ = _journaled_run(path, resume=True)
        second, _ = _journaled_run(path, resume=True)
        assert _dumps(first) == _dumps(base)
        assert _dumps(second) == _dumps(base)


class TestStructuralErrors:
    def _write_journal(self, tmp_path, records):
        path = tmp_path / "j.journal"
        path.write_text("".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in records))
        return path

    def _meta(self, manifest=None, kwargs=None):
        manifest = manifest if manifest is not None else _manifest()
        kwargs = kwargs if kwargs is not None else _fresh()
        return jm.meta_record(manifest, kwargs["policy"],
                              kwargs["board"], "off")

    def test_meta_mismatch_raises(self, tmp_path):
        path = self._write_journal(tmp_path, [self._meta()])
        mismatched = _fresh()
        mismatched["policy"] = RetryPolicy(retries=9,
                                           backoff_base_ms=0, seed=7)
        with pytest.raises(JournalError, match="policy mismatch"):
            _open(path, _manifest(), mismatched, resume=True)

    def test_manifest_count_mismatch_raises(self, tmp_path):
        path = self._write_journal(tmp_path, [self._meta()])
        with pytest.raises(JournalError, match="mismatch"):
            _open(path, _manifest(_tasks(count=5)), _fresh(),
                  resume=True)

    def test_breaker_knob_mismatch_raises(self, tmp_path):
        path = self._write_journal(tmp_path, [self._meta()])
        with pytest.raises(JournalError, match="breaker mismatch"):
            _open(path, _manifest(), _fresh(threshold=99),
                  resume=True)

    def test_bad_json_mid_file_raises(self, tmp_path):
        path = tmp_path / "j.journal"
        path.write_text(json.dumps(self._meta(), sort_keys=True)
                        + "\n{not json\n"
                        + '{"record": "intent", "index": 0}\n')
        with pytest.raises(JournalError, match="malformed record"):
            jm.read_journal(str(path))

    def test_duplicate_result_raises(self, tmp_path):
        result = {"record": "result", "index": 0, "id": "t0",
                  "op": "check", "dtd_sha": None, "fds_sha": None,
                  "reason": None, "signature": None,
                  "payload": {"id": "t0", "op": "check",
                              "status": "ok", "attempts": 1,
                              "retried": False, "delays_ms": []}}
        path = self._write_journal(
            tmp_path, [self._meta(), result, result])
        with pytest.raises(JournalError, match="duplicate result"):
            jm.read_journal(str(path))

    def test_meta_mid_file_raises(self, tmp_path):
        path = self._write_journal(
            tmp_path,
            [self._meta(), {"record": "intent", "index": 0,
                            "id": "t0"}, self._meta()])
        with pytest.raises(JournalError, match="only allowed on"):
            jm.read_journal(str(path))

    def test_records_without_meta_raise(self, tmp_path):
        path = self._write_journal(
            tmp_path, [{"record": "intent", "index": 0, "id": "t0"}])
        with pytest.raises(JournalError,
                           match="first record must be the meta"):
            jm.read_journal(str(path))


class TestBreakerReplay:
    def test_transient_faults_board_is_reconstructed(self, tmp_path):
        """Run under an injected-fault storm (retries, opens, skips,
        half-open probes all happen), then resume the complete journal
        with a *fresh* board: no task re-executes — so the fault plan
        cannot diverge — and the summary, breaker snapshot included,
        must reproduce byte-for-byte."""
        path = tmp_path / "j.journal"
        dtd = ("<!ELEMENT db (r*)>\n<!ELEMENT r EMPTY>\n"
               "<!ATTLIST r a CDATA #REQUIRED b CDATA #REQUIRED>")
        tasks = [{"id": f"t{index}", "op": "check", "dtd_text": dtd,
                  "fds_text": "db.r.@a -> db.r.@b"}
                 for index in range(10)]
        spec = ",".join(["fd.closure.iteration:exception"] * 24)
        manifest = _manifest(tasks)
        kwargs = _fresh(threshold=2)
        journal = _open(path, manifest, kwargs)
        with faults.use(faults.plan_from_spec(spec)):
            base = run_batch(manifest, journal=journal, **kwargs)
        journal.close()
        assert base["breakers"], "storm should have tripped a breaker"
        resumed, _ = _journaled_run(path, tasks=tasks, resume=True)
        assert _dumps(resumed) == _dumps(base)

    def test_worker_crash_outcomes_leave_board_untouched(self):
        outcome = jm.ReplayedOutcome({
            "index": 0, "id": "t0", "op": "check",
            "reason": "worker_crash", "signature": "crash:signal-9",
            "payload": {"id": "t0", "op": "check",
                        "status": "dead-letter", "attempts": 2,
                        "retried": True, "delays_ms": [],
                        "failures": [
                            {"attempt": 0,
                             "signature": "crash:signal-9",
                             "transient": True, "chain": []},
                            {"attempt": 1,
                             "signature": "crash:signal-9",
                             "transient": True, "chain": []}]}})
        journal = jm.BatchJournal.__new__(jm.BatchJournal)
        journal._completed = {0: outcome}
        journal._board_replayed = False
        board = BreakerBoard()
        journal.replay_board(board)
        # Crash breaker traffic lives on the pool's private board; the
        # summary board must not see it on replay either.
        assert board.snapshot() == {}


class TestReplayedOutcome:
    def test_duck_types_the_summary_slice(self, tmp_path):
        path = tmp_path / "j.journal"
        _journaled_run(path)
        state = jm.read_journal(str(path))
        replayed = jm.ReplayedOutcome(state.results[1])  # dead-letter
        assert replayed.status == "dead-letter"
        assert not replayed.ok
        letter = replayed.dead_letter()
        assert letter["id"] == "t1"
        assert letter["reason"] == "permanent"
        assert letter["error_chain"]
        # to_json returns a copy: mutating it cannot corrupt a second
        # summarize pass.
        replayed.to_json()["status"] = "mutated"
        assert replayed.status == "dead-letter"


class TestHeartbeatIntegration:
    def test_journal_state_in_heartbeats(self, tmp_path):
        import io
        path = tmp_path / "j.journal"
        manifest = _manifest()
        kwargs = _fresh()
        journal = _open(path, manifest, kwargs)
        stream = io.StringIO()
        writer = HeartbeatWriter(stream, total=8,
                                 board=kwargs["board"],
                                 journal=journal, interval_s=0)
        run_batch(manifest, journal=journal,
                  on_task_done=writer.task_done, **kwargs)
        journal.close()
        records = [json.loads(line) for line
                   in stream.getvalue().splitlines()]
        assert records, "heartbeats should have been emitted"
        for record in records:
            validate_heartbeat(record)
            assert set(record["journal"]) == {"appended", "replayed",
                                              "skipped"}
        # meta + 8 intents + 8 results
        assert records[-1]["journal"]["appended"] == 17

    def test_no_journal_key_without_a_journal(self):
        import io
        writer = HeartbeatWriter(io.StringIO(), total=1, interval_s=0)
        assert "journal" not in writer.record()


class TestStreamingResume:
    def test_10k_stream_resumed_at_7k_skips_completed(
            self, tmp_path, monkeypatch):
        """Satellite: a streaming manifest resumed deep into the run
        must not re-materialize or re-validate the completed prefix —
        pinned by counting ``_build_task`` calls and the
        ``runtime.journal.skipped`` counter."""
        total, done = 10_000, 7_000
        manifest_path = tmp_path / "big.jsonl"
        with open(manifest_path, "w") as stream:
            stream.write(json.dumps(
                {"schema": "repro.runtime.manifest", "version": 1,
                 "defaults": {"seed": 7}, "count": total}) + "\n")
            for index in range(total):
                stream.write(json.dumps(
                    {"id": f"s-{index:05d}", "op": "check",
                     "dtd_text": GOOD_DTD}) + "\n")
        manifest = mf.load(str(manifest_path))
        kwargs = _fresh()
        # Fabricate the journal of a run killed after `done` tasks.
        path = tmp_path / "big.journal"
        with open(path, "w") as stream:
            stream.write(json.dumps(
                jm.meta_record(manifest, kwargs["policy"],
                               kwargs["board"], "off"),
                sort_keys=True) + "\n")
            for index in range(done):
                task_id = f"s-{index:05d}"
                stream.write(json.dumps(
                    {"record": "intent", "index": index,
                     "id": task_id}, sort_keys=True) + "\n")
                stream.write(json.dumps(
                    {"record": "result", "index": index,
                     "id": task_id, "op": "check", "dtd_sha": None,
                     "fds_sha": None, "reason": None,
                     "signature": None,
                     "payload": {"id": task_id, "op": "check",
                                 "status": "ok", "attempts": 1,
                                 "retried": False, "delays_ms": [],
                                 "result": {"in_xnf": True,
                                            "violations": []}}},
                    sort_keys=True) + "\n")
        built = []
        original = mf._build_task

        def counting_build(raw, index, defaults, base_dir):
            built.append(index)
            return original(raw, index, defaults, base_dir)

        monkeypatch.setattr(mf, "_build_task", counting_build)
        metrics.enable()
        metrics.reset()
        journal = _open(path, manifest, kwargs, resume=True)
        try:
            summary = run_batch(manifest, journal=journal, **kwargs)
            assert metrics.counter_value(
                "runtime.journal.skipped") == done
        finally:
            metrics.reset()
            metrics.disable()
            journal.close()
        assert summary["counts"] == {"total": total, "ok": total,
                                     "failed": 0, "lost": 0}
        assert len(built) == total - done
        assert min(built) == done


class TestPoolResume:
    def test_pool_prefix_resume_matches_serial_bytes(self, tmp_path):
        pool_mod = pytest.importorskip("repro.runtime.pool")
        if not pool_mod.pool_available():
            pytest.skip("fork start method unavailable")
        path = tmp_path / "j.journal"
        base, _ = _journaled_run(path, threshold=100)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:7]))
        manifest = _manifest()
        kwargs = _fresh(threshold=100)
        journal = _open(path, manifest, kwargs, resume=True)
        try:
            resumed = run_batch(
                manifest, journal=journal,
                backend=pool_mod.PoolBackend(2), **kwargs)
        finally:
            journal.close()
        assert _dumps(resumed) == _dumps(base)
