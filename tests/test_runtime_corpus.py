"""Unit tests for streamed corpus generation (repro.runtime.corpus)."""

import json

from repro.runtime import corpus
from repro.runtime import manifest as mf


class TestStreamEquivalence:
    def test_iter_tasks_matches_generate_tasks(self):
        assert list(corpus.iter_tasks(25, seed=3)) \
            == corpus.generate_tasks(25, seed=3)

    def test_prefix_stability(self):
        """Streaming the first k tasks of a bigger corpus yields the
        same tasks as a smaller corpus of the same seed — the
        generator draws per-task, with no global shuffling."""
        import itertools
        big = itertools.islice(corpus.iter_tasks(1000, seed=7), 10)
        assert list(big) == corpus.generate_tasks(10, seed=7)

    def test_stream_manifest_matches_eager_manifest(self):
        eager = mf.from_payload(corpus.generate_manifest(15, seed=2))
        streaming = corpus.stream_manifest(15, seed=2)
        assert streaming.task_count == eager.task_count
        assert [t.id for t in streaming.iter_tasks()] \
            == [t.id for t in eager.iter_tasks()]


class TestHundredKScale:
    def test_100k_manifest_is_lazy(self):
        """The 100k-task manifest is O(1) to build and to peek at —
        only the tasks actually pulled are ever validated."""
        manifest = corpus.stream_manifest(100_000, seed=1)
        assert manifest.task_count == 100_000
        iterator = manifest.iter_tasks()
        first = next(iterator)
        assert first.id == "corpus-0000"
        # Pull a handful more; the other ~100k are never built.
        for _ in range(4):
            next(iterator)

    def test_jsonl_writer_streams_line_by_line(self):
        """write_jsonl emits header + one task per line, and the
        header count matches what load() will enforce."""
        import io
        buffer = io.StringIO()
        corpus.write_jsonl(buffer, 30, seed=4)
        lines = buffer.getvalue().splitlines()
        header = json.loads(lines[0])
        assert header["count"] == 30
        assert header["schema"] == mf.MANIFEST_SCHEMA
        assert len(lines) == 31
        assert json.loads(lines[1])["id"] == "corpus-0000"

    def test_jsonl_round_trip_through_load(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        with open(path, "w") as handle:
            corpus.write_jsonl(handle, 12, seed=9)
        manifest = mf.load(path)
        assert isinstance(manifest, mf.StreamingManifest)
        assert manifest.task_count == 12
        assert [t.id for t in manifest.iter_tasks()] \
            == [t["id"] for t in corpus.iter_tasks(12, seed=9)]


class TestCLIFormats:
    def test_format_inferred_from_out_suffix(self, tmp_path):
        out = tmp_path / "c.jsonl"
        assert corpus.main(["--count", "5", "--seed", "1",
                            "--out", str(out)]) == 0
        manifest = mf.load(out)
        assert isinstance(manifest, mf.StreamingManifest)
        assert manifest.task_count == 5

    def test_explicit_json_format_still_one_document(self, tmp_path):
        out = tmp_path / "c.json"
        assert corpus.main(["--count", "5", "--seed", "1",
                            "--format", "json",
                            "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert len(payload["tasks"]) == 5
