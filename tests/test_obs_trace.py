"""Unit tests for tracing spans (repro.obs.trace)."""

from __future__ import annotations

import io
import json

import pytest

from repro import obs
from repro.obs import trace


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    obs.clear_sinks()
    yield
    obs.disable()
    obs.reset()
    obs.clear_sinks()


class TestDisabled:
    def test_span_returns_shared_null_object(self):
        first = obs.span("a")
        second = obs.span("b", attr=1)
        assert first is second  # no allocation on the disabled path

    def test_null_span_supports_protocol(self):
        with obs.span("a") as sp:
            sp.set("key", "value")  # must not raise

    def test_sinks_receive_nothing(self):
        sink = obs.InMemorySink()
        obs.add_sink(sink)
        with obs.span("a"):
            pass
        assert sink.spans == []


class TestNesting:
    def test_hierarchy_and_depth(self):
        obs.enable()
        sink = obs.InMemorySink()
        obs.add_sink(sink)
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert trace.current_span() is inner
            with obs.span("inner2"):
                pass
        assert outer.depth == 0
        assert [c.name for c in outer.children] == ["inner", "inner2"]
        assert outer.children[0].parent_id == outer.span_id
        assert outer.children[0].depth == 1
        # Children finish first, the root last.
        assert [s.name for s in sink.spans] == ["inner", "inner2", "outer"]
        assert sink.roots == [outer]

    def test_attributes(self):
        obs.enable()
        with obs.span("s", dtd="university") as sp:
            sp.set("result", True)
        assert sp.attrs == {"dtd": "university", "result": True}

    def test_duration_is_measured(self):
        obs.enable()
        with obs.span("s") as sp:
            pass
        assert sp.duration >= 0.0
        assert sp.end >= sp.start > 0.0

    def test_iter_spans(self):
        obs.enable()
        with obs.span("root") as root:
            with obs.span("a"):
                with obs.span("b"):
                    pass
        assert [s.name for s in trace.iter_spans(root)] == \
            ["root", "a", "b"]


class TestJsonLines:
    def test_schema(self):
        obs.enable()
        stream = io.StringIO()
        obs.add_sink(obs.JsonLinesSink(stream))
        with obs.span("outer", phase="check"):
            with obs.span("inner") as sp:
                sp.set("count", 3)
        lines = stream.getvalue().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["inner", "outer"]
        inner, outer = records
        for record in records:
            assert set(record) == {"id", "parent", "depth", "name",
                                   "start", "duration_ms", "attrs"}
            assert isinstance(record["duration_ms"], (int, float))
        assert outer["parent"] is None
        assert outer["depth"] == 0
        assert inner["parent"] == outer["id"]
        assert inner["depth"] == 1
        assert inner["attrs"] == {"count": 3}
        assert outer["attrs"] == {"phase": "check"}

    def test_remove_sink(self):
        obs.enable()
        stream = io.StringIO()
        sink = obs.JsonLinesSink(stream)
        obs.add_sink(sink)
        obs.remove_sink(sink)
        with obs.span("a"):
            pass
        assert stream.getvalue() == ""


class TestRenderTree:
    def test_indented_output(self):
        obs.enable()
        with obs.span("outer") as outer:
            with obs.span("inner", rule="move"):
                pass
        text = obs.render_tree(outer)
        lines = text.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "rule=move" in lines[1]
        assert "ms" in lines[0]
