"""Unit tests for tracing spans (repro.obs.trace)."""

from __future__ import annotations

import io
import json
import time

import pytest

from repro import obs
from repro.obs import trace
from repro.obs.trace import SpanContext


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    obs.clear_sinks()
    trace.clear_context()
    yield
    obs.disable()
    obs.reset()
    obs.clear_sinks()
    trace.clear_context()


class TestDisabled:
    def test_span_returns_shared_null_object(self):
        first = obs.span("a")
        second = obs.span("b", attr=1)
        assert first is second  # no allocation on the disabled path

    def test_null_span_supports_protocol(self):
        with obs.span("a") as sp:
            sp.set("key", "value")  # must not raise

    def test_sinks_receive_nothing(self):
        sink = obs.InMemorySink()
        obs.add_sink(sink)
        with obs.span("a"):
            pass
        assert sink.spans == []


class TestNesting:
    def test_hierarchy_and_depth(self):
        obs.enable()
        sink = obs.InMemorySink()
        obs.add_sink(sink)
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert trace.current_span() is inner
            with obs.span("inner2"):
                pass
        assert outer.depth == 0
        assert [c.name for c in outer.children] == ["inner", "inner2"]
        assert outer.children[0].parent_id == outer.span_id
        assert outer.children[0].depth == 1
        # Children finish first, the root last.
        assert [s.name for s in sink.spans] == ["inner", "inner2", "outer"]
        assert sink.roots == [outer]

    def test_attributes(self):
        obs.enable()
        with obs.span("s", dtd="university") as sp:
            sp.set("result", True)
        assert sp.attrs == {"dtd": "university", "result": True}

    def test_duration_is_measured(self):
        obs.enable()
        with obs.span("s") as sp:
            pass
        assert sp.duration >= 0.0
        assert sp.end >= sp.start > 0.0

    def test_iter_spans(self):
        obs.enable()
        with obs.span("root") as root:
            with obs.span("a"):
                with obs.span("b"):
                    pass
        assert [s.name for s in trace.iter_spans(root)] == \
            ["root", "a", "b"]


class TestJsonLines:
    def test_schema(self):
        obs.enable()
        stream = io.StringIO()
        obs.add_sink(obs.JsonLinesSink(stream))
        before = time.time()
        with obs.span("outer", phase="check"):
            with obs.span("inner") as sp:
                sp.set("count", 3)
        after = time.time()
        lines = stream.getvalue().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["inner", "outer"]
        inner, outer = records
        base_keys = {"id", "parent", "depth", "name",
                     "start", "duration_ms", "attrs"}
        # Schema v2: roots carry the version marker and the wall-clock
        # epoch anchor; non-roots carry neither, and context fields
        # (trace_id/task/worker) are absent while no context is set.
        assert set(inner) == base_keys
        assert set(outer) == base_keys | {"v", "epoch"}
        for record in records:
            assert isinstance(record["duration_ms"], (int, float))
        assert outer["parent"] is None
        assert outer["depth"] == 0
        assert outer["v"] == trace.TRACE_VERSION == 2
        assert before - 1e-6 <= outer["epoch"] <= after + 1e-6
        assert inner["parent"] == outer["id"]
        assert inner["depth"] == 1
        assert inner["attrs"] == {"count": 3}
        assert outer["attrs"] == {"phase": "check"}

    def test_remove_sink(self):
        obs.enable()
        stream = io.StringIO()
        sink = obs.JsonLinesSink(stream)
        obs.add_sink(sink)
        obs.remove_sink(sink)
        with obs.span("a"):
            pass
        assert stream.getvalue() == ""


class TestSpanContext:
    def test_wire_round_trip(self):
        context = SpanContext(trace_id="abc123", task="t-1", worker=2)
        assert SpanContext.from_wire(context.to_wire()) == context

    def test_from_wire_rejects_bad_types(self):
        with pytest.raises(ValueError):
            SpanContext.from_wire({"trace_id": 7})
        with pytest.raises(ValueError):
            SpanContext.from_wire({"worker": "three"})
        with pytest.raises(ValueError):
            SpanContext.from_wire({"worker": True})
        with pytest.raises(ValueError):
            SpanContext.from_wire(["not", "a", "dict"])

    def test_spans_stamped_from_ambient_context(self):
        obs.enable()
        trace.set_context(SpanContext(trace_id="deadbeef", worker=4))
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                pass
        for span_ in (outer, inner):
            record = span_.as_record()
            assert record["trace_id"] == "deadbeef"
            assert record["worker"] == 4
            assert "task" not in record

    def test_task_scope_sets_and_restores(self):
        obs.enable()
        trace.set_context(SpanContext(trace_id="deadbeef"))
        with trace.task_scope("corpus-0001"):
            with obs.span("runtime.task") as sp:
                pass
            assert trace.get_context().task == "corpus-0001"
        assert trace.get_context() == SpanContext(trace_id="deadbeef")
        record = sp.as_record()
        assert record["task"] == "corpus-0001"
        assert record["trace_id"] == "deadbeef"

    def test_task_scope_without_ambient_context(self):
        obs.enable()
        with trace.task_scope("t-9"):
            with obs.span("runtime.task") as sp:
                pass
        assert trace.get_context() is None
        assert sp.as_record()["task"] == "t-9"

    def test_task_scope_free_while_disabled(self):
        with trace.task_scope("t-0"):
            pass
        assert trace.get_context() is None

    def test_reinit_after_fork_clears_state(self):
        obs.enable()
        trace.set_context(SpanContext(trace_id="x"))
        obs.add_sink(obs.InMemorySink())
        assert trace.has_sinks()
        context_manager = obs.span("left-open")
        context_manager.__enter__()
        trace.reinit_after_fork()
        assert not trace.has_sinks()
        assert trace.get_context() is None
        assert trace.current_span() is None


class TestIngestRecords:
    def _worker_records(self):
        """Records the way a worker's buffering sink collects them:
        child first, worker-local ids, worker-origin timestamps."""
        return [
            {"id": 2, "parent": 1, "depth": 1, "name": "spec.parse",
             "start": 0.010, "duration_ms": 5.0, "attrs": {},
             "task": "t-1", "worker": 3},
            {"id": 1, "parent": None, "depth": 0, "name": "runtime.task",
             "start": 0.005, "duration_ms": 20.0,
             "attrs": {"task": "t-1"}, "task": "t-1", "worker": 3,
             "counters": {"chase.steps": 7}, "v": 2, "epoch": 123.0},
        ]

    def test_reparents_under_open_span_with_fresh_ids(self):
        obs.enable()
        sink = obs.InMemorySink()
        obs.add_sink(sink)
        # An offset that rebases the shipment just into our past, so
        # the ends-before-arrival clamp provably stays inactive.
        offset = time.perf_counter() - 1.0
        with obs.span("cli.batch") as root:
            count = trace.ingest_records(self._worker_records(),
                                         offset=offset, worker=3)
        assert count == 2
        assert [child.name for child in root.children] \
            == ["runtime.task"]
        task_span = root.children[0]
        assert task_span.parent_id == root.span_id
        assert task_span.depth == 1
        assert task_span.children[0].name == "spec.parse"
        assert task_span.children[0].depth == 2
        assert task_span.children[0].parent_id == task_span.span_id
        # Fresh ids from this process's counter, no collisions.
        ids = {root.span_id, task_span.span_id,
               task_span.children[0].span_id}
        assert len(ids) == 3
        # Clock rebase: worker start + offset.
        assert task_span.start == pytest.approx(offset + 0.005)
        assert task_span.end == pytest.approx(offset + 0.025)
        # Sinks saw the ingested spans (in shipment order) and then
        # the root when it finished.
        assert [s.name for s in sink.spans] \
            == ["spec.parse", "runtime.task", "cli.batch"]

    def test_ingested_record_fields_survive(self):
        obs.enable()
        stream = io.StringIO()
        obs.add_sink(obs.JsonLinesSink(stream))
        with obs.span("cli.batch"):
            trace.ingest_records(self._worker_records(), worker=3)
        records = [json.loads(line)
                   for line in stream.getvalue().splitlines()]
        by_name = {record["name"]: record for record in records}
        task_record = by_name["runtime.task"]
        assert task_record["task"] == "t-1"
        assert task_record["worker"] == 3
        assert task_record["counters"] == {"chase.steps": 7}
        # Reparented under the batch root: no longer a root record, so
        # no epoch/v marker (the stitched trace has one root).
        assert "epoch" not in task_record
        assert task_record["parent"] == by_name["cli.batch"]["id"]
        # Monotone parent/child timings after the stitch.
        assert task_record["start"] <= by_name["spec.parse"]["start"]

    def test_without_open_span_tops_stay_roots(self):
        obs.enable()
        sink = obs.InMemorySink()
        obs.add_sink(sink, tree=True)
        trace.ingest_records(self._worker_records(), worker=3)
        assert [root.name for root in sink.roots] == ["runtime.task"]
        assert sink.roots[0].depth == 0
        assert sink.roots[0].parent_id is None

    def test_worker_default_only_fills_missing(self):
        obs.enable()
        records = [{"id": 5, "parent": None, "depth": 0, "name": "a",
                    "start": 0.0, "duration_ms": 1.0, "attrs": {}}]
        with obs.span("root") as root:
            trace.ingest_records(records, worker=7)
        assert root.children[0].worker == 7

    def test_noop_while_disabled(self):
        assert trace.ingest_records(self._worker_records()) == 0


class TestRenderTree:
    def test_indented_output(self):
        obs.enable()
        with obs.span("outer") as outer:
            with obs.span("inner", rule="move"):
                pass
        text = obs.render_tree(outer)
        lines = text.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "rule=move" in lines[1]
        assert "ms" in lines[0]
