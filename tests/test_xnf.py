"""Unit tests for the XNF test and anomalous-FD machinery (Section 5/6)."""

from repro.dtd.parser import parse_dtd
from repro.fd.implication import ImplicationEngine
from repro.fd.model import FD
from repro.xnf.anomalous import (
    anomalous_paths,
    anomalous_sigma_fds,
    is_anomalous,
    minimal_anomalous_fd,
    sub_fd_candidates,
)
from repro.xnf.check import is_in_xnf, xnf_violations


class TestPaperExamples:
    def test_university_not_in_xnf(self, uni_spec):
        """Example 5.1."""
        assert not is_in_xnf(uni_spec.dtd, uni_spec.sigma)
        violations = xnf_violations(uni_spec.dtd, uni_spec.sigma)
        assert violations == [uni_spec.sigma[2]]  # FD3

    def test_dblp_not_in_xnf(self, dblp):
        """Example 5.2."""
        assert not is_in_xnf(dblp.dtd, dblp.sigma)
        violations = xnf_violations(dblp.dtd, dblp.sigma)
        assert violations == [dblp.sigma[1]]  # FD5

    def test_university_without_fd3_is_xnf(self, uni_spec):
        assert is_in_xnf(uni_spec.dtd, uni_spec.sigma[:2])

    def test_dblp_without_fd5_is_xnf(self, dblp):
        assert is_in_xnf(dblp.dtd, dblp.sigma[:1])

    def test_empty_sigma_is_xnf(self, uni_spec):
        assert is_in_xnf(uni_spec.dtd, [])


class TestIsAnomalous:
    def test_fd3_anomalous(self, uni_spec):
        oracle = ImplicationEngine(uni_spec.dtd, uni_spec.sigma)
        assert is_anomalous(oracle, uni_spec.sigma[2])

    def test_key_fd_not_anomalous(self, uni_spec):
        oracle = ImplicationEngine(uni_spec.dtd, uni_spec.sigma)
        assert not is_anomalous(oracle, uni_spec.sigma[0])

    def test_trivial_fd_not_anomalous(self, uni_spec):
        oracle = ImplicationEngine(uni_spec.dtd, uni_spec.sigma)
        trivial = FD.parse(
            "courses.course -> courses.course.@cno")
        assert not is_anomalous(oracle, trivial)

    def test_element_rhs_not_anomalous(self, uni_spec):
        oracle = ImplicationEngine(uni_spec.dtd, uni_spec.sigma)
        assert not is_anomalous(oracle, uni_spec.sigma[0])

    def test_unimplied_fd_not_anomalous(self, uni_spec):
        oracle = ImplicationEngine(uni_spec.dtd, uni_spec.sigma)
        made_up = FD.parse(
            "courses.course.@cno -> "
            "courses.course.taken_by.student.grade.S")
        assert not is_anomalous(oracle, made_up)

    def test_fd_whose_node_version_holds(self, uni_spec):
        """cno -> title.S is implied, and cno -> title is too (via the
        key FD1), so it is not anomalous."""
        oracle = ImplicationEngine(uni_spec.dtd, uni_spec.sigma)
        fd = FD.parse("courses.course.@cno -> courses.course.title.S")
        assert oracle.implies(fd)
        assert not is_anomalous(oracle, fd)


class TestAnomalousPaths:
    def test_university(self, uni_spec):
        oracle = ImplicationEngine(uni_spec.dtd, uni_spec.sigma)
        paths = anomalous_paths(oracle)
        assert {str(p) for p in paths} == {
            "courses.course.taken_by.student.name.S"}

    def test_dblp(self, dblp):
        oracle = ImplicationEngine(dblp.dtd, dblp.sigma)
        paths = anomalous_paths(oracle)
        assert {str(p) for p in paths} == {
            "db.conf.issue.inproceedings.@year"}

    def test_xnf_means_no_anomalous_paths(self, uni_spec):
        oracle = ImplicationEngine(uni_spec.dtd, uni_spec.sigma[:2])
        assert not anomalous_paths(oracle)


class TestMinimality:
    def test_sub_candidates_shape(self):
        fd = FD.parse("{a.q, a.p.@l1, a.p.@l2} -> a.p.@l0")
        candidates = sub_fd_candidates(fd)
        assert candidates
        for candidate in candidates:
            assert len(candidate.lhs) <= 2
            assert len(candidate.lhs_element_paths()) <= 1

    def test_no_candidates_for_element_only_lhs(self):
        fd = FD.parse("a.q -> a.p.@l0")
        assert sub_fd_candidates(fd) == []

    def test_minimal_fd_drops_redundant_attribute(self):
        """{sno, cno} -> name.S minimizes to {sno} -> name.S because
        the smaller FD is already anomalous."""
        dtd = parse_dtd("""
            <!ELEMENT courses (course*)>
            <!ELEMENT course (student*)>
            <!ATTLIST course cno CDATA #REQUIRED>
            <!ELEMENT student (name)>
            <!ATTLIST student sno CDATA #REQUIRED>
            <!ELEMENT name (#PCDATA)>
        """)
        small = FD.parse("courses.course.student.@sno -> "
                         "courses.course.student.name.S")
        big = FD.parse(
            "{courses.course.@cno, courses.course.student.@sno} -> "
            "courses.course.student.name.S")
        oracle = ImplicationEngine(dtd, [small, big])
        assert is_anomalous(oracle, big)
        minimal = minimal_anomalous_fd(oracle, big)
        assert minimal == small

    def test_already_minimal_stays(self, uni_spec):
        oracle = ImplicationEngine(uni_spec.dtd, uni_spec.sigma)
        fd3 = uni_spec.sigma[2]
        assert minimal_anomalous_fd(oracle, fd3) == fd3


class TestAnomalousSigmaFds:
    def test_expansion_of_multi_rhs(self, uni_spec):
        sigma = uni_spec.sigma[:2] + [FD.parse(
            "courses.course.taken_by.student.@sno -> "
            "{courses.course.taken_by.student.name.S, "
            "courses.course.taken_by.student.grade.S}")]
        oracle = ImplicationEngine(uni_spec.dtd, sigma)
        anomalous = anomalous_sigma_fds(oracle)
        assert len(anomalous) == 2  # both expansions are anomalous
