"""Unit tests for :class:`repro.dtd.paths.Path`."""

import pytest

from repro.errors import InvalidPathError
from repro.dtd.paths import Path, parse_paths


class TestConstruction:
    def test_parse(self):
        path = Path.parse("courses.course.@cno")
        assert path.steps == ("courses", "course", "@cno")

    def test_parse_strips_whitespace(self):
        assert Path.parse(" a . b ") == Path.parse("a.b")

    def test_root(self):
        assert Path.root("db").steps == ("db",)

    def test_empty_rejected(self):
        with pytest.raises(InvalidPathError):
            Path.parse("")

    def test_attribute_must_be_final(self):
        with pytest.raises(InvalidPathError):
            Path(("a", "@x", "b"))

    def test_text_must_be_final(self):
        with pytest.raises(InvalidPathError):
            Path(("a", "S", "b"))

    def test_immutable(self):
        path = Path.parse("a.b")
        with pytest.raises(AttributeError):
            path.steps = ("x",)


class TestKinds:
    def test_element_path(self):
        path = Path.parse("courses.course")
        assert path.is_element
        assert not path.is_attribute
        assert not path.is_text

    def test_attribute_path(self):
        path = Path.parse("courses.course.@cno")
        assert path.is_attribute
        assert not path.is_element

    def test_text_path(self):
        path = Path.parse("courses.course.title.S")
        assert path.is_text
        assert not path.is_element

    def test_last_and_length(self):
        path = Path.parse("a.b.c")
        assert path.last == "c"
        assert path.length == 3
        assert len(path) == 3


class TestNavigation:
    def test_parent(self):
        assert Path.parse("a.b.c").parent == Path.parse("a.b")

    def test_root_has_no_parent(self):
        with pytest.raises(InvalidPathError):
            _ = Path.parse("a").parent

    def test_child(self):
        assert Path.parse("a").child("b") == Path.parse("a.b")

    def test_cannot_extend_attribute(self):
        with pytest.raises(InvalidPathError):
            Path.parse("a.@x").child("b")

    def test_attribute_helper_adds_at(self):
        assert Path.parse("a").attribute("cno") == Path.parse("a.@cno")
        assert Path.parse("a").attribute("@cno") == Path.parse("a.@cno")

    def test_text_helper(self):
        assert Path.parse("a").text == Path.parse("a.S")

    def test_element_prefix(self):
        assert Path.parse("a.b.@x").element_prefix == Path.parse("a.b")
        assert Path.parse("a.b").element_prefix == Path.parse("a.b")


class TestPrefixes:
    def test_prefixes(self):
        path = Path.parse("a.b.c")
        assert list(path.prefixes()) == [
            Path.parse("a"), Path.parse("a.b"), Path.parse("a.b.c")]

    def test_proper_prefixes(self):
        path = Path.parse("a.b.c")
        assert list(path.prefixes(proper=True)) == [
            Path.parse("a"), Path.parse("a.b")]

    def test_is_prefix_of(self):
        assert Path.parse("a.b").is_prefix_of(Path.parse("a.b.c"))
        assert Path.parse("a.b").is_prefix_of(Path.parse("a.b"))
        assert not Path.parse("a.b").is_prefix_of(
            Path.parse("a.b"), proper=True)
        assert not Path.parse("a.c").is_prefix_of(Path.parse("a.b.c"))

    def test_replace_prefix(self):
        path = Path.parse("a.b.c")
        replaced = path.replace_prefix(Path.parse("a.b"),
                                       Path.parse("x.y"))
        assert replaced == Path.parse("x.y.c")

    def test_replace_prefix_requires_prefix(self):
        with pytest.raises(InvalidPathError):
            Path.parse("a.b").replace_prefix(Path.parse("z"),
                                             Path.parse("x"))


class TestCollections:
    def test_hash_and_eq(self):
        assert Path.parse("a.b") == Path.parse("a.b")
        assert hash(Path.parse("a.b")) == hash(Path.parse("a.b"))
        assert len({Path.parse("a.b"), Path.parse("a.b")}) == 1

    def test_ordering(self):
        assert sorted([Path.parse("b"), Path.parse("a.c"),
                       Path.parse("a")]) == [
            Path.parse("a"), Path.parse("a.c"), Path.parse("b")]

    def test_str_round_trip(self):
        text = "courses.course.taken_by.student.@sno"
        assert str(Path.parse(text)) == text

    def test_parse_paths(self):
        paths = parse_paths("a.b, a.c ,a")
        assert len(paths) == 3
