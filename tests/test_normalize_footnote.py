"""Unit tests for the footnote variant of *creating element types*.

The paper's footnote: when the moved value ``p.@l`` can be ``⊥`` in
``tuples_D(T)`` (here: whenever the LHS does not force it non-null),
``P'(tau)`` becomes ``tau1*, ..., taun*, (tau'|eps)`` with ``@l`` on the
fresh ``tau'`` — so a group may exist without a value.
"""

import pytest

from repro.dtd.parser import parse_dtd
from repro.fd.model import FD
from repro.normalize.transforms import create_element_type
from repro.regex.analysis import Multiplicity
from repro.xmltree.conformance import conforms
from repro.xmltree.parser import parse_xml


@pytest.fixture
def nullable_spec():
    dtd = parse_dtd("""
        <!ELEMENT shop (item*)>
        <!ELEMENT item (detail?)>
        <!ATTLIST item sku CDATA #REQUIRED>
        <!ELEMENT detail EMPTY>
        <!ATTLIST detail note CDATA #REQUIRED>
    """)
    sigma = [FD.parse("shop.item.@sku -> shop.item.detail.@note")]
    fd = FD.parse("{shop, shop.item.@sku} -> shop.item.detail.@note")
    return dtd, sigma, fd


class TestNullableValue:
    def test_value_holder_is_optional(self, nullable_spec):
        dtd, sigma, fd = nullable_spec
        step = create_element_type(dtd, sigma, fd)
        tau = next(t for t in step.dtd.element_types
                   if t not in dtd.element_types
                   and step.dtd.child_element_types(t))
        holders = [c for c in step.dtd.child_element_types(tau)
                   if "@note" in step.dtd.attrs(c)]
        assert len(holders) == 1
        assert step.dtd.child_multiplicity(
            tau, holders[0]) is Multiplicity.OPT

    def test_value_attribute_removed_from_original(self, nullable_spec):
        dtd, sigma, fd = nullable_spec
        step = create_element_type(dtd, sigma, fd)
        assert "@note" not in step.dtd.attrs("detail")

    def test_migration_handles_missing_values(self, nullable_spec):
        dtd, sigma, fd = nullable_spec
        step = create_element_type(dtd, sigma, fd)
        doc = parse_xml(
            '<shop><item sku="a"><detail note="n1"/></item>'
            '<item sku="b"/>'
            '<item sku="a"><detail note="n1"/></item></shop>')
        migrated = step.migrate(doc)
        assert conforms(migrated, step.dtd)
        notes = [v for (n, a), v in migrated.attributes.items()
                 if a == "@note"]
        assert notes == ["n1"]  # stored once, and only for sku 'a'


class TestForcedValueHasNoHolder:
    def test_university_tau_has_direct_value(self, uni_spec):
        """Figure 1(b): name is forced given sno, so no optional
        wrapper appears — tau carries the value directly."""
        from repro.dtd.paths import Path
        fd = FD(uni_spec.sigma[2].lhs | {Path.root("courses")},
                uni_spec.sigma[2].rhs)
        step = create_element_type(uni_spec.dtd, uni_spec.sigma, fd)
        tau = next(t for t in step.dtd.element_types
                   if t not in uni_spec.dtd.element_types
                   and step.dtd.child_element_types(t))
        # the value child (name) has multiplicity ONE, not OPT
        assert step.dtd.child_multiplicity(
            tau, "name") is Multiplicity.ONE
