"""Unit tests for the relational → XML coding (Example 5.3, Prop. 4)."""

from repro.dtd.paths import Path
from repro.relational.schema import RelationalFD, RelationSchema, is_in_bcnf
from repro.relational.xml_coding import (
    attr_path,
    decode_relation,
    encode_relation,
    relational_dtd,
    relational_sigma,
    row_path,
)
from repro.xmltree.conformance import conforms
from repro.xnf.check import is_in_xnf


G = RelationSchema("G", ("A", "B", "C"))


def fds(*texts):
    return [RelationalFD.parse(t) for t in texts]


class TestCoding:
    def test_example_53_dtd_shape(self):
        dtd = relational_dtd(G)
        assert dtd.root == "db"
        assert dtd.content("db").to_dtd() == "G*"
        assert dtd.attrs("G") == {"@A", "@B", "@C"}
        assert not dtd.is_recursive

    def test_paths(self):
        assert row_path(G) == Path.parse("db.G")
        assert attr_path(G, "A") == Path.parse("db.G.@A")

    def test_sigma_includes_no_duplicates_key(self):
        sigma = relational_sigma(G, fds("A -> B"))
        rendered = {str(fd) for fd in sigma}
        assert "db.G.@A -> db.G.@B" in rendered
        assert "{db.G.@A, db.G.@B, db.G.@C} -> db.G" in rendered


class TestProposition4:
    """BCNF iff XNF, on hand-picked FD families."""

    FAMILIES = [
        ["A -> B"],                      # not BCNF
        ["A -> B, C"],                   # key: BCNF
        ["A -> B", "B -> A"],            # not BCNF (A->B not a key FD)
        ["A -> B, C", "B -> A, C"],      # two keys: BCNF
        [],                              # no FDs: BCNF
        ["A, B -> C"],                   # AB not a key: not BCNF
        ["A, B -> C", "C -> A, B"],      # both sides keys: BCNF
    ]

    def test_agreement(self):
        for family in self.FAMILIES:
            relational = fds(*family)
            bcnf = is_in_bcnf(G, relational)
            xnf = is_in_xnf(relational_dtd(G),
                            relational_sigma(G, relational))
            assert bcnf == xnf, f"Proposition 4 fails on {family}"


class TestInstances:
    ROWS = [
        {"A": "1", "B": "x", "C": "p"},
        {"A": "2", "B": "x", "C": "q"},
    ]

    def test_encode_conforms(self):
        doc = encode_relation(G, self.ROWS)
        assert conforms(doc, relational_dtd(G))

    def test_round_trip(self):
        doc = encode_relation(G, self.ROWS)
        decoded = decode_relation(G, doc)
        assert sorted(decoded, key=lambda r: r["A"]) == self.ROWS

    def test_fd_semantics_transfer(self):
        """The coded document satisfies the coded FD iff the relation
        satisfies the relational FD."""
        from repro.fd.satisfaction import satisfies
        dtd = relational_dtd(G)
        sigma = relational_sigma(G, fds("A -> B"))
        good = encode_relation(G, self.ROWS)
        assert satisfies(good, dtd, sigma[0])
        bad = encode_relation(G, [
            {"A": "1", "B": "x", "C": "p"},
            {"A": "1", "B": "y", "C": "p"},
        ])
        assert not satisfies(bad, dtd, sigma[0])
