"""Unit tests for Codd tables (relations with nulls)."""

import pytest

from repro.errors import ReproError
from repro.relational.codd import CoddTable


@pytest.fixture
def table():
    return CoddTable(("A", "B", "C"), [
        {"A": "1", "B": "x", "C": "p"},
        {"A": "2", "B": "x", "C": None},
        {"A": "3", "B": None, "C": "p"},
    ])


class TestBasics:
    def test_rows_sorted_and_null_padded(self, table):
        rows = table.rows
        assert len(rows) == 3
        assert rows[0]["C"] == "p" or rows[0]["C"] is None

    def test_duplicate_rows_collapse(self):
        table = CoddTable(("A",), [{"A": "1"}, {"A": "1"}])
        assert len(table) == 1

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ReproError):
            CoddTable(("A",), [{"Z": "1"}])

    def test_equality_is_order_insensitive(self):
        first = CoddTable(("A", "B"), [{"A": "1", "B": "2"}])
        second = CoddTable(("B", "A"), [{"B": "2", "A": "1"}])
        assert first == second


class TestFDSatisfaction:
    def test_satisfied(self, table):
        assert table.satisfies_fd(["A"], ["B"])

    def test_violated(self):
        table = CoddTable(("A", "B"), [
            {"A": "1", "B": "x"}, {"A": "1", "B": "y"}])
        assert not table.satisfies_fd(["A"], ["B"])

    def test_null_lhs_disables(self):
        """Atzeni-Morfuni: rows with null LHS impose nothing."""
        table = CoddTable(("A", "B"), [
            {"A": None, "B": "x"}, {"A": None, "B": "y"}])
        assert table.satisfies_fd(["A"], ["B"])

    def test_null_rhs_must_agree(self):
        table = CoddTable(("A", "B"), [
            {"A": "1", "B": None}, {"A": "1", "B": "y"}])
        assert not table.satisfies_fd(["A"], ["B"])

    def test_both_null_rhs_agree(self):
        table = CoddTable(("A", "B"), [
            {"A": "1", "B": None}, {"A": "1", "B": None}])
        assert table.satisfies_fd(["A"], ["B"])


class TestAlgebra:
    def test_project(self, table):
        projected = table.project(["A"])
        assert projected.attributes == ("A",)
        assert len(projected) == 3

    def test_project_unknown_rejected(self, table):
        with pytest.raises(ReproError):
            table.project(["Z"])

    def test_select_eq_value_drops_nulls(self, table):
        selected = table.select_eq("B", "x", value=True)
        assert len(selected) == 2

    def test_select_eq_attr(self):
        table = CoddTable(("A", "B"), [
            {"A": "1", "B": "1"}, {"A": "1", "B": "2"},
            {"A": None, "B": None}])
        selected = table.select_eq("A", "B")
        assert len(selected) == 1  # null = null does NOT hold

    def test_rename(self, table):
        renamed = table.rename({"A": "X"})
        assert renamed.attributes == ("X", "B", "C")

    def test_natural_join_skips_nulls(self):
        left = CoddTable(("A", "B"), [
            {"A": "1", "B": "x"}, {"A": "2", "B": None}])
        right = CoddTable(("B", "C"), [
            {"B": "x", "C": "c1"}, {"B": None, "C": "c2"}])
        joined = left.natural_join(right)
        assert len(joined) == 1
        assert joined.rows[0] == {"A": "1", "B": "x", "C": "c1"}

    def test_union(self):
        first = CoddTable(("A",), [{"A": "1"}])
        second = CoddTable(("A",), [{"A": "2"}, {"A": "1"}])
        assert len(first.union(second)) == 2

    def test_union_requires_same_attributes(self):
        with pytest.raises(ReproError):
            CoddTable(("A",)).union(CoddTable(("B",)))

    def test_difference(self):
        first = CoddTable(("A",), [{"A": "1"}, {"A": "2"}])
        second = CoddTable(("A",), [{"A": "2"}])
        assert len(first.difference(second)) == 1


class TestTuplesTable:
    def test_tuples_table_of_document(self, uni_spec, uni_doc):
        from repro.relational.codd import tuples_table
        table = tuples_table(uni_spec.dtd, uni_doc)
        assert len(table) == 4
        assert len(table.attributes) == 12
        # the FD3 of the paper holds on the relational representation
        assert table.satisfies_fd(
            ["courses.course.taken_by.student.@sno"],
            ["courses.course.taken_by.student.name.S"])
        assert not table.satisfies_fd(
            ["courses.course.taken_by.student.@sno"],
            ["courses.course.taken_by.student.name"])
