"""Comparator and gate tests (repro.bench.compare + the CLI paths).

Satellite contract: a counter regression beyond tolerance fails the
gate (exit 1), improvements pass, and structural problems — missing
benchmarks, schema version mismatch, unreadable files — are clear
errors with exit code 2, never tracebacks.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import compare
from repro.bench.cli import main as bench_main
from repro.bench.schema import (BenchReportError, SCHEMA_NAME,
                                SCHEMA_VERSION, envelope)


def make_payload(counters=None, *, time_s=0.01, claim=None,
                 name="grp.bench"):
    payload = envelope(suite="quick", repeat=1)
    payload["benchmarks"][name] = {
        "group": name.split(".", 1)[0], "param": "n",
        "points": [{"value": 4, "time_s": time_s,
                    "counters": dict(counters or {"chase.steps": 100})}],
        "claim": claim,
    }
    return payload


class TestCompare:
    def test_identical_reports_pass(self):
        base = make_payload()
        findings = compare.compare_payloads(base, copy.deepcopy(base))
        assert findings == []
        assert compare.gate(findings) == 0

    def test_counter_regression_beyond_tolerance_gates(self):
        base = make_payload({"chase.steps": 100})
        curr = make_payload({"chase.steps": 120})
        findings = compare.compare_payloads(base, curr, tolerance=0.05)
        assert [f.severity for f in findings] == ["regression"]
        assert "chase.steps" in findings[0].detail
        assert compare.gate(findings) == 1

    def test_counter_growth_within_tolerance_passes(self):
        base = make_payload({"chase.steps": 100})
        curr = make_payload({"chase.steps": 104})
        findings = compare.compare_payloads(base, curr, tolerance=0.05)
        assert compare.gate(findings) == 0

    def test_improvement_passes_with_note(self):
        base = make_payload({"chase.steps": 100})
        curr = make_payload({"chase.steps": 60})
        findings = compare.compare_payloads(base, curr, tolerance=0.05)
        assert [f.severity for f in findings] == ["note"]
        assert compare.gate(findings) == 0

    def test_new_counter_appearing_gates(self):
        base = make_payload({"chase.steps": 100})
        curr = make_payload({"chase.steps": 100,
                             "chase.branches.explored": 50})
        findings = compare.compare_payloads(base, curr, tolerance=0.05)
        assert compare.gate(findings) == 1

    def test_wall_time_is_advisory_only(self):
        base = make_payload(time_s=0.01)
        curr = make_payload(time_s=0.05)  # 5x slower
        findings = compare.compare_payloads(base, curr, tolerance=0.05)
        assert [f.severity for f in findings] == ["advisory"]
        assert compare.gate(findings) == 0

    def test_missing_benchmark_is_structural_error(self):
        base = make_payload()
        curr = make_payload(name="grp.other")
        with pytest.raises(BenchReportError,
                           match="missing baseline benchmark"):
            compare.compare_payloads(base, curr)

    def test_new_benchmark_is_a_note(self):
        base = make_payload()
        curr = copy.deepcopy(base)
        curr["benchmarks"]["grp.fresh"] = \
            make_payload(name="grp.fresh")["benchmarks"]["grp.fresh"]
        findings = compare.compare_payloads(base, curr)
        assert [(f.severity, f.benchmark) for f in findings] == \
               [("note", "grp.fresh")]

    def test_disappeared_series_point_gates(self):
        base = make_payload()
        curr = copy.deepcopy(base)
        curr["benchmarks"]["grp.bench"]["points"][0]["value"] = 8
        findings = compare.compare_payloads(base, curr)
        assert any(f.severity == "regression"
                   and "disappeared" in f.detail for f in findings)

    def test_claim_flip_to_fail_gates(self):
        passing = {"statement": "Theorem 3", "bound": "polynomial",
                   "counter": "closure.iterations",
                   "kind": "polynomial", "slope": 1.0,
                   "time_slope": 1.1, "max_slope": 3.0, "passed": True}
        failing = dict(passing, slope=4.2, passed=False)
        base = make_payload(claim=passing)
        curr = make_payload(claim=failing)
        findings = compare.compare_payloads(base, curr)
        assert any(f.severity == "regression"
                   and "now FAILS" in f.detail for f in findings)


class TestSchemaValidation:
    def test_version_mismatch_is_clear_error(self, tmp_path):
        payload = make_payload()
        payload["schema_version"] = SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(BenchReportError, match="schema version"):
            compare.load_report(path)

    def test_wrong_schema_name_rejected(self, tmp_path):
        payload = make_payload()
        payload["schema"] = "something.else"
        path = tmp_path / "alien.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(BenchReportError):
            compare.load_report(path)

    def test_unreadable_file_is_clear_error(self, tmp_path):
        with pytest.raises(BenchReportError, match="cannot read"):
            compare.load_report(tmp_path / "does-not-exist.json")

    def test_invalid_json_is_clear_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(BenchReportError, match="not valid JSON"):
            compare.load_report(path)

    def test_valid_payload_roundtrips(self, tmp_path):
        payload = make_payload()
        path = tmp_path / "ok.json"
        path.write_text(json.dumps(payload))
        loaded = compare.load_report(path)
        assert loaded["schema"] == SCHEMA_NAME
        assert "grp.bench" in loaded["benchmarks"]


class TestCLI:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_compare_exit_zero_on_match(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", make_payload())
        curr = self._write(tmp_path, "curr.json", make_payload())
        assert bench_main(["compare", base, curr]) == 0
        assert "OK: no counter regressions" in capsys.readouterr().out

    def test_compare_exit_one_on_regression(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json",
                           make_payload({"chase.steps": 100}))
        curr = self._write(tmp_path, "curr.json",
                           make_payload({"chase.steps": 200}))
        assert bench_main(["compare", base, curr]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_tolerance_flag_is_percent(self, tmp_path):
        base = self._write(tmp_path, "base.json",
                           make_payload({"chase.steps": 100}))
        curr = self._write(tmp_path, "curr.json",
                           make_payload({"chase.steps": 120}))
        assert bench_main(["compare", base, curr,
                           "--tolerance", "25"]) == 0

    def test_compare_exit_two_on_missing_file(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", make_payload())
        code = bench_main(["compare", base,
                           str(tmp_path / "nope.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_compare_exit_two_on_version_mismatch(self, tmp_path,
                                                  capsys):
        base = self._write(tmp_path, "base.json", make_payload())
        future = make_payload()
        future["schema_version"] = SCHEMA_VERSION + 1
        curr = self._write(tmp_path, "future.json", future)
        code = bench_main(["compare", base, curr])
        assert code == 2
        err = capsys.readouterr().err
        assert "schema version" in err
        assert "Traceback" not in err

    def test_compare_exit_two_on_missing_benchmark(self, tmp_path,
                                                   capsys):
        base = self._write(tmp_path, "base.json", make_payload())
        curr = self._write(tmp_path, "curr.json",
                           make_payload(name="grp.other"))
        code = bench_main(["compare", base, curr])
        assert code == 2
        assert "missing baseline benchmark" in capsys.readouterr().err

    def test_report_renders_a_file(self, tmp_path, capsys):
        path = self._write(tmp_path, "r.json", make_payload())
        assert bench_main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "repro.bench report" in out
        assert "grp.bench" in out
