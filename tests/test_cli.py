"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets.dblp import DBLP_DOCUMENT, DBLP_DTD, DBLP_FDS
from repro.datasets.university import UNIVERSITY_DTD, UNIVERSITY_FDS


@pytest.fixture
def university_files(tmp_path):
    dtd = tmp_path / "university.dtd"
    dtd.write_text(UNIVERSITY_DTD)
    fds = tmp_path / "university.fds"
    fds.write_text(UNIVERSITY_FDS)
    return str(dtd), str(fds)


@pytest.fixture
def dblp_files(tmp_path):
    dtd = tmp_path / "dblp.dtd"
    dtd.write_text(DBLP_DTD)
    fds = tmp_path / "dblp.fds"
    fds.write_text(DBLP_FDS)
    xml = tmp_path / "dblp.xml"
    xml.write_text(DBLP_DOCUMENT)
    return str(dtd), str(fds), str(xml)


class TestCheck:
    def test_not_in_xnf_exit_code(self, university_files, capsys):
        code = main(["check", *university_files])
        assert code == 1
        out = capsys.readouterr().out
        assert "NOT in XNF" in out
        assert "anomalous" in out

    def test_in_xnf(self, tmp_path, capsys):
        dtd = tmp_path / "d.dtd"
        dtd.write_text("<!ELEMENT db (G*)>\n<!ELEMENT G EMPTY>\n"
                       "<!ATTLIST G A CDATA #REQUIRED>")
        fds = tmp_path / "d.fds"
        fds.write_text("db.G.@A -> db.G\n")
        assert main(["check", str(dtd), str(fds)]) == 0
        assert "is in XNF" in capsys.readouterr().out


class TestNormalize:
    def test_university(self, university_files, capsys, tmp_path):
        out_dir = tmp_path / "out"
        code = main(["normalize", *university_files, "-o", str(out_dir)])
        assert code == 0
        captured = capsys.readouterr()
        assert "<!ELEMENT" in captured.out
        assert (out_dir / "normalized.dtd").exists()
        assert (out_dir / "normalized.fds").exists()

    def test_dblp_moves_attribute(self, dblp_files, capsys):
        dtd, fds, _xml = dblp_files
        assert main(["normalize", dtd, fds]) == 0
        captured = capsys.readouterr()
        assert "year" in captured.out


class TestImplies:
    def test_implied(self, university_files, capsys):
        code = main(["implies", *university_files,
                     "courses.course -> courses.course.title"])
        assert code == 0
        assert "implied" in capsys.readouterr().out

    def test_not_implied(self, university_files, capsys):
        code = main([
            "implies", *university_files,
            "courses.course.taken_by.student.@sno -> "
            "courses.course.taken_by.student"])
        assert code == 1
        assert "not implied" in capsys.readouterr().out


class TestTuples:
    def test_table_output(self, dblp_files, capsys):
        dtd, _fds, xml = dblp_files
        assert main(["tuples", dtd, xml]) == 0
        out = capsys.readouterr().out
        assert "db.conf.issue.inproceedings.@year" in out
        assert "2002" in out


class TestClassify:
    def test_simple_dtd(self, university_files, capsys):
        dtd, _fds = university_files
        assert main(["classify", dtd]) == 0
        out = capsys.readouterr().out
        assert "simple:      True" in out
        assert "recursive:   False" in out


class TestExplain:
    def test_explain_positive(self, university_files, capsys):
        code = main(["explain", *university_files,
                     "courses.course.@cno -> courses.course.title.S"])
        assert code == 0
        out = capsys.readouterr().out
        assert "goal reached" in out

    def test_explain_negative(self, university_files, capsys):
        code = main([
            "explain", *university_files,
            "courses.course.taken_by.student.@sno -> "
            "courses.course.taken_by.student.name"])
        assert code == 0
        assert "not implied" in capsys.readouterr().out


class TestAnalyze:
    def test_analyze_with_document(self, university_files, tmp_path,
                                   capsys):
        from repro.datasets.university import UNIVERSITY_DOCUMENT
        xml = tmp_path / "doc.xml"
        xml.write_text(UNIVERSITY_DOCUMENT)
        code = main(["analyze", *university_files, str(xml)])
        assert code == 1  # not in XNF
        out = capsys.readouterr().out
        assert "redundant copies=1" in out
        assert "normalization plan" in out


class TestErrors:
    def test_bad_dtd_reports_error(self, tmp_path, capsys):
        dtd = tmp_path / "bad.dtd"
        dtd.write_text("<!ELEMENT broken>")
        fds = tmp_path / "bad.fds"
        fds.write_text("")
        # ReproError is the documented exit code 3 (2 is usage).
        assert main(["check", str(dtd), str(fds)]) == 3
        assert "error:" in capsys.readouterr().err

    def test_usage_error_is_exit_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["no-such-command"])
        assert excinfo.value.code == 2

    def test_bad_fd_is_exit_3(self, tmp_path, capsys):
        dtd = tmp_path / "d.dtd"
        dtd.write_text("<!ELEMENT db (G*)>\n<!ELEMENT G EMPTY>\n"
                       "<!ATTLIST G A CDATA #REQUIRED>")
        fds = tmp_path / "d.fds"
        fds.write_text("db.G.@A ->\n")
        assert main(["check", str(dtd), str(fds)]) == 3
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err


class TestMainModule:
    def test_python_dash_m_repro(self, university_files):
        import subprocess, sys
        dtd, fds = university_files
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "check", dtd, fds],
            capture_output=True, text=True)
        assert proc.returncode == 1
        assert "NOT in XNF" in proc.stdout


HARD_DTD = """
<!ELEMENT r ((a | b), (c | d), (e | f))>
<!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>
<!ELEMENT d EMPTY> <!ELEMENT e EMPTY> <!ELEMENT f EMPTY>
<!ATTLIST a x CDATA #REQUIRED>
<!ATTLIST c y CDATA #REQUIRED>
"""


@pytest.fixture
def hard_files(tmp_path):
    """A disjunctive spec whose implication query trips tiny budgets."""
    dtd = tmp_path / "hard.dtd"
    dtd.write_text(HARD_DTD)
    fds = tmp_path / "hard.fds"
    fds.write_text("r.a.@x -> r.c.@y\n")
    return str(dtd), str(fds)


class TestResourceLimits:
    QUERY = "r.c.@y -> r.a.@x"

    def test_implies_unknown_is_exit_4(self, hard_files, capsys):
        code = main(["implies", "--max-steps", "5", *hard_files,
                     self.QUERY])
        assert code == 4
        out = capsys.readouterr().out
        assert "unknown" in out
        assert "steps" in out  # the tripped limit is named

    def test_flags_before_subcommand(self, hard_files, capsys):
        code = main(["--max-steps", "5", "implies", *hard_files,
                     self.QUERY])
        assert code == 4
        assert "unknown" in capsys.readouterr().out

    def test_generous_budget_decides(self, hard_files, capsys):
        code = main(["implies", "--max-steps", "100000", *hard_files,
                     self.QUERY])
        assert code == 0
        assert "implied" in capsys.readouterr().out

    def test_timeout_honored_within_factor_two(self, hard_files, capsys):
        import time
        started = time.monotonic()
        code = main(["implies", "--timeout", "0.001", *hard_files,
                     self.QUERY])
        elapsed = time.monotonic() - started
        # Either the tiny deadline tripped (exit 4) or the query won the
        # race (exit 0); it must never hang either way.
        assert code in (0, 4)
        assert elapsed < max(2 * 0.001, 1.0)

    def test_normalize_under_budget_is_exit_4(self, university_files,
                                              capsys):
        code = main(["normalize", "--max-steps", "5", *university_files])
        assert code == 4
        err = capsys.readouterr().err
        assert "resource limit reached" in err
        assert "partial progress" in err

    def test_invalid_budget_is_usage_error(self, hard_files):
        with pytest.raises(SystemExit) as excinfo:
            main(["implies", "--max-steps", "0", *hard_files, self.QUERY])
        assert excinfo.value.code == 2


class TestErrorPositions:
    """Parse errors carry source positions, rendered in CLI output."""

    def test_dtd_error_has_line_and_column(self, tmp_path, capsys):
        dtd = tmp_path / "bad.dtd"
        dtd.write_text("<!ELEMENT r (a*)>\n<!ELEMENT a (b,>\n")
        fds = tmp_path / "bad.fds"
        fds.write_text("")
        assert main(["check", str(dtd), str(fds)]) == 3
        err = capsys.readouterr().err
        assert "line 2" in err
        assert "column" in err

    def test_xml_error_has_line_and_column(self, tmp_path, capsys):
        dtd = tmp_path / "d.dtd"
        dtd.write_text("<!ELEMENT r (a*)>\n<!ELEMENT a EMPTY>\n")
        xml = tmp_path / "bad.xml"
        xml.write_text("<r>\n  <a>\n</r>\n")
        assert main(["tuples", str(dtd), str(xml)]) == 3
        err = capsys.readouterr().err
        assert "line 3" in err
        assert "column 1" in err

    def test_attlist_error_position(self, tmp_path, capsys):
        dtd = tmp_path / "d.dtd"
        dtd.write_text("<!ELEMENT r EMPTY>\n"
                       "<!ATTLIST r x CDATA #BOGUS>\n")
        fds = tmp_path / "d.fds"
        fds.write_text("")
        assert main(["check", str(dtd), str(fds)]) == 3
        err = capsys.readouterr().err
        assert "line 2" in err


class TestCheckpointCLI:
    def _spec_files(self, tmp_path, k=3):
        from repro.datasets.generators import scaled_university_spec
        from repro.dtd.serializer import serialize_dtd
        spec = scaled_university_spec(k)
        dtd = tmp_path / "u.dtd"
        dtd.write_text(serialize_dtd(spec.dtd))
        fds = tmp_path / "u.fds"
        fds.write_text("".join(f"{fd}\n" for fd in spec.sigma))
        return str(dtd), str(fds)

    def test_interrupt_and_resume_byte_identical(self, tmp_path, capsys,
                                                 monkeypatch):
        dtd, fds = self._spec_files(tmp_path)
        ckpt = str(tmp_path / "run.ckpt")
        base = main(["normalize", dtd, fds])
        assert base == 0
        expected = capsys.readouterr().out

        monkeypatch.setenv("REPRO_FAULTS",
                           "normalize.checkpoint:exception:1")
        assert main(["normalize", dtd, fds, "--checkpoint", ckpt]) == 3
        capsys.readouterr()
        monkeypatch.delenv("REPRO_FAULTS")
        import os
        assert os.path.exists(ckpt)

        assert main(["normalize", dtd, fds, "--checkpoint", ckpt,
                     "--resume"]) == 0
        captured = capsys.readouterr()
        assert captured.out == expected
        assert "resuming from" in captured.err
        # consumed on success
        assert not os.path.exists(ckpt)

    def test_version_mismatch_is_exit_2(self, tmp_path, capsys,
                                        monkeypatch):
        import json
        dtd, fds = self._spec_files(tmp_path)
        ckpt = tmp_path / "run.ckpt"
        monkeypatch.setenv("REPRO_FAULTS", "normalize.checkpoint")
        assert main(["normalize", dtd, fds,
                     "--checkpoint", str(ckpt)]) == 3
        monkeypatch.delenv("REPRO_FAULTS")
        payload = json.loads(ckpt.read_text())
        payload["version"] = 99
        ckpt.write_text(json.dumps(payload))
        assert main(["normalize", dtd, fds, "--checkpoint", str(ckpt),
                     "--resume"]) == 2
        assert "version" in capsys.readouterr().err

    def test_resume_without_checkpoint_is_exit_2(self, tmp_path,
                                                 capsys):
        dtd, fds = self._spec_files(tmp_path, k=1)
        assert main(["normalize", dtd, fds, "--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_fingerprint_mismatch_is_exit_2(self, tmp_path, capsys,
                                            monkeypatch):
        dtd, fds = self._spec_files(tmp_path)
        other = tmp_path / "other"
        other.mkdir()
        other_dtd, other_fds = self._spec_files(other, k=2)
        ckpt = str(tmp_path / "run.ckpt")
        monkeypatch.setenv("REPRO_FAULTS", "normalize.checkpoint")
        assert main(["normalize", dtd, fds, "--checkpoint", ckpt]) == 3
        monkeypatch.delenv("REPRO_FAULTS")
        assert main(["normalize", other_dtd, other_fds,
                     "--checkpoint", ckpt, "--resume"]) == 2
        assert "different" in capsys.readouterr().err


class TestFaultsEnv:
    def test_repro_faults_injects(self, university_files, capsys,
                                  monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "fd.closure.iteration")
        assert main(["check", *university_files]) == 3
        assert "injected" in capsys.readouterr().err

    def test_bad_spec_is_exit_2(self, university_files, capsys,
                                monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "site:bogus-kind")
        assert main(["check", *university_files]) == 2
        assert "REPRO_FAULTS" in capsys.readouterr().err

    def test_exhaustion_kind_is_exit_4(self, university_files, capsys,
                                       monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS",
                           "fd.closure.iteration:exhaustion")
        assert main(["check", *university_files]) == 4
        assert "resource limit" in capsys.readouterr().err

    def test_no_plan_leaks_after_run(self, university_files,
                                     monkeypatch):
        from repro import faults
        monkeypatch.setenv("REPRO_FAULTS", "fd.closure.iteration")
        main(["check", *university_files])
        assert not faults.active


class TestBenchResourceLimits:
    def test_bench_run_budget_is_exit_4(self, tmp_path, capsys):
        out = str(tmp_path / "bench.json")
        code = main(["bench", "run", "--quick", "--quiet",
                     "--only", "implication", "--no-memory",
                     "--max-steps", "5", "--out", out])
        assert code == 4
        assert "resource limit reached" in capsys.readouterr().err

    def test_bench_module_matches(self, tmp_path):
        from repro.bench.cli import main as bench_main
        out = str(tmp_path / "bench.json")
        code = bench_main(["run", "--quick", "--quiet",
                           "--only", "implication", "--no-memory",
                           "--max-steps", "5", "--out", out])
        assert code == 4


class TestRobustnessCounters:
    """faults.* / checkpoint.* counters surface in --stats output."""

    def test_faults_injected_in_stats(self, university_files, capsys,
                                      monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "fd.closure.iteration")
        assert main(["check", *university_files, "--stats"]) == 3
        err = capsys.readouterr().err
        assert "faults.injected" in err
        assert "faults.injected.exception" in err

    def test_checkpoint_saved_in_stats(self, tmp_path, capsys,
                                       university_files):
        ckpt = str(tmp_path / "c.ckpt")
        assert main(["normalize", *university_files,
                     "--checkpoint", ckpt, "--stats"]) == 0
        assert "checkpoint.saved" in capsys.readouterr().err

    def test_checkpoint_restored_in_stats(self, tmp_path, capsys,
                                          university_files, monkeypatch):
        ckpt = str(tmp_path / "c.ckpt")
        monkeypatch.setenv("REPRO_FAULTS", "normalize.checkpoint")
        assert main(["normalize", *university_files,
                     "--checkpoint", ckpt]) == 3
        monkeypatch.delenv("REPRO_FAULTS")
        capsys.readouterr()
        assert main(["normalize", *university_files, "--checkpoint",
                     ckpt, "--resume", "--stats"]) == 0
        assert "checkpoint.restored" in capsys.readouterr().err

    def test_bench_isolation_resets_fault_plans(self):
        from repro import faults
        from repro.bench import runner
        leaked = faults.use(
            faults.FaultPlan([faults.FaultArm(site="s")]))
        leaked.__enter__()
        assert faults.active
        runner.isolate()
        assert not faults.active


SIMPLE_BATCH_DTD = ("<!ELEMENT db (r*)>\n<!ELEMENT r EMPTY>\n"
                    "<!ATTLIST r a CDATA #REQUIRED b CDATA #REQUIRED>")


class TestBatchCLI:
    """The crash-tolerant batch runner's CLI front door."""

    @staticmethod
    def _write_manifest(tmp_path, tasks, defaults=None):
        import json
        path = tmp_path / "batch.json"
        path.write_text(json.dumps({
            "schema": "repro.runtime.manifest", "version": 1,
            "defaults": defaults or {}, "tasks": tasks}))
        return str(path)

    @classmethod
    def _tasks(cls, count=3):
        return [{"id": f"t{i}", "op": "check",
                 "dtd_text": SIMPLE_BATCH_DTD,
                 "fds_text": "db.r.@a -> db.r.@b"}
                for i in range(count)]

    def test_summary_json_on_stdout(self, tmp_path, capsys):
        import json
        manifest = self._write_manifest(tmp_path, self._tasks())
        assert main(["batch", manifest, "--backoff-base", "0"]) == 0
        out, err = capsys.readouterr()
        summary = json.loads(out)       # stdout is pure JSON
        assert summary["schema"] == "repro.runtime.batch"
        assert summary["counts"]["ok"] == 3
        assert "batch: 3/3 ok" in err   # human account on stderr

    def test_stats_never_corrupt_the_json_stream(self, tmp_path):
        """Satellite pin: ``--stats`` (and REPRO_OBS=1) tables go to
        stderr; ``xnf batch m.json | jq .`` must always parse."""
        import json, os, subprocess, sys
        manifest = self._write_manifest(tmp_path, self._tasks())
        env = dict(os.environ, REPRO_OBS="1",
                   PYTHONPATH=os.pathsep.join(sys.path))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "batch", manifest,
             "--backoff-base", "0", "--stats"],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 0
        summary = json.loads(proc.stdout)   # would raise if corrupted
        assert summary["counts"]["lost"] == 0
        assert "runtime.tasks" in proc.stderr   # the table went here

    def test_runtime_counters_in_stats(self, tmp_path, capsys,
                                       monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "fd.closure.iteration")
        manifest = self._write_manifest(tmp_path, self._tasks(2))
        assert main(["batch", manifest, "--backoff-base", "0",
                     "--stats"]) == 0
        err = capsys.readouterr().err
        assert "runtime.tasks" in err
        assert "runtime.retries" in err

    def test_ensemble_mode_reports_disagreement_count(self, tmp_path,
                                                      capsys):
        manifest = self._write_manifest(tmp_path, self._tasks(2))
        assert main(["batch", manifest, "--backoff-base", "0",
                     "--ensemble", "check"]) == 0
        import json
        out, err = capsys.readouterr()
        summary = json.loads(out)
        assert summary["ensemble"] == "check"
        assert summary["ensemble_disagreements"] == 0
        assert "0 ensemble disagreement(s)" in err

    def test_injected_fault_is_retried_transparently(self, tmp_path,
                                                     capsys,
                                                     monkeypatch):
        import json
        monkeypatch.setenv("REPRO_FAULTS", "fd.closure.iteration")
        manifest = self._write_manifest(tmp_path, self._tasks(2))
        assert main(["batch", manifest, "--backoff-base", "0"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["counts"]["ok"] == 2
        assert any(task["retried"] for task in summary["tasks"])

    def test_seed_flag_overrides_manifest_seed(self, tmp_path, capsys,
                                               monkeypatch):
        import json
        monkeypatch.setenv("REPRO_FAULTS", "fd.closure.iteration")
        manifest = self._write_manifest(tmp_path, self._tasks(1),
                                        defaults={"seed": 1})

        def delays(extra):
            capsys.readouterr()
            assert main(["batch", manifest, *extra]) == 0
            return json.loads(
                capsys.readouterr().out)["tasks"][0]["delays_ms"]

        monkeypatch.setattr("time.sleep", lambda seconds: None)
        assert delays(["--seed", "7"]) != delays(["--seed", "8"])

    def test_workers_1_delegates_to_serial_backend(self, tmp_path,
                                                   capsys):
        """``--workers 1`` must take the serial path: no pool, no
        worker processes, no pool stats line."""
        manifest = self._write_manifest(tmp_path, self._tasks())
        assert main(["batch", manifest, "--backoff-base", "0",
                     "--workers", "1"]) == 0
        out, err = capsys.readouterr()
        assert "pool:" not in err
        import json
        assert json.loads(out)["counts"]["ok"] == 3

    def test_parallel_summary_matches_serial_bytes(self, tmp_path,
                                                   capsys):
        manifest = self._write_manifest(tmp_path, self._tasks(6))
        assert main(["batch", manifest, "--backoff-base", "0",
                     "--workers", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["batch", manifest, "--backoff-base", "0",
                     "--workers", "2"]) == 0
        parallel_out, err = capsys.readouterr()
        assert parallel_out == serial_out
        assert "pool: 2 worker(s)" in err

    def test_workers_auto_degrades_to_serial_under_fault_plans(
            self, tmp_path, capsys, monkeypatch):
        """Fault-plan arms are per-process fire-once state, so a
        faulted parallel run would not be replayable; the CLI must
        fall back to serial and say so."""
        monkeypatch.setenv("REPRO_FAULTS", "fd.closure.iteration")
        manifest = self._write_manifest(tmp_path, self._tasks(2))
        assert main(["batch", manifest, "--backoff-base", "0",
                     "--workers", "4"]) == 0
        err = capsys.readouterr().err
        assert "running serially" in err
        assert "pool:" not in err

    def test_bad_workers_value_is_a_usage_error(self, tmp_path,
                                                capsys):
        manifest = self._write_manifest(tmp_path, self._tasks(1))
        with pytest.raises(SystemExit):
            main(["batch", manifest, "--workers", "lots"])

    def test_jsonl_manifest_round_trips_through_the_cli(self, tmp_path,
                                                        capsys):
        """A streaming ``.jsonl`` corpus manifest runs end to end."""
        import json
        from repro.runtime import corpus
        path = tmp_path / "batch.jsonl"
        with open(path, "w") as handle:
            corpus.write_jsonl(handle, 5, seed=3)
        assert main(["batch", str(path), "--backoff-base", "0",
                     "--workers", "2"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["counts"] == {"total": 5, "ok": 5,
                                     "failed": 0, "lost": 0}


class TestObsCLI:
    def _trace(self, tmp_path):
        import json
        trace = tmp_path / "t.jsonl"
        trace.write_text(json.dumps(
            {"id": 1, "name": "root", "duration_ms": 5.0, "start": 0.0,
             "counters": {"ops": 3}}) + "\n")
        return str(trace)

    def test_report(self, tmp_path, capsys):
        assert main(["obs", "report", self._trace(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trace profile" in out
        assert "root" in out

    def test_flame_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "folded.txt"
        assert main(["obs", "flame", self._trace(tmp_path),
                     "-o", str(out_file)]) == 0
        assert out_file.read_text() == "root 5000\n"

    def test_diff_self_passes(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        assert main(["obs", "diff", trace, trace]) == 0
        assert "OK: no counter regressions" in capsys.readouterr().out

    def test_missing_trace_is_usage_error(self, tmp_path, capsys):
        code = main(["obs", "report", str(tmp_path / "missing.jsonl")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_metrics_port_out_of_range_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--metrics-port", "70000", "stats"])

    def test_metrics_port_zero_serves_during_command(
            self, university_files, capsys):
        code = main(["--metrics-port", "0", "check", *university_files])
        assert code == 1  # university schema is not in XNF
        err = capsys.readouterr().err
        assert "metrics: serving on http://127.0.0.1:" in err
