"""Unit tests for the batch run ledger (repro.obs.ledger)."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import ledger as ledger_mod
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    LEDGER_VERSION,
    LedgerError,
    LedgerWriter,
    counters_digest,
    fingerprint,
    group_runs,
    read_ledger,
    regress,
    render_history,
)
from repro.runtime.batch import TaskOutcome
from repro.runtime.manifest import Manifest, Task

DTD = "<!ELEMENT db (a*)>\n<!ELEMENT a EMPTY>\n<!ATTLIST a x CDATA #IMPLIED>"
FDS = "db.a.@x -> db.a"


def make_task(task_id="t-1", **overrides):
    fields = dict(id=task_id, op="check", dtd_text=DTD, fds_text=FDS)
    fields.update(overrides)
    return Task(**fields)


def make_manifest(tasks=None, *, seed=7, source="m.json"):
    tasks = [make_task()] if tasks is None else tasks
    return Manifest(tasks=tasks, seed=seed, source=source)


def make_outcome(task=None, *, status="ok", attempts=1, reason=None,
                 wall_s=0.010, counter_delta=None):
    return TaskOutcome(task=task or make_task(), status=status,
                       attempts=attempts, reason=reason, wall_s=wall_s,
                       counter_delta=counter_delta or {})


class TestFingerprints:
    def test_fingerprint_stable_and_short(self):
        assert fingerprint("abc") == fingerprint("abc")
        assert len(fingerprint("abc")) == 12
        assert fingerprint("abc") != fingerprint("abd")
        assert fingerprint(None) is None

    def test_counters_digest_order_independent(self):
        assert counters_digest({"a": 1, "b": 2}) \
            == counters_digest({"b": 2, "a": 1})
        assert counters_digest({"a": 1}) != counters_digest({"a": 2})
        assert counters_digest({}) is None


class TestLedgerWriter:
    def test_record_schema(self):
        stream = io.StringIO()
        writer = LedgerWriter(stream, manifest=make_manifest(),
                              run="abcdef123456", clock=lambda: 1000.5)
        writer.task_done(make_outcome(
            counter_delta={"chase.steps": 3}))
        record = json.loads(stream.getvalue())
        assert record == {
            "schema": LEDGER_SCHEMA, "version": LEDGER_VERSION,
            "run": "abcdef123456", "ts": 1000.5,
            "manifest": "m.json",
            "manifest_sha": fingerprint("m.json:7:1"),
            "seed": 7, "task": "t-1", "op": "check",
            "dtd_sha": fingerprint(DTD), "fds_sha": fingerprint(FDS),
            "verdict": "ok", "reason": None, "retries": 0,
            "wall_ms": 10.0,
            "counters_sha": counters_digest({"chase.steps": 3}),
        }
        assert writer.records_written == 1

    def test_dead_letter_and_retries(self):
        stream = io.StringIO()
        writer = LedgerWriter(stream, manifest=make_manifest())
        writer.task_done(make_outcome(status="dead-letter",
                                      attempts=3, reason="timeout"))
        record = json.loads(stream.getvalue())
        assert record["verdict"] == "dead-letter"
        assert record["reason"] == "timeout"
        assert record["retries"] == 2
        assert record["counters_sha"] is None

    def test_random_run_ids_differ(self):
        manifest = make_manifest()
        first = LedgerWriter(io.StringIO(), manifest=manifest)
        second = LedgerWriter(io.StringIO(), manifest=manifest)
        assert first.run != second.run
        assert len(first.run) == 12

    def test_each_record_is_one_flushed_line(self):
        stream = io.StringIO()
        writer = LedgerWriter(stream, manifest=make_manifest())
        writer.task_done(make_outcome())
        writer.task_done(make_outcome(make_task("t-2")))
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["schema"] == LEDGER_SCHEMA
                   for line in lines)


class TestReadLedger:
    def _write(self, tmp_path, lines):
        path = tmp_path / "ledger.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return path

    def _record(self, **overrides):
        record = {"schema": LEDGER_SCHEMA, "version": LEDGER_VERSION,
                  "run": "r1", "task": "t-1", "verdict": "ok",
                  "retries": 0, "wall_ms": 1.0}
        record.update(overrides)
        return record

    def test_round_trip(self, tmp_path):
        path = self._write(tmp_path, [json.dumps(self._record())])
        assert read_ledger(path)[0]["task"] == "t-1"

    def test_missing_file(self, tmp_path):
        with pytest.raises(LedgerError, match="cannot read"):
            read_ledger(tmp_path / "absent.jsonl")

    def test_empty_file(self, tmp_path):
        path = self._write(tmp_path, [""])
        with pytest.raises(LedgerError, match="no ledger records"):
            read_ledger(path)

    def test_bad_json_mid_file_still_raises(self, tmp_path):
        # Single-write appends cannot tear mid-file: bad JSON followed
        # by more records means the file was edited, not crashed on.
        path = self._write(tmp_path, ["{not json",
                                      json.dumps(self._record())])
        with pytest.raises(LedgerError, match="not valid JSON"):
            read_ledger(path)

    def test_torn_trailing_record_skipped(self, tmp_path, capsys):
        # The crash-mid-append shape: a complete record, then the last
        # record truncated mid-byte.  Readers keep the good prefix.
        good = json.dumps(self._record())
        torn = json.dumps(self._record(task="t-2"))[:-9]
        path = tmp_path / "ledger.jsonl"
        path.write_text(good + "\n" + torn)
        records = read_ledger(path)
        assert [record["task"] for record in records] == ["t-1"]
        assert "torn trailing record" in capsys.readouterr().err

    def test_torn_trailing_record_counted(self, tmp_path):
        from repro.obs import metrics
        good = json.dumps(self._record())
        path = tmp_path / "ledger.jsonl"
        path.write_text(good + "\n" + good[:-7])
        was_enabled = metrics.enabled
        metrics.enable()
        metrics.reset()
        try:
            read_ledger(path)
            assert metrics.counter_value("obs.ledger.torn") == 1
        finally:
            metrics.reset()
            if not was_enabled:
                metrics.disable()

    def test_only_record_torn_means_empty(self, tmp_path):
        # The torn line is skipped first; the no-records error stands.
        torn = json.dumps(self._record())[:-5]
        path = self._write(tmp_path, [torn])
        with pytest.raises(LedgerError, match="no ledger records"):
            read_ledger(path)

    def test_foreign_schema(self, tmp_path):
        path = self._write(
            tmp_path, [json.dumps(self._record(schema="other"))])
        with pytest.raises(LedgerError, match="schema"):
            read_ledger(path)

    def test_future_version(self, tmp_path):
        path = self._write(
            tmp_path, [json.dumps(self._record(version=99))])
        with pytest.raises(LedgerError, match="version"):
            read_ledger(path)

    def test_missing_key(self, tmp_path):
        record = self._record()
        del record["wall_ms"]
        path = self._write(tmp_path, [json.dumps(record)])
        with pytest.raises(LedgerError, match="wall_ms"):
            read_ledger(path)

    def test_group_runs_first_appearance_order(self):
        records = [self._record(run=run)
                   for run in ("r1", "r2", "r1", "r3")]
        assert list(group_runs(records)) == ["r1", "r2", "r3"]


def ledger_records(runs):
    """Build records from {run: {task: (verdict, retries, wall_ms)}}
    (dicts preserve insertion order = run order)."""
    records = []
    for run, tasks in runs.items():
        for task, (verdict, retries, wall_ms) in tasks.items():
            records.append({
                "schema": LEDGER_SCHEMA, "version": LEDGER_VERSION,
                "run": run, "ts": 0.0, "task": task, "op": "check",
                "verdict": verdict, "reason": None,
                "retries": retries, "wall_ms": wall_ms,
                "counters_sha": "aaaa" if verdict == "ok" else None})
    return records


class TestRegress:
    def test_clean_pass(self):
        records = ledger_records({
            "base": {"t-1": ("ok", 0, 10.0), "t-2": ("ok", 0, 20.0)},
            "curr": {"t-1": ("ok", 0, 10.2), "t-2": ("ok", 0, 19.9)}})
        findings = regress(records)
        assert findings == []

    def test_single_task_slowdown_flagged(self):
        # The acceptance scenario: one task slows 2x while its
        # siblings hold steady.
        records = ledger_records({
            "base": {"t-1": ("ok", 0, 10.0), "t-2": ("ok", 0, 20.0),
                     "t-3": ("ok", 0, 30.0)},
            "curr": {"t-1": ("ok", 0, 10.0), "t-2": ("ok", 0, 40.0),
                     "t-3": ("ok", 0, 30.0)}})
        findings = regress(records)
        assert [f.severity for f in findings] == ["regression"]
        assert findings[0].benchmark == "t-2"
        assert "wall time" in findings[0].detail

    def test_uniform_slowdown_normalised_out(self):
        # A uniformly 2x slower machine is scale, not regression.
        records = ledger_records({
            "base": {"t-1": ("ok", 0, 10.0), "t-2": ("ok", 0, 20.0),
                     "t-3": ("ok", 0, 30.0)},
            "curr": {"t-1": ("ok", 0, 20.0), "t-2": ("ok", 0, 40.0),
                     "t-3": ("ok", 0, 60.0)}})
        assert regress(records) == []
        # ... unless --absolute opts out of the normalisation.
        findings = regress(records, absolute=True)
        assert [f.severity for f in findings] == ["regression"] * 3

    def test_min_wall_floor_silences_fast_tasks(self):
        records = ledger_records({
            "base": {"t-1": ("ok", 0, 0.010), "t-2": ("ok", 0, 9.0)},
            "curr": {"t-1": ("ok", 0, 0.030), "t-2": ("ok", 0, 9.0)}})
        assert regress(records) == []
        findings = regress(records, min_wall_ms=0.001)
        assert [f.benchmark for f in findings
                if f.severity == "regression"] == ["t-1"]

    def test_min_wall_floor_applies_to_the_baseline_side(self):
        # A sub-floor baseline cannot anchor a ratio: a 0.01 ms task
        # that hiccups to 5 ms is scheduling noise, not a slowdown.
        records = ledger_records({
            "base": {"t-1": ("ok", 0, 0.010), "t-2": ("ok", 0, 9.0)},
            "curr": {"t-1": ("ok", 0, 5.000), "t-2": ("ok", 0, 9.0)}})
        assert regress(records) == []

    def test_verdict_flip_is_regression(self):
        records = ledger_records({
            "base": {"t-1": ("ok", 0, 10.0)},
            "curr": {"t-1": ("dead-letter", 2, 10.0)}})
        findings = regress(records)
        severities = {f.severity for f in findings}
        assert "regression" in severities
        assert any("verdict flipped" in f.detail for f in findings)

    def test_recovery_and_new_task_are_notes(self):
        records = ledger_records({
            "base": {"t-1": ("dead-letter", 2, 10.0)},
            "curr": {"t-1": ("ok", 0, 10.0),
                     "t-9": ("ok", 0, 5.0)}})
        findings = regress(records)
        assert all(f.severity in ("note", "advisory")
                   for f in findings)
        assert any("recovered" in f.detail for f in findings)
        assert any(f.benchmark == "t-9" and "new task" in f.detail
                   for f in findings)

    def test_retry_growth_is_advisory(self):
        records = ledger_records({
            "base": {"t-1": ("ok", 0, 10.0)},
            "curr": {"t-1": ("ok", 2, 10.0)}})
        findings = regress(records)
        assert [f.severity for f in findings] == ["advisory"]
        assert "retries grew 0 -> 2" in findings[0].detail

    def test_missing_baseline_task_is_structural(self):
        records = ledger_records({
            "base": {"t-1": ("ok", 0, 10.0), "t-2": ("ok", 0, 5.0)},
            "curr": {"t-1": ("ok", 0, 10.0)}})
        with pytest.raises(LedgerError, match="missing baseline"):
            regress(records)

    def test_single_run_without_baseline_is_structural(self):
        records = ledger_records({"only": {"t-1": ("ok", 0, 10.0)}})
        with pytest.raises(LedgerError, match="no baseline"):
            regress(records)

    def test_external_baseline_file(self):
        baseline = ledger_records({
            "b1": {"t-1": ("ok", 0, 10.0)},
            "b2": {"t-1": ("ok", 0, 12.0)}})
        current = ledger_records({"c": {"t-1": ("ok", 0, 50.0)}})
        findings = regress(current, baseline_records=baseline,
                           absolute=True)
        assert [f.severity for f in findings] == ["regression"]
        # Median of the baseline runs (11.0 ms) is the reference.
        assert "11.000 -> 50.000" in findings[0].detail

    def test_median_baseline_resists_one_noisy_run(self):
        baseline = ledger_records({
            "b1": {"t-1": ("ok", 0, 10.0)},
            "b2": {"t-1": ("ok", 0, 500.0)},  # one outlier run
            "b3": {"t-1": ("ok", 0, 11.0)}})
        current = ledger_records({"c": {"t-1": ("ok", 0, 11.5)}})
        assert regress(current, baseline_records=baseline,
                       absolute=True) == []


class TestRenderHistory:
    def test_per_run_summary(self):
        records = ledger_records({
            "run-a": {"t-1": ("ok", 0, 10.0),
                      "t-2": ("dead-letter", 2, 5.0)},
            "run-b": {"t-1": ("ok", 1, 11.0),
                      "t-2": ("ok", 0, 5.0)}})
        text = render_history(records)
        lines = text.splitlines()
        assert "2 run(s), 4 record(s)" in lines[0]
        assert "run run-a" in lines[1] and "dead-letter 1" in lines[1]
        assert "run run-b" in lines[2] and "retries 1" in lines[2]

    def test_per_task_rows_and_limit(self):
        records = ledger_records({
            "run-a": {"t-1": ("ok", 0, 10.0)},
            "run-b": {"t-1": ("ok", 0, 11.0)},
            "run-c": {"t-1": ("ok", 0, 12.0)}})
        text = render_history(records, task="t-1", limit=2)
        lines = text.splitlines()
        assert "task t-1" in lines[0]
        assert len(lines) == 3  # header + last 2 runs
        assert "run run-b" in lines[1]
        assert "run run-c" in lines[2]

    def test_unknown_task(self):
        records = ledger_records({"r": {"t-1": ("ok", 0, 1.0)}})
        with pytest.raises(LedgerError, match="no run"):
            render_history(records, task="t-404")


class TestCli:
    def _ledger_file(self, tmp_path, runs):
        path = tmp_path / "ledger.jsonl"
        path.write_text("".join(json.dumps(record) + "\n"
                                for record in ledger_records(runs)))
        return path

    def test_history_exit_zero(self, tmp_path, capsys):
        from repro.obs.cli import main
        path = self._ledger_file(
            tmp_path, {"r": {"t-1": ("ok", 0, 1.0)}})
        assert main(["history", str(path)]) == 0
        assert "1 run(s)" in capsys.readouterr().out

    def test_regress_exit_codes(self, tmp_path, capsys):
        from repro.obs.cli import main
        path = self._ledger_file(tmp_path, {
            "base": {"t-1": ("ok", 0, 10.0), "t-2": ("ok", 0, 20.0)},
            "curr": {"t-1": ("ok", 0, 10.0), "t-2": ("ok", 0, 60.0)}})
        assert main(["regress", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out
        assert main(["regress", str(path), "--tolerance", "400"]) == 0

    def test_regress_structural_exit_two(self, tmp_path, capsys):
        from repro.obs.cli import main
        path = self._ledger_file(
            tmp_path, {"only": {"t-1": ("ok", 0, 1.0)}})
        assert main(["regress", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unreadable_ledger_exit_two(self, tmp_path, capsys):
        from repro.obs.cli import main
        assert main(["history", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err
