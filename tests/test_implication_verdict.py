"""Three-valued implication verdicts and budget-aware caching.

Covers the degradation contract of :meth:`ImplicationEngine.decide`:
``YES``/``NO`` agree with :meth:`implies`, ``UNKNOWN`` appears only
when a :mod:`repro.guard` limit tripped, and budget-aborted runs are
never cached (a warm retry with headroom is authoritative).
"""

from __future__ import annotations

import pytest

from repro import guard
from repro.errors import ResourceExhausted
from repro.dtd.parser import parse_dtd
from repro.fd.implication import (
    NO,
    UNKNOWN,
    YES,
    ImplicationEngine,
    decide,
)
from repro.fd.model import FD
from repro.spec import XMLSpec

UNIVERSITY_DTD = """
<!ELEMENT courses (course*)>
<!ELEMENT course (title, taken_by)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT taken_by (student*)>
<!ELEMENT student (grade)>
<!ELEMENT grade (#PCDATA)>
<!ATTLIST course cno CDATA #REQUIRED>
<!ATTLIST student sno CDATA #REQUIRED>
"""

UNIVERSITY_SIGMA = [
    "courses.course.@cno -> courses.course",
    "courses.course.taken_by.student.@sno, courses.course "
    "-> courses.course.taken_by.student",
]

#: Disjunctions route the query past the simple engines, the starred
#: ``g`` child admits genuine countermodels.  Deciding HARD_QUERY needs
#: over a dozen guarded steps, so ``max_steps=5`` always trips.
HARD_DTD = """
<!ELEMENT r ((a | b), (c | d), (e | f), g*)>
<!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>
<!ELEMENT d EMPTY> <!ELEMENT e EMPTY> <!ELEMENT f EMPTY>
<!ELEMENT g EMPTY>
<!ATTLIST a x CDATA #REQUIRED>
<!ATTLIST c y CDATA #REQUIRED>
<!ATTLIST g u CDATA #REQUIRED v CDATA #REQUIRED>
"""
HARD_SIGMA = ["r.a.@x -> r.c.@y"]
HARD_QUERY = "r.c.@y -> r.a.@x"
REFUTED_QUERY = "r.g.@u -> r.g.@v"


@pytest.fixture
def engine():
    dtd = parse_dtd(UNIVERSITY_DTD)
    sigma = [FD.parse(line) for line in UNIVERSITY_SIGMA]
    return ImplicationEngine(dtd, sigma)


@pytest.fixture
def hard_engine():
    dtd = parse_dtd(HARD_DTD)
    sigma = [FD.parse(line) for line in HARD_SIGMA]
    return ImplicationEngine(dtd, sigma)


class TestVerdictAgreement:
    def test_yes_matches_implies(self, engine):
        implied = FD.parse(
            "courses.course.@cno -> courses.course.title.S")
        verdict = engine.decide(implied)
        assert verdict.value == YES
        assert verdict.decided
        assert verdict.limit is None
        assert engine.implies(implied) is True

    def test_no_matches_implies(self, engine):
        refuted = FD.parse(
            "courses.course.@cno -> courses.course.taken_by.student.@sno")
        verdict = engine.decide(refuted)
        assert verdict.value == NO
        assert verdict.decided
        assert "not implied" in verdict.reason
        assert engine.implies(refuted) is False

    def test_hard_engine_agreement(self, hard_engine):
        assert hard_engine.decide(FD.parse(HARD_QUERY)).value == YES
        assert hard_engine.decide(FD.parse(REFUTED_QUERY)).value == NO

    def test_module_level_decide(self):
        dtd = parse_dtd(HARD_DTD)
        sigma = [FD.parse(line) for line in HARD_SIGMA]
        verdict = decide(dtd, sigma, FD.parse(HARD_QUERY))
        assert verdict.value == YES


class TestDegradation:
    def test_unknown_names_the_tripped_limit(self, hard_engine):
        with guard.limits(max_steps=5) as budget:
            verdict = hard_engine.decide(FD.parse(HARD_QUERY))
        assert verdict.value == UNKNOWN
        assert not verdict.decided
        assert verdict.limit == "steps"
        assert "steps" in verdict.reason
        assert budget.tripped == "steps"

    def test_decide_never_raises_but_implies_does(self, hard_engine):
        with guard.limits(max_steps=5):
            with pytest.raises(ResourceExhausted):
                hard_engine.implies(FD.parse(HARD_QUERY))
        hard_engine.cache_clear()
        with guard.limits(max_steps=5):
            hard_engine.decide(FD.parse(HARD_QUERY))  # must not raise

    def test_aborted_verdict_not_cached_warm_retry_authoritative(
            self, hard_engine):
        query = FD.parse(HARD_QUERY)
        with guard.limits(max_steps=5):
            assert hard_engine.decide(query).value == UNKNOWN
        assert hard_engine.cache_info().currsize == 0
        # Retry with headroom: decided, and now cached.
        assert hard_engine.decide(query).value == YES
        assert hard_engine.cache_info().currsize > 0
        # A later budgeted call is served from cache without tripping.
        with guard.limits(max_steps=1) as budget:
            assert hard_engine.decide(query).value == YES
        assert budget.tripped is None

    def test_no_verdict_is_final_despite_budget(self, hard_engine):
        """A sound refutation on one conjunct beats UNKNOWN elsewhere:
        with the refuted single cached, a multi-RHS query whose other
        conjunct trips the budget still comes back NO, not UNKNOWN."""
        assert hard_engine.decide(FD.parse(REFUTED_QUERY)).value == NO
        with guard.limits(max_steps=5) as budget:
            verdict = hard_engine.decide(
                FD.parse("r.g.@u -> r.a.@x, r.g.@v"))
        assert budget.tripped == "steps"
        assert verdict.value == NO
        assert verdict.limit is None

    def test_unknown_without_budget_never_happens(self, hard_engine):
        verdict = hard_engine.decide(FD.parse(HARD_QUERY))
        assert verdict.value in (YES, NO)


class TestSpecFacade:
    def test_spec_decide_parses_strings(self):
        spec = XMLSpec.parse(UNIVERSITY_DTD, UNIVERSITY_SIGMA)
        verdict = spec.decide(
            "courses.course.@cno -> courses.course.title.S")
        assert verdict.value == YES

    def test_spec_decide_degrades(self):
        spec = XMLSpec.parse(HARD_DTD, HARD_SIGMA)
        with guard.limits(max_steps=5):
            verdict = spec.decide(HARD_QUERY)
        assert verdict.value == UNKNOWN
        assert verdict.limit == "steps"
