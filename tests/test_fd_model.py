"""Unit tests for the FD type and its parser."""

import pytest

from repro.errors import FDSyntaxError, InvalidFDError
from repro.dtd.paths import Path
from repro.fd.model import FD, parse_fds


class TestParsing:
    def test_single_paths(self):
        fd = FD.parse("courses.course.@cno -> courses.course")
        assert fd.lhs == {Path.parse("courses.course.@cno")}
        assert fd.rhs == {Path.parse("courses.course")}

    def test_braced_multi_lhs(self):
        fd = FD.parse("{a.b, a.c.@x} -> a.c")
        assert len(fd.lhs) == 2

    def test_unbraced_multi_lhs(self):
        fd = FD.parse("a.b, a.c.@x -> a.c")
        assert len(fd.lhs) == 2

    def test_multi_rhs(self):
        fd = FD.parse("a.b -> {a.c, a.d}")
        assert len(fd.rhs) == 2

    def test_missing_arrow(self):
        with pytest.raises(FDSyntaxError):
            FD.parse("a.b, a.c")

    def test_empty_side(self):
        with pytest.raises(FDSyntaxError):
            FD.parse(" -> a.b")

    def test_unbalanced_braces(self):
        with pytest.raises(FDSyntaxError):
            FD.parse("{a.b -> a.c")

    def test_parse_fds_skips_comments_and_blanks(self):
        fds = parse_fds("""
            # a comment
            a.b -> a.c

            a.c -> a.b
        """)
        assert len(fds) == 2


class TestOf:
    def test_accepts_strings_and_paths(self):
        fd = FD.of(["a.b", Path.parse("a.c")], "a.d")
        assert len(fd.lhs) == 2
        assert fd.single_rhs == Path.parse("a.d")

    def test_empty_lhs_rejected(self):
        with pytest.raises(InvalidFDError):
            FD(frozenset(), frozenset({Path.parse("a")}))


class TestViews:
    def test_expand(self):
        fd = FD.parse("a.b -> {a.c, a.d}")
        singles = list(fd.expand())
        assert len(singles) == 2
        assert all(len(s.rhs) == 1 for s in singles)
        assert {s.single_rhs for s in singles} == {
            Path.parse("a.c"), Path.parse("a.d")}

    def test_single_rhs_raises_on_multi(self):
        with pytest.raises(InvalidFDError):
            FD.parse("a.b -> {a.c, a.d}").single_rhs

    def test_lhs_element_paths(self):
        fd = FD.parse("{a.b, a.c.@x} -> a.d")
        assert fd.lhs_element_paths() == [Path.parse("a.b")]

    def test_paths_union(self):
        fd = FD.parse("a.b -> a.c")
        assert fd.paths == {Path.parse("a.b"), Path.parse("a.c")}

    def test_rename(self):
        fd = FD.parse("a.b.@x -> a.c")
        renamed = fd.rename({Path.parse("a.b.@x"): Path.parse("a.z.@x")})
        assert renamed == FD.parse("a.z.@x -> a.c")

    def test_str_round_trip(self):
        fd = FD.parse("{a.b, a.c.@x} -> a.d")
        assert FD.parse(str(fd)) == fd

    def test_validate(self, uni_spec):
        good = FD.parse("courses.course.@cno -> courses.course")
        assert good.validate(uni_spec.dtd) is good
        with pytest.raises(InvalidFDError):
            FD.parse("courses.ghost -> courses").validate(uni_spec.dtd)

    def test_hashable(self):
        assert len({FD.parse("a.b -> a.c"), FD.parse("a.b -> a.c")}) == 1
