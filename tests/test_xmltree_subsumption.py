"""Unit tests for subsumption / unordered equivalence (Section 3)."""

from repro.xmltree.model import XMLTree
from repro.xmltree.parser import parse_xml
from repro.xmltree.subsumption import (
    canonical_key,
    equivalent,
    isomorphic_unordered,
    sort_children_canonically,
    strictly_subsumed_by,
    subsumed_by,
)


def tree_with_ids(pairs):
    """Build a tree from (id, label, parent, attrs, text) tuples."""
    tree = XMLTree()
    for node_id, label, parent, attrs, text in pairs:
        tree.add_node(label, node_id=node_id, parent=parent,
                      attrs=attrs or {}, text=text)
    return tree.freeze()


class TestSubsumption:
    def test_reflexive(self):
        tree = parse_xml("<a><b/><c/></a>")
        assert subsumed_by(tree, tree)

    def test_subtree_subsumed(self):
        big = tree_with_ids([
            ("r", "r", None, None, None),
            ("x", "a", "r", {"i": "1"}, None),
            ("y", "a", "r", {"i": "2"}, None),
        ])
        small = tree_with_ids([
            ("r", "r", None, None, None),
            ("x", "a", "r", {"i": "1"}, None),
        ])
        assert subsumed_by(small, big)
        assert not subsumed_by(big, small)
        assert strictly_subsumed_by(small, big)

    def test_order_irrelevant(self):
        first = tree_with_ids([
            ("r", "r", None, None, None),
            ("x", "a", "r", None, None),
            ("y", "b", "r", None, None),
        ])
        second = tree_with_ids([
            ("r", "r", None, None, None),
            ("y", "b", "r", None, None),
            ("x", "a", "r", None, None),
        ])
        assert subsumed_by(first, second)
        assert subsumed_by(second, first)
        assert equivalent(first, second)

    def test_attribute_mismatch_blocks(self):
        first = tree_with_ids([("r", "r", None, {"x": "1"}, None)])
        second = tree_with_ids([("r", "r", None, {"x": "2"}, None)])
        assert not subsumed_by(first, second)

    def test_different_roots_block(self):
        first = tree_with_ids([("r1", "r", None, None, None)])
        second = tree_with_ids([("r2", "r", None, None, None)])
        assert not subsumed_by(first, second)

    def test_text_must_match(self):
        first = tree_with_ids([("r", "r", None, None, "hello")])
        second = tree_with_ids([("r", "r", None, None, "world")])
        assert not subsumed_by(first, second)
        assert subsumed_by(first, first)


class TestCanonicalKey:
    def test_insensitive_to_order_and_ids(self):
        first = parse_xml("<a><b i=\"1\"/><c/></a>")
        second = parse_xml("<a><c/><b i=\"1\"/></a>")
        assert canonical_key(first) == canonical_key(second)
        assert isomorphic_unordered(first, second)

    def test_sensitive_to_content(self):
        first = parse_xml("<a><b i=\"1\"/></a>")
        second = parse_xml("<a><b i=\"2\"/></a>")
        assert canonical_key(first) != canonical_key(second)

    def test_sensitive_to_multiplicity(self):
        first = parse_xml("<a><b/></a>")
        second = parse_xml("<a><b/><b/></a>")
        assert not isomorphic_unordered(first, second)

    def test_sort_children_canonically(self):
        messy = parse_xml("<a><c/><b/><c x=\"1\"/></a>")
        tidy = sort_children_canonically(messy)
        labels = [tidy.label(c) for c in tidy.children(tidy.root)]
        assert labels == ["b", "c", "c"]
        assert isomorphic_unordered(messy, tidy)
