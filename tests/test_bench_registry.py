"""Unit tests for the benchmark registry (repro.bench.registry)."""

from __future__ import annotations

import pytest

from repro.bench import registry
from repro.bench.registry import Benchmark, Claim, benchmark
from repro.errors import ReproError


@pytest.fixture(autouse=True)
def private_registry():
    """Run each test against an empty registry, then restore the real
    one (suite modules register at import, which only happens once per
    process — clearing without restoring would lose them for good)."""
    saved = dict(registry._registry)
    registry._registry.clear()
    yield
    registry._registry.clear()
    registry._registry.update(saved)


def _noop_factory(value=None):
    return lambda: None


class TestDecorator:
    def test_registers_with_defaults(self):
        decorated = benchmark("grp.one", series=(1, 2, 4))(_noop_factory)
        assert decorated is _noop_factory
        bench = registry.get("grp.one")
        assert bench.series == (1, 2, 4)
        assert bench.quick == (1,)          # first series point
        assert bench.group == "grp"         # dotted prefix
        assert bench.param == "n"
        assert bench.repeat == 3

    def test_unparameterized_benchmark_has_single_none_point(self):
        benchmark("grp.single")(_noop_factory)
        bench = registry.get("grp.single")
        assert bench.series == (None,)
        assert bench.points(quick=True) == (None,)
        assert bench.points(quick=False) == (None,)

    def test_duplicate_name_rejected(self):
        benchmark("grp.dup", series=(1,))(_noop_factory)
        with pytest.raises(ValueError, match="registered twice"):
            benchmark("grp.dup", series=(1,))(_noop_factory)

    def test_quick_must_be_series_subset(self):
        with pytest.raises(ValueError, match="subset"):
            benchmark("grp.bad", series=(1, 2), quick=(3,))

    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError, match="repeat"):
            benchmark("grp.bad", series=(1,), repeat=0)


class TestSelection:
    def setup_benchmarks(self):
        benchmark("alpha.a", series=(1,))(_noop_factory)
        benchmark("alpha.b", series=(1,))(_noop_factory)
        benchmark("beta.c", series=(1,))(_noop_factory)

    def test_all_benchmarks_name_sorted(self):
        self.setup_benchmarks()
        names = [b.name for b in registry.all_benchmarks()]
        assert names == ["alpha.a", "alpha.b", "beta.c"]

    def test_select_by_substring(self):
        self.setup_benchmarks()
        names = [b.name for b in registry.select(["alpha."])]
        assert names == ["alpha.a", "alpha.b"]

    def test_select_no_match_is_an_error(self):
        self.setup_benchmarks()
        with pytest.raises(ReproError, match="no benchmark matches"):
            registry.select(["gamma"])

    def test_get_unknown_is_an_error(self):
        with pytest.raises(ReproError, match="no benchmark named"):
            registry.get("missing")


class TestClaim:
    def test_polynomial_needs_max_slope(self):
        with pytest.raises(ValueError, match="max_slope"):
            Claim(statement="T", bound="b", counter="c",
                  kind="polynomial")

    def test_exponential_needs_min_base(self):
        with pytest.raises(ValueError, match="min_base"):
            Claim(statement="T", bound="b", counter="c",
                  kind="exponential")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown claim kind"):
            Claim(statement="T", bound="b", counter="c",
                  kind="logarithmic", max_slope=1.0)
