"""Unit tests for ``repro.serve``: admission, cache, handlers, seam.

Everything here is socket-free — the HTTP transport is covered by
``tests/integration/test_serve_live.py`` and the fault sweep by
``tests/property/test_serve_chaos.py``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import faults, obs
from repro.datasets.university import UNIVERSITY_DTD, UNIVERSITY_FDS
from repro.serve import (
    AdmissionGate,
    BudgetDefaults,
    Decision,
    SpecCache,
    account,
    handle,
    spec_key,
)

SIMPLE_DTD = ("<!ELEMENT db (row*)>\n<!ELEMENT row EMPTY>\n"
              "<!ATTLIST row a CDATA #REQUIRED b CDATA #REQUIRED>")
SIMPLE_FDS = "db.row.@a -> db.row.@b"


def _payload(**extra):
    payload = {"dtd": SIMPLE_DTD, "fds": SIMPLE_FDS}
    payload.update(extra)
    return payload


@pytest.fixture
def cache():
    return SpecCache(capacity=8)


@pytest.fixture
def defaults():
    return BudgetDefaults()


@pytest.fixture(autouse=True)
def _no_leaked_plans():
    yield
    faults.teardown()


class TestAdmissionGate:
    def test_admit_release_roundtrip(self):
        gate = AdmissionGate(max_inflight=2)
        assert gate.admit() is Decision.ADMITTED
        assert gate.inflight == 1
        gate.release()
        assert gate.inflight == 0

    def test_sheds_past_the_queue_bound(self):
        gate = AdmissionGate(max_inflight=1, max_queue=0)
        assert gate.admit() is Decision.ADMITTED
        assert gate.admit() is Decision.SHED
        gate.release()
        assert gate.admit() is Decision.ADMITTED
        gate.release()

    def test_queue_timeout_bounces_stale_waiters(self):
        gate = AdmissionGate(max_inflight=1, max_queue=4,
                             queue_timeout_s=0.05)
        assert gate.admit() is Decision.ADMITTED
        started = time.monotonic()
        assert gate.admit() is Decision.TIMEOUT
        assert time.monotonic() - started >= 0.05
        assert gate.queue_depth == 0
        gate.release()

    def test_queued_request_admitted_on_release(self):
        gate = AdmissionGate(max_inflight=1, max_queue=4,
                             queue_timeout_s=5.0)
        assert gate.admit() is Decision.ADMITTED
        decisions = []

        def waiter():
            decisions.append(gate.admit())

        thread = threading.Thread(target=waiter)
        thread.start()
        for _ in range(100):
            if gate.queue_depth == 1:
                break
            time.sleep(0.01)
        gate.release()
        thread.join(timeout=5)
        assert decisions == [Decision.ADMITTED]
        gate.release()

    def test_drain_refuses_new_and_bounces_waiters(self):
        gate = AdmissionGate(max_inflight=1, max_queue=4,
                             queue_timeout_s=10.0)
        assert gate.admit() is Decision.ADMITTED
        decisions = []
        thread = threading.Thread(
            target=lambda: decisions.append(gate.admit()))
        thread.start()
        for _ in range(100):
            if gate.queue_depth == 1:
                break
            time.sleep(0.01)
        drained = []
        drainer = threading.Thread(
            target=lambda: drained.append(gate.drain(5.0)))
        drainer.start()
        thread.join(timeout=5)
        assert decisions == [Decision.DRAINING]
        assert gate.admit() is Decision.DRAINING
        gate.release()
        drainer.join(timeout=5)
        assert drained == [True]

    def test_drain_deadline_expires_with_stuck_inflight(self):
        gate = AdmissionGate(max_inflight=1)
        assert gate.admit() is Decision.ADMITTED
        assert gate.drain(0.05) is False
        gate.release()

    def test_drain_is_idempotent(self):
        gate = AdmissionGate(max_inflight=1)
        assert gate.drain(0.1) is True
        assert gate.drain(0.1) is True

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AdmissionGate(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionGate(max_queue=-1)
        with pytest.raises(ValueError):
            AdmissionGate(queue_timeout_s=0)


class TestSpecCache:
    def test_hit_returns_the_same_object(self, cache):
        first = cache.get(SIMPLE_DTD, SIMPLE_FDS)
        second = cache.get(SIMPLE_DTD, SIMPLE_FDS)
        assert first is second
        assert len(cache) == 1

    def test_key_separates_engine_and_root(self, cache):
        assert spec_key(SIMPLE_DTD, SIMPLE_FDS) \
            != spec_key(SIMPLE_DTD, SIMPLE_FDS, engine="chase")
        cache.get(SIMPLE_DTD, SIMPLE_FDS)
        cache.get(SIMPLE_DTD, SIMPLE_FDS, engine="chase")
        assert len(cache) == 2

    def test_lru_eviction_is_size_bounded(self):
        cache = SpecCache(capacity=1)
        cache.get(SIMPLE_DTD, SIMPLE_FDS)
        cache.get(UNIVERSITY_DTD, UNIVERSITY_FDS)
        assert len(cache) == 1
        # The survivor is the most recently used.
        survivor = cache.get(UNIVERSITY_DTD, UNIVERSITY_FDS)
        assert len(cache) == 1
        assert survivor is cache.get(UNIVERSITY_DTD, UNIVERSITY_FDS)

    def test_failed_builds_never_poison(self, cache):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            cache.get("<!ELEMENT", "")
        assert len(cache) == 0
        # Identical garbage again: still a clean failure, no wedged
        # placeholder entry.
        with pytest.raises(ReproError):
            cache.get("<!ELEMENT", "")
        assert cache.get(SIMPLE_DTD, SIMPLE_FDS) is not None

    def test_injected_fill_fault_leaves_cache_usable(self, cache):
        from repro.errors import ReproError
        with faults.inject("serve.cache.fill"):
            with pytest.raises(ReproError):
                cache.get(SIMPLE_DTD, SIMPLE_FDS)
        assert len(cache) == 0
        spec = cache.get(SIMPLE_DTD, SIMPLE_FDS)
        assert spec.decide(SIMPLE_FDS).value == "YES"


class TestBudgetDefaults:
    def test_defaults_pass_through(self, defaults):
        merged = defaults.merged(None)
        assert merged["deadline"] == defaults.timeout
        assert merged["max_steps"] == defaults.max_steps

    def test_client_can_tighten(self):
        merged = BudgetDefaults(max_steps=100).merged({"max_steps": 10})
        assert merged["max_steps"] == 10

    def test_client_cannot_loosen(self):
        merged = BudgetDefaults(max_steps=100,
                                timeout=2.0).merged(
            {"max_steps": 1_000_000, "timeout": 3600})
        assert merged["max_steps"] == 100
        assert merged["deadline"] == 2.0

    def test_unlimited_ceiling_accepts_any_client_value(self):
        merged = BudgetDefaults(max_nodes=None).merged(
            {"max_nodes": 123})
        assert merged["max_nodes"] == 123

    @pytest.mark.parametrize("budget", [
        {"max_steps": 0}, {"max_steps": -1}, {"timeout": "fast"},
        {"timeout": True}, {"bogus": 1}, "not-an-object", 7,
    ])
    def test_bad_budgets_are_usage_errors(self, budget):
        from repro.serve import BadRequest
        with pytest.raises(BadRequest):
            BudgetDefaults().merged(budget)


class TestHandlers:
    def test_implication_yes(self, cache, defaults):
        status, body = handle(
            "/v1/implication", _payload(fd=SIMPLE_FDS),
            cache=cache, defaults=defaults)
        assert (status, body["verdict"]) == (200, "yes")

    def test_implication_no(self, cache, defaults):
        status, body = handle(
            "/v1/implication",
            _payload(fd="db.row.@b -> db.row.@a"),
            cache=cache, defaults=defaults)
        assert (status, body["verdict"]) == (200, "no")

    def test_implication_budget_trip_degrades_to_unknown(
            self, cache, defaults):
        status, body = handle(
            "/v1/implication",
            {"dtd": UNIVERSITY_DTD, "fds": UNIVERSITY_FDS,
             "fd": "courses.course.title.S -> courses.course.@cno",
             "budget": {"max_steps": 1}},
            cache=cache, defaults=defaults)
        assert status == 200
        assert body["verdict"] == "unknown"
        assert body["limit"] == "steps"

    def test_xnf_check_negative_lists_violations(self, cache, defaults):
        status, body = handle("/v1/xnf-check", _payload(),
                              cache=cache, defaults=defaults)
        assert status == 200
        assert body["in_xnf"] is False
        assert body["violations"] == [SIMPLE_FDS]

    def test_normalize_reports_steps_and_result(self, cache, defaults):
        status, body = handle("/v1/normalize", _payload(),
                              cache=cache, defaults=defaults)
        assert status == 200
        assert body["steps"] and body["steps"][0]["kind"] == "create"
        # The result is itself servable: checking it is in XNF.
        status, check = handle(
            "/v1/xnf-check",
            {"dtd": body["dtd"], "fds": "\n".join(body["fds"])},
            cache=cache, defaults=defaults)
        assert (status, check["in_xnf"]) == (200, True)

    def test_missing_field_is_400_usage(self, cache, defaults):
        status, body = handle("/v1/implication", {"fds": ""},
                              cache=cache, defaults=defaults)
        assert status == 400
        error = body["error"]
        assert (error["kind"], error["exit_code"]) == ("usage", 2)

    def test_non_object_payload_is_400(self, cache, defaults):
        status, body = handle("/v1/normalize", ["not", "an", "object"],
                              cache=cache, defaults=defaults)
        assert status == 400

    def test_null_required_field_is_400(self, cache, defaults):
        status, _body = handle(
            "/v1/normalize", {"dtd": None, "fds": ""},
            cache=cache, defaults=defaults)
        assert status == 400

    def test_unknown_endpoint_is_400(self, cache, defaults):
        status, _body = handle("/v1/nope", _payload(),
                               cache=cache, defaults=defaults)
        assert status == 400

    def test_parse_error_is_422_input(self, cache, defaults):
        status, body = handle(
            "/v1/normalize", {"dtd": "<!ELEMENT", "fds": ""},
            cache=cache, defaults=defaults)
        assert status == 422
        error = body["error"]
        assert (error["kind"], error["exit_code"]) == ("input", 3)
        assert error["type"] == "DTDSyntaxError"

    def test_injected_fault_is_500_fault(self, cache, defaults):
        with faults.inject("serve.handler.normalize"):
            status, body = handle("/v1/normalize", _payload(),
                                  cache=cache, defaults=defaults)
        assert status == 500
        error = body["error"]
        assert (error["kind"], error["exit_code"]) == ("fault", 3)

    def test_injected_exhaustion_is_408_resource(self, cache, defaults):
        with faults.inject("serve.handler.normalize",
                           kind="exhaustion"):
            status, body = handle("/v1/normalize", _payload(),
                                  cache=cache, defaults=defaults)
        assert status == 408
        error = body["error"]
        assert (error["kind"], error["exit_code"]) == ("resource", 4)

    def test_contract_breach_is_counted_and_opaque(
            self, cache, defaults, monkeypatch):
        obs.enable()
        obs.reset()
        try:
            def explode(*args, **kwargs):
                raise ValueError("internal detail that must not leak")

            monkeypatch.setattr(cache, "get", explode)
            status, body = handle("/v1/xnf-check", _payload(),
                                  cache=cache, defaults=defaults)
            error = body["error"]
            assert (status, error["exit_code"],
                    error["kind"]) == (500, 70, "contract")
            assert "must not leak" not in error["message"]
            assert obs.snapshot()["counters"][
                "serve.contract_breach"] == 1
            monkeypatch.undo()
            # The handler layer survives: the next request succeeds.
            status, body = handle("/v1/xnf-check", _payload(),
                                  cache=cache, defaults=defaults)
            assert status == 200
        finally:
            obs.reset()
            obs.disable()

    def test_per_request_budgets_leave_no_residue(self, cache,
                                                  defaults):
        from repro import guard
        from repro.guard import budget as budget_mod
        handle("/v1/implication", _payload(fd=SIMPLE_FDS),
               cache=cache, defaults=defaults)
        assert guard.current() is None
        assert not budget_mod.active


class TestAccountSeam:
    def test_disabled_records_nothing(self):
        assert not obs.is_enabled()
        account("/v1/implication", 200, 0.01)  # must be a no-op

    def test_enabled_records_counters_and_latency(self):
        obs.enable()
        obs.reset()
        try:
            account("/v1/implication", 200, 0.25)
            account("/v1/implication", 429, 0.01)
            snapshot = obs.snapshot()
            assert snapshot["counters"]["serve.requests"] == 2
            assert snapshot["counters"]["serve.status.200"] == 1
            assert snapshot["counters"]["serve.status.429"] == 1
            timer = snapshot["timers"]["serve.request.implication"]
            assert timer["count"] == 2
            assert timer["max"] == 0.25
        finally:
            obs.reset()
            obs.disable()
