"""Unit tests for the implication-free variant (Proposition 7)."""

from repro.normalize.simple_algorithm import normalize_simple
from repro.xnf.check import is_in_xnf


class TestProposition7:
    def test_university_reaches_xnf(self, uni_spec):
        result = normalize_simple(uni_spec.dtd, uni_spec.sigma)
        assert result.steps
        assert is_in_xnf(result.dtd, result.sigma)

    def test_dblp_reaches_xnf_suboptimally(self, dblp):
        """Only step (3) is available, so DBLP gets a new element type
        where the full algorithm would move an attribute."""
        result = normalize_simple(dblp.dtd, dblp.sigma)
        assert all(step.kind == "create" for step in result.steps)
        assert is_in_xnf(result.dtd, result.sigma)
        # year left inproceedings but issue gained no attribute
        assert "@year" not in result.dtd.attrs("inproceedings")
        assert "@year" not in result.dtd.attrs("issue")

    def test_already_normalized_is_noop(self, uni_spec):
        result = normalize_simple(uni_spec.dtd, uni_spec.sigma[:2])
        assert result.steps == []

    def test_migration_still_works(self, uni_spec, uni_doc):
        from repro.xmltree.conformance import conforms
        result = normalize_simple(uni_spec.dtd, uni_spec.sigma)
        migrated = result.migrate(uni_doc)
        assert conforms(migrated, result.dtd)

    def test_terminates_on_combined_anomalies(self):
        from repro.dtd.parser import parse_dtd
        from repro.fd.model import FD
        dtd = parse_dtd("""
            <!ELEMENT db (item*)>
            <!ELEMENT item EMPTY>
            <!ATTLIST item sku CDATA #REQUIRED
                           price CDATA #REQUIRED
                           vendor CDATA #REQUIRED>
        """)
        sigma = [
            FD.parse("db.item.@sku -> db.item.@price"),
            FD.parse("db.item.@sku -> db.item.@vendor"),
        ]
        result = normalize_simple(dtd, sigma)
        assert is_in_xnf(result.dtd, result.sigma)
