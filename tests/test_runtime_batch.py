"""Unit tests for the batch runner (repro.runtime.batch)."""

import json

import pytest

from repro import faults
from repro.errors import ReproError, ResourceExhausted
from repro.runtime import manifest as mf
from repro.runtime.batch import BatchRunner, error_chain, run_batch
from repro.runtime.breaker import BreakerBoard
from repro.runtime.retry import RetryPolicy

DTD = ("<!ELEMENT db (r*)>\n<!ELEMENT r EMPTY>\n"
       "<!ATTLIST r a CDATA #REQUIRED b CDATA #REQUIRED>")
BROKEN_DTD = "<!ELEMENT db (unclosed"


@pytest.fixture(autouse=True)
def _no_leaked_plans():
    yield
    faults.teardown()


def _manifest(tasks, **defaults):
    return mf.build(tasks, defaults=defaults)


def _check_task(**overrides):
    base = {"op": "check", "dtd_text": DTD,
            "fds_text": "db.r.@a -> db.r.@b"}
    base.update(overrides)
    return base


def _policy(**overrides):
    base = {"retries": 2, "backoff_base_ms": 0}
    base.update(overrides)
    return RetryPolicy(**base)


class TestHappyPath:
    def test_all_ops_produce_results(self):
        manifest = _manifest([
            {"id": "i", "op": "implies", "dtd_text": DTD,
             "fds_text": "db.r.@a -> db.r.@b",
             "fd": "db.r.@a -> db.r.@b"},
            _check_task(id="c"),
            {"id": "n", "op": "normalize", "dtd_text": DTD,
             "fds_text": "db.r.@a -> db.r.@b"},
        ])
        summary = run_batch(manifest, policy=_policy())
        assert summary["counts"] == {"total": 3, "ok": 3,
                                     "failed": 0, "lost": 0}
        by_id = {task["id"]: task for task in summary["tasks"]}
        assert by_id["i"]["result"] == {"implied": True}
        assert by_id["c"]["result"]["in_xnf"] is False
        assert by_id["n"]["result"]["final_in_xnf"] is True

    def test_summary_schema_fields(self):
        summary = run_batch(_manifest([_check_task()]), policy=_policy())
        assert summary["schema"] == "repro.runtime.batch"
        assert summary["version"] == 1
        assert summary["dead_letters"] == []
        assert summary["breakers"] == {}


class TestRetries:
    def test_transient_fault_is_retried_to_success(self):
        manifest = _manifest([_check_task()])
        recorded = []
        with faults.use(
                faults.plan_from_spec("fd.closure.iteration:exception")):
            summary = run_batch(manifest, policy=_policy(),
                                sleeper=recorded.append)
        task = summary["tasks"][0]
        assert task["status"] == "ok"
        assert task["attempts"] == 2
        assert task["retried"] is True
        assert task["failures"][0]["transient"] is True
        assert summary["counts"]["failed"] == 0

    def test_backoff_delays_are_planned_and_slept(self):
        manifest = _manifest([_check_task(id="t")], seed=5)
        slept = []
        with faults.use(
                faults.plan_from_spec("fd.closure.iteration:exception")):
            summary = run_batch(
                manifest, policy=RetryPolicy(backoff_base_ms=80, seed=5),
                sleeper=slept.append)
        planned = summary["tasks"][0]["delays_ms"]
        assert slept == planned
        assert planned == [RetryPolicy(backoff_base_ms=80,
                                       seed=5).delay_ms("t", 0)]

    def test_permanent_failure_is_not_retried(self):
        manifest = _manifest([_check_task(dtd_text=BROKEN_DTD)])
        summary = run_batch(manifest, policy=_policy())
        task = summary["tasks"][0]
        assert task["status"] == "dead-letter"
        assert task["attempts"] == 1
        [letter] = summary["dead_letters"]
        assert letter["reason"] == "permanent"

    def test_transient_exhaustion_dead_letters_after_budget(self):
        spec = ",".join(["fd.closure.iteration:exception"] * 10)
        manifest = _manifest([_check_task()])
        with faults.use(faults.plan_from_spec(spec)):
            summary = run_batch(manifest, policy=_policy(retries=2))
        [letter] = summary["dead_letters"]
        assert letter["reason"] == "retries_exhausted"
        assert letter["attempts"] == 3


class TestDeadLetters:
    def test_error_chain_captures_cause_links(self):
        try:
            try:
                raise ValueError("the root cause")
            except ValueError as inner:
                raise ReproError("wrapped") from inner
        except ReproError as outer:
            chain = error_chain(outer)
        assert [entry["type"] for entry in chain] \
            == ["ReproError", "ValueError"]
        assert chain[1]["message"] == "the root cause"

    def test_error_chain_records_fault_site_and_limit(self):
        from repro.errors import InjectedFault
        chain = error_chain(InjectedFault("fd.chase.step", "exception"))
        assert chain[0]["site"] == "fd.chase.step"
        assert chain[0]["kind"] == "exception"
        chain = error_chain(ResourceExhausted(
            "steps", spent=10, allowed=10, partial={"engine": "chase"}))
        assert chain[0]["limit"] == "steps"
        assert chain[0]["partial"] == {"engine": "chase"}

    def test_unreadable_spec_file_is_a_per_task_dead_letter(self,
                                                           tmp_path):
        payload = {"schema": mf.MANIFEST_SCHEMA,
                   "version": mf.MANIFEST_VERSION,
                   "tasks": [{"id": "gone", "op": "check",
                              "dtd": "absent.dtd"},
                             _check_task(id="fine")]}
        manifest = mf.from_payload(payload, base_dir=tmp_path)
        summary = run_batch(manifest, policy=_policy())
        assert summary["counts"] == {"total": 2, "ok": 1,
                                     "failed": 1, "lost": 0}
        [letter] = summary["dead_letters"]
        assert letter["id"] == "gone"
        assert "cannot read spec file" in letter["error_chain"][0]["message"]

    def test_non_repro_errors_propagate(self):
        """A non-ReproError is a contract breach: crash loudly."""
        manifest = _manifest([_check_task()])
        runner = BatchRunner(manifest, policy=_policy())
        original = runner._execute
        runner._execute = lambda task: (_ for _ in ()).throw(
            KeyError("library bug"))
        with pytest.raises(KeyError):
            runner.run()


class TestBreakerIntegration:
    def test_repeated_signature_opens_breaker_and_skips(self):
        spec = ",".join(["fd.closure.iteration:exception"] * 60)
        manifest = _manifest([_check_task(id=f"t{i}")
                              for i in range(12)])
        board = BreakerBoard(threshold=2, probe_interval=4)
        with faults.use(faults.plan_from_spec(spec)):
            summary = run_batch(manifest, policy=_policy(retries=1),
                                board=board)
        snap = summary["breakers"]["site:fd.closure.iteration"]
        assert snap["trips"] >= 1
        assert snap["skips"] >= 1
        reasons = {letter["reason"]
                   for letter in summary["dead_letters"]}
        assert "breaker_open" in reasons
        # The invariant the whole layer exists for:
        assert summary["counts"]["lost"] == 0
        assert summary["counts"]["ok"] \
            + summary["counts"]["failed"] == 12


class TestDeterminism:
    """Satellite: two runs of one manifest are byte-identical."""

    def test_summaries_byte_identical_without_faults(self):
        manifest = _manifest([_check_task(id=f"t{i}")
                              for i in range(5)], seed=3)
        policy = RetryPolicy(retries=2, backoff_base_ms=120, seed=3)
        runs = [json.dumps(run_batch(manifest, policy=policy,
                                     sleeper=lambda ms: None),
                           sort_keys=True)
                for _ in range(2)]
        assert runs[0] == runs[1]

    def test_summaries_byte_identical_under_a_fault_plan(self):
        manifest = _manifest([_check_task(id=f"t{i}")
                              for i in range(6)], seed=11)
        policy = RetryPolicy(retries=2, backoff_base_ms=100, seed=11)

        def one_run():
            slept = []
            with faults.use(faults.plan_from_spec(
                    "fd.closure.iteration:exception:2,"
                    "fd.chase.step:exception")):
                summary = run_batch(manifest, policy=policy,
                                    sleeper=slept.append)
            return json.dumps(summary, sort_keys=True), slept

        (first, slept1), (second, slept2) = one_run(), one_run()
        assert first == second
        assert slept1 == slept2      # jitter from seeds, not clocks

    def test_different_seed_changes_planned_delays(self):
        manifest = _manifest([_check_task(id="t")])

        def delays(seed):
            with faults.use(faults.plan_from_spec(
                    "fd.closure.iteration:exception")):
                summary = run_batch(
                    manifest,
                    policy=RetryPolicy(backoff_base_ms=100, seed=seed),
                    sleeper=lambda ms: None)
            return summary["tasks"][0]["delays_ms"]

        assert delays(1) != delays(2)


class TestBackends:
    """The execution-backend seam (serial default, pool pluggable)."""

    def test_default_backend_is_serial(self):
        from repro.runtime.batch import SerialBackend
        runner = BatchRunner(_manifest([_check_task(id="t")]))
        assert isinstance(runner.backend, SerialBackend)

    def test_explicit_serial_backend_matches_default_bytes(self):
        from repro.runtime.batch import SerialBackend
        manifest = _manifest([_check_task(id=f"t{i}")
                              for i in range(3)])
        default = run_batch(manifest, policy=_policy())
        explicit = run_batch(manifest, policy=_policy(),
                             backend=SerialBackend())
        assert json.dumps(default, sort_keys=True) \
            == json.dumps(explicit, sort_keys=True)

    def test_serial_backend_reports_on_task_done_in_order(self):
        manifest = _manifest([_check_task(id=f"t{i}")
                              for i in range(3)])
        seen = []
        run_batch(manifest, policy=_policy(),
                  on_task_done=lambda outcome: seen.append(
                      outcome.task.id))
        assert seen == ["t0", "t1", "t2"]

    def test_summarize_is_a_pure_function_of_outcomes(self):
        """The pool path relies on summarize() rendering the same
        bytes for the same outcome list, breakers passed explicitly."""
        manifest = _manifest([_check_task(id=f"t{i}")
                              for i in range(3)])
        runner = BatchRunner(manifest, policy=_policy())
        outcomes = runner.backend.run(runner)
        assert json.dumps(runner.summarize(outcomes), sort_keys=True) \
            == json.dumps(runner.summarize(outcomes), sort_keys=True)
        with_breakers = runner.summarize(outcomes, breakers={})
        assert with_breakers["breakers"] == {}
