"""Runner and isolation tests (repro.bench.runner).

The load-bearing property is satellite determinism: two consecutive
runs of the same benchmark must produce *identical* operation-counter
snapshots, because :func:`repro.bench.runner.isolate` resets every
piece of cross-run mutable state (obs registry, ambient guard budgets,
implication-engine caches, regex ``lru_cache`` s).  That determinism
is what allows the comparator to gate on counters with zero tolerance
for machine noise.
"""

from __future__ import annotations

import pytest

from repro import guard, obs
from repro.bench import registry, runner
from repro.bench.schema import validate
from repro.fd.implication import ImplicationEngine
from repro.guard import budget as _budget


@pytest.fixture(autouse=True)
def clean_slate():
    runner.isolate()
    obs.disable()
    yield
    runner.isolate()
    obs.disable()


def _bench(name):
    registry.load_default_suites()
    return registry.get(name)


class TestIsolate:
    def test_clears_obs_metrics(self):
        obs.enable()
        obs.inc("leftover.counter", 5)
        runner.isolate()
        assert obs.snapshot()["counters"] == {}

    def test_removes_leftover_guard_budgets(self):
        # Simulate a workload that crashed inside guard.limits and
        # never unwound: the budget is still installed.
        ctx = guard.limits(max_steps=10**6)
        ctx.__enter__()
        assert _budget.active
        runner.isolate()
        assert not _budget.active
        assert _budget._stack == []

    def test_clears_live_engine_caches(self, flat_ab_dtd):
        from repro.fd.model import FD

        engine = ImplicationEngine(flat_ab_dtd, [])
        engine.implies(FD.parse("r.a.@x -> r.a.@x"))
        assert engine.cache_info().currsize > 0
        runner.isolate()
        assert engine.cache_info().currsize == 0


class TestCounterDeterminism:
    def test_consecutive_runs_produce_identical_counters(self):
        obs.enable()  # run_suite does this; run_benchmark trusts it
        bench = _bench("implication.simple_all")
        first = runner.run_benchmark(bench, quick=True, repeat=1,
                                     memory=False)
        second = runner.run_benchmark(bench, quick=True, repeat=1,
                                      memory=False)
        for p1, p2 in zip(first["points"], second["points"]):
            assert p1["value"] == p2["value"]
            assert p1["counters"] == p2["counters"]
            assert p1["counters"]  # non-trivial: obs actually recorded

    def test_warm_state_does_not_leak_into_counters(self, uni_spec):
        # Warm every cache in sight, then check the benchmark still
        # sees the exact counters of a cold process.
        obs.enable()
        bench = _bench("implication.simple_all")
        cold = runner.run_benchmark(bench, quick=True, repeat=1,
                                    memory=False)
        uni_spec.xnf_violations()      # warms engines + regex caches
        warm = runner.run_benchmark(bench, quick=True, repeat=1,
                                    memory=False)
        assert [p["counters"] for p in cold["points"]] == \
               [p["counters"] for p in warm["points"]]


class TestRunSuite:
    def test_payload_validates_and_leaves_no_residue(self):
        assert not obs.is_enabled()
        payload = runner.run_suite(quick=True, only=["xnf.ebxml"],
                                   repeat=1, memory=False)
        validate(payload, source="in-memory")
        assert list(payload["benchmarks"]) == ["xnf.ebxml"]
        assert payload["suite"] == "quick"
        # run_suite enabled obs for the duration; our state is back.
        assert not obs.is_enabled()
        assert obs.snapshot()["counters"] == {}
        assert not _budget.active

    def test_claim_recorded_for_complexity_series(self):
        payload = runner.run_suite(quick=True,
                                   only=["complexity.theorem3"],
                                   repeat=1, memory=False)
        claim = payload["benchmarks"]["complexity.theorem3"]["claim"]
        assert claim is not None
        assert claim["statement"] == "Theorem 3"
        assert claim["kind"] == "polynomial"
        assert isinstance(claim["slope"], float)
        assert claim["passed"] is True
