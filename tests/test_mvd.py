"""Unit tests for the MVD extension (Section 8 future work)."""

import pytest

from repro.errors import FDSyntaxError, InvalidFDError
from repro.dtd.parser import parse_dtd
from repro.dtd.paths import Path
from repro.fd.model import FD
from repro.mvd.induced import branch_partition, is_induced, tree_induced_mvds
from repro.mvd.model import MVD
from repro.mvd.satisfaction import mvd_violating_pairs, satisfies_mvd
from repro.mvd.xnf4 import is_in_xnf4, xnf4_violations
from repro.relational.schema import RelationSchema
from repro.relational.xml_coding import encode_relation, relational_dtd
from repro.xmltree.parser import parse_xml


P = Path.parse


class TestModel:
    def test_parse(self):
        mvd = MVD.parse("db.G.@A ->> db.G.@B")
        assert mvd.lhs == {P("db.G.@A")}
        assert mvd.rhs == {P("db.G.@B")}

    def test_parse_braced(self):
        mvd = MVD.parse("{a.b, a.c} ->> {a.d}")
        assert len(mvd.lhs) == 2

    def test_missing_arrow(self):
        with pytest.raises(FDSyntaxError):
            MVD.parse("a.b -> a.c")

    def test_validate(self, uni_spec):
        with pytest.raises(InvalidFDError):
            MVD.parse("courses.nope ->> courses").validate(uni_spec.dtd)

    def test_str_round_trip(self):
        mvd = MVD.parse("{a.b, a.c} ->> a.d")
        assert MVD.parse(str(mvd)) == mvd


class TestRelationalCorrespondence:
    """Exchange semantics on the flat coding = classical MVDs."""

    G = RelationSchema("G", ("A", "B", "C"))

    def _doc(self, rows):
        return encode_relation(self.G, rows)

    def _mvd(self):
        return MVD.parse("db.G.@A ->> db.G.@B")

    def test_cross_product_satisfies(self):
        rows = [
            {"A": "1", "B": "b1", "C": "c1"},
            {"A": "1", "B": "b1", "C": "c2"},
            {"A": "1", "B": "b2", "C": "c1"},
            {"A": "1", "B": "b2", "C": "c2"},
        ]
        doc = self._doc(rows)
        assert satisfies_mvd(doc, relational_dtd(self.G), self._mvd())

    def test_missing_combination_violates(self):
        rows = [
            {"A": "1", "B": "b1", "C": "c1"},
            {"A": "1", "B": "b2", "C": "c2"},
        ]
        doc = self._doc(rows)
        dtd = relational_dtd(self.G)
        assert not satisfies_mvd(doc, dtd, self._mvd())
        assert mvd_violating_pairs(doc, dtd, self._mvd())

    def test_null_guard(self):
        """Distinct A-groups impose nothing on each other."""
        rows = [
            {"A": "1", "B": "b1", "C": "c1"},
            {"A": "2", "B": "b2", "C": "c2"},
        ]
        doc = self._doc(rows)
        assert satisfies_mvd(doc, relational_dtd(self.G), self._mvd())

    def test_fd_implies_mvd(self):
        """Classical: X -> Y implies X ->> Y; any doc satisfying the FD
        satisfies the MVD."""
        rows = [
            {"A": "1", "B": "b", "C": "c1"},
            {"A": "1", "B": "b", "C": "c2"},
            {"A": "2", "B": "x", "C": "c1"},
        ]
        doc = self._doc(rows)
        dtd = relational_dtd(self.G)
        from repro.fd.satisfaction import satisfies
        assert satisfies(doc, dtd, FD.parse("db.G.@A -> db.G.@B"))
        assert satisfies_mvd(doc, dtd, self._mvd())


class TestTreeInduced:
    def test_branch_partition(self, uni_spec):
        partition = branch_partition(uni_spec.dtd, P("courses.course"))
        assert set(partition) == {"title", "taken_by", "@cno"}
        assert P("courses.course.taken_by.student") in \
            partition["taken_by"]

    def test_induced_mvds_hold_on_documents(self, uni_spec, uni_doc):
        for mvd in tree_induced_mvds(uni_spec.dtd):
            assert satisfies_mvd(uni_doc, uni_spec.dtd, mvd), str(mvd)

    def test_induced_mvds_hold_on_synthetic(self, uni_spec):
        from repro.datasets.university import synthetic_university_document
        doc = synthetic_university_document(3, 3, seed=9)
        for mvd in tree_induced_mvds(uni_spec.dtd):
            assert satisfies_mvd(doc, uni_spec.dtd, mvd), str(mvd)

    def test_is_induced_recognizes_branches(self, uni_spec):
        partition = branch_partition(uni_spec.dtd, P("courses.course"))
        mvd = MVD(frozenset({P("courses.course")}),
                  partition["taken_by"])
        assert is_induced(uni_spec.dtd, mvd)

    def test_is_induced_rejects_partial_branch(self, uni_spec):
        mvd = MVD(frozenset({P("courses.course")}),
                  frozenset({P("courses.course.taken_by.student")}))
        assert not is_induced(uni_spec.dtd, mvd)

    def test_relational_triviality(self, uni_spec):
        mvd = MVD(frozenset({P("courses.course")}),
                  frozenset({P("courses.course")}))
        assert is_induced(uni_spec.dtd, mvd)


class TestXNF4:
    def test_4nf_violation_detected(self):
        """Flat coding of the classical 4NF example: A ->> B with A not
        a key."""
        dtd = relational_dtd(RelationSchema("G", ("A", "B", "C")))
        sigma = []
        mvds = [MVD.parse("db.G.@A ->> db.G.@B")]
        violations = xnf4_violations(dtd, sigma, mvds)
        assert violations == mvds

    def test_key_mvd_accepted(self):
        dtd = relational_dtd(RelationSchema("G", ("A", "B", "C")))
        sigma = [FD.parse(
            "{db.G.@A} -> {db.G.@B, db.G.@C}"),
            FD.parse("{db.G.@A, db.G.@B, db.G.@C} -> db.G")]
        mvds = [MVD.parse("db.G.@A ->> db.G.@B")]
        assert is_in_xnf4(dtd, sigma, mvds)

    def test_induced_mvds_never_violate(self, uni_spec):
        mvds = list(tree_induced_mvds(uni_spec.dtd))
        violations = xnf4_violations(uni_spec.dtd, uni_spec.sigma[:2],
                                     mvds)
        assert violations == []

    def test_xnf4_requires_xnf(self, uni_spec):
        assert not is_in_xnf4(uni_spec.dtd, uni_spec.sigma, [])
        assert is_in_xnf4(uni_spec.dtd, uni_spec.sigma[:2], [])
