"""Executing registered benchmarks and recording the report.

For each series point the runner

1. calls the workload factory (setup — excluded from measurement),
2. runs the body ``repeat`` times, each from a fully isolated state
   (:func:`isolate`), keeping the best wall time and the operation
   counters of the final run,
3. runs the body once more under ``tracemalloc`` for peak memory
   (separately, so allocation tracking never skews the timings),
4. fits and asserts the benchmark's complexity :class:`Claim`, if any.

Isolation is what makes the counter columns trustworthy: every run
starts with :func:`repro.obs.reset`, no ambient :mod:`repro.guard`
budget, cold :class:`~repro.fd.implication.ImplicationEngine` caches
(including engines captured inside workload closures or cached on
specs), and cold module-level ``lru_cache`` s in the regex substrate.
Two consecutive runs of the same benchmark therefore produce
*identical* counter snapshots (``tests/test_bench_runner.py`` pins
this), which is what lets the comparator gate on counters with zero
machine noise.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Callable, Iterable

from repro import guard, obs
from repro.bench import registry as _registry
from repro.bench.registry import Benchmark
from repro.bench.schema import envelope
from repro.bench.slopes import evaluate_claim
from repro.faults import plan as _faults
from repro.fd.implication import ImplicationEngine


def _module_caches() -> list:
    """Every module-level ``lru_cache`` that can leak warmth between
    runs (the regex substrate memoizes classification and matching)."""
    from repro.regex import analysis, ast, classify, matching

    caches = []
    for module in (analysis, ast, classify, matching):
        for value in vars(module).values():
            if callable(value) and hasattr(value, "cache_clear"):
                caches.append(value)
    return caches


def isolate() -> None:
    """Reset every piece of cross-run mutable state (see module docs)."""
    obs.reset()
    guard.teardown()
    _faults.teardown()
    ImplicationEngine.clear_all_caches()
    for cache in _module_caches():
        cache.cache_clear()


def _measure_point(bench: Benchmark, value, *, repeat: int | None,
                   memory: bool,
                   limits: dict | None = None) -> dict:
    workload: Callable[[], object]
    if value is None:
        workload = bench.factory()
    else:
        workload = bench.factory(value)
    runs = repeat if repeat is not None else bench.repeat
    best = float("inf")
    counters: dict[str, int] = {}
    for _ in range(runs):
        isolate()
        # The per-run budget is installed *after* isolation (which
        # tears down every ambient budget), so ``bench run --timeout``
        # limits each measured run individually.
        with guard.limits(**(limits or {})):
            started = time.perf_counter()
            workload()
            best = min(best, time.perf_counter() - started)
        counters = obs.snapshot()["counters"]
    point = {"value": value, "time_s": best,
             "counters": dict(sorted(counters.items()))}
    if memory:
        isolate()
        tracemalloc.start()
        try:
            with guard.limits(**(limits or {})):
                workload()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        point["mem_peak_kb"] = peak / 1024.0
    return point


def run_benchmark(bench: Benchmark, *, quick: bool = False,
                  repeat: int | None = None, memory: bool = True,
                  progress: Callable[[str], None] | None = None,
                  limits: dict | None = None) -> dict:
    """Run one benchmark's series; returns its report entry."""
    points = []
    for value in bench.points(quick):
        point = _measure_point(bench, value, repeat=repeat,
                               memory=memory, limits=limits)
        points.append(point)
        if progress is not None:
            label = "" if value is None else f" {bench.param}={value}"
            progress(f"  {bench.name}{label}: "
                     f"{point['time_s'] * 1e3:.2f} ms")
    entry: dict = {"group": bench.group, "param": bench.param,
                   "points": points, "claim": None}
    if bench.claim is not None and len(points) >= 2:
        xs = [bench.x(p["value"]) for p in points]
        counter_ys = [float(p["counters"].get(bench.claim.counter, 0))
                      for p in points]
        time_ys = [p["time_s"] for p in points]
        entry["claim"] = evaluate_claim(bench.claim, xs, counter_ys,
                                        time_ys)
    return entry


def run_suite(*, quick: bool = False, only: Iterable[str] | None = None,
              repeat: int | None = None, memory: bool = True,
              progress: Callable[[str], None] | None = None,
              load_default: bool = True,
              limits: dict | None = None) -> dict:
    """Run the selected benchmarks; returns the full report payload.

    Runs with obs enabled for the duration (restoring the caller's
    state afterwards) and leaves no ambient budget, warm cache, or
    recorded metric behind.  ``limits`` (``deadline``/``max_steps``/
    ``max_branches``/``max_nodes``) bound each measured run; a tripped
    limit raises :class:`~repro.errors.ResourceExhausted`.
    """
    if load_default:
        _registry.load_default_suites()
    chosen = _registry.select(list(only) if only else None)
    payload = envelope(suite="quick" if quick else "full",
                       repeat=repeat if repeat is not None else 0)
    was_enabled = obs.is_enabled()
    obs.enable()
    try:
        for bench in chosen:
            if progress is not None:
                progress(f"{bench.name} "
                         f"({len(bench.points(quick))} point(s))")
            payload["benchmarks"][bench.name] = run_benchmark(
                bench, quick=quick, repeat=repeat, memory=memory,
                progress=progress, limits=limits)
    finally:
        isolate()
        if not was_enabled:
            obs.disable()
    if repeat is None:
        payload["repeat"] = max(
            (b.repeat for b in chosen), default=0)
    return payload


def claims_summary(payload: dict) -> list[tuple[str, dict]]:
    """The (name, claim-record) pairs of every claim in a report."""
    return [(name, entry["claim"])
            for name, entry in sorted(payload["benchmarks"].items())
            if entry.get("claim")]


def all_claims_pass(payload: dict) -> bool:
    return all(claim["passed"] for _, claim in claims_summary(payload))
