"""Growth-curve fitting for the complexity-claim benchmarks.

The paper's quantitative content is its complexity theorems; we
reproduce them as *shapes*: run a scaling series, fit the growth of a
deterministic operation counter, and assert the fit against the stated
bound.  Polynomial bounds (Theorems 3/4, Corollary 1) are checked as
log-log slopes (the empirical degree); the coNP-hardness of Theorem 5
is checked as a log-linear growth *base* — an exact procedure must
exhibit the exponential blow-up, so the assertion is a lower bound.

Upper bounds cannot be confirmed by measurement, only not refuted;
``docs/BENCHMARKS.md`` discusses what a PASS does and does not mean.
"""

from __future__ import annotations

import math

from repro.bench.registry import Claim

#: Counter values of 0 would break the log fits; clamp to this floor.
_LOG_FLOOR = 1e-9


def fit_loglog(xs: list[float], ys: list[float]) -> float:
    """Least-squares slope of log(y) against log(x): the empirical
    polynomial degree of the growth."""
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, _LOG_FLOOR)) for y in ys]
    return _slope(lx, ly)


def fit_exponent_base(xs: list[float], ys: list[float]) -> float:
    """Least-squares base ``b`` of ``y = c * b^x`` (log(y) linear in
    x): the empirical per-step growth factor."""
    ly = [math.log(max(y, _LOG_FLOOR)) for y in ys]
    return math.exp(_slope(xs, ly))


def _slope(xs: list[float], ys: list[float]) -> float:
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a slope")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(xs, ys))
    den = sum((a - mean_x) ** 2 for a in xs)
    if den == 0.0:
        raise ValueError("degenerate series: all x values equal")
    return num / den


def evaluate_claim(claim: Claim, xs: list[float],
                   counter_ys: list[float],
                   time_ys: list[float]) -> dict:
    """Fit the claim's counter series (gating) and the wall-time series
    (advisory) and return the JSON-ready verdict record."""
    record: dict = {
        "statement": claim.statement,
        "bound": claim.bound,
        "counter": claim.counter,
        "kind": claim.kind,
    }
    if claim.kind == "polynomial":
        fitted = fit_loglog(xs, counter_ys)
        record["slope"] = fitted
        record["time_slope"] = fit_loglog(xs, time_ys)
        record["max_slope"] = claim.max_slope
        record["passed"] = fitted <= claim.max_slope
    else:
        fitted = fit_exponent_base(xs, counter_ys)
        record["base"] = fitted
        record["time_base"] = fit_exponent_base(xs, time_ys)
        record["min_base"] = claim.min_base
        record["passed"] = fitted >= claim.min_base
    return record
