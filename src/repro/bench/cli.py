"""The benchmark-observatory command line.

Reachable two ways (identical behaviour)::

    python -m repro.bench  run      [--quick] [--out FILE] [--only P]...
    python -m repro.bench  compare  BASELINE CURRENT [--tolerance PCT]
    python -m repro.bench  report   [FILE]

    xnf bench run / compare / report ...        # the main CLI

Exit codes follow the repository-wide contract: 0 success (claims
consistent / no regression), 1 negative answer (a claim failed or a
counter regressed beyond tolerance), 2 usage or report-file error
(bad flags, unreadable file, schema-version mismatch — a message, not
a traceback), 4 resource limit reached (a ``run`` limit such as
``--timeout`` or ``--max-steps`` tripped inside a measured workload).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.bench import compare as _compare
from repro.bench import runner as _runner
from repro.bench.schema import BenchReportError
from repro.errors import ResourceExhausted

EXIT_OK = 0
EXIT_NEGATIVE = 1
EXIT_USAGE = 2
EXIT_RESOURCE = 4

#: The default report path at the repo root: the persistent bench
#: trajectory (committed baselines live under ``benchmarks/baselines``).
DEFAULT_OUT = "BENCH_core.json"


def cmd_run(args: argparse.Namespace) -> int:
    if os.environ.get("PYTHONHASHSEED", "random") == "random":
        print("note: PYTHONHASHSEED is not pinned — operation "
              "counters that depend on set iteration order will vary "
              "between processes; baselines are recorded with "
              "PYTHONHASHSEED=0 (see docs/BENCHMARKS.md)",
              file=sys.stderr)
    limits = {"deadline": getattr(args, "timeout", None),
              "max_steps": getattr(args, "max_steps", None),
              "max_branches": getattr(args, "max_branches", None),
              "max_nodes": getattr(args, "max_nodes", None)}
    try:
        payload = _runner.run_suite(
            quick=args.quick, only=args.only or None, repeat=args.repeat,
            memory=not args.no_memory,
            progress=None if args.quiet else
            lambda line: print(line, file=sys.stderr),
            limits=limits)
    except ResourceExhausted as error:
        print(f"error: resource limit reached: {error}", file=sys.stderr)
        return EXIT_RESOURCE
    with open(args.out, "w") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")
    claims = _runner.claims_summary(payload)
    for name, claim in claims:
        print(_render_claim(name, claim))
    consistent = _runner.all_claims_pass(payload)
    suffix = ""
    if claims:
        suffix = ("; complexity claims "
                  + ("CONSISTENT" if consistent else "INCONSISTENT")
                  + " with the paper's bounds")
    print(f"wrote {args.out} "
          f"({len(payload['benchmarks'])} benchmark(s), "
          f"{payload['suite']} suite){suffix}")
    return EXIT_OK if consistent else EXIT_NEGATIVE


def cmd_compare(args: argparse.Namespace) -> int:
    try:
        baseline = _compare.load_report(args.baseline)
        current = _compare.load_report(args.current)
        findings = _compare.compare_payloads(
            baseline, current, tolerance=args.tolerance / 100.0)
    except BenchReportError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    print(_compare.render_findings(findings,
                                   tolerance=args.tolerance / 100.0),
          end="")
    return _compare.gate(findings)


def cmd_report(args: argparse.Namespace) -> int:
    try:
        payload = _compare.load_report(args.file)
    except BenchReportError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    print(render_report(payload), end="")
    return EXIT_OK


def _render_claim(name: str, claim: dict) -> str:
    verdict = "PASS" if claim["passed"] else "FAIL"
    if claim["kind"] == "polynomial":
        fit = (f"fitted degree {claim['slope']:.2f} "
               f"(time {claim['time_slope']:.2f}) "
               f"<= {claim['max_slope']:g}")
    else:
        fit = (f"fitted base {claim['base']:.2f} "
               f"(time {claim['time_base']:.2f}) "
               f">= {claim['min_base']:g}")
    return (f"{verdict}  {claim['statement']:<12} {claim['bound']}: "
            f"{fit}  [{claim['counter']} of {name}]")


def render_report(payload: dict) -> str:
    """A human-readable rendering of a report file."""
    lines = [f"== repro.bench report "
             f"(schema v{payload['schema_version']}, "
             f"{payload['suite']} suite, "
             f"best of {payload['repeat']}) =="]
    groups: dict[str, list[tuple[str, dict]]] = {}
    for name, entry in sorted(payload["benchmarks"].items()):
        groups.setdefault(entry.get("group", ""), []).append(
            (name, entry))
    for group in sorted(groups):
        lines.append(f"-- {group} --")
        for name, entry in groups[group]:
            for point in entry["points"]:
                label = ("" if point.get("value") is None
                         else f"  {entry.get('param', 'n')}="
                              f"{point['value']}")
                mem = point.get("mem_peak_kb")
                mem_text = (f"  peak={mem:8.1f} KiB"
                            if mem is not None else "")
                key_ops = sum(point["counters"].values())
                lines.append(
                    f"  {name:<34}{label:<14} "
                    f"time={point['time_s'] * 1e3:9.2f} ms"
                    f"{mem_text}  ops={key_ops}")
    claims = [(name, entry["claim"])
              for name, entry in sorted(payload["benchmarks"].items())
              if entry.get("claim")]
    if claims:
        lines.append("-- complexity claims --")
        for name, claim in claims:
            lines.append("  " + _render_claim(name, claim))
    return "\n".join(lines) + "\n"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the run/compare/report subcommands to ``parser`` (used
    both by ``python -m repro.bench`` and by the main CLI's ``bench``
    subcommand)."""
    sub = parser.add_subparsers(dest="bench_command", required=True)

    run = sub.add_parser(
        "run", help="run benchmarks and write the JSON report")
    run.add_argument("--quick", action="store_true",
                     help="the reduced CI series (same benchmarks, "
                     "fewer points)")
    run.add_argument("--out", metavar="FILE", default=DEFAULT_OUT,
                     help="report path (default: %(default)s)")
    run.add_argument("--only", metavar="PATTERN", action="append",
                     help="run only benchmarks whose name contains "
                     "PATTERN (repeatable)")
    run.add_argument("--repeat", type=int, metavar="N", default=None,
                     help="override per-benchmark repeat counts")
    run.add_argument("--no-memory", action="store_true",
                     help="skip the tracemalloc pass")
    run.add_argument("--quiet", action="store_true",
                     help="no per-benchmark progress on stderr")
    run.add_argument("--timeout", type=float, metavar="SECONDS",
                     help="wall-clock deadline per measured run; "
                     "exit 4 when reached")
    run.add_argument("--max-steps", type=int, metavar="N",
                     help="engine work-unit budget per measured run; "
                     "exit 4 when exhausted")
    run.add_argument("--max-branches", type=int, metavar="N",
                     help="branch budget per measured run; exit 4 "
                     "when exhausted")
    run.add_argument("--max-nodes", type=int, metavar="N",
                     help="node budget per measured run; exit 4 "
                     "when exhausted")
    run.set_defaults(bench_func=cmd_run)

    comp = sub.add_parser(
        "compare",
        help="gate CURRENT against BASELINE on operation counters")
    comp.add_argument("baseline", help="baseline report (e.g. "
                      "benchmarks/baselines/quick.json)")
    comp.add_argument("current", help="freshly generated report")
    comp.add_argument("--tolerance", type=float, metavar="PCT",
                      default=5.0,
                      help="allowed counter growth in percent "
                      "(default: %(default)s)")
    comp.set_defaults(bench_func=cmd_compare)

    rep = sub.add_parser("report",
                         help="pretty-print a report file")
    rep.add_argument("file", nargs="?", default=DEFAULT_OUT,
                     help="report path (default: %(default)s)")
    rep.set_defaults(bench_func=cmd_report)


def dispatch(args: argparse.Namespace) -> int:
    """Run the selected bench subcommand (shared with the main CLI)."""
    return args.bench_func(args)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="benchmark observatory: run, gate, and report")
    configure_parser(parser)
    args = parser.parse_args(argv)
    return dispatch(args)
