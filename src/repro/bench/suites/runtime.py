"""Batch-runtime overhead benchmarks, sharing the workload of the
``benchmarks/bench_runtime.py`` gate script.

The runtime layer's contract (docs/ROBUSTNESS.md) mirrors the
governor's: with no faults installed and the ensemble ``off``, running
tasks through :class:`~repro.runtime.batch.BatchRunner` must cost
within 1 % of executing the same specs directly — the per-task
isolation (span, budget, session) and outcome bookkeeping may not tax
the happy path.  Two entries record both sides of that contract in the
bench trajectory; a third tracks the (deliberately expensive)
``check``-mode ensemble so its cost stays visible, not gated.
"""

from __future__ import annotations

from repro.bench.registry import benchmark
from repro.runtime import corpus
from repro.runtime import manifest as mf
from repro.runtime.batch import BatchRunner
from repro.runtime.retry import RetryPolicy

#: Corpus shape for the overhead pair.  ``implies`` + ``check`` only:
#: normalization's round count varies per spec family and would
#: dominate the timing noise the 1 % gate has to see through.
TASKS = 30
SEED = 2024


def make_manifest(tasks: int = TASKS) -> mf.Manifest:
    return mf.from_payload(corpus.generate_manifest(
        tasks, seed=SEED, ops=("implies", "check")))


def make_runner(manifest: mf.Manifest, **kwargs) -> BatchRunner:
    kwargs.setdefault("policy", RetryPolicy(backoff_base_ms=0,
                                            seed=SEED))
    kwargs.setdefault("sleeper", lambda ms: None)
    return BatchRunner(manifest, **kwargs)


def make_direct(manifest: mf.Manifest):
    """The baseline: the same per-task work with none of the runtime
    layer's isolation or bookkeeping around it."""
    runner = make_runner(manifest)

    def run():
        for task in manifest.tasks:
            runner._execute(task)

    return run


@benchmark("runtime.direct", repeat=5)
def direct():
    return make_direct(make_manifest())


@benchmark("runtime.batch", repeat=5)
def batch():
    manifest = make_manifest()

    def run():
        summary = make_runner(manifest).run()
        assert summary["counts"]["lost"] == 0

    return run


@benchmark("runtime.ensemble", repeat=3)
def ensemble():
    manifest = make_manifest(10)

    def run():
        summary = make_runner(manifest, ensemble_mode="check").run()
        assert summary["ensemble_disagreements"] == 0

    return run
