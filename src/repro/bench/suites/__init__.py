"""The standard benchmark suite, grouped by subsystem.

Each submodule registers its benchmarks with the
:func:`repro.bench.benchmark` decorator at import time;
:func:`load_all` imports every group (idempotent).  The groups mirror
the original ad-hoc ``benchmarks/bench_*.py`` scripts they absorbed:

====================  =============================================
module                measures
====================  =============================================
``implication``       FD implication engines (Section 7 workloads)
``xnf``               the XNF test (Corollary 1) incl. ebXML
``normalize``         the Figure 4 decomposition algorithm
``tuples``            tree-tuple extraction / satisfaction (Sec. 3)
``pipeline``          end-to-end paper figures incl. migration
``mvd``               the Section 8 MVD extension
``guard``             resource-governor overhead (guarded vs not)
``runtime``           batch-runner overhead (direct vs batch) and
                      the ensemble-oracle trajectory
``complexity``        Theorems 3/4/5 + Corollary 1 as asserted
                      scaling claims with fitted slopes
====================  =============================================
"""

from __future__ import annotations

import importlib

_GROUPS = ("implication", "xnf", "normalize", "tuples", "pipeline",
           "mvd", "guard", "runtime", "complexity")


def load_all() -> None:
    """Import every suite module (registration is idempotent because
    Python caches module imports)."""
    for group in _GROUPS:
        importlib.import_module(f"repro.bench.suites.{group}")
