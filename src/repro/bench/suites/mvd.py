"""Section 8 MVD-extension benchmarks, from the former
``benchmarks/bench_mvd.py``: satisfaction scaling, tree-induced MVD
enumeration, and the XNF4-over-XNF ablation."""

from __future__ import annotations

from repro.bench.registry import benchmark
from repro.datasets.university import (
    synthetic_university_document,
    university_spec,
)
from repro.mvd.induced import tree_induced_mvds
from repro.mvd.model import MVD
from repro.mvd.satisfaction import satisfies_mvd
from repro.mvd.xnf4 import is_in_xnf4
from repro.tuples.extract import tuples_of
from repro.xnf.check import is_in_xnf


@benchmark("mvd.satisfaction_scaling", series=(5, 10, 20), quick=(5,),
           param="courses")
def satisfaction_scaling(courses):
    spec = university_spec()
    doc = synthetic_university_document(courses, 4, seed=21)
    tuples = tuples_of(doc, spec.dtd)
    mvd = MVD.parse(
        "courses.course ->> "
        "{courses.course.taken_by.student.@sno, "
        "courses.course.taken_by.student.name.S, "
        "courses.course.taken_by.student.grade.S}")
    return lambda: satisfies_mvd(doc, spec.dtd, mvd, tuples=tuples)


@benchmark("mvd.induced_enumeration")
def induced_enumeration():
    spec = university_spec()
    return lambda: list(tree_induced_mvds(spec.dtd))


@benchmark("mvd.xnf4_overhead")
def xnf4_overhead():
    """Ablation: the MVD pass on top of the plain XNF test."""
    spec = university_spec()
    mvds = list(tree_induced_mvds(spec.dtd))

    def both():
        return (is_in_xnf(spec.dtd, spec.sigma[:2]),
                is_in_xnf4(spec.dtd, spec.sigma[:2], mvds))

    return both
