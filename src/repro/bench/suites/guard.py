"""Resource-governor overhead benchmarks, sharing the workload of the
``benchmarks/bench_guard.py`` gate script.

Two entries run the same seeded implication workload — once with no
budget installed (the default fast path) and once under a generous,
never-tripping budget — so the bench trajectory records both sides of
the <1 % overhead contract of ``docs/ROBUSTNESS.md``.  The
``guard.*`` counters of the guarded run additionally pin the governor's
own bookkeeping.
"""

from __future__ import annotations

from repro import guard
from repro.bench.registry import benchmark
from repro.dtd.parser import parse_dtd
from repro.fd.implication import ImplicationEngine
from repro.fd.model import FD

#: Simple-DTD workload: closure-engine queries, the common fast case
#: where governor overhead would hurt the most.
DTD_TEXT = """
<!ELEMENT courses (course*)>
<!ELEMENT course (title, taken_by)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT taken_by (student*)>
<!ELEMENT student (grade)>
<!ELEMENT grade (#PCDATA)>
<!ATTLIST course cno CDATA #REQUIRED>
<!ATTLIST student sno CDATA #REQUIRED>
"""
SIGMA = [
    "courses.course.@cno -> courses.course",
    "courses.course.taken_by.student.@sno, courses.course "
    "-> courses.course.taken_by.student",
]
QUERIES = [
    "courses.course.@cno -> courses.course.title.S",
    "courses.course.@cno -> courses.course.taken_by.student.@sno",
    "courses.course.taken_by.student.@sno -> courses.course",
    "courses.course -> courses.course.title",
]


def make_workload(queries: int = 10):
    """Fresh engines each call: real decisions, not the cache."""
    dtd = parse_dtd(DTD_TEXT)
    sigma = [FD.parse(line) for line in SIGMA]
    parsed = [FD.parse(line) for line in QUERIES]

    def run():
        for _ in range(queries):
            engine = ImplicationEngine(dtd, sigma)
            for query in parsed:
                engine.implies(query)

    return run


@benchmark("guard.unguarded", repeat=5)
def unguarded():
    return make_workload()


@benchmark("guard.guarded", repeat=5)
def guarded():
    run = make_workload()

    def guarded_run():
        with guard.limits(max_steps=10**9, max_branches=10**9,
                          max_nodes=10**9, deadline=3600.0):
            run()

    return guarded_run
