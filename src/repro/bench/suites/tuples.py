"""Tree-tuple machinery benchmarks (Section 3), from the former
``benchmarks/bench_tuples.py``: extraction scaling (long and wide
documents), the Theorem 1 round-trip, and FD satisfaction."""

from __future__ import annotations

from repro.bench.registry import benchmark
from repro.datasets.university import (
    synthetic_university_document,
    university_spec,
)
from repro.fd.satisfaction import satisfies_all
from repro.tuples.build import trees_of
from repro.tuples.extract import tuples_of


@benchmark("tuples.extract_scaling", series=(5, 10, 20, 40),
           quick=(5, 10), param="courses")
def extract_scaling(courses):
    spec = university_spec()
    doc = synthetic_university_document(courses, 5, seed=1)
    return lambda: tuples_of(doc, spec.dtd)


@benchmark("tuples.wide_courses", series=(2, 4, 8, 16), quick=(2, 4),
           param="students")
def wide_courses(students):
    spec = university_spec()
    doc = synthetic_university_document(4, students, seed=2,
                                        student_pool=64)
    return lambda: tuples_of(doc, spec.dtd)


@benchmark("tuples.roundtrip", series=(5, 10, 20), quick=(5,),
           param="courses")
def roundtrip(courses):
    """tuples_D then trees_D: the Theorem 1 pipeline's second half."""
    spec = university_spec()
    doc = synthetic_university_document(courses, 4, seed=3)
    tuples = tuples_of(doc, spec.dtd)
    return lambda: trees_of(tuples, spec.dtd)


@benchmark("tuples.fd_satisfaction", series=(5, 10, 20, 40),
           quick=(5, 10), param="courses")
def fd_satisfaction(courses):
    """Example 4.1 at scale: checking FD1-FD3 on growing documents."""
    spec = university_spec()
    doc = synthetic_university_document(courses, 5, seed=4)
    tuples = tuples_of(doc, spec.dtd)
    return lambda: satisfies_all(doc, spec.dtd, spec.sigma,
                                 tuples=tuples)
