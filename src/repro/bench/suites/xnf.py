"""XNF-test benchmarks (Corollary 1), from the former
``benchmarks/bench_xnf.py``: the scaling series, the violation
listing, the real-world ebXML schema, and the already-normalized fast
path."""

from __future__ import annotations

from repro.bench.registry import benchmark
from repro.datasets.ebxml import ebxml_dtd
from repro.datasets.generators import scaled_university_spec
from repro.fd.model import FD
from repro.xnf.check import is_in_xnf, xnf_violations


@benchmark("xnf.check_scaling", series=(1, 2, 4, 8, 16),
           quick=(1, 2, 4), param="k")
def check_scaling(k):
    spec = scaled_university_spec(k)
    return lambda: is_in_xnf(spec.dtd, spec.sigma)


@benchmark("xnf.violation_listing", series=(1, 2, 4, 8), quick=(1, 2),
           param="k")
def violation_listing(k):
    spec = scaled_university_spec(k)
    return lambda: xnf_violations(spec.dtd, spec.sigma)


@benchmark("xnf.ebxml")
def ebxml():
    """Figure 5: the (simple) ebXML BPSS fragment with name-key FDs."""
    dtd = ebxml_dtd()
    sigma = [
        FD.parse("ProcessSpecification.Include.@name -> "
                 "ProcessSpecification.Include"),
        FD.parse("ProcessSpecification.BinaryCollaboration.@name -> "
                 "ProcessSpecification.BinaryCollaboration"),
        FD.parse(
            "ProcessSpecification.BinaryCollaboration ->"
            " ProcessSpecification.BinaryCollaboration."
            "InitiatingRole.@name"),
    ]
    return lambda: is_in_xnf(dtd, sigma)


@benchmark("xnf.after_normalization")
def after_normalization():
    """The normalized schema passes the test (and cheaply)."""
    spec = scaled_university_spec(4)
    result = spec.normalize()
    return lambda: is_in_xnf(result.dtd, result.sigma)
