"""Implication-engine benchmarks (Section 7 workloads).

Mirrors the series of the former ``benchmarks/bench_implication.py``:
the Theorem 3 simple-DTD scaling, the Theorem 4 bounded-disjunction
series, the Theorem 5 hard-disjunction series, and the auto-engine
anomaly-detection workload.  The *asserted* complexity claims over
these shapes live in :mod:`repro.bench.suites.complexity`; the entries
here record the raw trajectories.
"""

from __future__ import annotations

from repro.bench.registry import benchmark
from repro.datasets.generators import scaled_university_spec
from repro.dtd.model import DTD
from repro.fd.chase import chase_implies
from repro.fd.closure import closure_implies
from repro.fd.implication import ImplicationEngine
from repro.fd.model import FD
from repro.regex.ast import EPSILON, concat, star, sym, union


def disjunctive_dtd(hard_disjunctions: int, padding: int) -> DTD:
    """``(a_i | b_i)`` choices plus ``padding`` plain starred leaves."""
    productions = {}
    attributes = {}
    parts = []
    for index in range(hard_disjunctions):
        for name in (f"a{index}", f"b{index}"):
            productions[name] = EPSILON
            attributes[name] = frozenset({"@v"})
        parts.append(union([sym(f"a{index}"), sym(f"b{index}")]))
    for index in range(padding):
        name = f"p{index}"
        productions[name] = EPSILON
        attributes[name] = frozenset({"@w"})
        parts.append(star(sym(name)))
    productions["c"] = EPSILON
    attributes["c"] = frozenset({"@x"})
    parts.append(star(sym("c")))
    productions["r"] = concat(parts)
    return DTD(root="r", productions=productions, attributes=attributes)


def disjunctive_sigma(hard_disjunctions: int) -> list[FD]:
    sigma = []
    for index in range(hard_disjunctions):
        sigma.append(FD.parse(f"r.a{index} -> r.c.@x"))
        sigma.append(FD.parse(f"r.b{index} -> r.c.@x"))
    return sigma


@benchmark("implication.simple_all", series=(1, 2, 4, 8),
           quick=(1, 2), param="k")
def simple_all(k):
    """Theorem 3 shape: decide every Σ-FD of the k-fold schema with a
    fresh closure engine."""
    spec = scaled_university_spec(k)
    dtd, sigma = spec.dtd, spec.sigma

    def run():
        oracle = ImplicationEngine(dtd, sigma, engine="closure")
        return [oracle.implies(fd) for fd in sigma]

    return run


@benchmark("implication.simple_single", series=(1, 2, 4, 8),
           quick=(1, 2), param="k")
def simple_single(k):
    """One fixed query against a growing (D, Σ)."""
    spec = scaled_university_spec(k)
    dtd, sigma = spec.dtd, spec.sigma
    query = FD.parse(
        "uni.courses0.course0.@cno -> uni.courses0.course0.title0.S")
    return lambda: closure_implies(dtd, sigma, query)


@benchmark("implication.disjunctive_bounded", series=(0, 4, 8, 16),
           quick=(0, 4), param="padding")
def disjunctive_bounded(padding):
    """Theorem 4 shape: one disjunction (N_D = 2), growing |D|."""
    dtd = disjunctive_dtd(1, padding)
    sigma = disjunctive_sigma(1)
    query = FD.parse("r -> r.c.@x")
    return lambda: chase_implies(dtd, sigma, query)


@benchmark("implication.disjunctive_hard", series=(1, 2, 3, 4),
           quick=(1, 2), param="disjunctions", repeat=1)
def disjunctive_hard(hard):
    """Theorem 5 shape: N_D = 2^hard, exponential branch growth."""
    dtd = disjunctive_dtd(hard, 0)
    sigma = disjunctive_sigma(hard)
    query = FD.parse("r -> r.c.@x")
    return lambda: chase_implies(dtd, sigma, query)


@benchmark("implication.auto_engine", series=(1, 2, 4), quick=(1,),
           param="k")
def auto_engine(k):
    """The auto engine on the practical anomaly-detection workload."""
    spec = scaled_university_spec(k)
    return spec.xnf_violations
