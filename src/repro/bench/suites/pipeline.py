"""End-to-end pipeline benchmarks (the paper's figures as workloads),
from the former ``benchmarks/bench_examples.py``: the Figure 1 story,
the Example 1.2 DBLP redesign, migration scaling, and the
Proposition 8 lossless verification."""

from __future__ import annotations

from repro.bench.registry import benchmark
from repro.datasets.dblp import (
    DBLP_DOCUMENT,
    dblp_spec,
    synthetic_dblp_document,
)
from repro.datasets.university import (
    UNIVERSITY_DOCUMENT,
    synthetic_university_document,
    university_spec,
)
from repro.lossless.check import check_normalization_lossless
from repro.normalize.transforms import NewElementNames
from repro.xmltree.parser import parse_xml


@benchmark("pipeline.figure1")
def figure1():
    """Parse → check → detect → normalize → migrate, paper scale."""
    def run():
        spec = university_spec()
        doc = spec.parse_document(UNIVERSITY_DOCUMENT)
        result = spec.normalize(
            naming=lambda i, fd: NewElementNames(tau="info",
                                                 taus=["number"]))
        return result.migrate(doc).size()

    return run


@benchmark("pipeline.example12")
def example12():
    def run():
        spec = dblp_spec()
        doc = spec.parse_document(DBLP_DOCUMENT)
        result = spec.normalize()
        return result.migrate(doc).size()

    return run


@benchmark("pipeline.migration_scaling", series=(5, 10, 20),
           quick=(5,), param="courses")
def migration_scaling(courses):
    spec = university_spec()
    result = spec.normalize()
    doc = synthetic_university_document(courses, 4, seed=5)
    return lambda: result.migrate(doc)


@benchmark("pipeline.dblp_migration", series=(2, 4, 8), quick=(2,),
           param="confs")
def dblp_migration(confs):
    spec = dblp_spec()
    result = spec.normalize()
    doc = synthetic_dblp_document(confs, 3, 4, seed=6)
    return lambda: result.migrate(doc)


@benchmark("pipeline.lossless_check")
def lossless_check():
    """Proposition 8's instance check on the paper's document."""
    spec = university_spec()
    result = spec.normalize()
    doc = parse_xml(UNIVERSITY_DOCUMENT)
    return lambda: check_normalization_lossless(result, spec.dtd, doc)
