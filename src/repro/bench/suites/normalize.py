"""Decomposition-algorithm benchmarks (Figure 4 / Theorem 2), from the
former ``benchmarks/bench_normalize.py``: the paper's two running
redesigns, the scaled multi-anomaly workload, the Proposition 7
implication-free variant, and the progress-check ablation."""

from __future__ import annotations

from repro.bench.registry import benchmark
from repro.datasets.dblp import dblp_spec
from repro.datasets.generators import scaled_university_spec
from repro.datasets.university import university_spec
from repro.normalize.algorithm import normalize
from repro.normalize.simple_algorithm import normalize_simple


@benchmark("normalize.university")
def university():
    """Example 1.1: one *create* step."""
    spec = university_spec()
    return lambda: normalize(spec.dtd, spec.sigma)


@benchmark("normalize.dblp")
def dblp():
    """Example 1.2: one *move* step."""
    spec = dblp_spec()
    return lambda: normalize(spec.dtd, spec.sigma)


@benchmark("normalize.scaled", series=(1, 2, 4, 8), quick=(1, 2),
           param="k")
def scaled(k):
    """k independent anomalies: k steps."""
    spec = scaled_university_spec(k)
    return lambda: normalize(spec.dtd, spec.sigma)


@benchmark("normalize.simple_variant", series=(1, 2, 4), quick=(1,),
           param="k")
def simple_variant(k):
    """Proposition 7 ablation: step (3) only, closure-only reasoning."""
    spec = scaled_university_spec(k)
    return lambda: normalize_simple(spec.dtd, spec.sigma)


@benchmark("normalize.no_progress_checks", series=(1, 2, 4),
           quick=(1,), param="k")
def no_progress_checks(k):
    """Ablation: without Proposition 6's runtime progress assertion."""
    spec = scaled_university_spec(k)
    return lambda: normalize(spec.dtd, spec.sigma,
                             check_progress=False)
