"""The paper's complexity theorems as first-class scaling benchmarks.

Each entry carries a :class:`~repro.bench.registry.Claim`: the runner
fits the growth of a deterministic operation counter over the series
and records PASS/FAIL against the paper's bound in the report
(``repro bench report`` prints the verdict table):

* **Theorem 3** — implication over simple DTDs is polynomial (the
  paper proves quadratic per query); gated as a log-log degree of
  ``closure.iterations`` ≤ 3 over ``k`` (both ``|D|`` and ``|Σ|``
  grow with ``k``).
* **Corollary 1** — the XNF test over simple DTDs is cubic; degree of
  ``closure.iterations`` ≤ 3.5 (the extra .5 absorbs fit noise on
  small series).
* **Theorem 4** — disjunctive DTDs with bounded ``N_D`` stay
  polynomial: with a single binary disjunction the chase's explored
  branch count must stay *flat* while ``|D|`` grows — degree ≤ 1.
* **Theorem 5** — unbounded disjunction is coNP-complete: the exact
  chase must exhibit exponential branch growth, gated as a fitted
  growth base of ``chase.branches.explored`` ≥ 1.5 per added
  disjunction (the ideal is 2).

Upper bounds are *not refuted* by a PASS, not proven; Theorem 5's
lower-bound shape is the reproducible half of a hardness theorem.
"""

from __future__ import annotations

from repro.bench.registry import Claim, benchmark
from repro.bench.suites.implication import (
    disjunctive_dtd,
    disjunctive_sigma,
)
from repro.datasets.generators import scaled_university_spec
from repro.fd.chase import chase_implies
from repro.fd.implication import ImplicationEngine
from repro.fd.model import FD
from repro.xnf.check import is_in_xnf


@benchmark("complexity.theorem3", series=(1, 2, 4, 8, 16),
           quick=(1, 2, 4), param="k",
           claim=Claim(statement="Theorem 3",
                       bound="polynomial (quadratic per query)",
                       counter="closure.iterations",
                       kind="polynomial", max_slope=3.0))
def theorem3(k):
    """Implication over simple DTDs: all 3k Σ-FDs, closure engine."""
    spec = scaled_university_spec(k)
    dtd, sigma = spec.dtd, spec.sigma

    def run():
        oracle = ImplicationEngine(dtd, sigma, engine="closure")
        for fd in sigma:
            oracle.implies(fd)

    return run


@benchmark("complexity.corollary1", series=(1, 2, 4, 8, 16),
           quick=(1, 2, 4), param="k",
           claim=Claim(statement="Corollary 1", bound="cubic",
                       counter="closure.iterations",
                       kind="polynomial", max_slope=3.5))
def corollary1(k):
    """The XNF test over the same growing simple schemas."""
    spec = scaled_university_spec(k)
    return lambda: is_in_xnf(spec.dtd, spec.sigma)


@benchmark("complexity.theorem4", series=(0, 4, 8, 16, 32),
           quick=(0, 4, 8), param="padding",
           x=lambda padding: float(padding + 2),
           claim=Claim(statement="Theorem 4",
                       bound="polynomial (N_D <= k log |D|)",
                       counter="chase.branches.explored",
                       kind="polynomial", max_slope=1.0))
def theorem4(padding):
    """One bounded disjunction, growing |D|: the branch count must
    stay flat (the single disjunction is a constant factor)."""
    dtd = disjunctive_dtd(1, padding)
    sigma = disjunctive_sigma(1)
    query = FD.parse("r -> r.c.@x")
    return lambda: chase_implies(dtd, sigma, query)


@benchmark("complexity.theorem5", series=(1, 2, 3, 4, 5, 6),
           quick=(1, 2, 3), param="disjunctions", repeat=1,
           claim=Claim(statement="Theorem 5",
                       bound="exponential (~2x per disjunction)",
                       counter="chase.branches.explored",
                       kind="exponential", min_base=1.5))
def theorem5(disjunctions):
    """Independent binary disjunctions: N_D = 2^m, exact chase."""
    dtd = disjunctive_dtd(disjunctions, 0)
    sigma = disjunctive_sigma(disjunctions)
    query = FD.parse("r -> r.c.@x")
    return lambda: chase_implies(dtd, sigma, query)
