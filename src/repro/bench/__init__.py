"""The benchmark observatory (see ``docs/BENCHMARKS.md``).

A declarative registry of benchmarks over the PR-1 observability
counters and PR-2 guard stats:

* :mod:`repro.bench.registry` — the :func:`benchmark` decorator and
  :class:`Claim` (a paper complexity bound asserted on fitted growth);
* :mod:`repro.bench.suites` — the standard suite, absorbing the old
  ad-hoc ``benchmarks/bench_*.py`` scripts;
* :mod:`repro.bench.runner` — isolated execution: best-of-N wall
  time, deterministic operation-counter snapshots, tracemalloc peak;
* :mod:`repro.bench.schema` — the versioned ``BENCH_core.json`` shape;
* :mod:`repro.bench.compare` — the counter-based regression gate
  (wall time advisory-only);
* :mod:`repro.bench.slopes` — log-log / log-linear growth fitting;
* :mod:`repro.bench.cli` — ``python -m repro.bench`` and the main
  CLI's ``bench`` subcommand.

Usage::

    from repro.bench import benchmark

    @benchmark("closure.my_workload", series=(1, 2, 4), param="k")
    def my_workload(k):
        spec = build_spec(k)          # setup: not measured
        return lambda: spec.xnf_violations()   # body: measured
"""

from __future__ import annotations

from repro.bench.registry import (
    Benchmark,
    Claim,
    all_benchmarks,
    benchmark,
    get,
    load_default_suites,
    select,
)
from repro.bench.runner import isolate, run_benchmark, run_suite
from repro.bench.schema import (
    SCHEMA_VERSION,
    BenchReportError,
    validate,
)
from repro.bench.compare import compare_payloads, gate, load_report

__all__ = [
    "Benchmark", "Claim", "benchmark", "all_benchmarks", "get",
    "select", "load_default_suites",
    "isolate", "run_benchmark", "run_suite",
    "SCHEMA_VERSION", "BenchReportError", "validate",
    "compare_payloads", "gate", "load_report",
]
