"""``python -m repro.bench``: the benchmark observatory CLI."""

import sys

from repro.bench.cli import main

sys.exit(main())
