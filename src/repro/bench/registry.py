"""The declarative benchmark registry behind :mod:`repro.bench`.

A benchmark is a *workload factory*: a function that performs setup
(parsing, document synthesis, spec construction — excluded from the
measurement) and returns a zero-argument callable, the measured body::

    from repro.bench import benchmark

    @benchmark("tuples.extract", series=(5, 10, 20, 40), quick=(5, 10),
               param="courses", group="tuples")
    def extract(courses):
        spec = university_spec()
        doc = synthetic_university_document(courses, 5, seed=1)
        return lambda: tuples_of(doc, spec.dtd)

The runner (:mod:`repro.bench.runner`) calls the factory once per
series point and measures the returned body: best-of-N wall time, the
deterministic operation-counter snapshot from :mod:`repro.obs`, and
``tracemalloc`` peak memory.

Scaling benchmarks that reproduce one of the paper's complexity
theorems additionally carry a :class:`Claim`: the counter series to
fit, the fit family (log-log slope for polynomial bounds, log-linear
base for exponential ones), and the threshold the fit is asserted
against.  The runner records the fit and its PASS/FAIL verdict in the
report (:mod:`repro.bench.slopes` does the fitting).

The default suite lives in :mod:`repro.bench.suites`; the thin
``benchmarks/bench_*.py`` entry points re-export it group by group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import ReproError

#: A workload factory: setup in the call, measurement in the returned
#: zero-argument body.
Factory = Callable[..., Callable[[], object]]


@dataclass(frozen=True)
class Claim:
    """A complexity bound from the paper, asserted against a fitted
    growth curve of a deterministic operation counter.

    ``kind`` selects the fit family: ``"polynomial"`` fits a log-log
    slope (the degree) and passes when it stays at or below
    ``max_slope``; ``"exponential"`` fits the per-step growth base of
    ``y = c * b^x`` and passes when it reaches at least ``min_base``
    (a hardness theorem is reproduced by exhibiting the blow-up, not
    by avoiding it).
    """

    statement: str               # e.g. "Theorem 3"
    bound: str                   # prose: "polynomial (quadratic/query)"
    counter: str                 # the gating operation counter
    kind: str = "polynomial"     # "polynomial" | "exponential"
    max_slope: float | None = None
    min_base: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("polynomial", "exponential"):
            raise ValueError(f"unknown claim kind {self.kind!r}")
        if self.kind == "polynomial" and self.max_slope is None:
            raise ValueError("polynomial claims need max_slope")
        if self.kind == "exponential" and self.min_base is None:
            raise ValueError("exponential claims need min_base")


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark: a named workload over a series."""

    name: str
    factory: Factory
    series: tuple
    quick: tuple
    param: str = "n"
    group: str = ""
    repeat: int = 3
    claim: Claim | None = None
    #: Maps a series value to the x-coordinate used for claim fitting
    #: (e.g. Theorem 4 grows ``|D|`` as ``padding + 2``).
    x: Callable[[object], float] = field(default=float)

    def points(self, quick: bool) -> tuple:
        return self.quick if quick else self.series


_registry: dict[str, Benchmark] = {}


def benchmark(name: str, *, series: Iterable | None = None,
              quick: Iterable | None = None, param: str = "n",
              group: str | None = None, repeat: int = 3,
              claim: Claim | None = None,
              x: Callable[[object], float] = float,
              ) -> Callable[[Factory], Factory]:
    """Register a workload factory under ``name`` (see module docs).

    ``series`` is the full parameter sweep (``None`` for a single
    unparameterized point), ``quick`` the CI subset (defaults to the
    first series point), ``group`` the report section (defaults to the
    dotted prefix of ``name``).
    """
    full = tuple(series) if series is not None else (None,)
    fast = tuple(quick) if quick is not None else full[:1]
    if not set(fast) <= set(full):
        raise ValueError(
            f"benchmark {name!r}: quick points {fast!r} must be a "
            f"subset of the series {full!r}")
    if repeat < 1:
        raise ValueError(f"benchmark {name!r}: repeat must be >= 1")

    def register(factory: Factory) -> Factory:
        if name in _registry:
            raise ValueError(f"benchmark {name!r} registered twice")
        _registry[name] = Benchmark(
            name=name, factory=factory, series=full, quick=fast,
            param=param, group=group or name.split(".", 1)[0],
            repeat=repeat, claim=claim, x=x)
        return factory

    return register


def all_benchmarks() -> list[Benchmark]:
    """Every registered benchmark, name-sorted (a stable run order)."""
    return [_registry[name] for name in sorted(_registry)]


def get(name: str) -> Benchmark:
    try:
        return _registry[name]
    except KeyError:
        raise ReproError(f"no benchmark named {name!r}; known: "
                         f"{', '.join(sorted(_registry)) or '(none)'}")


def select(patterns: Iterable[str] | None) -> list[Benchmark]:
    """Benchmarks whose name contains any of ``patterns`` (all when
    ``patterns`` is falsy)."""
    registered = all_benchmarks()
    if not patterns:
        return registered
    chosen = [b for b in registered
              if any(pattern in b.name for pattern in patterns)]
    if not chosen:
        raise ReproError(
            f"no benchmark matches {', '.join(patterns)!s}; known: "
            f"{', '.join(sorted(_registry))}")
    return chosen


def clear() -> None:
    """Empty the registry (test isolation only)."""
    _registry.clear()


def load_default_suites() -> None:
    """Import :mod:`repro.bench.suites`, populating the registry with
    the standard suite (idempotent: registration happens at import)."""
    from repro.bench import suites
    suites.load_all()
