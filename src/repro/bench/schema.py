"""The versioned on-disk format of benchmark reports.

``BENCH_core.json`` (and every file the comparator accepts) is a
single JSON object::

    {
      "schema": "repro.bench",
      "schema_version": 1,
      "suite": "quick" | "full",
      "repeat": 3,
      "benchmarks": {
        "<name>": {
          "group": "tuples",
          "param": "courses",
          "points": [
            {"value": 5,
             "time_s": 0.0042,          # best-of-<repeat>, advisory
             "mem_peak_kb": 312.5,      # tracemalloc peak, advisory
             "counters": {"closure.iterations": 118, ...}},  # gating
            ...
          ],
          "claim": null | {
            "statement": "Theorem 3", "bound": "...",
            "counter": "closure.iterations",
            "kind": "polynomial" | "exponential",
            "slope"/"base": 1.42, "time_slope"/"time_base": 1.38,
            "max_slope"/"min_base": 3.0, "passed": true
          }
        }
      }
    }

Only ``counters`` (and claim verdicts) gate comparisons — they are
deterministic operation counts, reproducible across machines.  Wall
time and peak memory are recorded for trend reading but never fail a
gate (``docs/BENCHMARKS.md`` has the rationale).

The version number covers the whole shape: any structural change bumps
:data:`SCHEMA_VERSION`, and the comparator refuses files whose version
it does not know rather than guessing.  Versions listed in
:data:`COMPAT_VERSIONS` are read-compatible: v2 (the PR-6 obs-snapshot
vintage — per-summary ``unit`` fields upstream of the point counters)
changed nothing in the report shape itself, so v1 baselines still
validate and gate against v2 reports.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ReproError

SCHEMA_NAME = "repro.bench"
SCHEMA_VERSION = 2

#: Versions :func:`validate` accepts.  Reports are only ever *written*
#: at :data:`SCHEMA_VERSION`; older listed versions remain readable so
#: committed baselines survive compatible bumps.
COMPAT_VERSIONS = frozenset({1, 2})


class BenchReportError(ReproError):
    """A benchmark report file is malformed, unreadable, or from an
    incompatible schema version."""


def envelope(*, suite: str, repeat: int) -> dict[str, Any]:
    """A fresh, empty report payload."""
    return {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "repeat": repeat,
        "benchmarks": {},
    }


def validate(payload: Any, *, source: str = "report") -> dict[str, Any]:
    """Check ``payload`` against the current schema; returns it.

    Raises :class:`BenchReportError` with an actionable message on any
    mismatch — the comparator turns these into exit code 2, never a
    traceback.
    """
    if not isinstance(payload, dict):
        raise BenchReportError(
            f"{source}: expected a JSON object, got "
            f"{type(payload).__name__}")
    if payload.get("schema") != SCHEMA_NAME:
        raise BenchReportError(
            f"{source}: not a {SCHEMA_NAME} report "
            f"(schema={payload.get('schema')!r})")
    version = payload.get("schema_version")
    if version not in COMPAT_VERSIONS:
        raise BenchReportError(
            f"{source}: schema version {version!r} is not one this "
            f"tool reads ({sorted(COMPAT_VERSIONS)}); regenerate the "
            f"file with `python -m repro.bench run` from the same "
            f"checkout")
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict):
        raise BenchReportError(
            f"{source}: missing or malformed 'benchmarks' mapping")
    for name, entry in benchmarks.items():
        if not isinstance(entry, dict) or "points" not in entry:
            raise BenchReportError(
                f"{source}: benchmark {name!r} has no 'points'")
        for point in entry["points"]:
            if not isinstance(point, dict) or "counters" not in point:
                raise BenchReportError(
                    f"{source}: benchmark {name!r} has a point "
                    f"without 'counters'")
    return payload
