"""Comparing two benchmark reports: the regression gate.

The gate is **counter-based**: operation counters are deterministic
and machine-independent, so any counter that grows beyond the
tolerance is a real algorithmic regression, not scheduler noise.  Wall
time and peak memory are *advisory* — they are reported when they move
beyond the tolerance but never fail the gate, because a CI runner's
timings say more about the runner than about the code.

Findings come in three severities:

* ``regression`` — a gating violation (counter growth, a complexity
  claim flipping to FAIL, a series point disappearing);
* ``advisory``  — wall time / memory movement, for human eyes;
* ``note``      — benign drift (improvements, new benchmarks).

:func:`compare_payloads` returns the findings; :func:`gate` reduces
them to the exit code contract (0 pass, 1 regression).  Structural
problems — unreadable files, schema version mismatch, a baseline
benchmark missing from the current report — raise
:class:`~repro.bench.schema.BenchReportError`, which the CLI maps to
exit code 2.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.bench.schema import BenchReportError, validate


@dataclass(frozen=True)
class Finding:
    severity: str        # "regression" | "advisory" | "note"
    benchmark: str
    detail: str

    def render(self) -> str:
        return f"[{self.severity}] {self.benchmark}: {self.detail}"


def load_report(path: str | Path) -> dict[str, Any]:
    """Read and schema-validate a report file."""
    source = str(path)
    try:
        text = Path(path).read_text()
    except OSError as error:
        raise BenchReportError(f"cannot read {source}: {error}")
    try:
        payload = json.loads(text)
    except ValueError as error:
        raise BenchReportError(f"{source}: not valid JSON ({error})")
    return validate(payload, source=source)


def _point_label(entry: dict, point: dict) -> str:
    if point.get("value") is None:
        return ""
    return f" [{entry.get('param', 'n')}={point['value']}]"


def _index_points(entry: dict) -> dict:
    return {json.dumps(p.get("value")): p for p in entry["points"]}


def compare_payloads(baseline: dict, current: dict, *,
                     tolerance: float = 0.05) -> list[Finding]:
    """Diff two validated payloads; see the module docstring.

    ``tolerance`` is the allowed relative growth (0.05 = +5 %).
    """
    findings: list[Finding] = []
    base_benchmarks = baseline["benchmarks"]
    curr_benchmarks = current["benchmarks"]

    missing = sorted(set(base_benchmarks) - set(curr_benchmarks))
    if missing:
        raise BenchReportError(
            "current report is missing baseline benchmark(s): "
            + ", ".join(missing)
            + " — run the same suite (--quick vs full) as the "
            "baseline, or refresh the baseline")
    for name in sorted(set(curr_benchmarks) - set(base_benchmarks)):
        findings.append(Finding("note", name,
                                "new benchmark (no baseline yet)"))

    for name in sorted(base_benchmarks):
        base_entry = base_benchmarks[name]
        curr_entry = curr_benchmarks[name]
        curr_points = _index_points(curr_entry)
        for base_point in base_entry["points"]:
            key = json.dumps(base_point.get("value"))
            label = _point_label(base_entry, base_point)
            curr_point = curr_points.get(key)
            if curr_point is None:
                findings.append(Finding(
                    "regression", name,
                    f"series point{label} disappeared"))
                continue
            findings.extend(_compare_counters(
                name, label, base_point, curr_point, tolerance))
            findings.extend(_compare_advisory(
                name, label, base_point, curr_point, tolerance))
        findings.extend(_compare_claims(name, base_entry, curr_entry))
    return findings


def _compare_counters(name: str, label: str, base: dict, curr: dict,
                      tolerance: float) -> list[Finding]:
    findings = []
    counters = sorted(set(base["counters"]) | set(curr["counters"]))
    for counter in counters:
        before = base["counters"].get(counter, 0)
        after = curr["counters"].get(counter, 0)
        if after > before and after - before > before * tolerance:
            findings.append(Finding(
                "regression", name,
                f"counter {counter}{label} grew {before} -> {after} "
                f"(+{_pct(after, before)}, tolerance "
                f"{tolerance:.0%})"))
        elif before > after and before - after > after * tolerance:
            findings.append(Finding(
                "note", name,
                f"counter {counter}{label} improved "
                f"{before} -> {after}"))
    return findings


def _compare_advisory(name: str, label: str, base: dict, curr: dict,
                      tolerance: float) -> list[Finding]:
    findings = []
    for field, unit, scale in (("time_s", "ms", 1e3),
                               ("mem_peak_kb", "KiB", 1.0)):
        before = base.get(field)
        after = curr.get(field)
        if before is None or after is None or before <= 0:
            continue
        if after > before * (1 + tolerance):
            findings.append(Finding(
                "advisory", name,
                f"{field}{label} {before * scale:.2f} -> "
                f"{after * scale:.2f} {unit} "
                f"(+{_pct(after, before)}; advisory only, never "
                f"gated)"))
    return findings


def _compare_claims(name: str, base_entry: dict,
                    curr_entry: dict) -> list[Finding]:
    base_claim = base_entry.get("claim")
    curr_claim = curr_entry.get("claim")
    if not base_claim or not curr_claim:
        return []
    if base_claim.get("passed") and not curr_claim.get("passed"):
        fitted = curr_claim.get("slope", curr_claim.get("base"))
        return [Finding(
            "regression", name,
            f"complexity claim {curr_claim['statement']} now FAILS "
            f"(fitted {fitted:.2f} vs bound {curr_claim['bound']})")]
    if not base_claim.get("passed") and curr_claim.get("passed"):
        return [Finding("note", name,
                        f"complexity claim "
                        f"{curr_claim['statement']} now passes")]
    return []


def _pct(after: float, before: float) -> str:
    if before == 0:
        return "new"  # counter appeared from zero: no base to scale by
    return f"{(after - before) / before:.1%}"


def gate(findings: list[Finding]) -> int:
    """0 when no finding is a regression, 1 otherwise."""
    return 1 if any(f.severity == "regression" for f in findings) else 0


def render_findings(findings: list[Finding], *,
                    tolerance: float) -> str:
    """Human-readable comparison summary."""
    lines = []
    by_severity = {"regression": 0, "advisory": 0, "note": 0}
    for finding in findings:
        by_severity[finding.severity] += 1
        lines.append(finding.render())
    verdict = ("FAIL: counter regression(s) beyond tolerance"
               if by_severity["regression"]
               else "OK: no counter regressions")
    lines.append(f"{verdict} (tolerance {tolerance:.0%}; "
                 f"{by_severity['regression']} regression(s), "
                 f"{by_severity['advisory']} advisory, "
                 f"{by_severity['note']} note(s))")
    return "\n".join(lines) + "\n"
