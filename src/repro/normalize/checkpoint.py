"""Versioned checkpoints making the Figure 4 fixpoint resumable.

The decomposition algorithm is an iterative fixpoint over ``(D, Σ)``:
each round applies one schema transformation and both the DTD and the
FD set after round *k* are a complete description of the remaining
work.  A :class:`NormalizationCheckpoint` snapshots exactly that state
— the current DTD (serialized), the current Σ (one FD string per
entry, order preserved), and the log of applied steps — so a run
killed by a guard deadline, an injected fault, or a plain crash can be
restarted from the last applied transform instead of from scratch.

Determinism is what makes this sound: given the same ``(D, Σ)`` the
algorithm picks the same transform, and the serialized DTD/FD forms
round-trip exactly (``tests/test_normalize_checkpoint.py`` pins that a
run interrupted at *every* checkpoint boundary and resumed produces
output identical to the uninterrupted run).

The JSON layout is schema-versioned (:data:`CHECKPOINT_VERSION`) and
fingerprinted against the *original* ``(D, Σ)``; loading a checkpoint
with the wrong version or resuming against a different specification
raises :class:`~repro.errors.CheckpointError` (the CLI maps it to exit
code 2).  File writes are atomic (temp file + ``os.replace``) so a
crash mid-save never leaves a torn checkpoint behind.

When :mod:`repro.obs` is enabled, saving increments
``checkpoint.saved`` and restoring ``checkpoint.restored``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path as FilePath
from typing import Iterable, Sequence

from repro.errors import CheckpointError, ReproError
from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.dtd.serializer import serialize_dtd
from repro.fd.model import FD
from repro.faults import plan as _faults
from repro.obs import metrics as _obs

_SITE_SAVE = _faults.register_site(
    "checkpoint.save", "normalize",
    "between writing a checkpoint's temp file and renaming it into "
    "place (the atomic-save crash window)")

#: Bump on any incompatible change to the JSON layout.
CHECKPOINT_VERSION = 1

#: The ``schema`` discriminator stored in every checkpoint file.
CHECKPOINT_SCHEMA = "repro.normalize.checkpoint"


def fingerprint(dtd: DTD, sigma: Iterable[FD]) -> str:
    """A stable digest of the *original* ``(D, Σ)`` a run started from.

    Serialization-based, so it is insensitive to how the spec was
    spelled (whitespace, comments, FD path order) but pins the actual
    schema and dependency set.
    """
    digest = hashlib.sha256()
    digest.update(serialize_dtd(dtd).encode())
    digest.update(b"\x00")
    digest.update("\n".join(sorted(str(fd) for fd in sigma)).encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class RecordedStep:
    """A transform applied before a resume: kind and description only.

    The live migrator closure of a
    :class:`~repro.normalize.transforms.TransformStep` cannot be
    serialized, so a resumed result can describe the pre-checkpoint
    steps but not migrate documents across them — re-run the
    normalization uninterrupted when instance migration is needed.
    """

    kind: str
    description: str

    def migrate(self, tree):
        raise CheckpointError(
            "cannot migrate a document across a resumed normalization: "
            f"step {self.description!r} was applied before the "
            "checkpoint and its migrator is not serializable; re-run "
            "the normalization uninterrupted to migrate instances")


@dataclass
class NormalizationCheckpoint:
    """The state of a normalization run after ``rounds_completed``
    applied transforms."""

    fingerprint: str
    dtd_text: str
    sigma: list[str]
    steps: list[dict[str, str]] = field(default_factory=list)
    version: int = CHECKPOINT_VERSION

    @property
    def rounds_completed(self) -> int:
        return len(self.steps)

    # -- construction ------------------------------------------------------

    @classmethod
    def capture(cls, original_fingerprint: str, dtd: DTD,
                sigma: Sequence[FD],
                steps: Sequence) -> "NormalizationCheckpoint":
        """Snapshot the live algorithm state (order-preserving)."""
        return cls(
            fingerprint=original_fingerprint,
            dtd_text=serialize_dtd(dtd),
            sigma=[str(fd) for fd in sigma],
            steps=[{"kind": step.kind, "description": step.description}
                   for step in steps])

    # -- JSON --------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"schema": CHECKPOINT_SCHEMA, "version": self.version,
             "fingerprint": self.fingerprint, "dtd": self.dtd_text,
             "sigma": self.sigma, "steps": self.steps},
            indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "NormalizationCheckpoint":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"checkpoint is not valid JSON: {error}") from error
        if not isinstance(payload, dict) \
                or payload.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                "not a normalization checkpoint (missing "
                f"schema={CHECKPOINT_SCHEMA!r} discriminator)")
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint schema version {version!r} is not "
                f"supported (expected {CHECKPOINT_VERSION}); re-run "
                "the normalization from scratch")
        try:
            steps = [{"kind": str(step["kind"]),
                      "description": str(step["description"])}
                     for step in payload["steps"]]
            return cls(fingerprint=str(payload["fingerprint"]),
                       dtd_text=str(payload["dtd"]),
                       sigma=[str(fd) for fd in payload["sigma"]],
                       steps=steps, version=version)
        except (KeyError, TypeError) as error:
            raise CheckpointError(
                f"checkpoint is missing required fields: {error}") \
                from error

    # -- restoring ---------------------------------------------------------

    def restore(self) -> tuple[DTD, list[FD], list[RecordedStep]]:
        """Rebuild the algorithm state this checkpoint describes."""
        try:
            dtd = parse_dtd(self.dtd_text)
            sigma = [FD.parse(line) for line in self.sigma]
        except ReproError as error:
            raise CheckpointError(
                f"checkpoint state does not parse: {error}") from error
        recorded = [RecordedStep(kind=step["kind"],
                                 description=step["description"])
                    for step in self.steps]
        if _obs.enabled:
            _obs.inc("checkpoint.restored")
        return dtd, sigma, recorded

    def matches(self, original_fingerprint: str) -> None:
        """Raise unless this checkpoint belongs to that original spec."""
        if self.fingerprint != original_fingerprint:
            raise CheckpointError(
                "checkpoint was recorded for a different (D, Sigma) "
                f"(fingerprint {self.fingerprint[:12]}… != "
                f"{original_fingerprint[:12]}…); refusing to resume")


# ---------------------------------------------------------------------------
# File I/O
# ---------------------------------------------------------------------------

def save(path: str | FilePath,
         checkpoint: NormalizationCheckpoint) -> None:
    """Atomically write ``checkpoint`` to ``path`` (temp + rename)."""
    path = FilePath(path)
    handle, temp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(handle, "w") as stream:
            stream.write(checkpoint.to_json())
        # The crash window of the atomic-save protocol: the temp file
        # is fully written but not yet renamed into place.  A failure
        # here must reach the cleanup below, or every crashed save
        # leaks one ``*.tmp`` next to the checkpoint.
        if _faults.active:
            _faults.fire(_SITE_SAVE)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    if _obs.enabled:
        _obs.inc("checkpoint.saved")


def load(path: str | FilePath) -> NormalizationCheckpoint:
    """Read and validate a checkpoint file."""
    try:
        text = FilePath(path).read_text()
    except OSError as error:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {error}") from error
    return NormalizationCheckpoint.from_json(text)
