"""The implication-free decomposition variant (Proposition 7).

When testing FD implication is infeasible (e.g. arbitrary disjunctive
DTDs, where it is coNP-complete — Theorem 5), one can still reach XNF:
apply only step (3) of the algorithm, to FDs ``S -> p.@l`` taken
directly from Σ, and transfer only the FDs of Σ itself (instead of the
closure ``(D, Σ)+``) across each transformation.  The result is in XNF
but may be suboptimal — e.g. the DBLP example gets a new element type
where moving an attribute would have sufficed.

Only DTD-structural reasoning (implication under an empty Σ) is used,
which needs no Σ-implication test.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import NormalizationError
from repro.dtd.model import DTD
from repro.dtd.paths import Path
from repro.fd.closure import closure_implies
from repro.fd.model import FD
from repro.normalize.algorithm import (
    DEFAULT_MAX_STEPS,
    NormalizationResult,
)
from repro.normalize.transforms import NewElementNames, create_element_type


class _SyntacticOracle:
    """A cheap, implication-light oracle for the Proposition 7 variant.

    Both the FD transfer and the stopping test use Σ-membership
    extended by the sound pair-closure (never the worst-case
    exponential chase): after a step, the rule-3 key FDs resolve the
    rewritten anomaly only through a closure derivation, so pure
    Σ-membership alone would loop.  The variant thus stays
    implication-free in the sense that matters — it avoids the
    coNP-hard exact test of Theorem 5 — while being slightly stronger
    than the paper's minimal formulation.
    """

    def __init__(self, dtd: DTD, sigma: list[FD]) -> None:
        self.dtd = dtd
        self.sigma = sigma
        self._set = {single for fd in sigma for single in fd.expand()}

    def implies(self, fd: FD) -> bool:
        if all(FD(fd.lhs, frozenset({rhs})) in self._set
               for rhs in fd.rhs):
            return True
        return closure_implies(self.dtd, self.sigma, fd)

    def is_trivial(self, fd: FD) -> bool:
        return closure_implies(self.dtd, [], fd)


def normalize_simple(dtd: DTD, sigma: Iterable[FD], *,
                     naming: Callable[[int, FD], NewElementNames]
                     | None = None,
                     max_steps: int = DEFAULT_MAX_STEPS,
                     ) -> NormalizationResult:
    """Proposition 7: reach XNF using step (3) only, without Σ-implication."""
    current_dtd = dtd
    current_sigma = [fd.validate(dtd) for fd in sigma]
    steps = []

    for _round in range(max_steps):
        oracle = _SyntacticOracle(current_dtd, current_sigma)
        fd = _pick_anomalous(oracle)
        if fd is None:
            return NormalizationResult(current_dtd, current_sigma, steps)
        if not fd.lhs_element_paths():
            fd = FD(fd.lhs | {Path.root(current_dtd.root)}, fd.rhs)
        names = naming(len(steps), fd) if naming is not None else None
        step = create_element_type(
            current_dtd, current_sigma, fd, names=names, engine=oracle)
        steps.append(step)
        current_dtd = step.dtd
        current_sigma = step.sigma
    raise NormalizationError(
        f"normalization did not converge within {max_steps} steps")


def _pick_anomalous(oracle: _SyntacticOracle) -> FD | None:
    for fd in oracle.sigma:
        for single in fd.expand():
            rhs = single.single_rhs
            if rhs.is_element:
                continue
            if oracle.is_trivial(single):
                continue
            node_fd = FD(single.lhs, frozenset({rhs.parent}))
            if not oracle.implies(node_fd):
                return single
    return None
