"""The two schema transformations of Section 6, with instance migration.

Both transformations return a :class:`TransformStep` bundling the new
DTD, the transformed FD set, and a ``migrate`` function carrying any
conforming document across the schema change — the ingredient that
makes the losslessness of the decomposition (Proposition 8) checkable
on data.

The paper works with attribute paths after noting that a text path
``p.S`` can always be coded as an attribute.  We instead support text
values natively: when the moved value is ``p.S`` (the text of an
element whose content is ``#PCDATA``), "removing the attribute"
becomes removing that element from its parent's production, and
"attaching the value to tau" becomes making the element a child of
``tau`` — which is exactly how Example 1.1(b) is written in the paper
(``info (number*, name)`` with ``name`` a text element).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import (
    ConformanceError,
    InvalidFDError,
    NormalizationError,
    UnsupportedFeatureError,
)
from repro.dtd.model import DTD
from repro.dtd.paths import TEXT_STEP, Path
from repro.fd.closure import pair_closure
from repro.fd.implication import ImplicationEngine
from repro.fd.model import FD
from repro.regex.ast import (
    Concat,
    EPSILON,
    Epsilon,
    Optional as RegexOptional,
    PCData,
    Plus,
    Regex,
    Star,
    Sym,
    Union,
    concat,
    optional,
    star,
    sym,
    union,
)
from repro.tuples.extract import tuples_of
from repro.xmltree.model import XMLTree


@dataclass
class TransformStep:
    """One application of a Section 6 transformation."""

    kind: str                       # "move" or "create"
    fd: FD                          # the anomalous FD being eliminated
    dtd: DTD                        # the resulting DTD
    sigma: list[FD]                 # the resulting FD set
    description: str
    renaming: dict[Path, Path]      # old path -> new path (moved values)
    _migrator: Callable[[XMLTree], XMLTree] = field(repr=False, default=None)

    def migrate(self, tree: XMLTree) -> XMLTree:
        """Carry a document conforming to the old DTD across the step."""
        return self._migrator(tree)


@dataclass
class NewElementNames:
    """Naming choices for *creating element types*.

    ``tau`` names the new grouping element, ``taus[i]`` the per-LHS-key
    child elements, and ``tau_prime`` the optional value wrapper used
    when the moved value can be null (the footnote variant).  Unset
    names are derived automatically (``info``, attribute stems).
    """

    tau: str | None = None
    taus: Sequence[str] | None = None
    tau_prime: str | None = None


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def _remove_symbol(regex: Regex, name: str) -> Regex:
    """The production with every occurrence of ``name`` erased."""
    if isinstance(regex, Sym):
        return EPSILON if regex.name == name else regex
    if isinstance(regex, (Epsilon, PCData)):
        return regex
    if isinstance(regex, Union):
        return union(_remove_symbol(p, name) for p in regex.parts)
    if isinstance(regex, Concat):
        return concat(_remove_symbol(p, name) for p in regex.parts)
    if isinstance(regex, Star):
        return star(_remove_symbol(regex.inner, name))
    if isinstance(regex, Plus):
        return plus_or_eps(_remove_symbol(regex.inner, name))
    if isinstance(regex, RegexOptional):
        return optional(_remove_symbol(regex.inner, name))
    raise TypeError(f"unknown regex node: {regex!r}")


def plus_or_eps(inner: Regex) -> Regex:
    from repro.regex.ast import plus
    return plus(inner)


def _single_occurrence_guard(dtd: DTD, element: str, *,
                             context: str) -> Path:
    """The unique DTD path ending at ``element``; transformations edit
    DTDs at the element-type level, so a type reachable along several
    paths cannot be transformed unambiguously."""
    hits = [p for p in dtd.paths if p.is_element and p.last == element]
    if len(hits) != 1:
        raise UnsupportedFeatureError(
            f"{context}: element type {element!r} occurs at "
            f"{len(hits)} paths; the Section 6 transformations require "
            "a unique occurrence")
    return hits[0]


def _drop_dead_and_trivial(dtd: DTD, fds: Iterable[FD]) -> list[FD]:
    """Keep FDs whose paths exist in ``dtd``, dropping trivial ones."""
    survivors: list[FD] = []
    oracle = ImplicationEngine(dtd, [])
    seen: set[FD] = set()
    for fd in fds:
        if fd in seen:
            continue
        seen.add(fd)
        if not all(dtd.is_path(path) for path in fd.paths):
            continue
        if oracle.implies(fd):
            continue  # trivial in the new DTD
        survivors.append(fd)
    return survivors


def _node_paths(tree: XMLTree) -> dict[str, Path]:
    """Map each node id to its label path."""
    assert tree.root is not None
    mapping: dict[str, Path] = {}

    def visit(node: str, path: Path) -> None:
        mapping[node] = path
        for child in tree.children(node):
            visit(child, path.child(tree.label(child)))

    visit(tree.root, Path.root(tree.label(tree.root)))
    return mapping


def _value_of(tuple_, value_path: Path) -> str | None:
    return tuple_.get(value_path)


def _value_is_forced(dtd: DTD, lhs: frozenset[Path], value: Path) -> bool:
    """Whether the moved value is non-null whenever the LHS is — decides
    between the main construction and the footnote (nullable) variant."""
    _eq, nn = pair_closure(dtd, [], lhs, extra={value})
    return value in nn


# ---------------------------------------------------------------------------
# Moving attributes:  D[p.@l := q.@m]
# ---------------------------------------------------------------------------

def move_attribute(dtd: DTD, sigma: Iterable[FD], value_path: Path,
                   q: Path, *, new_attr: str | None = None) -> TransformStep:
    """``D[p.@l := q.@m]``: move the value at ``value_path`` (an
    attribute path ``p.@l`` or a text path ``p.S``) to a fresh attribute
    of ``last(q)``.

    This is the DBLP fix of Example 1.2: ``year`` moves from
    ``inproceedings`` to ``issue``.
    """
    sigma = list(sigma)
    dtd.check_path(value_path)
    dtd.check_path(q)
    if value_path.is_element:
        raise InvalidFDError(
            f"moved value {value_path} must be an attribute or text path")
    if not q.is_element:
        raise InvalidFDError(f"target {q} must be an element path")

    owner = value_path.parent          # p
    owner_type = owner.last
    target_type = q.last
    _single_occurrence_guard(dtd, owner_type, context="move_attribute")
    _single_occurrence_guard(dtd, target_type, context="move_attribute")

    if value_path.is_attribute:
        stem = value_path.last[1:]
    else:
        stem = owner_type
    attr_name = new_attr if new_attr is not None else (
        dtd.fresh_attribute_name(target_type, stem))
    if not attr_name.startswith("@"):
        attr_name = "@" + attr_name
    new_value_path = q.child(attr_name)

    productions = dict(dtd.productions)
    attributes = {element: set(attrs)
                  for element, attrs in dtd.attributes.items()}
    attributes.setdefault(target_type, set()).add(attr_name)

    removed_type: str | None = None
    if value_path.is_attribute:
        attributes.setdefault(owner_type, set()).discard(value_path.last)
    else:
        # Text value: the whole (#PCDATA-only) element moves away.
        if dtd.attrs(owner_type):
            raise UnsupportedFeatureError(
                f"text element {owner_type!r} carries attributes; "
                "cannot fold it into a single attribute")
        parent_type = owner.parent.last
        productions[parent_type] = _remove_symbol(
            productions[parent_type], owner_type)
        removed_type = owner_type
        del productions[owner_type]
        attributes.pop(owner_type, None)

    new_dtd = DTD(root=dtd.root, productions=productions,
                  attributes={e: frozenset(a)
                              for e, a in attributes.items() if a})

    renaming = {value_path: new_value_path}
    # The paper's Σ[p.@l := q.@m] keeps the implied FDs over the paths
    # both DTDs share: FDs mentioning the moved value are *dropped*,
    # not rewritten — its determination by q is trivial in the new DTD
    # (q -> q.@m), and carrying other FDs over to @m could re-create an
    # anomaly at the new location, breaking Proposition 6.  (Example
    # 5.2 makes the same point: FD5 is not replaced by
    # issue -> issue.@year.)
    new_sigma = _drop_dead_and_trivial(
        new_dtd, (fd for fd in sigma if value_path not in fd.paths))

    def migrate(tree: XMLTree) -> XMLTree:
        paths_of = _node_paths(tree)
        values: dict[str, str] = {}
        for tuple_ in tuples_of(tree, dtd):
            q_node = tuple_.get(q)
            value = tuple_.get(value_path)
            if value is not None and q_node is None:
                raise ConformanceError(
                    f"document carries a {value_path} value with no {q} "
                    "node to receive it; migration would lose it "
                    "(the paper's lossless witness invents carrier "
                    "nodes here — see EXPERIMENTS.md)")
            if q_node is None or value is None:
                continue
            existing = values.get(q_node)
            if existing is not None and existing != value:
                raise ConformanceError(
                    f"document violates {q} -> {value_path}: node "
                    f"{q_node!r} sees values {existing!r} and {value!r}")
            values[q_node] = value
        result = tree.copy()
        for node, path in paths_of.items():
            if path == q:
                value = values.get(node)
                if value is None:
                    raise ConformanceError(
                        f"node {node!r} at {q} has no {value_path} value; "
                        "the migrated document would miss a required "
                        "attribute")
                result.attributes[(node, attr_name)] = value
        if value_path.is_attribute:
            for node, path in paths_of.items():
                if path == owner:
                    result.attributes.pop((node, value_path.last), None)
        else:
            for node, path in paths_of.items():
                if path == owner:
                    parent = result.parent(node)
                    assert parent is not None
                    siblings = result.content[parent]
                    assert isinstance(siblings, list)
                    result.content[parent] = [
                        c for c in siblings if c != node]
                    _delete_subtree(result, node)
        return result.freeze()

    description = (
        f"move {value_path} to {new_value_path}"
        + (f" (dropping element type {removed_type!r})"
           if removed_type else ""))
    return TransformStep(kind="move", fd=FD(frozenset({q}),
                                            frozenset({value_path})),
                         dtd=new_dtd, sigma=new_sigma,
                         description=description, renaming=renaming,
                         _migrator=migrate)


def _delete_subtree(tree: XMLTree, node: str) -> None:
    for child in tree.children(node):
        _delete_subtree(tree, child)
    body = tree.content.pop(node, [])
    del tree.labels[node]
    for key in [k for k in tree.attributes if k[0] == node]:
        del tree.attributes[key]
    del body


# ---------------------------------------------------------------------------
# Creating element types:  D[p.@l := q.tau[tau1.@l1, ..., taun.@ln, @l]]
# ---------------------------------------------------------------------------

def create_element_type(dtd: DTD, sigma: Iterable[FD], fd: FD, *,
                        names: NewElementNames | None = None,
                        engine: ImplicationEngine | None = None,
                        ) -> TransformStep:
    """Apply *creating element types* to the anomalous FD
    ``{q, p1.@l1, ..., pn.@ln} -> value`` (``value`` is ``p0.@l0`` or
    ``p0.S``).

    This is the university fix of Example 1.1: a new ``tau`` child of
    ``last(q)`` stores each value once, with ``taui`` children holding
    the key attributes.
    """
    sigma = list(sigma)
    oracle = engine if engine is not None else ImplicationEngine(dtd, sigma)
    names = names or NewElementNames()

    value = fd.single_rhs
    if value.is_element:
        raise InvalidFDError(
            f"anomalous FD must target an attribute or text path, "
            f"got {value}")
    element_lhs = fd.lhs_element_paths()
    if len(element_lhs) != 1:
        raise UnsupportedFeatureError(
            "creating element types needs exactly one element path on "
            f"the LHS (got {len(element_lhs)}); add the root path or "
            "split the FD as described in Section 6")
    q = element_lhs[0]
    # The paper states the construction for n >= 1 key attributes; the
    # degenerate n = 0 case (a lone element path determines the value)
    # also works — tau then has no key children and the transferred FD
    # ``q -> q.tau`` makes it unique per q — and is what the
    # implication-free variant (Proposition 7) uses where the main
    # algorithm would move an attribute instead.
    # Section 6 assumes attribute keys after coding ``p.S`` as ``p.@l``;
    # we perform that coding on the fly: a text key contributes an
    # attribute named after its #PCDATA element to the new taui child.
    keys = sorted((p for p in fd.lhs if not p.is_element), key=str)

    def key_attr(key: Path) -> str:
        """The attribute carrying this key on its taui child: the key's
        own name for attribute keys, '@<element>' for text keys."""
        return key.last if key.is_attribute else "@" + key.parent.last

    q_type = q.last
    value_owner = value.parent          # p0
    owner_type = value_owner.last
    _single_occurrence_guard(dtd, q_type, context="create_element_type")
    _single_occurrence_guard(dtd, owner_type, context="create_element_type")

    forced = _value_is_forced(dtd, fd.lhs, value)

    productions = dict(dtd.productions)
    attributes = {element: set(attrs)
                  for element, attrs in dtd.attributes.items()}

    tau = dtd.fresh_element_name(names.tau or "info")
    tau_children: list[str] = []
    used = set(productions) | {tau}
    for index, key in enumerate(keys):
        if names.taus is not None and index < len(names.taus):
            base = names.taus[index]
        else:
            base = key_attr(key)[1:]
        candidate = base
        counter = 1
        while candidate in used:
            candidate = f"{base}{counter}"
            counter += 1
        used.add(candidate)
        tau_children.append(candidate)

    renaming: dict[Path, Path] = {}
    tau_path = q.child(tau)
    for key, child_name in zip(keys, tau_children):
        renaming[key.parent] = tau_path.child(child_name)
        renaming[key] = tau_path.child(child_name).child(key_attr(key))

    # --- value placement -------------------------------------------------
    if value.is_attribute:
        value_attr = value.last
        attributes.setdefault(owner_type, set()).discard(value_attr)
        if forced:
            value_parts: list[Regex] = []
            tau_attrs = {value_attr}
            new_value_path = tau_path.child(value_attr)
        else:
            tau_prime = names.tau_prime or f"{tau}_value"
            tau_prime = _fresh_in(used, tau_prime)
            used.add(tau_prime)
            productions[tau_prime] = EPSILON
            attributes[tau_prime] = {value_attr}
            value_parts = [optional(sym(tau_prime))]
            tau_attrs = set()
            new_value_path = tau_path.child(tau_prime).child(value_attr)
        removed_value_type = None
    else:
        # Text value: the #PCDATA element itself moves under tau.
        if dtd.attrs(owner_type):
            raise UnsupportedFeatureError(
                f"text element {owner_type!r} carries attributes; cannot "
                "move it under the new element type")
        parent_type = value_owner.parent.last
        productions[parent_type] = _remove_symbol(
            productions[parent_type], owner_type)
        part = sym(owner_type) if forced else optional(sym(owner_type))
        value_parts = [part]
        tau_attrs = set()
        new_value_path = tau_path.child(owner_type).child(TEXT_STEP)
        renaming[value_owner] = tau_path.child(owner_type)
        removed_value_type = owner_type
    renaming[value] = new_value_path

    q_production = productions[q_type]
    if isinstance(q_production, PCData):
        raise UnsupportedFeatureError(
            f"cannot add the new element type under {q_type!r}, whose "
            "content is #PCDATA")
    productions[q_type] = concat([q_production, star(sym(tau))])
    productions[tau] = concat(
        [star(sym(child)) for child in tau_children] + value_parts)
    if tau_attrs:
        attributes[tau] = tau_attrs
    for child_name, key in zip(tau_children, keys):
        productions[child_name] = EPSILON
        attributes[child_name] = {key_attr(key)}

    new_dtd = DTD(root=dtd.root, productions=productions,
                  attributes={e: frozenset(a)
                              for e, a in attributes.items() if a})

    # --- transformed FD set ----------------------------------------------
    new_sigma: list[FD] = []
    for original in sigma:
        new_sigma.append(original)  # dead/trivial ones filtered below
    new_sigma.extend(
        _transferred_fds(oracle, q, keys, value, renaming))
    # Rule 3: the new structural keys.
    key_paths = [renaming[key] for key in keys]
    new_sigma.append(FD(frozenset({q, *key_paths}), frozenset({tau_path})))
    for key_path in key_paths:
        new_sigma.append(
            FD(frozenset({tau_path, key_path}),
               frozenset({key_path.parent})))
    new_sigma = _drop_dead_and_trivial(new_dtd, new_sigma)

    # --- instance migration -----------------------------------------------
    def migrate(tree: XMLTree) -> XMLTree:
        paths_of = _node_paths(tree)
        groups: dict[str, dict[str, list[set[str]]]] = {}
        for tuple_ in tuples_of(tree, dtd):
            q_node = tuple_.get(q)
            group_value = tuple_.get(value)
            if group_value is not None and q_node is None:
                raise ConformanceError(
                    f"document carries a {value} value with no {q} node "
                    "to group it under; migration would lose it "
                    "(the paper's lossless witness invents carrier "
                    "nodes here — see EXPERIMENTS.md)")
            if q_node is None or group_value is None:
                continue
            per_value = groups.setdefault(q_node, {})
            key_sets = per_value.setdefault(
                group_value, [set() for _ in keys])
            for index, key in enumerate(keys):
                key_value = tuple_.get(key)
                if key_value is None:
                    raise ConformanceError(
                        f"document carries a {value} value whose key "
                        f"{key} is null; the {tau!r} group storing it "
                        "would be keyless and the value unrecoverable "
                        "(the paper's lossless witness invents carrier "
                        "nodes here — see EXPERIMENTS.md)")
                key_sets[index].add(key_value)
        result = tree.copy()
        # Remove the old copies of the value.
        if value.is_attribute:
            for node, path in paths_of.items():
                if path == value_owner:
                    result.attributes.pop((node, value.last), None)
        else:
            for node, path in paths_of.items():
                if path == value_owner:
                    parent = result.parent(node)
                    assert parent is not None
                    siblings = result.content[parent]
                    assert isinstance(siblings, list)
                    result.content[parent] = [
                        c for c in siblings if c != node]
                    _delete_subtree(result, node)
        # Attach the tau groups.
        for node, path in paths_of.items():
            if path != q:
                continue
            for group_value in sorted(groups.get(node, {})):
                key_sets = groups[node][group_value]
                tau_node = result.add_node(tau, parent=node)
                # Key children first: P(tau) = tau1*, ..., taun*, value.
                for index, key in enumerate(keys):
                    for key_value in sorted(key_sets[index]):
                        child = result.add_node(
                            tau_children[index], parent=tau_node)
                        result.attributes[(child, key_attr(key))] = \
                            key_value
                if value.is_attribute:
                    if forced:
                        result.attributes[(tau_node, value.last)] = \
                            group_value
                    else:
                        holder = result.add_node(tau_prime, parent=tau_node)
                        result.attributes[(holder, value.last)] = group_value
                else:
                    result.add_node(owner_type, parent=tau_node,
                                    text=group_value)
        return result.freeze()

    description = (
        f"create element type {tau!r} under {q} keyed by "
        f"{', '.join(str(k) for k in keys)} storing {value}")
    return TransformStep(kind="create", fd=fd, dtd=new_dtd,
                         sigma=new_sigma, description=description,
                         renaming=renaming, _migrator=migrate)


def _fresh_in(used: set[str], base: str) -> str:
    if base not in used:
        return base
    counter = 1
    while f"{base}{counter}" in used:
        counter += 1
    return f"{base}{counter}"


def _transferred_fds(oracle: ImplicationEngine, q: Path,
                     keys: list[Path], value: Path,
                     renaming: dict[Path, Path]) -> list[FD]:
    """Rule 2 of the construction: every implied FD over
    ``{q, p1, ..., pn, p1.@l1, ..., pn.@ln, value}`` is transferred to
    the new element type through ``renaming``."""
    import itertools

    pool: list[Path] = [q]
    pool.extend(key.parent for key in keys)
    pool.extend(keys)
    pool.append(value)
    pool = sorted(set(pool), key=str)
    transferred: list[FD] = []
    for rhs in pool:
        others = [p for p in pool if p != rhs]
        for size in range(1, len(others) + 1):
            for subset in itertools.combinations(others, size):
                candidate = FD(frozenset(subset), frozenset({rhs}))
                if oracle.is_trivial(candidate):
                    continue
                if oracle.implies(candidate):
                    transferred.append(candidate.rename(renaming))
    return transferred
