"""The XNF decomposition algorithm — Figure 4 of the paper.

    (1) If (D, Σ) is in XNF, stop.
    (2) If some anomalous FD ``S -> p.@l`` has an element path
        ``q ∈ S`` with ``q -> S`` implied, move the attribute:
        ``D := D[p.@l := q.@m]``.
    (3) Otherwise pick a (D, Σ)-minimal anomalous FD and create a new
        element type for it.

Each step strictly shrinks the anomalous-path measure of Proposition 6
— the depth multiset of ``AP(D, Σ)`` under the lexicographic multiset
ordering (:func:`repro.xnf.anomalous.progress_measure`), which is
well-founded and hence yields termination (Theorem 2); the
implementation asserts this progress measure at runtime when
``check_progress`` is on.

FDs are preprocessed to the Section 6 form (at most one element path on
the left): an FD without one gets the root path added — semantically
neutral, since every pair of tuples of one tree shares the root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import (
    CheckpointError,
    NormalizationError,
    ReproError,
    ResourceExhausted,
    UnsupportedFeatureError,
)
from repro.dtd.model import DTD
from repro.dtd.paths import Path
from repro.faults import plan as _faults
from repro.fd.implication import EngineName, ImplicationEngine
from repro.fd.model import FD
from repro.guard import budget as _guard
from repro.normalize import checkpoint as _checkpoint
from repro.normalize.transforms import (
    NewElementNames,
    TransformStep,
    create_element_type,
    move_attribute,
)
from repro.obs import metrics as _obs
from repro.obs.trace import span as _span
from repro.xnf.anomalous import (
    anomalous_paths,
    anomalous_sigma_fds,
    minimal_anomalous_fd,
    progress_measure,
)
from repro.xmltree.model import XMLTree

#: Generous cap: Proposition 6 guarantees far fewer steps, one per
#: anomalous path at most.
DEFAULT_MAX_STEPS = 100

_SITE_ROUND = _faults.register_site(
    "normalize.round", "normalize",
    "the top of each Figure 4 fixpoint round")
_SITE_CHECKPOINT = _faults.register_site(
    "normalize.checkpoint", "normalize",
    "after each applied transform, once the checkpoint is snapshotted")


@dataclass
class NormalizationResult:
    """The outcome of the Figure 4 algorithm."""

    dtd: DTD
    sigma: list[FD]
    steps: list[TransformStep] = field(default_factory=list)

    def migrate(self, tree: XMLTree) -> XMLTree:
        """Carry a document conforming to the *original* DTD through
        every applied transformation."""
        for step in self.steps:
            tree = step.migrate(tree)
        return tree

    @property
    def step_descriptions(self) -> list[str]:
        return [step.description for step in self.steps]


def normalize(dtd: DTD, sigma: Iterable[FD], *,
              engine: EngineName = "auto",
              naming: Callable[[int, FD], NewElementNames] | None = None,
              max_steps: int = DEFAULT_MAX_STEPS,
              check_progress: bool = True,
              resume: "_checkpoint.NormalizationCheckpoint | None" = None,
              on_step: Callable[
                  ["_checkpoint.NormalizationCheckpoint"], None,
              ] | None = None) -> NormalizationResult:
    """Run the XNF decomposition algorithm to completion.

    ``naming`` may supply element names for each *create* step (called
    with the step index and the minimal anomalous FD); by default names
    derive from the involved attributes (``info``, attribute stems).

    ``on_step`` receives a :class:`NormalizationCheckpoint` after every
    applied transform; ``resume`` restarts from one (the checkpoint must
    fingerprint-match the *original* ``(dtd, sigma)`` passed here).  A
    resumed run is deterministic: it yields the same final DTD and Σ as
    the uninterrupted run, with pre-checkpoint steps represented by
    description-only records that cannot migrate documents.
    """
    original_sigma = [fd.validate(dtd) for fd in sigma]
    origin = ""
    if resume is not None or on_step is not None:
        origin = _checkpoint.fingerprint(dtd, original_sigma)
    current_dtd = dtd
    current_sigma = original_sigma
    steps: list[TransformStep] = []
    if resume is not None:
        resume.matches(origin)
        current_dtd, restored_sigma, recorded = resume.restore()
        try:
            current_sigma = [fd.validate(current_dtd)
                             for fd in restored_sigma]
        except ReproError as error:
            raise CheckpointError(
                "checkpoint Sigma is inconsistent with its DTD: "
                f"{error}") from error
        steps = list(recorded)
    current_sigma = _preprocess(current_dtd, current_sigma)

    budget = _guard.current() if _guard.active else None
    try:
        with _obs.timer("normalize.total"), _span("normalize"):
            for _round in range(max_steps):
                if _faults.active:
                    _faults.fire(_SITE_ROUND)
                if budget is not None:
                    # One step per round on top of whatever the round's
                    # implication queries spend; keeps a degenerate
                    # loop of free rounds from evading the deadline.
                    budget.tick_steps()
                with _span("normalize.round",
                           round=_round) as round_span:
                    oracle = ImplicationEngine(
                        current_dtd, current_sigma, engine=engine)
                    anomalous = anomalous_sigma_fds(oracle)
                    round_span.set("anomalous_before", len(anomalous))
                    if not anomalous:
                        round_span.set("rule", "converged")
                        return NormalizationResult(
                            current_dtd, current_sigma, steps)
                    before = anomalous_paths(oracle) if check_progress \
                        else None

                    step = _apply_one(current_dtd, current_sigma, oracle,
                                      anomalous, naming, len(steps),
                                      engine)
                    steps.append(step)
                    current_dtd = step.dtd
                    current_sigma = _preprocess(current_dtd, step.sigma)
                    if on_step is not None:
                        on_step(
                            _checkpoint.NormalizationCheckpoint.capture(
                                origin, current_dtd, current_sigma,
                                steps))
                    if _faults.active:
                        # Fires *after* the snapshot is handed out, so
                        # an injected fault here models "killed right
                        # after saving" — the resume path's best case.
                        _faults.fire(_SITE_CHECKPOINT)
                    if _obs.enabled:
                        _obs.inc("normalize.rounds")
                        _obs.inc(f"normalize.steps.{step.kind}")
                        round_span.set("rule", step.kind)
                        round_span.set("implication_queries",
                                       oracle.query_count())

                    if check_progress:
                        after_oracle = ImplicationEngine(
                            current_dtd, current_sigma, engine=engine)
                        after = anomalous_paths(after_oracle)
                        round_span.set("anomalous_paths_after",
                                       len(after))
                        assert before is not None
                        if not (progress_measure(after)
                                < progress_measure(before)):
                            raise NormalizationError(
                                "Proposition 6 progress violated: "
                                "anomalous paths went from "
                                f"{sorted(map(str, before))} to "
                                f"{sorted(map(str, after))} after step "
                                f"{step.description!r}")
    except ResourceExhausted as error:
        # Partial progress: the transforms applied before the trip are
        # sound individually, so surface them for diagnostics/resume.
        error.partial.setdefault("engine", "normalize")
        error.partial.setdefault("rounds_completed", len(steps))
        error.partial.setdefault(
            "steps_applied", [step.description for step in steps])
        raise
    raise NormalizationError(
        f"normalization did not converge within {max_steps} steps")


def _q_is_safe(dtd: DTD, value: Path, q: Path) -> bool:
    """Whether the target's presence is forced whenever the value is
    present (so migration never orphans a value).

    The paper's losslessness (Prop. 8) lets the witness document invent
    carrier nodes — its Q2 query "eliminates extra node ids" — but a
    value-preserving migrator needs the target to exist already; the
    pair-closure's NN predicate decides exactly that.
    """
    from repro.fd.closure import pair_closure
    _eq, nn = pair_closure(dtd, [], frozenset({value}), extra={q})
    return q in nn


def _apply_one(dtd: DTD, sigma: list[FD], oracle: ImplicationEngine,
               anomalous: Sequence[FD],
               naming: Callable[[int, FD], NewElementNames] | None,
               step_index: int, engine: EngineName) -> TransformStep:
    # Step (2): moving attributes, preferred when applicable.  Safe
    # targets (the value's presence forces the target's) come first;
    # an unsafe move stays available as a paper-faithful fallback whose
    # migration refuses documents with orphaned values.
    unsafe_move: tuple[FD, Path] | None = None
    for fd in anomalous:
        for q in sorted(fd.lhs_element_paths(), key=str):
            if oracle.implies(FD(frozenset({q}), fd.lhs)):
                if _q_is_safe(dtd, fd.single_rhs, q):
                    return move_attribute(dtd, sigma, fd.single_rhs, q)
                if unsafe_move is None:
                    unsafe_move = (fd, q)
    # Step (3): creating element types on a minimal anomalous FD.
    fd = minimal_anomalous_fd(oracle, anomalous[0])
    if not fd.lhs_element_paths():
        fd = FD(fd.lhs | {Path.root(dtd.root)}, fd.rhs)
    # The minimal FD may itself qualify for step (2) (e.g. its LHS
    # collapsed to a single element path).
    if not [p for p in fd.lhs if not p.is_element]:
        q = fd.lhs_element_paths()[0]
        return move_attribute(dtd, sigma, fd.single_rhs, q)
    names = naming(step_index, fd) if naming is not None else None
    create_q = fd.lhs_element_paths()[0]
    if not _q_is_safe(dtd, fd.single_rhs, create_q) \
            and unsafe_move is not None:
        # Neither target is safe; the move keeps the schema smaller.
        return move_attribute(dtd, sigma, unsafe_move[0].single_rhs,
                              unsafe_move[1])
    return create_element_type(dtd, sigma, fd, names=names, engine=oracle)


def _preprocess(dtd: DTD, sigma: Iterable[FD]) -> list[FD]:
    """Bring Σ to the Section 6 form: at most one element path per LHS
    (an FD with none is left as-is — the root is added lazily when a
    transformation needs it), no ``S`` text paths on the LHS."""
    result: list[FD] = []
    for fd in sigma:
        element_paths = fd.lhs_element_paths()
        if len(element_paths) > 1:
            raise UnsupportedFeatureError(
                f"FD {fd} has {len(element_paths)} element paths on the "
                "left-hand side; Section 6 assumes at most one (split "
                "the FD by introducing a key attribute, as the paper "
                "suggests)")
        result.append(fd)
    return result
