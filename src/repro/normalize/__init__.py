"""Normalizing XML specifications into XNF — Section 6 of the paper.

Two schema transformations drive the decomposition:

* **moving attributes** ``D[p.@l := q.@m]`` — the DBLP fix: the
  redundant value becomes an attribute of the element that determines
  it;
* **creating element types** ``D[p.@l := q.tau[tau1.@l1, ..., @l]]`` —
  the university fix: a new element type under ``q`` stores each value
  once, keyed by the attributes that determined it.

:func:`normalize` runs the Figure 4 algorithm (move when some
``q -> S`` is implied, otherwise create on a (D, Σ)-minimal anomalous
FD) until the specification is in XNF; :func:`normalize_simple` is the
implication-free variant of Proposition 7.  Every step also produces a
*document migration* function, so instances can be carried along and
the losslessness of the decomposition (Proposition 8) checked on data.
"""

from repro.normalize.transforms import (
    NewElementNames,
    TransformStep,
    create_element_type,
    move_attribute,
)
from repro.normalize.algorithm import (
    NormalizationResult,
    normalize,
)
from repro.normalize.simple_algorithm import normalize_simple

__all__ = [
    "move_attribute", "create_element_type", "TransformStep",
    "NewElementNames", "normalize", "normalize_simple",
    "NormalizationResult",
]
