"""XNF4 — a 4NF-style strengthening of XNF (the Section 8 programme).

Relational 4NF demands that every non-trivial MVD ``X ->> Y`` have a
superkey left-hand side.  The XML analogue built here, in the spirit
of Definition 8 and Proposition 10:

    ``(D, Σ, M)`` is in **XNF4** iff ``(D, Σ)`` is in XNF and for every
    declared MVD ``S ->> S2 ∈ M`` that is not *tree-induced* (and not
    relationally trivial), ``S`` determines the node carrying each
    ``S2`` value: ``S -> p`` is implied by ``(D, Σ)`` for the element
    prefix ``p`` of every path in ``S2``.

When the left side pins the nodes down, the exchanged combinations are
the originals and the MVD causes no extra stored combinations — the
same intuition as XNF's "store each value once".  As with Proposition
10, only the *declared* dependencies are inspected.

This module is a construction of the paper's future work, not a
reproduction of published results; its behaviour is pinned by tests
including the relational-4NF correspondence under the flat coding of
Section 5.
"""

from __future__ import annotations

from typing import Iterable

from repro.dtd.model import DTD
from repro.fd.implication import EngineName, ImplicationEngine
from repro.fd.model import FD
from repro.mvd.induced import is_induced
from repro.mvd.model import MVD
from repro.xnf.check import xnf_violations


def xnf4_violations(dtd: DTD, sigma: Iterable[FD],
                    mvds: Iterable[MVD], *,
                    engine: EngineName = "auto") -> list[FD | MVD]:
    """The declared dependencies breaking XNF4 (FDs first)."""
    sigma = list(sigma)
    violations: list[FD | MVD] = list(
        xnf_violations(dtd, sigma, engine=engine))
    oracle = ImplicationEngine(dtd, sigma, engine=engine)
    for mvd in mvds:
        mvd.validate(dtd)
        if is_induced(dtd, mvd):
            continue
        for target in sorted(mvd.rhs - mvd.lhs, key=str):
            node = target.element_prefix
            node_fd = FD(mvd.lhs, frozenset({node}))
            if not oracle.implies(node_fd):
                violations.append(mvd)
                break
    return violations


def is_in_xnf4(dtd: DTD, sigma: Iterable[FD], mvds: Iterable[MVD], *,
               engine: EngineName = "auto") -> bool:
    """Whether ``(D, Σ, M)`` is in XNF4."""
    return not xnf4_violations(dtd, sigma, mvds, engine=engine)
