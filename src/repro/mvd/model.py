"""The MVD type: ``S1 ->> S2`` over paths."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import FDSyntaxError, InvalidFDError
from repro.dtd.model import DTD
from repro.dtd.paths import Path


@dataclass(frozen=True)
class MVD:
    """A multivalued dependency ``lhs ->> rhs`` over paths.

    Semantics (classical exchange property, over ``tuples_D(T)``): for
    any two tuples agreeing (non-null) on ``lhs``, the tuple taking the
    ``rhs`` projection of the first and the remaining projection of the
    second also occurs among the maximal tuples.  The "remaining"
    attributes are all paths of the DTD outside ``lhs ∪ rhs``, fixed at
    satisfaction-checking time.
    """

    lhs: frozenset[Path]
    rhs: frozenset[Path]

    def __post_init__(self) -> None:
        if not self.lhs or not self.rhs:
            raise InvalidFDError(
                "both sides of an MVD must be non-empty sets of paths")
        object.__setattr__(self, "lhs", frozenset(self.lhs))
        object.__setattr__(self, "rhs", frozenset(self.rhs))

    @classmethod
    def of(cls, lhs: Iterable[Path | str],
           rhs: Iterable[Path | str]) -> "MVD":
        def as_path(value):
            return value if isinstance(value, Path) else Path.parse(value)
        return cls(frozenset(as_path(p) for p in lhs),
                   frozenset(as_path(p) for p in rhs))

    @classmethod
    def parse(cls, text: str) -> "MVD":
        """Parse ``lhs ->> rhs`` (sides as in FD syntax)."""
        if "->>" not in text:
            raise FDSyntaxError(f"missing '->>' in MVD {text!r}")
        left, _, right = text.partition("->>")

        def side(chunk: str) -> frozenset[Path]:
            chunk = chunk.strip()
            if chunk.startswith("{"):
                if not chunk.endswith("}"):
                    raise FDSyntaxError(
                        f"unbalanced braces in MVD {text!r}")
                chunk = chunk[1:-1]
            paths = frozenset(
                Path.parse(part) for part in chunk.split(",")
                if part.strip())
            if not paths:
                raise FDSyntaxError(f"empty side in MVD {text!r}")
            return paths

        return cls(side(left), side(right))

    @property
    def paths(self) -> frozenset[Path]:
        return self.lhs | self.rhs

    def validate(self, dtd: DTD) -> "MVD":
        for path in self.paths:
            if not dtd.is_path(path):
                raise InvalidFDError(
                    f"MVD {self} mentions {path}, which is not a path "
                    "of the DTD")
        return self

    def __str__(self) -> str:
        def side(paths: frozenset[Path]) -> str:
            rendered = ", ".join(str(p) for p in sorted(paths, key=str))
            return "{" + rendered + "}" if len(paths) > 1 else rendered

        return f"{side(self.lhs)} ->> {side(self.rhs)}"
