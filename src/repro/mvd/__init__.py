"""Multivalued dependencies for XML — the Section 8 extension.

The paper closes by proposing to extend XNF "by taking into account
multi-valued dependencies which are naturally induced by the tree
structure".  This package implements that programme over the same
tree-tuple representation used for FDs:

* :class:`MVD` — ``S1 ->> S2`` over paths, with the classical
  exchange-semantics evaluated on ``tuples_D(T)`` (nulls handled as in
  the FD case: the hypothesis requires a non-null LHS);
* :func:`satisfies_mvd` — ``T |= S1 ->> S2``;
* :func:`tree_induced_mvds` — the structurally valid MVDs the paper
  alludes to: independent subtrees branching below a common element
  path are exchangeable, so ``p ->> paths(subtree)`` holds in every
  conforming document;
* :func:`is_in_xnf4` — the 4NF-style strengthening of XNF: every
  non-trivial MVD (implied FDs count, as in the relational 4NF) must
  have a node-determining left-hand side.

This is a faithful *construction* of the future-work direction rather
than a reproduction of published results; tests pin its behaviour on
the paper's examples and on the relational 4NF correspondence under
the flat coding.
"""

from repro.mvd.model import MVD
from repro.mvd.satisfaction import satisfies_mvd, mvd_violating_pairs
from repro.mvd.induced import branch_partition, tree_induced_mvds
from repro.mvd.xnf4 import is_in_xnf4, xnf4_violations

__all__ = [
    "MVD", "satisfies_mvd", "mvd_violating_pairs",
    "tree_induced_mvds", "branch_partition",
    "is_in_xnf4", "xnf4_violations",
]
