"""Tree-induced MVDs — the structural dependencies the paper alludes to.

In ``tuples_D(T)`` the maximal tuples below a fixed node form the
*cross product* of the per-child-label choices (Definition 6).  Hence
for every element path ``p`` and every child label ``c`` of ``p``, the
MVD ``{p} ->> branch(p.c)`` — where ``branch(p.c)`` is every DTD path
extending ``p.c`` — holds in **every** tree compatible with the DTD.
These are the "multi-valued dependencies naturally induced by the tree
structure" of Section 8, and they play the role of trivial MVDs in the
4NF-style strengthening of XNF.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import RecursionLimitError
from repro.dtd.model import DTD
from repro.dtd.paths import Path
from repro.mvd.model import MVD


def branch_partition(dtd: DTD, element_path: Path) -> dict[str, frozenset[Path]]:
    """The partition of the paths strictly below ``element_path`` by
    first child label."""
    dtd.check_path(element_path)
    partition: dict[str, set[Path]] = {}
    for path in dtd.paths:
        if element_path.is_prefix_of(path, proper=True):
            step = path.steps[element_path.length]
            partition.setdefault(step, set()).add(path)
    return {label: frozenset(paths)
            for label, paths in partition.items()}


def tree_induced_mvds(dtd: DTD) -> Iterator[MVD]:
    """Every structurally valid ``{p} ->> branch(p.c)`` of the DTD."""
    if dtd.is_recursive:
        raise RecursionLimitError(
            "tree-induced MVDs enumerate paths(D); bound the DTD first")
    for path in sorted(dtd.epaths, key=str):
        for _label, branch in sorted(branch_partition(dtd, path).items()):
            if branch:
                yield MVD(frozenset({path}), branch)


def is_induced(dtd: DTD, mvd: MVD) -> bool:
    """Whether the MVD follows from the tree structure alone:
    some element path in the LHS splits the RHS off as a union of
    complete child branches (plus paths already in the LHS)."""
    for anchor in (p for p in mvd.lhs if p.is_element):
        partition = branch_partition(dtd, anchor)
        remainder = set(mvd.rhs) - set(mvd.lhs)
        if not remainder:
            return True  # relationally trivial: rhs ⊆ lhs
        covered: set[Path] = set()
        for branch in partition.values():
            if branch & remainder:
                if not branch <= (remainder | mvd.lhs):
                    break
                covered |= branch
        else:
            if remainder <= covered | set(mvd.lhs):
                return True
    return not (set(mvd.rhs) - set(mvd.lhs))
