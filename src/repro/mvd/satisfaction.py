"""MVD satisfaction on documents, via tree tuples.

``T |= S1 ->> S2`` iff for all maximal tuples ``t1, t2`` with
``t1.S1 = t2.S1 ≠ ⊥``, the *exchanged* combination — ``t1`` on
``S1 ∪ S2``, ``t2`` on everything else — also appears in
``tuples_D(T)``.  This is the classical relational semantics applied
to the tree-tuple relation, with the FD-style null guard on the LHS.

Node identities are excluded from the exchanged projections: two
tuples exchange *values* (attribute/text paths), never the node ids
that merely witness where the values sit — otherwise no non-trivial
MVD could ever hold, since each node id occurs with exactly one value
combination.  Element paths remain meaningful on the left-hand side
(relative MVDs scope the exchange to a subtree, exactly like the
paper's relative FDs).
"""

from __future__ import annotations

from typing import Sequence

from repro.dtd.model import DTD
from repro.mvd.model import MVD
from repro.tuples.extract import tuples_of
from repro.tuples.model import TreeTuple
from repro.xmltree.model import XMLTree


def _signature(tuple_: TreeTuple, side: Sequence, rest: Sequence):
    return (tuple(tuple_.get(p) for p in side),
            tuple(tuple_.get(p) for p in rest))


def mvd_violating_pairs(tree: XMLTree, dtd: DTD, mvd: MVD, *,
                        tuples: Sequence[TreeTuple] | None = None,
                        limit: int | None = None,
                        ) -> list[tuple[TreeTuple, TreeTuple]]:
    """Pairs witnessing a violation of the exchange property."""
    if tuples is None:
        tuples = tuples_of(tree, dtd)
    all_paths = sorted({p for t in tuples for p in t.paths}
                       | set(mvd.paths), key=str)
    lhs = sorted(mvd.lhs, key=str)
    rhs = sorted((p for p in mvd.rhs - mvd.lhs if not p.is_element),
                 key=str)
    rest = [p for p in all_paths
            if p not in mvd.lhs and p not in mvd.rhs
            and not p.is_element]

    groups: dict[tuple, list[TreeTuple]] = {}
    for tuple_ in tuples:
        key = tuple(tuple_.get(p) for p in lhs)
        if any(value is None for value in key):
            continue
        groups.setdefault(key, []).append(tuple_)

    violations: list[tuple[TreeTuple, TreeTuple]] = []
    for members in groups.values():
        if len(members) < 2:
            continue
        present = {
            (tuple(t.get(p) for p in rhs),
             tuple(t.get(p) for p in rest))
            for t in members
        }
        rhs_values = {r for r, _ in present}
        rest_values = {w for _, w in present}
        if len(present) == len(rhs_values) * len(rest_values):
            continue  # the group is a full cross product: exchange holds
        for t1 in members:
            for t2 in members:
                combo = (tuple(t1.get(p) for p in rhs),
                         tuple(t2.get(p) for p in rest))
                if combo not in present:
                    violations.append((t1, t2))
                    if limit is not None and len(violations) >= limit:
                        return violations
    return violations


def satisfies_mvd(tree: XMLTree, dtd: DTD, mvd: MVD, *,
                  tuples: Sequence[TreeTuple] | None = None) -> bool:
    """``T |= S1 ->> S2``."""
    return not mvd_violating_pairs(tree, dtd, mvd, tuples=tuples,
                                   limit=1)
