"""Command-line interface: ``python -m repro`` / the ``xnf`` script.

Subcommands::

    xnf check      DTD_FILE FD_FILE          # XNF test + violations
    xnf normalize  DTD_FILE FD_FILE [-o DIR] # Figure 4 algorithm
    xnf implies    DTD_FILE FD_FILE "S -> p" # implication query
    xnf tuples     DTD_FILE XML_FILE         # tuples_D(T) as a table
    xnf classify   DTD_FILE                  # simple / disjunctive / N_D
    xnf explain    DTD_FILE FD_FILE "S -> p" # derivation of an implication
    xnf analyze    DTD_FILE FD_FILE [XML...] # design + redundancy report

FD files contain one FD per line (``#`` comments allowed), e.g.::

    courses.course.@cno -> courses.course
    courses.course.taken_by.student.@sno ->
        courses.course.taken_by.student.name.S
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path as FilePath

from repro.errors import ReproError
from repro.dtd.parser import parse_dtd
from repro.dtd.serializer import serialize_dtd
from repro.fd.model import FD, parse_fds
from repro.spec import XMLSpec
from repro.xmltree.parser import parse_xml


def _load_spec(dtd_file: str, fd_file: str | None,
               root: str | None) -> XMLSpec:
    dtd_text = FilePath(dtd_file).read_text()
    fd_text = FilePath(fd_file).read_text() if fd_file else ""
    return XMLSpec.parse(dtd_text, fd_text, root=root)


def _cmd_check(args: argparse.Namespace) -> int:
    spec = _load_spec(args.dtd, args.fds, args.root)
    violations = spec.xnf_violations()
    if not violations:
        print("(D, Sigma) is in XNF")
        return 0
    print(f"(D, Sigma) is NOT in XNF: {len(violations)} anomalous FD(s)")
    for fd in violations:
        print(f"  anomalous: {fd}")
    return 1


def _cmd_normalize(args: argparse.Namespace) -> int:
    spec = _load_spec(args.dtd, args.fds, args.root)
    result = spec.normalize()
    for index, step in enumerate(result.steps, start=1):
        print(f"step {index}: {step.description}", file=sys.stderr)
    print(serialize_dtd(result.dtd), end="")
    if result.sigma:
        print()
        for fd in result.sigma:
            print(f"# FD: {fd}")
    if args.output:
        out = FilePath(args.output)
        out.mkdir(parents=True, exist_ok=True)
        (out / "normalized.dtd").write_text(serialize_dtd(result.dtd))
        (out / "normalized.fds").write_text(
            "".join(f"{fd}\n" for fd in result.sigma))
        print(f"\nwritten to {out}/", file=sys.stderr)
    return 0


def _cmd_implies(args: argparse.Namespace) -> int:
    spec = _load_spec(args.dtd, args.fds, args.root)
    fd = FD.parse(args.fd)
    answer = spec.implies(fd)
    print("implied" if answer else "not implied")
    return 0 if answer else 1


def _cmd_tuples(args: argparse.Namespace) -> int:
    dtd = parse_dtd(FilePath(args.dtd).read_text(), root=args.root)
    tree = parse_xml(FilePath(args.xml).read_text())
    from repro.tuples.extract import tuples_of
    tuples = tuples_of(tree, dtd)
    paths = sorted({p for t in tuples for p in t.paths}, key=str)
    print("\t".join(str(p) for p in paths))
    for tuple_ in tuples:
        print("\t".join(tuple_.get(p) or "_|_" for p in paths))
    print(f"# {len(tuples)} tuple(s)", file=sys.stderr)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    spec = _load_spec(args.dtd, args.fds, args.root)
    from repro.fd.explain import explain_implication
    print(explain_implication(spec.dtd, spec.sigma, args.fd), end="")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    spec = _load_spec(args.dtd, args.fds, args.root)
    from repro.report import analyze
    documents = [parse_xml(FilePath(path).read_text())
                 for path in args.xml]
    report = analyze(spec, documents)
    print(report.render(), end="")
    return 0 if report.in_xnf else 1


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.dtd.classify import (
        disjunction_measure, is_disjunctive_dtd, is_simple_dtd)
    dtd = parse_dtd(FilePath(args.dtd).read_text(), root=args.root)
    print(f"recursive:   {dtd.is_recursive}")
    simple = is_simple_dtd(dtd)
    print(f"simple:      {simple}")
    disjunctive = is_disjunctive_dtd(dtd)
    print(f"disjunctive: {disjunctive}")
    if disjunctive and not dtd.is_recursive:
        print(f"N_D:         {disjunction_measure(dtd)}")
    if not dtd.is_recursive:
        print(f"paths:       {len(dtd.paths)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xnf",
        description="XML normal form toolkit (Arenas & Libkin, PODS 2002)")
    parser.add_argument("--root", help="root element type "
                        "(default: first declared)")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="test whether (D, Sigma) is in XNF")
    check.add_argument("dtd")
    check.add_argument("fds")
    check.set_defaults(func=_cmd_check)

    norm = sub.add_parser("normalize",
                          help="run the XNF decomposition algorithm")
    norm.add_argument("dtd")
    norm.add_argument("fds")
    norm.add_argument("-o", "--output", help="directory for the results")
    norm.set_defaults(func=_cmd_normalize)

    imp = sub.add_parser("implies", help="decide (D, Sigma) |- FD")
    imp.add_argument("dtd")
    imp.add_argument("fds")
    imp.add_argument("fd", help='query, e.g. "db.conf.title.S -> db.conf"')
    imp.set_defaults(func=_cmd_implies)

    tup = sub.add_parser("tuples", help="print tuples_D(T) as a table")
    tup.add_argument("dtd")
    tup.add_argument("xml")
    tup.set_defaults(func=_cmd_tuples)

    cls = sub.add_parser("classify", help="classify a DTD (Section 7)")
    cls.add_argument("dtd")
    cls.set_defaults(func=_cmd_classify)

    exp = sub.add_parser("explain",
                         help="show the derivation of an implication")
    exp.add_argument("dtd")
    exp.add_argument("fds")
    exp.add_argument("fd")
    exp.set_defaults(func=_cmd_explain)

    ana = sub.add_parser("analyze",
                         help="design analysis + redundancy report")
    ana.add_argument("dtd")
    ana.add_argument("fds")
    ana.add_argument("xml", nargs="*", help="documents to measure")
    ana.set_defaults(func=_cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
