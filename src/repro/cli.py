"""Command-line interface: ``python -m repro`` / the ``xnf`` script.

Subcommands::

    xnf check      DTD_FILE FD_FILE          # XNF test + violations
    xnf normalize  DTD_FILE FD_FILE [-o DIR] # Figure 4 algorithm
    xnf implies    DTD_FILE FD_FILE "S -> p" # implication query
    xnf tuples     DTD_FILE XML_FILE         # tuples_D(T) as a table
    xnf classify   DTD_FILE                  # simple / disjunctive / N_D
    xnf explain    DTD_FILE FD_FILE "S -> p" # derivation of an implication
    xnf analyze    DTD_FILE FD_FILE [XML...] # design + redundancy report
    xnf bench      {run,compare,report} ...  # benchmark observatory
    xnf batch      MANIFEST.json             # crash-tolerant batch runs
    xnf obs        {report,flame,diff} ...   # profiling observatory
    xnf serve      [--port N]                # long-running HTTP service

Observability (see ``docs/OBSERVABILITY.md``): every subcommand accepts
``--stats`` (print a metrics table — cache hit rate, chase steps,
per-phase timings — to stderr when done), ``--trace FILE`` (write a
JSON-lines span log), and ``--metrics-port N`` (serve live Prometheus
``/metrics`` + ``/healthz`` on localhost:N for the duration of the
run; 0 picks a free port, announced on stderr).  Setting
``REPRO_OBS=1`` in the environment is equivalent to ``--stats``.
``xnf obs report/flame/diff`` folds a ``--trace`` file into a
deterministic profile tree, flamegraph folded stacks, or a
counter-gated comparison of two runs.

Resource governance (see ``docs/ROBUSTNESS.md``): every subcommand
accepts ``--timeout SECONDS`` (wall-clock deadline), ``--max-steps N``,
``--max-branches N``, and ``--max-nodes N``.  When a limit trips the
coNP-hard engines degrade instead of hanging: ``implies`` prints
``unknown`` with the tripped limit, every other subcommand aborts with
a diagnostic, and the process exits with code 4.

Resumability (see ``docs/ROBUSTNESS.md``): ``xnf normalize
--checkpoint FILE`` snapshots the run after every applied transform;
adding ``--resume`` restarts from the snapshot and produces output
identical to an uninterrupted run.  A checkpoint with the wrong schema
version or a different (D, Σ) fingerprint exits with code 2.

Fault injection (testing only): setting ``REPRO_FAULTS`` to a
``site[:kind[:after]],...`` spec (``REPRO_FAULTS_SEED`` seeds it)
installs a deterministic fault plan around the whole run — see
``repro.faults``.

Batch execution (see ``docs/ROBUSTNESS.md``): ``xnf batch
MANIFEST.json`` runs every task of a manifest under per-task isolation
with deterministic retry/backoff (``--retries`` / ``--backoff-base``),
per-failure-signature circuit breakers (``--breaker-threshold``), and
an optional differential engine ensemble (``--ensemble
{off,check,strict}``).  The machine-readable JSON summary — including
the dead-letter report accounting for every unrecoverable task — goes
to **stdout**; human-facing progress and ``--stats`` tables go to
stderr, so ``xnf batch m.json | jq .`` always parses.  ``--heartbeat
FILE`` appends one schema-versioned JSON-lines progress record (tasks
done/ok/dead-lettered, retries, breaker states, throughput, ETA) at
most every ``--heartbeat-interval`` seconds (``-`` writes them to
stderr, keeping stdout parseable), and publishes the same numbers as
``runtime.batch.*`` gauges for a concurrent ``--metrics-port`` scrape.
``--journal FILE`` write-ahead-journals the run (fsync'd intent/result
records); after a supervisor death — SIGKILL, OOM, power loss —
re-running with ``--resume`` skips completed tasks, re-dispatches
in-flight ones, and produces a summary byte-identical to an
uninterrupted serial run whenever no breaker opened (the journal
format and resume contract are specified in ``docs/ROBUSTNESS.md``).
A journal that cannot apply to the invocation — wrong manifest
fingerprint, policy, or breaker knobs — exits with code 2.

Service mode (see ``docs/SERVE.md``): ``xnf serve`` runs the pipeline
as a long-lived HTTP/JSON daemon.  The budget flags change meaning
there: instead of one process-wide budget they become **per-request
ceilings** — every request runs under its own thread-scoped budget
(clients may tighten, never loosen), so one pathological DTD degrades
alone.  ``/metrics``, ``/healthz`` and ``/readyz`` are served on the
service port itself; ``--metrics-port`` is refused unless it names the
service port (no second exporter is ever spawned).  SIGTERM/SIGINT
drain gracefully: readiness flips, in-flight requests finish under
``--drain-deadline``, and a clean drain exits 0.

Exit codes (uniform across subcommands; the full table is pinned by
``tests/test_exit_codes.py``)::

    0  success / positive answer (implied, in XNF, batch all ok)
    1  negative answer (not implied, not in XNF, violations found,
       every batch task dead-lettered)
    2  usage error (bad flags or arguments; argparse, bad checkpoint,
       bad batch manifest, bad/mismatched batch journal)
    3  input or pipeline error (any ReproError: parse failure,
       invalid FD, unsupported feature, ...) — message on stderr
    4  resource limit reached (--timeout / --max-steps / ... tripped
       before the answer was decided) — message on stderr
    5  partial batch failure (some tasks succeeded, some were
       dead-lettered; details in the JSON summary on stdout)

FD files contain one FD per line (``#`` comments allowed), e.g.::

    courses.course.@cno -> courses.course
    courses.course.taken_by.student.@sno ->
        courses.course.taken_by.student.name.S
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path as FilePath

from repro import guard, obs
from repro.errors import (
    CheckpointError,
    JournalError,
    ManifestError,
    ReproError,
    ResourceExhausted,
)
from repro.dtd.parser import parse_dtd
from repro.dtd.serializer import serialize_dtd
from repro.fd.implication import UNKNOWN, YES
from repro.fd.model import FD, parse_fds
from repro.spec import XMLSpec
from repro.xmltree.parser import parse_xml

#: Uniform exit codes (documented in the module docstring).
EXIT_OK = 0
EXIT_NEGATIVE = 1
EXIT_USAGE = 2
EXIT_ERROR = 3
EXIT_RESOURCE = 4
EXIT_PARTIAL = 5


def _load_spec(dtd_file: str, fd_file: str | None,
               root: str | None) -> XMLSpec:
    # A named child span keeps the root CLI span's wall time almost
    # fully attributed when profiled (`xnf obs report`).
    with obs.span("spec.parse", dtd=dtd_file):
        dtd_text = FilePath(dtd_file).read_text()
        fd_text = FilePath(fd_file).read_text() if fd_file else ""
        return XMLSpec.parse(dtd_text, fd_text, root=root)


def _cmd_check(args: argparse.Namespace) -> int:
    spec = _load_spec(args.dtd, args.fds, args.root)
    violations = spec.xnf_violations()
    if not violations:
        print("(D, Sigma) is in XNF")
        return EXIT_OK
    print(f"(D, Sigma) is NOT in XNF: {len(violations)} anomalous FD(s)")
    for fd in violations:
        print(f"  anomalous: {fd}")
    return EXIT_NEGATIVE


def _cmd_normalize(args: argparse.Namespace) -> int:
    from repro.normalize import checkpoint as ckpt
    spec = _load_spec(args.dtd, args.fds, args.root)
    checkpoint_path = getattr(args, "checkpoint", None)
    resume = None
    if getattr(args, "resume", False):
        if not checkpoint_path:
            raise CheckpointError("--resume requires --checkpoint FILE")
        resume = ckpt.load(checkpoint_path)
        print(f"resuming from {checkpoint_path} "
              f"({resume.rounds_completed} step(s) already applied)",
              file=sys.stderr)
    on_step = None
    if checkpoint_path:
        on_step = lambda cp: ckpt.save(checkpoint_path, cp)  # noqa: E731
    result = spec.normalize(resume=resume, on_step=on_step)
    if checkpoint_path and os.path.exists(checkpoint_path):
        # The run converged; the checkpoint has served its purpose.
        os.unlink(checkpoint_path)
    for index, step in enumerate(result.steps, start=1):
        print(f"step {index}: {step.description}", file=sys.stderr)
    print(serialize_dtd(result.dtd), end="")
    if result.sigma:
        print()
        for fd in result.sigma:
            print(f"# FD: {fd}")
    if args.output:
        out = FilePath(args.output)
        out.mkdir(parents=True, exist_ok=True)
        (out / "normalized.dtd").write_text(serialize_dtd(result.dtd))
        (out / "normalized.fds").write_text(
            "".join(f"{fd}\n" for fd in result.sigma))
        print(f"\nwritten to {out}/", file=sys.stderr)
    return EXIT_OK


def _cmd_implies(args: argparse.Namespace) -> int:
    spec = _load_spec(args.dtd, args.fds, args.root)
    fd = FD.parse(args.fd)
    verdict = spec.decide(fd)
    if verdict.value == UNKNOWN:
        print(f"unknown ({verdict.reason})")
        return EXIT_RESOURCE
    answer = verdict.value == YES
    print("implied" if answer else "not implied")
    return EXIT_OK if answer else EXIT_NEGATIVE


def _cmd_tuples(args: argparse.Namespace) -> int:
    dtd = parse_dtd(FilePath(args.dtd).read_text(), root=args.root)
    tree = parse_xml(FilePath(args.xml).read_text())
    from repro.tuples.extract import tuples_of
    tuples = tuples_of(tree, dtd)
    paths = sorted({p for t in tuples for p in t.paths}, key=str)
    print("\t".join(str(p) for p in paths))
    for tuple_ in tuples:
        print("\t".join(tuple_.get(p) or "_|_" for p in paths))
    print(f"# {len(tuples)} tuple(s)", file=sys.stderr)
    return EXIT_OK


def _cmd_explain(args: argparse.Namespace) -> int:
    spec = _load_spec(args.dtd, args.fds, args.root)
    from repro.fd.explain import explain_implication
    print(explain_implication(spec.dtd, spec.sigma, args.fd), end="")
    return EXIT_OK


def _cmd_analyze(args: argparse.Namespace) -> int:
    spec = _load_spec(args.dtd, args.fds, args.root)
    from repro.report import analyze
    documents = [parse_xml(FilePath(path).read_text())
                 for path in args.xml]
    report = analyze(spec, documents)
    print(report.render(), end="")
    return EXIT_OK if report.in_xnf else EXIT_NEGATIVE


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import cli as bench_cli
    return bench_cli.dispatch(args)


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import cli as obs_cli
    return obs_cli.dispatch(args)


def _cmd_batch(args: argparse.Namespace) -> int:
    import json

    from repro.runtime import batch as batch_mod
    from repro.runtime import manifest as manifest_mod
    from repro.runtime.breaker import BreakerBoard
    from repro.runtime.pool import (
        PoolBackend,
        pool_available,
        resolve_workers,
    )
    from repro.runtime.retry import RetryPolicy

    if args.resume and not args.journal:
        print("error: --resume requires --journal FILE",
              file=sys.stderr)
        return EXIT_USAGE
    manifest = manifest_mod.load(args.manifest)
    seed = args.seed if args.seed is not None else manifest.seed
    policy = RetryPolicy(retries=args.retries,
                         backoff_base_ms=args.backoff_base, seed=seed)
    board = BreakerBoard(threshold=args.breaker_threshold,
                         probe_interval=args.breaker_probe_interval)
    try:
        workers = resolve_workers(args.workers,
                                  task_count=manifest.task_count)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    pool = None
    if workers > 1 and os.environ.get("REPRO_FAULTS"):
        # Fault-plan arms are process-global fire-once state; forked
        # workers would each inherit an unfired copy and the batch
        # would stop being replayable.  Degrade to serial, loudly.
        print("note: REPRO_FAULTS is active; running serially "
              "(fault plans are per-process)", file=sys.stderr)
        workers = 1
    if workers > 1 and not pool_available():
        print("note: fork start method unavailable; running serially",
              file=sys.stderr)
        workers = 1
    if workers > 1:
        pool = PoolBackend(workers, crash_retries=args.crash_retries,
                           stall_timeout=args.stall_timeout)
    journal = None
    if args.journal:
        from repro.runtime.journal import open_journal
        # May raise JournalError (exit 2): a mismatched meta record or
        # an unopenable/edited file means the journal cannot apply to
        # this invocation.  A torn trailing record is truncated with a
        # counted warning instead.
        journal = open_journal(args.journal, manifest=manifest,
                               policy=policy, board=board,
                               ensemble_mode=args.ensemble,
                               resume=args.resume)
        if args.resume:
            print(f"journal: resuming from {args.journal}: "
                  f"{journal.skipped} task(s) already complete, "
                  f"{journal.in_flight} in flight at interruption",
                  file=sys.stderr)
    heartbeat_file = getattr(args, "heartbeat", None)
    writer = None
    heartbeat_stream = None
    if heartbeat_file:
        from repro.runtime.heartbeat import HeartbeatWriter
        if heartbeat_file == "-":
            # stdout is reserved for the JSON summary; "-" streams the
            # heartbeats to stderr so `xnf batch m.json | jq .` parses.
            heartbeat_stream = sys.stderr
        else:
            try:
                heartbeat_stream = open(heartbeat_file, "w")
            except OSError as error:
                print(f"error: cannot open heartbeat file: {error}",
                      file=sys.stderr)
                if journal is not None:
                    journal.close()
                return EXIT_ERROR
        writer = HeartbeatWriter(
            heartbeat_stream, total=manifest.task_count, board=board,
            pool=pool, journal=journal,
            interval_s=args.heartbeat_interval)
    ledger_file = getattr(args, "ledger", None)
    ledger_writer = None
    ledger_stream = None
    if ledger_file:
        from repro.obs.ledger import LedgerWriter
        try:
            # Append: the ledger is a history; each run adds records
            # under a fresh run id, and `obs regress` compares runs.
            ledger_stream = open(ledger_file, "a")
        except OSError as error:
            print(f"error: cannot open ledger file: {error}",
                  file=sys.stderr)
            if heartbeat_stream not in (None, sys.stderr):
                heartbeat_stream.close()
            if journal is not None:
                journal.close()
            return EXIT_ERROR
        ledger_writer = LedgerWriter(ledger_stream, manifest=manifest,
                                     fsync=args.ledger_fsync)
    consumers = [consumer.task_done for consumer
                 in (writer, ledger_writer) if consumer is not None]
    if not consumers:
        on_task_done = None
    elif len(consumers) == 1:
        on_task_done = consumers[0]
    else:
        def on_task_done(outcome):
            for consumer in consumers:
                consumer(outcome)
    try:
        summary = batch_mod.run_batch(
            manifest, policy=policy, board=board,
            ensemble_mode=args.ensemble,
            on_task_done=on_task_done,
            backend=pool, journal=journal)
    finally:
        if writer is not None:
            writer.close()
        if heartbeat_stream not in (None, sys.stderr):
            heartbeat_stream.close()
        if ledger_stream is not None:
            ledger_stream.close()
        if journal is not None:
            journal.close()
    # Machine-readable summary on stdout, human account on stderr —
    # ``xnf batch m.json | jq .`` must always parse.
    json.dump(summary, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    counts = summary["counts"]
    print(f"batch: {counts['ok']}/{counts['total']} ok, "
          f"{counts['failed']} dead-lettered, {counts['lost']} lost"
          + (f"; {summary['ensemble_disagreements']} ensemble "
             "disagreement(s)" if args.ensemble != "off" else ""),
          file=sys.stderr)
    if journal is not None:
        jstats = journal.stats()
        print(f"journal: {jstats['appended']} record(s) appended, "
              f"{jstats['skipped']} task(s) skipped as complete, "
              f"{jstats['replayed']} re-dispatched", file=sys.stderr)
    if pool is not None:
        stats = pool.stats
        print(f"pool: {stats.workers} worker(s), "
              f"{stats.spawned} spawned, {stats.crashed} crashed, "
              f"{stats.requeued} requeued, {stats.stolen} stolen, "
              f"{stats.dead_lettered} crash dead-letter(s)",
              file=sys.stderr)
    if counts["failed"] == 0:
        return EXIT_OK
    if counts["ok"] == 0:
        return EXIT_NEGATIVE
    return EXIT_PARTIAL


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.serve import BudgetDefaults, NormalizationServer

    # A service without metrics is blind: serve always records and
    # publishes the registry on its own /metrics.
    obs_was_enabled = obs.is_enabled()
    obs.enable()
    overrides = {
        name: value for name, value in (
            ("timeout", getattr(args, "timeout", None)),
            ("max_steps", getattr(args, "max_steps", None)),
            ("max_branches", getattr(args, "max_branches", None)),
            ("max_nodes", getattr(args, "max_nodes", None)))
        if value is not None}
    server = NormalizationServer(
        args.port, args.host,
        max_inflight=args.max_inflight, max_queue=args.max_queue,
        queue_timeout_s=args.queue_timeout,
        drain_deadline_s=args.drain_deadline,
        cache_capacity=args.cache_size,
        defaults=BudgetDefaults(**overrides))
    stop = threading.Event()

    def _request_drain(signum: int, frame: object) -> None:
        # Runs for the first and any repeated SIGTERM/SIGINT; drain()
        # itself is idempotent, so a mid-drain signal is harmless.
        stop.set()

    # Handlers go in before the socket is announced: a supervisor that
    # reacts to the announce line may signal immediately, and that
    # must already mean "drain", never the default kill.
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _request_drain)
        signal.signal(signal.SIGINT, _request_drain)
    try:
        server.start()
    except OSError as error:
        # An occupied port / unbindable host is structural, like a bad
        # flag: nothing ran, nothing partial exists — including the
        # obs enablement above (in-process callers keep their state).
        if not obs_was_enabled:
            obs.disable()
        print(f"error: cannot bind {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return EXIT_USAGE
    print(f"serve: listening on {server.url()} "
          "(POST /v1/implication /v1/xnf-check /v1/normalize; "
          "GET /metrics /healthz /readyz)",
          file=sys.stderr, flush=True)
    try:
        # Periodic wake-ups keep the wait signal-responsive on every
        # platform (a bare Event.wait can ride through handlers).
        while not stop.wait(0.5):
            pass
    except KeyboardInterrupt:
        pass
    print(f"serve: draining (deadline {args.drain_deadline}s)",
          file=sys.stderr, flush=True)
    if server.drain(args.drain_deadline):
        print("serve: drained cleanly", file=sys.stderr, flush=True)
        return EXIT_OK
    print("serve: drain deadline expired with requests in flight",
          file=sys.stderr, flush=True)
    return EXIT_RESOURCE


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.dtd.classify import (
        disjunction_measure, is_disjunctive_dtd, is_simple_dtd)
    dtd = parse_dtd(FilePath(args.dtd).read_text(), root=args.root)
    print(f"recursive:   {dtd.is_recursive}")
    simple = is_simple_dtd(dtd)
    print(f"simple:      {simple}")
    disjunctive = is_disjunctive_dtd(dtd)
    print(f"disjunctive: {disjunctive}")
    if disjunctive and not dtd.is_recursive:
        print(f"N_D:         {disjunction_measure(dtd)}")
    if not dtd.is_recursive:
        print(f"paths:       {len(dtd.paths)}")
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xnf",
        description="XML normal form toolkit (Arenas & Libkin, PODS 2002)")
    parser.add_argument("--root", help="root element type "
                        "(default: first declared)")
    parser.add_argument("--stats", action="store_true",
                        help="print a metrics table to stderr when done")
    parser.add_argument("--trace", metavar="FILE",
                        help="write a JSON-lines span trace to FILE")
    parser.add_argument("--metrics-port", type=int, metavar="N",
                        help="serve Prometheus /metrics and /healthz "
                        "on localhost:N while the command runs "
                        "(0 picks a free port, announced on stderr)")
    parser.add_argument("--timeout", type=float, metavar="SECONDS",
                        help="wall-clock deadline; exit 4 when reached")
    parser.add_argument("--max-steps", type=int, metavar="N",
                        help="engine work-unit budget; exit 4 when "
                        "exhausted")
    parser.add_argument("--max-branches", type=int, metavar="N",
                        help="disjunction/case-split branch budget; "
                        "exit 4 when exhausted")
    parser.add_argument("--max-nodes", type=int, metavar="N",
                        help="materialized node budget; exit 4 when "
                        "exhausted")

    # The observability and budget flags are also accepted *after* the
    # subcommand (``xnf check d.dtd d.fds --stats``).  SUPPRESS keeps a
    # subparser from overwriting a value parsed at the top level with
    # its default.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--stats", action="store_true",
                        default=argparse.SUPPRESS,
                        help=argparse.SUPPRESS)
    common.add_argument("--trace", metavar="FILE",
                        default=argparse.SUPPRESS,
                        help=argparse.SUPPRESS)
    common.add_argument("--metrics-port", type=int, metavar="N",
                        default=argparse.SUPPRESS,
                        help=argparse.SUPPRESS)
    common.add_argument("--timeout", type=float, metavar="SECONDS",
                        default=argparse.SUPPRESS,
                        help=argparse.SUPPRESS)
    common.add_argument("--max-steps", type=int, metavar="N",
                        default=argparse.SUPPRESS,
                        help=argparse.SUPPRESS)
    common.add_argument("--max-branches", type=int, metavar="N",
                        default=argparse.SUPPRESS,
                        help=argparse.SUPPRESS)
    common.add_argument("--max-nodes", type=int, metavar="N",
                        default=argparse.SUPPRESS,
                        help=argparse.SUPPRESS)

    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", parents=[common],
                           help="test whether (D, Sigma) is in XNF")
    check.add_argument("dtd")
    check.add_argument("fds")
    check.set_defaults(func=_cmd_check)

    norm = sub.add_parser("normalize", parents=[common],
                          help="run the XNF decomposition algorithm")
    norm.add_argument("dtd")
    norm.add_argument("fds")
    norm.add_argument("-o", "--output", help="directory for the results")
    norm.add_argument("--checkpoint", metavar="FILE",
                      help="snapshot the run to FILE after every applied "
                      "transform (deleted on success)")
    norm.add_argument("--resume", action="store_true",
                      help="restart from the checkpoint in --checkpoint "
                      "FILE instead of from scratch")
    norm.set_defaults(func=_cmd_normalize)

    imp = sub.add_parser("implies", parents=[common],
                         help="decide (D, Sigma) |- FD")
    imp.add_argument("dtd")
    imp.add_argument("fds")
    imp.add_argument("fd", help='query, e.g. "db.conf.title.S -> db.conf"')
    imp.set_defaults(func=_cmd_implies)

    tup = sub.add_parser("tuples", parents=[common],
                         help="print tuples_D(T) as a table")
    tup.add_argument("dtd")
    tup.add_argument("xml")
    tup.set_defaults(func=_cmd_tuples)

    cls = sub.add_parser("classify", parents=[common],
                         help="classify a DTD (Section 7)")
    cls.add_argument("dtd")
    cls.set_defaults(func=_cmd_classify)

    exp = sub.add_parser("explain", parents=[common],
                         help="show the derivation of an implication")
    exp.add_argument("dtd")
    exp.add_argument("fds")
    exp.add_argument("fd")
    exp.set_defaults(func=_cmd_explain)

    ana = sub.add_parser("analyze", parents=[common],
                         help="design analysis + redundancy report")
    ana.add_argument("dtd")
    ana.add_argument("fds")
    ana.add_argument("xml", nargs="*", help="documents to measure")
    ana.set_defaults(func=_cmd_analyze)

    from repro.bench.cli import configure_parser as _configure_bench
    ben = sub.add_parser("bench",
                         help="benchmark observatory "
                         "(docs/BENCHMARKS.md)")
    _configure_bench(ben)
    ben.set_defaults(func=_cmd_bench)

    from repro.obs.cli import configure_parser as _configure_obs
    obs_parser = sub.add_parser("obs",
                                help="profiling observatory: fold "
                                "--trace logs into profiles "
                                "(docs/OBSERVABILITY.md)")
    _configure_obs(obs_parser)
    obs_parser.set_defaults(func=_cmd_obs)

    def _nonneg_int(text: str) -> int:
        value = int(text)
        if value < 0:
            raise argparse.ArgumentTypeError("must be >= 0")
        return value

    def _nonneg_float(text: str) -> float:
        value = float(text)
        if value < 0:
            raise argparse.ArgumentTypeError("must be >= 0")
        return value

    def _pos_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return value

    bat = sub.add_parser("batch", parents=[common],
                         help="run a task manifest crash-tolerantly "
                         "(JSON summary on stdout)")
    bat.add_argument("manifest", help="batch manifest JSON file")
    bat.add_argument("--retries", type=_nonneg_int, default=2,
                     metavar="N",
                     help="re-attempts per task for transient failures "
                     "(default 2)")
    bat.add_argument("--backoff-base", type=_nonneg_float, default=100.0,
                     metavar="MS",
                     help="exponential-backoff base in milliseconds; "
                     "0 disables waiting (default 100)")
    bat.add_argument("--ensemble", choices=("off", "check", "strict"),
                     default="off",
                     help="differential engine ensemble: cross-check "
                     "every implication decision (check records "
                     "disagreements, strict dead-letters them)")
    bat.add_argument("--seed", type=int, default=None,
                     help="backoff-jitter seed (default: the "
                     "manifest's defaults.seed)")
    bat.add_argument("--breaker-threshold", type=_pos_int, default=5,
                     metavar="N",
                     help="consecutive same-signature failures that "
                     "open a circuit breaker (default 5)")
    bat.add_argument("--breaker-probe-interval", type=_pos_int,
                     default=8, metavar="N",
                     help="admit every N-th task as a probe while a "
                     "breaker is open (default 8)")
    def _workers_spec(text: str) -> str:
        if text != "auto":
            try:
                if int(text) < 1:
                    raise ValueError
            except ValueError:
                raise argparse.ArgumentTypeError(
                    "must be 'auto' or a positive integer") from None
        return text

    bat.add_argument("--workers", type=_workers_spec, default="auto",
                     metavar="N",
                     help="worker processes for parallel execution: "
                     "'auto' (one per CPU core, the default) or an "
                     "explicit count; 1 runs serially.  The merged "
                     "summary is byte-identical to a serial run "
                     "whenever no circuit breaker opens; past that "
                     "point breaker decisions depend on completion "
                     "order (exact scope: docs/ROBUSTNESS.md)")
    bat.add_argument("--crash-retries", type=_nonneg_int, default=3,
                     metavar="N",
                     help="worker deaths one task may survive before "
                     "it is dead-lettered with reason worker_crash "
                     "(default 3)")
    bat.add_argument("--stall-timeout", type=_nonneg_float,
                     default=0.0, metavar="SECONDS",
                     help="SIGKILL and requeue a worker silent for "
                     "this long with a task in flight; 0 disables "
                     "stall detection (default 0)")
    bat.add_argument("--heartbeat", metavar="FILE",
                     help="append JSON-lines progress heartbeats to "
                     "FILE while the batch runs ('-' streams them to "
                     "stderr)")
    bat.add_argument("--heartbeat-interval", type=_nonneg_float,
                     default=1.0, metavar="SECONDS",
                     help="minimum seconds between heartbeat records; "
                     "0 emits one per completed task (default 1)")
    bat.add_argument("--ledger", metavar="FILE",
                     help="append one run-ledger record per task to "
                     "FILE (query with `xnf obs history`, gate with "
                     "`xnf obs regress`)")
    bat.add_argument("--ledger-fsync", action="store_true",
                     help="fsync the --ledger file after every record "
                     "(crash-durable history at a per-record I/O "
                     "cost; by default ledger durability is "
                     "flush-only — docs/OBSERVABILITY.md)")
    bat.add_argument("--journal", metavar="FILE",
                     help="write-ahead journal: append an fsync'd "
                     "intent record before each dispatch and a result "
                     "record after each terminal outcome, so a killed "
                     "supervisor can --resume without redoing or "
                     "losing any completed task")
    bat.add_argument("--resume", action="store_true",
                     help="replay the --journal FILE: verify its meta "
                     "fingerprints (mismatch exits 2), skip completed "
                     "tasks, re-dispatch in-flight ones, and emit a "
                     "summary byte-identical to an uninterrupted "
                     "serial run whenever no breaker opened "
                     "(docs/ROBUSTNESS.md)")
    bat.set_defaults(func=_cmd_batch)

    def _pos_float(text: str) -> float:
        value = float(text)
        if value <= 0:
            raise argparse.ArgumentTypeError("must be positive")
        return value

    srv = sub.add_parser("serve", parents=[common],
                         help="run the long-lived HTTP normalization "
                         "service (docs/SERVE.md); the budget flags "
                         "set per-request ceilings")
    srv.add_argument("--port", type=int, default=8300, metavar="N",
                     help="service port; 0 picks a free one, announced "
                     "on stderr (default 8300)")
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    srv.add_argument("--max-inflight", type=_pos_int, default=8,
                     metavar="N",
                     help="requests executing concurrently (default 8)")
    srv.add_argument("--max-queue", type=_nonneg_int, default=64,
                     metavar="N",
                     help="requests waiting for a slot before new "
                     "arrivals are shed with 429 (default 64)")
    srv.add_argument("--queue-timeout", type=_pos_float, default=5.0,
                     metavar="SECONDS",
                     help="longest a request may wait in the admission "
                     "queue before a 503 (default 5)")
    srv.add_argument("--drain-deadline", type=_pos_float, default=10.0,
                     metavar="SECONDS",
                     help="grace period for in-flight requests after "
                     "SIGTERM (default 10)")
    srv.add_argument("--cache-size", type=_pos_int, default=128,
                     metavar="N",
                     help="parsed specs kept in the fingerprint-keyed "
                     "LRU (default 128)")
    srv.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    want_stats = bool(getattr(args, "stats", False)) or (
        os.environ.get("REPRO_OBS", "") not in ("", "0"))
    trace_file = getattr(args, "trace", None)
    budget_kwargs = {
        "deadline": getattr(args, "timeout", None),
        "max_steps": getattr(args, "max_steps", None),
        "max_branches": getattr(args, "max_branches", None),
        "max_nodes": getattr(args, "max_nodes", None),
    }
    flag_names = {"deadline": "--timeout", "max_steps": "--max-steps",
                  "max_branches": "--max-branches",
                  "max_nodes": "--max-nodes"}
    for key, value in budget_kwargs.items():
        if value is not None and value <= 0:
            parser.error(f"{flag_names[key]} must be positive")

    metrics_port = getattr(args, "metrics_port", None)
    if metrics_port is not None and not 0 <= metrics_port <= 65535:
        parser.error("--metrics-port must be between 0 and 65535")
    if args.command == "serve" and metrics_port is not None:
        # serve publishes /metrics on the service port itself; a
        # second exporter would split the scrape surface.  Refuse a
        # conflicting port, treat a matching one as an alias.
        if metrics_port != args.port:
            print("error: xnf serve publishes /metrics on the service "
                  f"port ({args.port}); --metrics-port {metrics_port} "
                  "would spawn a second exporter — drop the flag or "
                  "make it equal to --port", file=sys.stderr)
            return EXIT_USAGE
        print(f"note: --metrics-port {metrics_port} aliases the "
              "service port; /metrics is served there", file=sys.stderr)
        metrics_port = None
        args.metrics_port = None

    was_enabled = obs.is_enabled()
    sink = None
    trace_stream = None
    exporter = None
    want_obs = want_stats or bool(trace_file) or metrics_port is not None
    if want_obs:
        obs.enable()
        if not was_enabled:
            obs.reset()  # the table should cover this run only
        if metrics_port is not None:
            try:
                exporter = obs.start_exporter(metrics_port)
            except OSError as error:
                print(f"error: cannot start metrics exporter: {error}",
                      file=sys.stderr)
                if not was_enabled:
                    obs.disable()
                return EXIT_ERROR
            print(f"metrics: serving on {exporter.url('/metrics')} "
                  f"(and /healthz)", file=sys.stderr)
        if trace_file:
            try:
                trace_stream = open(trace_file, "w")
            except OSError as error:
                print(f"error: cannot open trace file: {error}",
                      file=sys.stderr)
                if exporter is not None:
                    exporter.stop()
                if not was_enabled:
                    obs.disable()
                return EXIT_ERROR
            sink = obs.JsonLinesSink(trace_stream)
            obs.add_sink(sink)
            # One trace id per invocation: every span of this run —
            # including spans shipped back from forked pool workers —
            # carries it, so stitched records are attributable to the
            # invocation that produced them.
            import uuid
            obs.set_context(
                obs.SpanContext(trace_id=uuid.uuid4().hex[:16]))
    fault_plan = None
    fault_spec = os.environ.get("REPRO_FAULTS", "")
    if fault_spec:
        from repro import faults
        try:
            fault_plan = faults.plan_from_spec(
                fault_spec,
                seed=int(os.environ.get("REPRO_FAULTS_SEED", "0")))
        except (ReproError, ValueError) as error:
            print(f"error: bad REPRO_FAULTS spec: {error}",
                  file=sys.stderr)
            return EXIT_USAGE
    # `serve` interprets the budget flags as per-request ceilings
    # (installed thread-scoped around each request by the handlers); a
    # process-wide install here would tick across all requests and the
    # deadline would kill the daemon itself.
    process_budget = {} if args.command == "serve" else budget_kwargs
    try:
        with obs.span(f"cli.{args.command}"):
            with guard.limits(**process_budget):
                if fault_plan is not None:
                    from repro import faults
                    with faults.use(fault_plan):
                        return args.func(args)
                return args.func(args)
    except ResourceExhausted as error:
        print(f"error: resource limit reached: {error}", file=sys.stderr)
        if error.partial:
            detail = ", ".join(f"{k}={v}" for k, v
                               in sorted(error.partial.items()))
            print(f"partial progress: {detail}", file=sys.stderr)
        return EXIT_RESOURCE
    except (CheckpointError, JournalError, ManifestError) as error:
        # A bad/mismatched checkpoint or journal or an unusable batch
        # manifest is a usage problem, not a pipeline failure: the
        # flags/arguments named something that cannot apply to this
        # invocation.
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    finally:
        if exporter is not None:
            exporter.stop()
        if sink is not None:
            obs.remove_sink(sink)
            obs.clear_context()
            assert trace_stream is not None
            trace_stream.close()
        if want_stats:
            print(obs.render.metrics_table(obs.snapshot()),
                  file=sys.stderr, end="")
        if not was_enabled and want_obs:
            obs.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
