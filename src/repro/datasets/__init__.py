"""The paper's running examples and synthetic workload generators.

Concrete datasets (verbatim from the paper):

* :mod:`university` — Example 1.1 / Figure 1 (courses, students);
* :mod:`dblp` — Example 1.2 (conferences, issues, inproceedings);
* :mod:`ebxml` — Figure 5 (the Business Process Specification Schema
  fragment, used as the paper's real-world *simple* DTD witness);
* :mod:`faq` — the Section 7 FAQ ``section`` production (relational
  but not disjunctive);
* :mod:`nested_geo` — Figure 3 (Country/State/City nested relation).

:mod:`generators` builds random simple DTDs, FD sets and conforming
documents (seeded) for property tests and scaling benchmarks.
"""

from repro.datasets.university import (
    university_document,
    university_fds,
    university_spec,
)
from repro.datasets.dblp import dblp_document, dblp_fds, dblp_spec
from repro.datasets.ebxml import ebxml_dtd
from repro.datasets.faq import faq_dtd
from repro.datasets.nested_geo import geo_instance, geo_schema
from repro.datasets.generators import (
    random_document,
    random_fds,
    random_simple_dtd,
    scaled_university_spec,
)

__all__ = [
    "university_spec", "university_fds", "university_document",
    "dblp_spec", "dblp_fds", "dblp_document",
    "ebxml_dtd", "faq_dtd", "geo_schema", "geo_instance",
    "random_simple_dtd", "random_fds", "random_document",
    "scaled_university_spec",
]
