"""Seeded random generators for property tests and benchmarks.

* :func:`random_simple_dtd` — random non-recursive simple DTDs (each
  production a trivial regex over fresh children, attributes
  sprinkled);
* :func:`random_fds` — random FD sets over a DTD's paths, in the
  Section 6 shape (at most one element path per LHS);
* :func:`random_document` — random conforming documents with a small
  value domain (so FDs both hold and fail interestingly);
* :func:`scaled_university_spec` — the Example 1.1 schema pattern
  repeated ``k`` times, the workload for the normalization and
  implication scaling benchmarks (Theorem 3's quadratic regime).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.dtd.model import DTD
from repro.dtd.paths import Path
from repro.fd.model import FD
from repro.regex.analysis import Multiplicity
from repro.regex.ast import EPSILON, PCDATA, Regex, concat, optional, plus, star, sym
from repro.spec import XMLSpec
from repro.xmltree.model import XMLTree

_WRAPPERS = {
    Multiplicity.ONE: lambda r: r,
    Multiplicity.OPT: optional,
    Multiplicity.PLUS: plus,
    Multiplicity.STAR: star,
}


def random_simple_dtd(rng: random.Random, *, max_depth: int = 3,
                      max_children: int = 3,
                      max_attrs: int = 2,
                      text_probability: float = 0.3) -> DTD:
    """A random non-recursive simple DTD."""
    counter = 0
    productions: dict[str, Regex] = {}
    attributes: dict[str, frozenset[str]] = {}

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}{counter}"

    def build(depth: int) -> str:
        name = fresh("e")
        n_attrs = rng.randint(0, max_attrs)
        if n_attrs:
            attributes[name] = frozenset(
                f"@a{fresh('')}" for _ in range(n_attrs))
        if depth >= max_depth or rng.random() < 0.25:
            if rng.random() < text_probability:
                productions[name] = PCDATA
            else:
                productions[name] = EPSILON
            return name
        n_children = rng.randint(1, max_children)
        parts = []
        for _ in range(n_children):
            child = build(depth + 1)
            wrapper = _WRAPPERS[rng.choice(list(_WRAPPERS))]
            parts.append(wrapper(sym(child)))
        productions[name] = concat(parts)
        return name

    root = build(0)
    return DTD(root=root, productions=productions, attributes=attributes)


def random_fds(rng: random.Random, dtd: DTD, count: int) -> list[FD]:
    """Random FDs over ``paths(D)`` in the Section 6 shape."""
    paths = sorted(dtd.paths, key=str)
    value_paths = [p for p in paths if not p.is_element]
    element_paths = [p for p in paths if p.is_element]
    fds: list[FD] = []
    attempts = 0
    while len(fds) < count and attempts < count * 20:
        attempts += 1
        lhs: set[Path] = set()
        if element_paths and rng.random() < 0.5:
            lhs.add(rng.choice(element_paths))
        n_attrs = rng.randint(0 if lhs else 1, 2)
        if value_paths:
            lhs.update(rng.choice(value_paths) for _ in range(n_attrs))
        if not lhs:
            continue
        rhs = rng.choice(paths)
        if rhs in lhs:
            continue
        fds.append(FD(frozenset(lhs), frozenset({rhs})))
    return fds


def random_document(rng: random.Random, dtd: DTD, *,
                    max_repeat: int = 3,
                    domain: Sequence[str] = ("0", "1", "2")) -> XMLTree:
    """A random conforming document (stars/pluses repeated up to
    ``max_repeat``; values drawn from ``domain``)."""
    from repro.regex.ast import (
        Concat, Optional as ROptional, PCData, Plus as RPlus,
        Star as RStar, Sym as RSym,
    )

    tree = XMLTree()

    def trivial_parts(production) -> list[tuple[str, int, int]]:
        """(symbol, min, max-repeat) in production order; the generator
        only ever produces trivial regexes, so this walk is total."""
        parts = production.parts if isinstance(production, Concat) else [
            production]
        result: list[tuple[str, int, int]] = []
        for part in parts:
            if isinstance(part, RSym):
                result.append((part.name, 1, 1))
            elif isinstance(part, ROptional):
                result.append((part.inner.name, 0, 1))
            elif isinstance(part, RPlus):
                result.append((part.inner.name, 1, max_repeat))
            elif isinstance(part, RStar):
                result.append((part.inner.name, 0, max_repeat))
            else:  # pragma: no cover - generator invariant
                raise AssertionError(f"non-trivial part {part!r}")
        return result

    def build(element: str, parent: str | None) -> None:
        node = tree.add_node(
            element, parent=parent,
            attrs={attr: rng.choice(domain)
                   for attr in sorted(dtd.attrs(element))})
        production = dtd.content(element)
        if isinstance(production, PCData):
            tree.set_text(node, rng.choice(domain))
            return
        if isinstance(production, (RSym, ROptional, RPlus, RStar, Concat)):
            for child, low, high in trivial_parts(production):
                for _ in range(rng.randint(low, high)):
                    build(child, node)

    build(dtd.root, None)
    return tree.freeze()


def scaled_university_spec(k: int) -> XMLSpec:
    """``k`` side-by-side copies of the Example 1.1 schema (each with
    its own FD1-FD3), under one root: the scaling workload for the
    implication, XNF and normalization benchmarks."""
    lines = ["<!ELEMENT uni (%s)>" % ", ".join(
        f"courses{i}" for i in range(k))]
    fd_lines: list[str] = []
    for i in range(k):
        lines.extend([
            f"<!ELEMENT courses{i} (course{i}*)>",
            f"<!ELEMENT course{i} (title{i}, taken_by{i})>",
            f"<!ATTLIST course{i} cno CDATA #REQUIRED>",
            f"<!ELEMENT title{i} (#PCDATA)>",
            f"<!ELEMENT taken_by{i} (student{i}*)>",
            f"<!ELEMENT student{i} (name{i}, grade{i})>",
            f"<!ATTLIST student{i} sno CDATA #REQUIRED>",
            f"<!ELEMENT name{i} (#PCDATA)>",
            f"<!ELEMENT grade{i} (#PCDATA)>",
        ])
        course = f"uni.courses{i}.course{i}"
        student = f"{course}.taken_by{i}.student{i}"
        fd_lines.extend([
            f"{course}.@cno -> {course}",
            f"{{{course}, {student}.@sno}} -> {student}",
            f"{student}.@sno -> {student}.name{i}.S",
        ])
    return XMLSpec.parse("\n".join(lines), "\n".join(fd_lines))
