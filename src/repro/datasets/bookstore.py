"""A larger synthetic workload: an online bookstore catalogue.

Not from the paper — a realistic schema whose FD set exhibits *three*
anomalies at once, exercising both transformations and multi-step
normalization:

* ``publisher`` determines ``publisher_city`` (a university-style
  value dependency — *create element type*);
* all ``item`` children of one ``order`` share the order's
  ``currency`` (a DBLP-style relative dependency — *move attribute*);
* ``isbn`` determines the book ``format`` (another create).

The generator produces conforming documents of any size with the
dependencies satisfied, for integration tests and benchmarks.
"""

from __future__ import annotations

import random

from repro.spec import XMLSpec
from repro.xmltree.model import XMLTree

BOOKSTORE_DTD = """
<!ELEMENT store (book*, order*)>
<!ELEMENT book (blurb?)>
<!ATTLIST book
    isbn CDATA #REQUIRED
    format CDATA #REQUIRED
    publisher CDATA #REQUIRED
    publisher_city CDATA #REQUIRED>
<!ELEMENT blurb (#PCDATA)>
<!ELEMENT order (item+)>
<!ATTLIST order
    oid CDATA #REQUIRED>
<!ELEMENT item EMPTY>
<!ATTLIST item
    line CDATA #REQUIRED
    bisbn CDATA #REQUIRED
    currency CDATA #REQUIRED>
"""

BOOKSTORE_FDS = """
store.book.@isbn -> store.book
store.order.@oid -> store.order
{store.order, store.order.item.@line} -> store.order.item
store.book.@publisher -> store.book.@publisher_city
store.book.@isbn -> store.book.@format
store.order -> store.order.item.@currency
"""


def bookstore_spec() -> XMLSpec:
    """The three-anomaly bookstore specification."""
    return XMLSpec.parse(BOOKSTORE_DTD, BOOKSTORE_FDS)


def bookstore_document(books: int = 6, orders: int = 4,
                       items_per_order: int = 3, *,
                       publishers: int = 3,
                       seed: int = 0) -> XMLTree:
    """A conforming document satisfying every FD (deterministic)."""
    rng = random.Random(seed)
    cities = {f"pub{i}": f"city{i % max(1, publishers // 2)}"
              for i in range(publishers)}
    formats = {}
    tree = XMLTree()
    store = tree.add_node("store")
    for b in range(books):
        publisher = f"pub{rng.randrange(publishers)}"
        isbn = f"isbn{b}"
        formats[isbn] = rng.choice(["hardcover", "paperback", "epub"])
        book = tree.add_node("book", parent=store, attrs={
            "@isbn": isbn,
            "@format": formats[isbn],
            "@publisher": publisher,
            "@publisher_city": cities[publisher],
        })
        if rng.random() < 0.5:
            tree.add_node("blurb", parent=book,
                          text=f"About book {b}")
    for o in range(orders):
        order = tree.add_node("order", parent=store,
                              attrs={"@oid": f"o{o}"})
        currency = rng.choice(["EUR", "USD", "CAD"])
        for i in range(items_per_order):
            tree.add_node("item", parent=order, attrs={
                "@line": str(i),
                "@bisbn": f"isbn{rng.randrange(max(1, books))}",
                "@currency": currency,
            })
    return tree.freeze()
