"""Figure 3: the Country/State/City nested relation."""

from __future__ import annotations

from repro.nested.instance import NestedRelation
from repro.nested.schema import NestedSchema


def geo_schema() -> NestedSchema:
    """``H1 = Country(H2)*, H2 = State(H3)*, H3 = City``."""
    h3 = NestedSchema("H3", ("City",))
    h2 = NestedSchema("H2", ("State",), (h3,))
    return NestedSchema("H1", ("Country",), (h2,))


def geo_instance() -> NestedRelation:
    """The Figure 3(a) instance."""
    return NestedRelation.build(geo_schema(), [
        {"Country": "United States", "H2": [
            {"State": "Texas", "H3": [
                {"City": "Houston"}, {"City": "Dallas"}]},
            {"State": "Ohio", "H3": [
                {"City": "Columbus"}, {"City": "Cleveland"}]},
        ]},
    ])
