"""Figure 5: the ebXML Business Process Specification Schema fragment.

The paper exhibits this fragment as a real-world *simple* DTD: every
production, including the large disjunctions under ``*``, is
permutation-equivalent to a trivial regular expression.  Element types
referenced by the fragment but not declared in it are declared EMPTY
here so the DTD is self-contained (the figure shows only part of the
schema).  The original schema lists ``ProcessSpecification`` inside its
own production; Definition 1 assumes (wlog) that the root occurs in no
production, so that self-reference is dropped — it plays no role in the
simplicity claim the figure supports.
"""

from __future__ import annotations

from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd

EBXML_DTD = """
<!ELEMENT ProcessSpecification (Documentation*, SubstitutionSet*,
    (Include | BusinessDocument | Package | BinaryCollaboration |
     BusinessTransaction | MultiPartyCollaboration)*)>
<!ATTLIST ProcessSpecification
    name CDATA #REQUIRED
    version CDATA #REQUIRED>
<!ELEMENT Include (Documentation*)>
<!ATTLIST Include
    name CDATA #REQUIRED>
<!ELEMENT BusinessDocument (ConditionExpression?, Documentation*)>
<!ATTLIST BusinessDocument
    name CDATA #REQUIRED>
<!ELEMENT SubstitutionSet (DocumentSubstitution | AttributeSubstitution |
    Documentation)*>
<!ELEMENT BinaryCollaboration (Documentation*, InitiatingRole,
    RespondingRole, (Documentation | Start | Transition | Success |
    Failure | BusinessTransactionActivity | CollaborationActivity |
    Fork | Join)*)>
<!ATTLIST BinaryCollaboration
    name CDATA #REQUIRED>
<!ELEMENT Transition (ConditionExpression?, Documentation*)>
<!ELEMENT Documentation (#PCDATA)>
<!ELEMENT ConditionExpression EMPTY>
<!ATTLIST ConditionExpression
    expressionLanguage CDATA #REQUIRED
    expression CDATA #REQUIRED>
<!ELEMENT Package EMPTY>
<!ELEMENT BusinessTransaction (Documentation*)>
<!ATTLIST BusinessTransaction
    name CDATA #REQUIRED>
<!ELEMENT MultiPartyCollaboration (Documentation*)>
<!ELEMENT DocumentSubstitution EMPTY>
<!ELEMENT AttributeSubstitution EMPTY>
<!ELEMENT InitiatingRole EMPTY>
<!ATTLIST InitiatingRole
    name CDATA #REQUIRED>
<!ELEMENT RespondingRole EMPTY>
<!ATTLIST RespondingRole
    name CDATA #REQUIRED>
<!ELEMENT Start EMPTY>
<!ELEMENT Success EMPTY>
<!ELEMENT Failure EMPTY>
<!ELEMENT BusinessTransactionActivity EMPTY>
<!ELEMENT CollaborationActivity EMPTY>
<!ELEMENT Fork EMPTY>
<!ELEMENT Join EMPTY>
"""


def ebxml_dtd() -> DTD:
    """The (self-contained) Figure 5 fragment."""
    return parse_dtd(EBXML_DTD)
