"""Example 1.1 / Figure 1: the university DTD and document."""

from __future__ import annotations

import random

from repro.spec import XMLSpec
from repro.xmltree.model import XMLTree
from repro.xmltree.parser import parse_xml

UNIVERSITY_DTD = """
<!ELEMENT courses (course*)>
<!ELEMENT course (title, taken_by)>
<!ATTLIST course
    cno CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT taken_by (student*)>
<!ELEMENT student (name, grade)>
<!ATTLIST student
    sno CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT grade (#PCDATA)>
"""

#: (FD1) cno is a key of course; (FD2) within a course, sno identifies
#: the student subelement; (FD3) sno determines the student name —
#: the redundancy-causing dependency (Example 4.1).
UNIVERSITY_FDS = """
courses.course.@cno -> courses.course
{courses.course, courses.course.taken_by.student.@sno} -> courses.course.taken_by.student
courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S
"""

#: Figure 1(a): two courses; Deere (st1) takes both, so the name is
#: stored redundantly.
UNIVERSITY_DOCUMENT = """
<courses>
  <course cno="csc200">
    <title>Automata Theory</title>
    <taken_by>
      <student sno="st1"><name>Deere</name><grade>A+</grade></student>
      <student sno="st2"><name>Smith</name><grade>B-</grade></student>
    </taken_by>
  </course>
  <course cno="mat100">
    <title>Calculus I</title>
    <taken_by>
      <student sno="st1"><name>Deere</name><grade>A-</grade></student>
      <student sno="st3"><name>Smith</name><grade>B+</grade></student>
    </taken_by>
  </course>
</courses>
"""


def university_spec() -> XMLSpec:
    """``(D, Σ)`` of Example 1.1 / Example 4.1."""
    return XMLSpec.parse(UNIVERSITY_DTD, UNIVERSITY_FDS)


def university_fds() -> list:
    return university_spec().sigma


def university_document() -> XMLTree:
    """The Figure 1(a) document."""
    return parse_xml(UNIVERSITY_DOCUMENT)


def synthetic_university_document(courses: int, students_per_course: int,
                                  *, student_pool: int | None = None,
                                  seed: int = 0) -> XMLTree:
    """A larger Figure 1(a)-shaped document.

    Students are drawn from a shared pool so names repeat across
    courses, exercising the FD3 redundancy exactly as in the paper's
    motivation.  Deterministic for a given seed.
    """
    rng = random.Random(seed)
    pool = student_pool if student_pool is not None else max(
        2, courses * students_per_course // 2)
    names = [f"Name{i % max(1, pool // 2)}" for i in range(pool)]
    tree = XMLTree()
    root = tree.add_node("courses")
    for c in range(courses):
        course = tree.add_node("course", parent=root,
                               attrs={"@cno": f"c{c}"})
        tree.add_node("title", parent=course, text=f"Course {c}")
        taken_by = tree.add_node("taken_by", parent=course)
        chosen = rng.sample(range(pool), min(students_per_course, pool))
        for s in chosen:
            student = tree.add_node("student", parent=taken_by,
                                    attrs={"@sno": f"st{s}"})
            tree.add_node("name", parent=student, text=names[s])
            tree.add_node("grade", parent=student,
                          text=rng.choice(["A", "B", "C", "D"]))
    return tree.freeze()
