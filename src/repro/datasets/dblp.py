"""Example 1.2: the DBLP conference fragment.

The paper's DTD reuses ``title`` under both ``conf`` and
``inproceedings``; paths keep the two apart, and the normalization
step (moving ``year``) touches neither, so the shared element type is
preserved verbatim.  The ``key`` attribute is declared ``ID`` in the
paper; attribute types do not affect the FD semantics (Definition 3),
so it is coded ``CDATA`` here like every other attribute.
"""

from __future__ import annotations

import random

from repro.spec import XMLSpec
from repro.xmltree.model import XMLTree
from repro.xmltree.parser import parse_xml

DBLP_DTD = """
<!ELEMENT db (conf*)>
<!ELEMENT conf (title, issue+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT issue (inproceedings+)>
<!ELEMENT inproceedings (author+, title, booktitle)>
<!ATTLIST inproceedings
    key CDATA #REQUIRED
    pages CDATA #REQUIRED
    year CDATA #REQUIRED>
<!ELEMENT author (#PCDATA)>
<!ELEMENT booktitle (#PCDATA)>
"""

#: (FD4) a conference is identified by its title; (FD5) all papers in
#: one issue share the year — the anomalous dependency of Example 5.2.
DBLP_FDS = """
db.conf.title.S -> db.conf
db.conf.issue -> db.conf.issue.inproceedings.@year
"""

DBLP_DOCUMENT = """
<db>
  <conf>
    <title>PODS</title>
    <issue>
      <inproceedings key="AL02" pages="85-96" year="2002">
        <author>Arenas</author><author>Libkin</author>
        <title>A Normal Form for XML Documents</title>
        <booktitle>PODS 2002</booktitle>
      </inproceedings>
      <inproceedings key="BDFHT02" pages="97-108" year="2002">
        <author>Buneman</author>
        <title>Keys for XML</title>
        <booktitle>PODS 2002</booktitle>
      </inproceedings>
    </issue>
    <issue>
      <inproceedings key="FL01" pages="114-125" year="2001">
        <author>Fan</author><author>Libkin</author>
        <title>On XML integrity constraints</title>
        <booktitle>PODS 2001</booktitle>
      </inproceedings>
    </issue>
  </conf>
</db>
"""


def dblp_spec() -> XMLSpec:
    """``(D, Σ)`` of Example 1.2 / Example 5.2."""
    return XMLSpec.parse(DBLP_DTD, DBLP_FDS)


def dblp_fds() -> list:
    return dblp_spec().sigma


def dblp_document() -> XMLTree:
    return parse_xml(DBLP_DOCUMENT)


def synthetic_dblp_document(confs: int, issues_per_conf: int,
                            papers_per_issue: int, *,
                            seed: int = 0) -> XMLTree:
    """A larger Example 1.2-shaped document: every paper in an issue
    repeats the issue's year (the FD5 redundancy)."""
    rng = random.Random(seed)
    tree = XMLTree()
    db = tree.add_node("db")
    key = 0
    for c in range(confs):
        conf = tree.add_node("conf", parent=db)
        tree.add_node("title", parent=conf, text=f"Conf{c}")
        for i in range(issues_per_conf):
            issue = tree.add_node("issue", parent=conf)
            year = str(1990 + i)
            for _p in range(papers_per_issue):
                paper = tree.add_node(
                    "inproceedings", parent=issue,
                    attrs={"@key": f"k{key}",
                           "@pages": f"{key}-{key + 9}",
                           "@year": year})
                key += 1
                for a in range(rng.randint(1, 3)):
                    tree.add_node("author", parent=paper,
                                  text=f"Author{rng.randint(0, 50)}")
                tree.add_node("title", parent=paper, text=f"Paper {key}")
                tree.add_node("booktitle", parent=paper,
                              text=f"Conf{c} {year}")
    return tree.freeze()
