"""The Section 7 FAQ DTD fragment.

The ``section`` production ``(logo*, title, (qna+ | q+ |
(p | div | section)+))`` is the paper's example of a *relational* but
not disjunctive (nor simple) DTD; it is also recursive (``section``
under ``section``).  Since Definition 1 assumes the root occurs in no
production, the fragment is wrapped under a fresh ``faq`` root.
"""

from __future__ import annotations

from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd

FAQ_DTD = """
<!ELEMENT faq (section+)>
<!ELEMENT section (logo*, title, (qna+ | q+ | (p | div | section)+))>
<!ELEMENT logo EMPTY>
<!ATTLIST logo
    uri CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT qna (q, a)>
<!ELEMENT q (#PCDATA)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT p (#PCDATA)>
<!ELEMENT div (p*)>
"""


def faq_dtd() -> DTD:
    """The (recursive) FAQ DTD."""
    return parse_dtd(FAQ_DTD)
