"""Shared exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one type to handle any library failure.  Subclasses are
split by subsystem to make targeted handling (and testing) possible.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """Raised when textual input (DTD, XML, FD, regex) cannot be parsed.

    Carries optional position information to make diagnostics useful:
    ``line`` and ``column`` are 1-based; either may be ``None`` when
    unknown (a column without a line renders as an offset into a
    single-line input, e.g. a content-model expression).
    """

    def __init__(self, message: str, *, line: int | None = None,
                 column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        elif column is not None:
            location = f" at column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class RegexSyntaxError(ParseError):
    """Raised for malformed content-model regular expressions."""


class DTDSyntaxError(ParseError):
    """Raised for malformed ``<!ELEMENT>`` / ``<!ATTLIST>`` declarations."""


class XMLSyntaxError(ParseError):
    """Raised for malformed XML documents."""


class FDSyntaxError(ParseError):
    """Raised for malformed functional-dependency expressions."""


class InvalidDTDError(ReproError):
    """Raised when a structurally valid DTD violates Definition 1.

    Examples: a production referring to an undeclared element type, the
    root element type occurring in some content model, or an attribute
    set mentioning names that do not start with ``@``.
    """


class InvalidTreeError(ReproError):
    """Raised when an XML tree violates Definition 2 (e.g. not a tree)."""


class InvalidPathError(ReproError):
    """Raised when a path is not in ``paths(D)`` for the relevant DTD."""


class InvalidFDError(ReproError):
    """Raised when an FD mentions paths outside ``paths(D)`` or is empty."""


class ConformanceError(ReproError):
    """Raised when an operation requires ``T |= D`` and the tree fails it."""


class RecursionLimitError(ReproError):
    """Raised when an operation needs ``paths(D)`` but the DTD is recursive
    and no finite enumeration bound applies."""


class ResourceExhausted(ReproError):
    """Raised when a :class:`repro.guard.Budget` limit trips.

    ``limit`` names the tripped dimension (``"deadline"``, ``"steps"``,
    ``"branches"``, or ``"nodes"``); ``spent``/``allowed`` quantify it;
    ``partial`` is a dict that engines annotate with progress made
    before the trip (engine name, branches explored, transform steps
    applied, ...).  The implication facade converts this exception into
    an ``UNKNOWN`` verdict; the CLI maps it to exit code 4.
    """

    def __init__(self, limit: str, *, spent=None, allowed=None,
                 partial: dict | None = None) -> None:
        if limit == "deadline" and spent is not None \
                and allowed is not None:
            detail = (f" ({spent:.3f}s elapsed against a "
                      f"{allowed:.3f}s deadline)")
        elif spent is not None and allowed is not None:
            detail = f" ({spent} spent, limit {allowed})"
        else:
            detail = ""
        super().__init__(f"{limit} budget exhausted{detail}")
        self.limit = limit
        self.spent = spent
        self.allowed = allowed
        self.partial: dict = dict(partial) if partial else {}


class FaultError(ReproError):
    """Base class for faults raised by the :mod:`repro.faults` injection
    layer.

    Injected faults are *library* errors by design: the exception-safety
    contract (``docs/ROBUSTNESS.md``) demands that no public entry point
    ever leaks a non-:class:`ReproError` exception, and that includes
    the faults the chaos harness plants inside the engines.
    """

    def __init__(self, site: str, kind: str) -> None:
        super().__init__(f"injected {kind} fault at site {site!r}")
        self.site = site
        self.kind = kind


class InjectedFault(FaultError):
    """A generic injected exception (fault kind ``"exception"``)."""


class InjectedAllocationFailure(FaultError, MemoryError):
    """A simulated allocation failure (fault kind ``"allocation"``).

    Deliberately inherits :class:`MemoryError` as well, so code that
    special-cases allocation failure sees one, while the library-wide
    ``except ReproError`` contract still holds.
    """


class ManifestError(ReproError):
    """Raised for unusable batch manifests: malformed JSON, a
    schema-version mismatch, duplicate task ids, an unknown operation,
    or a task missing required fields.  The CLI maps this to exit code
    2 (usage error): the manifest itself — not the specs it names — is
    what cannot be used."""


class WorkerCrash(ReproError):
    """Raised (synthesized) when a batch-pool worker process dies.

    The parent supervisor of :class:`repro.runtime.pool.PoolBackend`
    never sees the original failure — the whole worker process is gone
    (SIGKILL, OOM kill, a corrupted result stream, a heartbeat stall)
    — so it manufactures this error to stand in for the attempt that
    died with it.  ``detail`` names the detection source in a stable,
    deterministic vocabulary (``signal:SIGKILL``, ``exitcode:70``,
    ``unpicklable-result``, ``stall``); ``worker`` is the pool-local
    id of the worker that died.  The *message* deliberately excludes
    the worker id: which worker a task lands on is a scheduling
    accident, and this message ends up in dead-letter reports that
    must stay byte-deterministic — the id goes to supervisor telemetry
    (stderr, pool stats) instead.

    Classified transient by :func:`repro.runtime.retry.is_transient`
    (the crash may be environmental), keyed ``crash:<detail>`` by
    :func:`repro.runtime.breaker.failure_signature`, and budgeted by
    the supervisor's own crash retry policy — a task that keeps
    killing its workers dead-letters with reason ``worker_crash``
    instead of looping forever.
    """

    def __init__(self, detail: str, *, worker: int | None = None) -> None:
        super().__init__(f"worker process died: {detail}")
        self.detail = detail
        self.worker = worker


class EnsembleDisagreementError(ReproError):
    """Raised when the differential engine ensemble observes two engines
    returning contradictory verdicts for the same implication query
    (see ``repro.runtime.ensemble``).

    A disagreement is never resolved silently: in ``strict`` mode it
    surfaces as this error (the batch runtime dead-letters the task);
    in ``check`` mode it is recorded as a first-class
    ``EnsembleDisagreement`` in the batch summary.  ``record`` carries
    the structured disagreement (query, per-engine verdicts).
    """

    def __init__(self, message: str, *, record=None) -> None:
        super().__init__(message)
        self.record = record


class CheckpointError(ReproError):
    """Raised for unusable normalization checkpoints: malformed JSON,
    a schema-version mismatch, or a checkpoint recorded for a different
    ``(D, Σ)`` than the one being resumed.  The CLI maps this to exit
    code 2 (usage error): the flags named a checkpoint that cannot
    apply to this invocation."""


class JournalError(ReproError):
    """Raised for unusable batch journals: malformed records in the
    body of the file, a schema-version mismatch, a duplicated task
    result, a journal recorded for a different manifest / policy /
    breaker configuration than the one being resumed, or a torn append
    (the record did not reach the file intact, so the batch must stop
    rather than continue past a hole in the log).  The CLI maps this to
    exit code 2 (usage error), like :class:`CheckpointError` and
    :class:`ManifestError`: the flags named a journal that cannot apply
    to this invocation.  A *torn trailing record* is explicitly not an
    error — resume truncates it with a counted warning."""


class NormalizationError(ReproError):
    """Raised when the XNF decomposition algorithm cannot make progress.

    Under the paper's assumptions (non-recursive DTD, FDs with at most one
    element path on the left-hand side) this should never happen; hitting
    it indicates the input violates those assumptions.
    """


class UnsupportedFeatureError(ReproError):
    """Raised for inputs outside the fragment the paper covers (e.g. FD
    normalization over recursive DTDs)."""
