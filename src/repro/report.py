"""Design analysis reports: quantifying the paper's motivation.

The introduction motivates XNF with storage redundancy ("the name
Deere for student st1 is stored twice") and update anomalies.  This
module measures exactly that on concrete documents:

* :func:`redundancy_of` — for an anomalous FD ``S -> v``, the number of
  *redundant copies*: stored (owner node, value) pairs beyond one per
  distinct ``S``-group.  On Figure 1(a) this reports 1 (the second
  ``Deere``; the two ``Smith``\\ s belong to different students and are
  not redundant).
* :func:`analyze` — a full :class:`DesignReport`: DTD classification,
  XNF status, anomalous FDs, per-document redundancy counts, the
  normalization plan, and the measured effect of migrating the
  documents (redundant copies drop to zero, Proposition 8 keeps the
  information).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.dtd.classify import is_disjunctive_dtd, is_simple_dtd
from repro.dtd.paths import Path
from repro.fd.model import FD
from repro.spec import XMLSpec
from repro.tuples.extract import tuples_of
from repro.xmltree.model import XMLTree


def redundancy_of(spec: XMLSpec, document: XMLTree, fd: FD) -> int:
    """Redundant stored copies of the FD's value in a document.

    For a single-RHS FD ``S -> v`` (``v`` an attribute or text path):
    the count of distinct (owner node, value) occurrences minus the
    count of distinct non-null ``S``-groups — i.e. how many stored
    copies a perfectly normalized design would avoid.
    """
    value = fd.single_rhs
    if value.is_element:
        return 0
    owner = value.parent
    lhs = sorted(fd.lhs, key=str)
    stored: set[tuple[tuple, str]] = set()
    groups: set[tuple] = set()
    for tuple_ in tuples_of(document, spec.dtd):
        owner_node = tuple_.get(owner)
        stored_value = tuple_.get(value)
        if owner_node is None or stored_value is None:
            continue
        key = tuple(tuple_.get(p) for p in lhs)
        if any(part is None for part in key):
            continue
        stored.add((key, owner_node))
        groups.add(key)
    return max(0, len(stored) - len(groups))


@dataclass
class DocumentFinding:
    """Redundancy measurements for one document."""

    conforms: bool
    satisfies_sigma: bool
    tuples: int
    redundancy: dict[FD, int] = field(default_factory=dict)

    @property
    def total_redundancy(self) -> int:
        return sum(self.redundancy.values())


@dataclass
class DesignReport:
    """The outcome of :func:`analyze`."""

    spec: XMLSpec
    simple: bool
    disjunctive: bool
    recursive: bool
    in_xnf: bool
    anomalous: list[FD]
    plan: list[str]
    documents: list[DocumentFinding] = field(default_factory=list)
    migrated_redundancy: list[int] = field(default_factory=list)

    def render(self) -> str:
        """A human-readable summary."""
        lines = ["XML design analysis", "==================="]
        lines.append(
            f"DTD: {len(self.spec.dtd.element_types)} element types, "
            f"{len(self.spec.dtd.paths) if not self.recursive else '∞'} "
            "paths")
        classification = ("simple" if self.simple else
                          "disjunctive" if self.disjunctive else
                          "general")
        lines.append(f"classification: {classification}"
                     + (", recursive" if self.recursive else ""))
        lines.append(f"functional dependencies: {len(self.spec.sigma)}")
        lines.append(f"in XNF: {'yes' if self.in_xnf else 'NO'}")
        for fd in self.anomalous:
            lines.append(f"  anomalous: {fd}")
        if self.plan:
            lines.append("normalization plan:")
            for index, step in enumerate(self.plan, start=1):
                lines.append(f"  {index}. {step}")
        for index, finding in enumerate(self.documents):
            lines.append(
                f"document #{index + 1}: {finding.tuples} tuples, "
                f"conforms={finding.conforms}, "
                f"satisfies Sigma={finding.satisfies_sigma}, "
                f"redundant copies={finding.total_redundancy}")
            for fd, count in finding.redundancy.items():
                if count:
                    lines.append(f"    {count} via {fd}")
        for index, after in enumerate(self.migrated_redundancy):
            lines.append(
                f"document #{index + 1} after normalization: "
                f"{after} redundant copies")
        return "\n".join(lines) + "\n"


def analyze(spec: XMLSpec,
            documents: Sequence[XMLTree] = ()) -> DesignReport:
    """Analyze a specification (and optionally its documents)."""
    recursive = spec.dtd.is_recursive
    anomalous = spec.xnf_violations()
    plan: list[str] = []
    result = None
    if anomalous and not recursive:
        result = spec.normalize()
        plan = result.step_descriptions
    report = DesignReport(
        spec=spec,
        simple=is_simple_dtd(spec.dtd),
        disjunctive=is_disjunctive_dtd(spec.dtd),
        recursive=recursive,
        in_xnf=not anomalous,
        anomalous=anomalous,
        plan=plan,
    )
    for document in documents:
        finding = DocumentFinding(
            conforms=spec.document_conforms(document),
            satisfies_sigma=spec.document_satisfies(document),
            tuples=len(tuples_of(document, spec.dtd)),
        )
        for fd in anomalous:
            finding.redundancy[fd] = redundancy_of(spec, document, fd)
        report.documents.append(finding)
        if result is not None:
            migrated = result.migrate(document)
            new_spec = spec.normalized_spec(result)
            after = 0
            for fd in anomalous:
                moved = _moved_fd(result, fd)
                if moved is not None:
                    after += redundancy_of(new_spec, migrated, moved)
            report.migrated_redundancy.append(after)
    return report


def _moved_fd(result, fd: FD) -> FD | None:
    """Where the anomalous value lives after normalization."""
    value = fd.single_rhs
    renamed = value
    lhs: frozenset[Path] = fd.lhs
    for step in result.steps:
        if renamed in step.renaming:
            lhs = frozenset(step.renaming.get(p, p) for p in lhs)
            renamed = step.renaming[renamed]
    if renamed == value:
        return None
    try:
        candidate = FD(lhs, frozenset({renamed}))
        candidate.validate(result.dtd)
    except Exception:
        return None
    return candidate
