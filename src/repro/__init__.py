"""repro — a reproduction of "A Normal Form for XML Documents"
(Arenas & Libkin, PODS 2002).

The package implements XML functional dependencies, the XML normal
form XNF, and the lossless XNF decomposition algorithm, together with
every substrate the paper relies on: DTDs with regular-expression
content models, unordered XML trees, tree tuples, FDs over incomplete
relations, classical relational normalization (BCNF), and nested
relations with PNF/NNF.

Quickstart::

    from repro import XMLSpec

    spec = XMLSpec.parse(dtd_text, fd_lines)
    spec.is_in_xnf()                  # Definition 8 (via Prop. 10)
    result = spec.normalize()         # the Figure 4 algorithm
    print(result.dtd)                 # the XNF redesign
    new_doc = result.migrate(doc)     # carry documents across, lossless
"""

__version__ = "1.0.0"

from repro.dtd import (
    DTD,
    Path,
    is_disjunctive_dtd,
    is_simple_dtd,
    parse_dtd,
    serialize_dtd,
)
from repro.xmltree import XMLTree, conforms, elem, parse_xml, serialize_xml
from repro.tuples import TreeTuple, trees_of, tuples_of
from repro.fd import FD, ImplicationEngine, implies, is_trivial, satisfies
from repro.xnf import is_in_xnf, xnf_violations
from repro.normalize import (
    NewElementNames,
    NormalizationResult,
    normalize,
    normalize_simple,
)
from repro.spec import XMLSpec
from repro.mvd import MVD, is_in_xnf4, satisfies_mvd, tree_induced_mvds
from repro.report import DesignReport, analyze, redundancy_of
from repro.fd.explain import explain_implication

__all__ = [
    "__version__",
    # DTDs and paths
    "DTD", "Path", "parse_dtd", "serialize_dtd",
    "is_simple_dtd", "is_disjunctive_dtd",
    # XML trees
    "XMLTree", "elem", "parse_xml", "serialize_xml", "conforms",
    # tree tuples
    "TreeTuple", "tuples_of", "trees_of",
    # FDs
    "FD", "satisfies", "implies", "is_trivial", "ImplicationEngine",
    # XNF + normalization
    "is_in_xnf", "xnf_violations", "normalize", "normalize_simple",
    "NormalizationResult", "NewElementNames",
    # the facade
    "XMLSpec",
    # extensions: MVDs (Section 8), reporting, explanations
    "MVD", "satisfies_mvd", "tree_induced_mvds", "is_in_xnf4",
    "DesignReport", "analyze", "redundancy_of", "explain_implication",
]
