"""Prometheus text-format export and the background ``/metrics`` server.

Two layers, both stdlib-only:

* :func:`prometheus_text` — a **deterministic** renderer from an
  :func:`repro.obs.metrics.snapshot` to Prometheus exposition format
  (version 0.0.4).  Counters become ``<name>_total`` counter families,
  gauges stay gauges, histograms and timers become *summary* families
  (``{quantile="0.5|0.95|0.99"}`` series plus ``_sum``/``_count``) with
  ``_min``/``_max`` gauge companions.  Unit handling never guesses:
  the snapshot's per-summary ``unit`` field decides whether a family
  gets the ``_seconds`` suffix (timers) or none (plain histograms).
  Families are emitted key-sorted and values formatted by type, so the
  same snapshot always renders to the same bytes, regardless of
  ``PYTHONHASHSEED`` or dict insertion order.

* :class:`MetricsExporter` — a daemon-thread
  :class:`http.server.ThreadingHTTPServer` serving ``GET /metrics``
  (the rendered live snapshot) and ``GET /healthz`` (a JSON liveness
  probe), bound to localhost by default.  This is the scrape surface
  behind ``xnf --metrics-port N`` — the first brick of ``xnf serve``:
  while a long batch runs, the exporter publishes the ``runtime.*``
  counters and heartbeat gauges in flight instead of only at exit.

Every scrape increments the ``obs.export.scrapes`` counter (visible in
the next scrape — the exporter observes itself).
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.obs import metrics as _metrics

#: The exposition-format content type served on ``/metrics``.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: The quantiles a summary family exports (matching the snapshot's
#: ``p50``/``p95``/``p99`` keys).
QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, suffix: str = "") -> str:
    """Map a dotted obs name to a valid Prometheus metric name.

    ``implication.cache.hit`` -> ``implication_cache_hit``; characters
    outside ``[a-zA-Z0-9_:]`` are folded to ``_`` and a leading digit
    gets a ``_`` prefix.
    """
    base = _INVALID_CHARS.sub("_", name)
    if not base or base[0].isdigit():
        base = "_" + base
    return base + suffix


def format_value(value: Any) -> str:
    """One sample value, deterministically.

    Integers render as integers; floats via ``repr`` (shortest
    round-trip, stable across platforms and hash seeds); non-finite
    floats use the exposition-format spellings.
    """
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    return repr(number)


def _summary_family(family: str, stats: dict) -> list[str]:
    """The exposition lines of one summary (histogram/timer) family."""
    lines = [f"# TYPE {family} summary"]
    for quantile, key in QUANTILES:
        lines.append(f'{family}{{quantile="{quantile}"}} '
                     f"{format_value(stats.get(key, 0.0))}")
    lines.append(f"{family}_sum {format_value(stats.get('total', 0.0))}")
    lines.append(f"{family}_count {format_value(stats.get('count', 0))}")
    for extreme in ("min", "max"):
        lines.append(f"# TYPE {family}_{extreme} gauge")
        lines.append(f"{family}_{extreme} "
                     f"{format_value(stats.get(extreme, 0.0))}")
    return lines


def prometheus_text(snapshot: dict) -> str:
    """Render a metrics snapshot as Prometheus exposition text.

    Deterministic: families sorted by exported name, fixed line order
    within a family, type-stable value formatting.  The ``unit`` field
    of each histogram/timer summary (snapshot schema v2) selects the
    family suffix — ``"seconds"`` appends ``_seconds``; pre-v2
    snapshots fall back to the section default (timers are seconds).
    """
    families: list[tuple[str, list[str]]] = []

    for name, value in snapshot.get("counters", {}).items():
        family = metric_name(name, "_total")
        families.append((family, [f"# TYPE {family} counter",
                                  f"{family} {format_value(value)}"]))

    for name, value in snapshot.get("gauges", {}).items():
        family = metric_name(name)
        families.append((family, [f"# TYPE {family} gauge",
                                  f"{family} {format_value(value)}"]))

    for section, default_unit in (("histograms", _metrics.UNIT_NONE),
                                  ("timers", _metrics.UNIT_SECONDS)):
        for name, stats in snapshot.get(section, {}).items():
            unit = stats.get("unit", default_unit)
            suffix = "_seconds" if unit == _metrics.UNIT_SECONDS else ""
            family = metric_name(name, suffix)
            families.append((family, _summary_family(family, stats)))

    lines: list[str] = []
    for _, family_lines in sorted(families):
        lines.extend(family_lines)
    return "\n".join(lines) + "\n" if lines else ""


class MetricsExporter:
    """A background HTTP server exposing the live metrics registry.

    ``GET /metrics`` renders :func:`repro.obs.metrics.snapshot` (or a
    caller-supplied ``snapshot_fn``) through :func:`prometheus_text`;
    ``GET /healthz`` answers ``{"status": "ok", "uptime_s": ...}``.
    Binds ``host:port`` (``port=0`` picks a free ephemeral port — read
    :attr:`port` after :meth:`start`).  The serving thread is a daemon,
    so a crashed main thread never hangs on it; call :meth:`stop` for
    an orderly shutdown.  Usable as a context manager.
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1", *,
                 snapshot_fn: Callable[[], dict] | None = None) -> None:
        self.host = host
        self.requested_port = port
        self._snapshot = snapshot_fn if snapshot_fn is not None \
            else _metrics.snapshot
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at = 0.0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "MetricsExporter":
        """Bind the socket and start serving in a daemon thread."""
        if self._server is not None:
            raise RuntimeError("exporter already started")
        exporter = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                exporter._handle(self)

            def log_message(self, *args: Any) -> None:
                return None  # scrape traffic must not spam stderr

        self._server = ThreadingHTTPServer((self.host,
                                            self.requested_port), Handler)
        self._server.daemon_threads = True
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-obs-exporter", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join the serving thread."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def port(self) -> int:
        """The actually-bound port (resolves ``port=0`` requests)."""
        if self._server is None:
            raise RuntimeError("exporter not started")
        return self._server.server_address[1]

    def url(self, path: str = "/metrics") -> str:
        return f"http://{self.host}:{self.port}{path}"

    # -- request handling ----------------------------------------------

    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0]
        if path == "/metrics":
            _metrics.inc("obs.export.scrapes")
            body = prometheus_text(self._snapshot()).encode("utf-8")
            self._respond(request, 200, CONTENT_TYPE, body)
        elif path == "/healthz":
            payload = {"status": "ok",
                       "uptime_s": round(
                           time.monotonic() - self._started_at, 3)}
            body = (json.dumps(payload, sort_keys=True) + "\n") \
                .encode("utf-8")
            self._respond(request, 200, "application/json", body)
        else:
            body = b"not found: try /metrics or /healthz\n"
            self._respond(request, 404, "text/plain; charset=utf-8",
                          body)

    @staticmethod
    def _respond(request: BaseHTTPRequestHandler, status: int,
                 content_type: str, body: bytes) -> None:
        request.send_response(status)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(body)))
        request.end_headers()
        request.wfile.write(body)


def start_exporter(port: int = 0, host: str = "127.0.0.1", *,
                   snapshot_fn: Callable[[], dict] | None = None,
                   ) -> MetricsExporter:
    """Start a :class:`MetricsExporter` and return it (already bound)."""
    return MetricsExporter(port, host, snapshot_fn=snapshot_fn).start()
