"""Nestable tracing spans with pluggable sinks.

A *span* measures one named region of work::

    with span("normalize.round", rule="move") as sp:
        ...
        sp.set("anomalous_after", 2)

Spans nest via a thread-local stack, so the hierarchy mirrors the call
structure without any plumbing.  When a span finishes it is emitted to
every registered sink; when its whole tree finishes (the root span
exits) the root is emitted to every registered *tree* sink.

Sinks:

* :class:`JsonLinesSink` — one JSON object per finished span (schema
  below), suitable for ``xnf --trace FILE``;
* :class:`InMemorySink` — collects finished spans (and root trees) for
  tests and in-process inspection;
* :func:`render_tree` — a human-readable indented tree of one root
  span.

JSON-lines schema (one line per span, children precede parents because
they finish first)::

    {"id": 3, "parent": 1, "depth": 1, "name": "chase.branch",
     "start": 0.123, "duration_ms": 4.56, "attrs": {"steps": 7},
     "counters": {"chase.steps": 12}}

``start`` is seconds since the process clock origin
(``time.perf_counter``), useful for ordering, not wall-clock time.
``counters`` (added for the profiling observatory, absent when empty)
holds the **counter deltas** observed between span entry and exit —
boundary snapshots of :func:`repro.obs.metrics.counters_snapshot` —
cumulative over the span's children; :mod:`repro.obs.profile`
subtracts child deltas to attribute *self* counter work per span.

Everything is a no-op while :mod:`repro.obs.metrics` is disabled:
:func:`span` then returns a shared null context manager and allocates
nothing.
"""

from __future__ import annotations

import itertools
import json
import threading
from typing import Any, Callable, IO, Iterator

from repro.obs import metrics as _metrics

import time


class Span:
    """One timed, attributed region; part of a tree of spans."""

    __slots__ = ("name", "attrs", "start", "end", "children",
                 "span_id", "parent_id", "depth",
                 "counters_start", "counter_deltas")

    def __init__(self, name: str, attrs: dict[str, Any],
                 span_id: int, parent_id: int | None,
                 depth: int) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start = 0.0
        self.end = 0.0
        self.children: list[Span] = []
        self.counters_start: dict[str, int] = {}
        self.counter_deltas: dict[str, int] = {}

    def set(self, key: str, value: Any) -> None:
        """Attach (or update) an attribute mid-span."""
        self.attrs[key] = value

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while still open)."""
        return max(0.0, self.end - self.start)

    def as_record(self) -> dict[str, Any]:
        """The JSON-lines record for this span."""
        record = {
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "start": round(self.start, 6),
            "duration_ms": round(self.duration * 1e3, 4),
            "attrs": self.attrs,
        }
        if self.counter_deltas:
            record["counters"] = dict(self.counter_deltas)
        return record


class _NullSpan:
    """Shared do-nothing stand-in returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, key: str, value: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()
_ids = itertools.count(1)
_stack = threading.local()

#: Per-span sinks: called with every finished Span.
_sinks: list[Callable[[Span], None]] = []
#: Tree sinks: called with every finished *root* Span.
_tree_sinks: list[Callable[[Span], None]] = []


class _SpanContext:
    __slots__ = ("span",)

    def __init__(self, span_: Span) -> None:
        self.span = span_

    def __enter__(self) -> Span:
        self.span.counters_start = _metrics.counters_snapshot()
        self.span.start = time.perf_counter()
        return self.span

    def __exit__(self, *exc_info: object) -> None:
        self.span.end = time.perf_counter()
        before = self.span.counters_start
        self.span.counter_deltas = {
            name: value - before.get(name, 0)
            for name, value in _metrics.counters_snapshot().items()
            if value != before.get(name, 0)}
        stack = _stack.spans
        stack.pop()
        for sink in _sinks:
            sink(self.span)
        if not stack:
            for sink in _tree_sinks:
                sink(self.span)


def span(name: str, **attrs: Any) -> "_SpanContext | _NullSpan":
    """Open a nested span (``with span(...) as sp:``).

    Returns the shared null span while observability is disabled, so
    the call costs one flag check and no allocation.
    """
    if not _metrics.enabled:
        return _NULL_SPAN
    stack = getattr(_stack, "spans", None)
    if stack is None:
        stack = _stack.spans = []
    parent = stack[-1] if stack else None
    new = Span(name, attrs, next(_ids),
               parent.span_id if parent is not None else None,
               len(stack))
    if parent is not None:
        parent.children.append(new)
    stack.append(new)
    return _SpanContext(new)


def current_span() -> Span | None:
    """The innermost open span on this thread, if any."""
    stack = getattr(_stack, "spans", None)
    return stack[-1] if stack else None


def add_sink(sink: Callable[[Span], None], *,
             tree: bool = False) -> None:
    """Register a sink for finished spans (or root trees)."""
    (_tree_sinks if tree else _sinks).append(sink)


def remove_sink(sink: Callable[[Span], None]) -> None:
    for registry in (_sinks, _tree_sinks):
        while sink in registry:
            registry.remove(sink)


def clear_sinks() -> None:
    _sinks.clear()
    _tree_sinks.clear()


class JsonLinesSink:
    """Writes one JSON object per finished span to a file object."""

    def __init__(self, stream: IO[str]) -> None:
        self.stream = stream

    def __call__(self, span_: Span) -> None:
        self.stream.write(json.dumps(span_.as_record(),
                                     sort_keys=True, default=str))
        self.stream.write("\n")


class InMemorySink:
    """Collects finished spans; ``roots`` keeps only finished trees."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.roots: list[Span] = []

    def __call__(self, span_: Span) -> None:
        self.spans.append(span_)
        if span_.parent_id is None:
            self.roots.append(span_)


def render_tree(root: Span) -> str:
    """An indented, human-readable rendering of one span tree."""
    lines: list[str] = []

    def render(span_: Span, indent: int) -> None:
        attrs = ""
        if span_.attrs:
            parts = ", ".join(f"{k}={v}" for k, v in
                              sorted(span_.attrs.items()))
            attrs = f"  [{parts}]"
        lines.append(f"{'  ' * indent}{span_.name}  "
                     f"{span_.duration * 1e3:.2f} ms{attrs}")
        for child in span_.children:
            render(child, indent + 1)

    render(root, 0)
    return "\n".join(lines) + "\n"


def iter_spans(root: Span) -> Iterator[Span]:
    """Depth-first iteration over a finished span tree."""
    yield root
    for child in root.children:
        yield from iter_spans(child)
