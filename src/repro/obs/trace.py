"""Nestable tracing spans with pluggable sinks.

A *span* measures one named region of work::

    with span("normalize.round", rule="move") as sp:
        ...
        sp.set("anomalous_after", 2)

Spans nest via a thread-local stack, so the hierarchy mirrors the call
structure without any plumbing.  When a span finishes it is emitted to
every registered sink; when its whole tree finishes (the root span
exits) the root is emitted to every registered *tree* sink.

Sinks:

* :class:`JsonLinesSink` — one JSON object per finished span (schema
  below), suitable for ``xnf --trace FILE``;
* :class:`InMemorySink` — collects finished spans (and root trees) for
  tests and in-process inspection;
* :func:`render_tree` — a human-readable indented tree of one root
  span.

JSON-lines schema **v2** (one line per span, children precede parents
because they finish first)::

    {"id": 3, "parent": 1, "depth": 1, "name": "chase.branch",
     "start": 0.123, "duration_ms": 4.56, "attrs": {"steps": 7},
     "counters": {"chase.steps": 12},
     "trace_id": "9f1c2d3e4a5b6c7d", "task": "corpus-0001", "worker": 2}

``start`` is seconds since the process clock origin
(``time.perf_counter``), useful for ordering, not wall-clock time.
Root spans (``parent: null``) additionally carry ``"v": 2`` and an
``"epoch"`` wall-clock anchor (``time.time()`` at span entry), so a
trace correlates with heartbeat timestamps and Prometheus scrapes.
``counters`` (added for the profiling observatory, absent when empty)
holds the **counter deltas** observed between span entry and exit —
boundary snapshots of :func:`repro.obs.metrics.counters_snapshot` —
cumulative over the span's children; :mod:`repro.obs.profile`
subtracts child deltas to attribute *self* counter work per span.

``trace_id`` / ``task`` / ``worker`` (schema v2, absent when unset)
come from the ambient :class:`SpanContext`: the CLI installs one
``trace_id`` per traced invocation, the batch runner scopes ``task``
around each attempt (:func:`task_scope`), and each forked pool worker
stamps its ``worker`` id.  The context is a plain serializable value
(:meth:`SpanContext.to_wire` / :meth:`SpanContext.from_wire`) so the
pool supervisor can propagate it across the fork boundary; workers
buffer finished span records and ship them back with each result, and
the parent stitches them into its own trace via
:func:`ingest_records` — remapping ids, rebasing the clock origin by
the handshake-measured offset, and reparenting the shipped subtree
under the currently open span.  A parallel ``--trace`` file therefore
feeds ``xnf obs report/flame/diff`` identically to a serial run's.

Everything is a no-op while :mod:`repro.obs.metrics` is disabled:
:func:`span` then returns a shared null context manager and allocates
nothing.
"""

from __future__ import annotations

import itertools
import json
import threading
from dataclasses import dataclass, replace
from typing import Any, Callable, IO, Iterator

from repro.obs import metrics as _metrics

import time

#: Trace record schema version, stamped as ``"v"`` on root spans.
#: v2 adds the ``epoch`` root anchor and the ``trace_id`` / ``task`` /
#: ``worker`` context fields; v1 records (no marker) still load.
TRACE_VERSION = 2


@dataclass(frozen=True)
class SpanContext:
    """The ambient identity stamped on every span (schema v2).

    A plain, serializable value — :meth:`to_wire` / :meth:`from_wire`
    round-trip it through pickles and JSON unchanged — so the pool
    supervisor can hand each forked worker the parent's context with
    the ``worker`` field filled in.
    """

    trace_id: str | None = None
    task: str | None = None
    worker: int | None = None

    def to_wire(self) -> dict[str, Any]:
        """A plain-dict form safe to pickle or JSON-encode."""
        return {"trace_id": self.trace_id, "task": self.task,
                "worker": self.worker}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "SpanContext":
        """Rebuild a context from :meth:`to_wire` output; raises
        ``ValueError`` on a malformed payload."""
        if not isinstance(wire, dict):
            raise ValueError(
                f"span context must be a dict, got "
                f"{type(wire).__name__}")
        trace_id = wire.get("trace_id")
        task = wire.get("task")
        worker = wire.get("worker")
        if trace_id is not None and not isinstance(trace_id, str):
            raise ValueError(f"trace_id must be a string or None, "
                             f"got {trace_id!r}")
        if task is not None and not isinstance(task, str):
            raise ValueError(f"task must be a string or None, "
                             f"got {task!r}")
        if worker is not None and (not isinstance(worker, int)
                                   or isinstance(worker, bool)):
            raise ValueError(f"worker must be an int or None, "
                             f"got {worker!r}")
        return cls(trace_id=trace_id, task=task, worker=worker)


#: The ambient context new spans are stamped with (one per process;
#: workers install their own copy after the fork).
_context: SpanContext | None = None


def set_context(context: SpanContext | None) -> None:
    """Install the ambient span context (``None`` clears it)."""
    global _context
    _context = context


def get_context() -> SpanContext | None:
    """The ambient span context, if one is installed."""
    return _context


def clear_context() -> None:
    set_context(None)


class _NullScope:
    """Shared do-nothing scope returned while tracing is off — the
    disabled path allocates nothing (mirrors ``_NullSpan``)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SCOPE = _NullScope()


class _TaskScope:
    """Context manager that stamps ``task`` onto the ambient context
    for the duration of the ``with`` body, restoring on exit."""

    __slots__ = ("task_id", "previous")

    def __init__(self, task_id: str) -> None:
        self.task_id = task_id

    def __enter__(self) -> None:
        self.previous = _context
        set_context(SpanContext(task=self.task_id)
                    if self.previous is None
                    else replace(self.previous, task=self.task_id))

    def __exit__(self, *exc_info) -> None:
        set_context(self.previous)


def task_scope(task_id: str) -> _TaskScope | _NullScope:
    """Stamp ``task`` onto every span opened inside the ``with`` body.

    Used by the batch runner around each task attempt, so both the
    serial and the pool path produce per-task attributable traces
    (``xnf obs report --by-task``).  Free while observability is off.
    """
    if not _metrics.enabled:
        return _NULL_SCOPE
    return _TaskScope(task_id)


class Span:
    """One timed, attributed region; part of a tree of spans."""

    __slots__ = ("name", "attrs", "start", "end", "children",
                 "span_id", "parent_id", "depth",
                 "counters_start", "counter_deltas",
                 "trace_id", "task", "worker", "epoch")

    def __init__(self, name: str, attrs: dict[str, Any],
                 span_id: int, parent_id: int | None,
                 depth: int) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start = 0.0
        self.end = 0.0
        self.children: list[Span] = []
        self.counters_start: dict[str, int] = {}
        self.counter_deltas: dict[str, int] = {}
        # Schema-v2 context fields, stamped from the ambient
        # SpanContext at creation (None values are omitted from the
        # record); ``epoch`` is the wall-clock anchor of root spans.
        self.trace_id: str | None = None
        self.task: str | None = None
        self.worker: int | None = None
        self.epoch: float | None = None

    def set(self, key: str, value: Any) -> None:
        """Attach (or update) an attribute mid-span."""
        self.attrs[key] = value

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while still open)."""
        return max(0.0, self.end - self.start)

    def as_record(self) -> dict[str, Any]:
        """The JSON-lines record for this span."""
        record = {
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "start": round(self.start, 6),
            "duration_ms": round(self.duration * 1e3, 4),
            "attrs": self.attrs,
        }
        if self.counter_deltas:
            record["counters"] = dict(self.counter_deltas)
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.task is not None:
            record["task"] = self.task
        if self.worker is not None:
            record["worker"] = self.worker
        if self.parent_id is None:
            record["v"] = TRACE_VERSION
            record["epoch"] = round(self.epoch, 6) \
                if self.epoch is not None else None
        return record


class _NullSpan:
    """Shared do-nothing stand-in returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, key: str, value: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()
_ids = itertools.count(1)
_stack = threading.local()

#: Per-span sinks: called with every finished Span.
_sinks: list[Callable[[Span], None]] = []
#: Tree sinks: called with every finished *root* Span.
_tree_sinks: list[Callable[[Span], None]] = []


class _SpanContext:
    __slots__ = ("span",)

    def __init__(self, span_: Span) -> None:
        self.span = span_

    def __enter__(self) -> Span:
        self.span.counters_start = _metrics.counters_snapshot()
        if self.span.parent_id is None:
            # Root spans get the schema-v2 wall-clock anchor, so the
            # trace correlates with heartbeats and exporter scrapes.
            self.span.epoch = time.time()
        self.span.start = time.perf_counter()
        return self.span

    def __exit__(self, *exc_info: object) -> None:
        self.span.end = time.perf_counter()
        before = self.span.counters_start
        self.span.counter_deltas = {
            name: value - before.get(name, 0)
            for name, value in _metrics.counters_snapshot().items()
            if value != before.get(name, 0)}
        stack = _stack.spans
        stack.pop()
        for sink in _sinks:
            sink(self.span)
        if not stack:
            for sink in _tree_sinks:
                sink(self.span)


def span(name: str, **attrs: Any) -> "_SpanContext | _NullSpan":
    """Open a nested span (``with span(...) as sp:``).

    Returns the shared null span while observability is disabled, so
    the call costs one flag check and no allocation.
    """
    if not _metrics.enabled:
        return _NULL_SPAN
    stack = getattr(_stack, "spans", None)
    if stack is None:
        stack = _stack.spans = []
    parent = stack[-1] if stack else None
    new = Span(name, attrs, next(_ids),
               parent.span_id if parent is not None else None,
               len(stack))
    context = _context
    if context is not None:
        new.trace_id = context.trace_id
        new.task = context.task
        new.worker = context.worker
    if parent is not None:
        parent.children.append(new)
    stack.append(new)
    return _SpanContext(new)


def current_span() -> Span | None:
    """The innermost open span on this thread, if any."""
    stack = getattr(_stack, "spans", None)
    return stack[-1] if stack else None


def add_sink(sink: Callable[[Span], None], *,
             tree: bool = False) -> None:
    """Register a sink for finished spans (or root trees)."""
    (_tree_sinks if tree else _sinks).append(sink)


def remove_sink(sink: Callable[[Span], None]) -> None:
    for registry in (_sinks, _tree_sinks):
        while sink in registry:
            registry.remove(sink)


def clear_sinks() -> None:
    _sinks.clear()
    _tree_sinks.clear()


def has_sinks() -> bool:
    """Whether any span or tree sink is registered — the pool
    supervisor's cue that worker spans are worth shipping back."""
    return bool(_sinks or _tree_sinks)


def reinit_after_fork() -> None:
    """Fork hygiene for the tracing module (the tracing counterpart of
    :func:`repro.obs.metrics.reinit_after_fork`).

    A forked worker inherits the parent's open span stack (the batch
    supervisor forks from inside its root CLI span), its sinks (which
    wrap the parent's file descriptors), and its ambient context.  All
    three are wrong in the child: the stack is replaced, the sinks are
    dropped, and the context is cleared so the supervisor can install
    the propagated one with the worker id filled in.
    """
    global _stack
    _stack = threading.local()
    clear_sinks()
    clear_context()


def ingest_records(records: list[dict[str, Any]], *,
                   offset: float = 0.0,
                   worker: int | None = None) -> int:
    """Stitch span records shipped from another process into this one.

    ``records`` is a list of :meth:`Span.as_record` dicts in
    finish order (children before parents) as a worker's buffering
    sink collected them.  Each record is rebuilt as a :class:`Span`
    with a fresh id from this process's counter (so ids never collide
    across workers), its ``start`` rebased by ``offset`` — the
    handshake-measured difference between this process's and the
    sender's ``perf_counter`` origins — and its ``worker`` field
    defaulted to ``worker`` when the sender did not stamp one.

    Subtree tops (records whose parent is not part of the shipment)
    are reparented under the currently open span, so a stitched batch
    trace is one coherent forest: every worker's ``runtime.task``
    subtree hangs off the supervisor's root CLI span with consistent
    depths and monotone parent/child timings.  The rebuilt spans are
    emitted to the per-span sinks in shipment order; tree sinks fire
    only for spans that remain roots (when no span is open here).

    Returns the number of spans ingested.  No-op while disabled.
    """
    if not records or not _metrics.enabled:
        return 0
    # The handshake offset overestimates by the hello's in-pipe
    # latency, which can push a shipment past spans that close later
    # here (e.g. the batch root).  Every shipped span provably
    # finished before its shipment arrived, so pull the whole
    # shipment back just enough that nothing ends in our future —
    # one uniform shift, intra-shipment relations untouched.
    max_end = max(float(record.get("start", 0.0))
                  + float(record.get("duration_ms", 0.0)) / 1e3
                  for record in records) + offset
    offset += min(0.0, time.perf_counter() - max_end)
    anchor = current_span()
    spans: dict[int, Span] = {}
    for record in records:
        rebuilt = Span(record["name"], dict(record.get("attrs") or {}),
                       next(_ids), None, 0)
        rebuilt.start = float(record.get("start", 0.0)) + offset
        rebuilt.end = rebuilt.start \
            + float(record.get("duration_ms", 0.0)) / 1e3
        rebuilt.counter_deltas = dict(record.get("counters") or {})
        rebuilt.trace_id = record.get("trace_id")
        rebuilt.task = record.get("task")
        rebuilt.worker = record.get("worker", worker)
        rebuilt.epoch = record.get("epoch")
        spans[record["id"]] = rebuilt
    tops: list[Span] = []
    for record in records:
        rebuilt = spans[record["id"]]
        parent = spans.get(record.get("parent"))
        if parent is not None and parent is not rebuilt:
            rebuilt.parent_id = parent.span_id
            parent.children.append(rebuilt)
        elif anchor is not None:
            rebuilt.parent_id = anchor.span_id
            anchor.children.append(rebuilt)
            tops.append(rebuilt)
        else:
            tops.append(rebuilt)
    for rebuilt in spans.values():
        rebuilt.children.sort(key=lambda s: (s.start, s.span_id))

    base_depth = anchor.depth + 1 if anchor is not None else 0

    def _redepth(span_: Span, depth: int) -> None:
        span_.depth = depth
        for child in span_.children:
            _redepth(child, depth + 1)

    for top in tops:
        _redepth(top, base_depth)
    for record in records:
        rebuilt = spans[record["id"]]
        for sink in _sinks:
            sink(rebuilt)
        if rebuilt.parent_id is None:
            for sink in _tree_sinks:
                sink(rebuilt)
    return len(records)


class JsonLinesSink:
    """Writes one JSON object per finished span to a file object."""

    def __init__(self, stream: IO[str]) -> None:
        self.stream = stream

    def __call__(self, span_: Span) -> None:
        self.stream.write(json.dumps(span_.as_record(),
                                     sort_keys=True, default=str))
        self.stream.write("\n")


class InMemorySink:
    """Collects finished spans; ``roots`` keeps only finished trees."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.roots: list[Span] = []

    def __call__(self, span_: Span) -> None:
        self.spans.append(span_)
        if span_.parent_id is None:
            self.roots.append(span_)


def render_tree(root: Span) -> str:
    """An indented, human-readable rendering of one span tree."""
    lines: list[str] = []

    def render(span_: Span, indent: int) -> None:
        attrs = ""
        if span_.attrs:
            parts = ", ".join(f"{k}={v}" for k, v in
                              sorted(span_.attrs.items()))
            attrs = f"  [{parts}]"
        lines.append(f"{'  ' * indent}{span_.name}  "
                     f"{span_.duration * 1e3:.2f} ms{attrs}")
        for child in span_.children:
            render(child, indent + 1)

    render(root, 0)
    return "\n".join(lines) + "\n"


def iter_spans(root: Span) -> Iterator[Span]:
    """Depth-first iteration over a finished span tree."""
    yield root
    for child in root.children:
        yield from iter_spans(child)
