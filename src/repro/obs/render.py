"""Rendering metric snapshots as aligned, human-readable tables.

Used by the CLI's ``--stats`` flag; also handy from a REPL::

    from repro import obs
    print(obs.render.metrics_table(obs.snapshot()))

Besides the raw counters/gauges/timers the table includes *derived*
ratios (cache hit rate, branch prune rate) computed from counter pairs
when both members are present.
"""

from __future__ import annotations

from typing import Callable


def _ratio(numerator: int, denominator: int) -> str:
    if denominator <= 0:
        return "n/a"
    return f"{numerator / denominator:.1%}"


def _derived(counters: dict[str, int]) -> list[tuple[str, str]]:
    rows: list[tuple[str, str]] = []
    hits = counters.get("implication.cache.hit", 0)
    misses = counters.get("implication.cache.miss", 0)
    if hits or misses:
        rows.append(("implication.cache.hit_rate",
                     _ratio(hits, hits + misses)))
    explored = counters.get("chase.branches.explored", 0)
    pruned = counters.get("chase.branches.pruned", 0)
    if explored:
        rows.append(("chase.branches.prune_rate",
                     _ratio(pruned, explored)))
    examined = counters.get("xnf.candidates.examined", 0)
    found = counters.get("xnf.violations.found", 0)
    if examined:
        rows.append(("xnf.violation_rate", _ratio(found, examined)))
    # Sorted like every other section: --stats output is diffed in
    # tests and bench logs, so row order must never depend on which
    # ratios happened to be computable.
    return sorted(rows)


def metrics_table(snapshot: dict[str, dict], *,
                  title: str = "metrics") -> str:
    """Format a :func:`repro.obs.metrics.snapshot` as a table."""
    sections: list[tuple[str, list[tuple[str, str]]]] = []

    counters = snapshot.get("counters", {})
    if counters:
        sections.append(("counters", [
            (name, str(value))
            for name, value in sorted(counters.items())]))

    gauges = snapshot.get("gauges", {})
    if gauges:
        sections.append(("gauges", [
            (name, f"{value:g}")
            for name, value in sorted(gauges.items())]))

    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for name, stats in sorted(histograms.items()):
            row = (f"n={stats['count']}  "
                   f"mean={stats['mean']:.1f}  "
                   f"min={stats['min']:g}  max={stats['max']:g}")
            if "p50" in stats:
                row += (f"  p50={stats['p50']:g}  "
                        f"p95={stats['p95']:g}  p99={stats['p99']:g}")
            unit = stats.get("unit", "1")
            if unit not in ("", "1"):
                row += f"  [unit: {unit}]"
            rows.append((name, row))
        sections.append(("histograms", rows))

    timers = snapshot.get("timers", {})
    if timers:
        rows = []
        for name, stats in sorted(timers.items()):
            # Timers are *stored* in base units named by the summary's
            # ``unit`` field (seconds; pre-v2 snapshots omit the field
            # and mean seconds too) and *displayed* in ms — the scaling
            # is driven by the declared unit, never assumed.
            unit = stats.get("unit", "seconds")
            scale = 1e3 if unit == "seconds" else 1.0
            shown = "ms" if unit == "seconds" else unit
            row = (f"n={stats['count']}  "
                   f"total={stats['total'] * scale:.2f} {shown}  "
                   f"mean={stats['mean'] * scale:.3f} {shown}  "
                   f"max={stats['max'] * scale:.3f} {shown}")
            if "p50" in stats:
                row += (f"  p50={stats['p50'] * scale:.3f} {shown}  "
                        f"p95={stats['p95'] * scale:.3f} {shown}  "
                        f"p99={stats['p99'] * scale:.3f} {shown}")
            rows.append((name, row))
        sections.append(("timers (stored: seconds, shown: ms)", rows))

    derived = _derived(counters)
    if derived:
        sections.append(("derived", derived))

    if not sections:
        return f"== {title} ==\n(no metrics recorded)\n"

    width = max(len(name) for _, rows in sections for name, _ in rows)
    lines = [f"== {title} =="]
    for section, rows in sections:
        lines.append(f"-- {section} --")
        for name, value in rows:
            lines.append(f"  {name.ljust(width)}  {value}")
    return "\n".join(lines) + "\n"
