"""``python -m repro.obs``: the profiling-observatory CLI."""

import sys

from repro.obs.cli import main

sys.exit(main())
