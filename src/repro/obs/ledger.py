"""The batch run ledger: an append-only history of every task run.

``xnf batch --ledger FILE`` attaches a :class:`LedgerWriter` to the
batch runner's per-task completion hook.  For every terminal task it
appends one schema-versioned JSON line::

    {"schema": "repro.obs.ledger", "version": 1,
     "run": "9f3a1c2b4d5e", "ts": 1754700000.123,
     "manifest": "corpus.json", "manifest_sha": "ab12cd34ef56",
     "seed": 7, "task": "corpus-000003", "op": "check",
     "dtd_sha": "0011aabbccdd", "fds_sha": "2233eeff4455",
     "verdict": "ok", "reason": null, "retries": 0,
     "wall_ms": 12.345, "counters_sha": "66778899aabb"}

* ``run`` — one id shared by every record of a batch invocation, so a
  single append-only file accumulates history across runs;
* ``manifest_sha`` / ``dtd_sha`` / ``fds_sha`` — input fingerprints:
  two runs are comparable exactly when these match;
* ``verdict`` / ``reason`` / ``retries`` — the task's terminal status
  (``reason`` only on dead-letters);
* ``wall_ms`` — wall time across every attempt of the task;
* ``counters_sha`` — a digest of the task's operation-counter deltas
  (``null`` while obs is disabled): deterministic work moved iff the
  digest moved.

``xnf obs history`` renders the file per run (or per task with
``--task``); ``xnf obs regress`` gates the **latest** run against
baseline runs under the benchmark comparator's conventions
(:mod:`repro.bench.compare`): wall-time growth beyond the tolerance
and ``ok -> dead-letter`` flips are gating *regressions*, retry growth
is *advisory*, counter-digest movement and new tasks are *notes*.
Exit codes: 0 pass, 1 regression, 2 structural (unreadable ledger, a
baseline task missing from the current run).

Timings vary across machines, so by default per-task ratios are
normalised by the run's **median ratio**: a uniformly slower machine
does not trip the gate, while one task slowing 2x among stable
siblings does.  ``--absolute`` compares raw wall times instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import statistics
import sys
import time
import uuid
from datetime import datetime, timezone
from pathlib import Path
from typing import IO, Callable

from repro.bench.compare import Finding
from repro.errors import ReproError
from repro.obs import metrics as _obs

#: The ``schema`` discriminator stamped on every ledger record.
LEDGER_SCHEMA = "repro.obs.ledger"

#: Bump on any incompatible change to the record layout.
LEDGER_VERSION = 1

_REQUIRED_KEYS = ("schema", "version", "run", "task", "verdict",
                  "retries", "wall_ms")


class LedgerError(ReproError):
    """A ledger file is unreadable, malformed, or not comparable."""


def fingerprint(text: str | None) -> str | None:
    """A short, stable content digest (``None`` passes through)."""
    if text is None:
        return None
    return hashlib.sha256(text.encode()).hexdigest()[:12]


def counters_digest(delta: dict) -> str | None:
    """Digest of a counter-delta mapping, independent of dict order."""
    if not delta:
        return None
    canonical = json.dumps(sorted(delta.items()))
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


# -- writing -----------------------------------------------------------


class LedgerWriter:
    """Appends one ledger record per terminal task (see module doc).

    ``manifest`` supplies the run-level provenance fields; ``run``
    defaults to a fresh random id; ``clock`` is injectable for
    deterministic tests.  :meth:`task_done` matches the batch runner's
    ``on_task_done`` seam, so the writer composes with the heartbeat
    writer behind one hook.
    """

    def __init__(self, stream: IO[str], *, manifest,
                 run: str | None = None,
                 clock: Callable[[], float] = time.time,
                 fsync: bool = False) -> None:
        self.stream = stream
        #: ``fsync=True`` makes each append crash-*durable* (survives
        #: power loss); the default is crash-*consistent* only — a
        #: record is written as one full line, so the worst a crash
        #: leaves is a torn trailing line, which the readers tolerate.
        self.fsync = fsync
        self.run = run if run is not None else uuid.uuid4().hex[:12]
        self._clock = clock
        self.manifest_source = manifest.source
        self.manifest_seed = manifest.seed
        self.manifest_sha = fingerprint(
            f"{manifest.source}:{manifest.seed}:{manifest.task_count}")
        self.records_written = 0

    def record_for(self, outcome) -> dict:
        """The ledger record for one terminal :class:`TaskOutcome`
        (without writing it)."""
        task = outcome.task
        try:
            dtd_sha = fingerprint(task.load_dtd_text())
        except ReproError:
            dtd_sha = None
        try:
            fds_sha = fingerprint(task.load_fds_text())
        except ReproError:
            fds_sha = None
        return {
            "schema": LEDGER_SCHEMA,
            "version": LEDGER_VERSION,
            "run": self.run,
            "ts": round(self._clock(), 3),
            "manifest": self.manifest_source,
            "manifest_sha": self.manifest_sha,
            "seed": self.manifest_seed,
            "task": task.id,
            "op": task.op,
            "dtd_sha": dtd_sha,
            "fds_sha": fds_sha,
            "verdict": outcome.status,
            "reason": outcome.reason,
            "retries": max(0, outcome.attempts - 1),
            "wall_ms": round(outcome.wall_s * 1e3, 3),
            "counters_sha": counters_digest(outcome.counter_delta),
        }

    def task_done(self, outcome) -> None:
        """The batch runner's ``on_task_done`` hook: append one record
        as a *single write* of a full line (crash-consistent like the
        batch journal — never two records interleaved, never a partial
        line followed by more records), flush, and optionally fsync."""
        line = json.dumps(self.record_for(outcome)) + "\n"
        self.stream.write(line)
        self.stream.flush()
        if self.fsync:
            os.fsync(self.stream.fileno())
        self.records_written += 1


# -- reading -----------------------------------------------------------


def read_ledger(path: str | Path) -> list[dict]:
    """Parse a ledger file (``-`` = stdin); raises
    :class:`LedgerError` on unreadable input, bad JSON, a foreign
    schema, or a missing required field.

    Exception: a torn *trailing* line — the partial record a crash
    mid-append leaves behind, since :meth:`LedgerWriter.task_done`
    appends each record as one single write — is skipped with a
    stderr warning and an ``obs.ledger.torn`` counter tick, so ``xnf
    obs history``/``regress`` keep working on the history of a batch
    whose supervisor died.  Bad JSON anywhere *else* is still an
    error: single-line appends cannot tear mid-file.
    """
    if str(path) == "-":
        source, text = "<stdin>", sys.stdin.read()
    else:
        source = str(path)
        try:
            text = Path(path).read_text()
        except OSError as error:
            raise LedgerError(f"cannot read {source}: {error}")
    lines = text.splitlines()
    last_content = max((number for number, line
                        in enumerate(lines, start=1) if line.strip()),
                       default=0)
    records: list[dict] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as error:
            if lineno == last_content:
                print(f"warning: {source}:{lineno}: torn trailing "
                      f"record skipped (crash mid-append?)",
                      file=sys.stderr)
                if _obs.enabled:
                    _obs.inc("obs.ledger.torn")
                continue
            raise LedgerError(
                f"{source}:{lineno}: not valid JSON ({error})")
        if not isinstance(record, dict):
            raise LedgerError(
                f"{source}:{lineno}: expected a ledger record, got "
                f"{type(record).__name__}")
        if record.get("schema") != LEDGER_SCHEMA:
            raise LedgerError(
                f"{source}:{lineno}: schema is "
                f"{record.get('schema')!r}, expected {LEDGER_SCHEMA!r}")
        if record.get("version") != LEDGER_VERSION:
            raise LedgerError(
                f"{source}:{lineno}: ledger version "
                f"{record.get('version')!r} is not supported "
                f"(expected {LEDGER_VERSION})")
        for key in _REQUIRED_KEYS:
            if key not in record:
                raise LedgerError(
                    f"{source}:{lineno}: record missing {key!r}")
        records.append(record)
    if not records:
        raise LedgerError(f"{source}: no ledger records "
                          f"(was the run invoked with --ledger?)")
    return records


def group_runs(records: list[dict]) -> dict[str, list[dict]]:
    """Records grouped by run id, in order of first appearance —
    append-only files list runs oldest first."""
    runs: dict[str, list[dict]] = {}
    for record in records:
        runs.setdefault(record["run"], []).append(record)
    return runs


def _per_task(run_records: list[dict]) -> dict[str, dict]:
    """One record per task within a run (the last one wins — a
    well-formed run writes each task exactly once)."""
    return {record["task"]: record for record in run_records}


# -- history rendering -------------------------------------------------


def _stamp(ts) -> str:
    if ts is None:
        return "-"
    return datetime.fromtimestamp(
        float(ts), tz=timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def render_history(records: list[dict], *, task: str | None = None,
                   limit: int | None = None) -> str:
    """The ``xnf obs history`` text: one row per run (newest last),
    or one row per record of ``task`` with ``--task``."""
    runs = group_runs(records)
    lines: list[str] = []
    if task is not None:
        rows = [(run, by_task[task])
                for run, run_records in runs.items()
                for by_task in (_per_task(run_records),)
                if task in by_task]
        if not rows:
            raise LedgerError(f"task {task!r} appears in no run")
        if limit is not None:
            rows = rows[-limit:]
        lines.append(f"== task {task}: {len(rows)} run(s) ==")
        for run, record in rows:
            lines.append(
                f"  run {run}  {_stamp(record.get('ts'))}  "
                f"{record['verdict']:<11}  retries {record['retries']}  "
                f"wall {record['wall_ms']:.3f} ms  "
                f"counters {record.get('counters_sha') or '-'}")
        return "\n".join(lines) + "\n"

    items = list(runs.items())
    if limit is not None:
        items = items[-limit:]
    lines.append(f"== ledger: {len(runs)} run(s), "
                 f"{len(records)} record(s) ==")
    for run, run_records in items:
        by_task = _per_task(run_records)
        ok = sum(1 for r in by_task.values() if r["verdict"] == "ok")
        dead = len(by_task) - ok
        retries = sum(r["retries"] for r in by_task.values())
        wall = sum(r["wall_ms"] for r in by_task.values())
        first = run_records[0]
        lines.append(
            f"  run {run}  {_stamp(first.get('ts'))}  "
            f"manifest {first.get('manifest', '-')}  "
            f"seed {first.get('seed', '-')}  "
            f"tasks {len(by_task)}  ok {ok}  dead-letter {dead}  "
            f"retries {retries}  wall {wall:.1f} ms")
    return "\n".join(lines) + "\n"


# -- the regression gate -----------------------------------------------


def _median_baseline(baseline_runs: list[dict[str, dict]],
                     task: str) -> dict | None:
    """Median-wall baseline entry for one task across baseline runs."""
    entries = [per_task[task] for per_task in baseline_runs
               if task in per_task]
    if not entries:
        return None
    wall = statistics.median(entry["wall_ms"] for entry in entries)
    # Keep the latest entry's categorical fields (verdict, digests),
    # with the median wall time for the timing gate.
    merged = dict(entries[-1])
    merged["wall_ms"] = wall
    return merged


def regress(records: list[dict], *,
            baseline_records: list[dict] | None = None,
            tolerance: float = 0.05, min_wall_ms: float = 1.0,
            absolute: bool = False) -> list[Finding]:
    """Gate the **latest** run in ``records`` against baselines.

    Baselines are every run of ``baseline_records`` when given,
    otherwise every *earlier* run in ``records`` itself.  See the
    module doc for the severity conventions; a baseline task missing
    from the current run raises :class:`LedgerError` (structural,
    exit 2), matching the bench comparator.
    """
    runs = group_runs(records)
    current_run, current_records = list(runs.items())[-1]
    current = _per_task(current_records)

    if baseline_records is not None:
        baseline_runs = [_per_task(run_records) for run_records
                         in group_runs(baseline_records).values()]
    else:
        baseline_runs = [_per_task(run_records) for run, run_records
                         in runs.items() if run != current_run]
    if not baseline_runs:
        raise LedgerError(
            f"run {current_run} has no baseline runs to compare "
            f"against (append more runs or pass --baseline FILE)")

    baseline_tasks = sorted(
        {task for per_task in baseline_runs for task in per_task})
    missing = [task for task in baseline_tasks if task not in current]
    if missing:
        raise LedgerError(
            f"run {current_run} is missing baseline task(s): "
            f"{', '.join(missing)}")

    findings: list[Finding] = []
    for task in sorted(current):
        if task not in baseline_tasks:
            findings.append(Finding(
                "note", task, f"new task (no baseline), verdict "
                f"{current[task]['verdict']}"))

    # Normalise out machine speed: the median per-task ratio is the
    # run-level scale, so a uniformly slower runner passes while one
    # task slowing alone still trips the gate.
    ratios: dict[str, tuple[float, float, float]] = {}
    for task in baseline_tasks:
        base = _median_baseline(baseline_runs, task)
        curr = current[task]
        base_wall, curr_wall = base["wall_ms"], curr["wall_ms"]
        if base_wall > 0:
            ratios[task] = (curr_wall / base_wall, base_wall, curr_wall)
    scale = 1.0
    if not absolute and ratios:
        scale = statistics.median(r for r, _, _ in ratios.values())
        scale = max(scale, 1e-9)

    for task in baseline_tasks:
        base = _median_baseline(baseline_runs, task)
        curr = current[task]

        if base["verdict"] == "ok" and curr["verdict"] != "ok":
            findings.append(Finding(
                "regression", task,
                f"verdict flipped ok -> {curr['verdict']}"
                + (f" ({curr.get('reason')})"
                   if curr.get("reason") else "")))
        elif base["verdict"] != "ok" and curr["verdict"] == "ok":
            findings.append(Finding(
                "note", task,
                f"verdict recovered {base['verdict']} -> ok"))

        if curr["retries"] > base["retries"]:
            findings.append(Finding(
                "advisory", task,
                f"retries grew {base['retries']} -> "
                f"{curr['retries']}"))

        # Both sides must carry a digest: a null digest means that
        # run had obs disabled, which says nothing about the work.
        if base.get("counters_sha") and curr.get("counters_sha") \
                and base["counters_sha"] != curr["counters_sha"] \
                and curr["verdict"] == "ok" == base["verdict"]:
            findings.append(Finding(
                "note", task,
                f"counter digest moved "
                f"{base.get('counters_sha') or '-'} -> "
                f"{curr.get('counters_sha') or '-'} "
                f"(deterministic work changed)"))

        if task not in ratios:
            continue
        ratio, base_wall, curr_wall = ratios[task]
        normalised = ratio / scale
        # Both measurements must clear the floor: a ratio over a
        # sub-floor baseline is scheduling noise, not a slowdown.
        if base_wall >= min_wall_ms and curr_wall >= min_wall_ms \
                and normalised > 1.0 + tolerance:
            scale_note = ("" if absolute else
                          f", run scale {scale:.2f}x normalised out")
        else:
            continue
        findings.append(Finding(
            "regression", task,
            f"wall time {base_wall:.3f} -> {curr_wall:.3f} ms "
            f"({normalised - 1.0:+.1%} beyond tolerance "
            f"{tolerance:.0%}{scale_note})"))
    return findings
