"""Observability for the implication/XNF/normalization pipeline.

A lightweight, zero-dependency, **off-by-default** instrumentation
layer.  :mod:`repro.obs.metrics` holds process-wide counters, gauges,
and histogram timers; :mod:`repro.obs.trace` provides nestable spans
with JSON-lines and tree sinks; :mod:`repro.obs.render` formats metric
snapshots as tables (the CLI's ``--stats`` output).

Enable via :func:`enable`, the CLI's ``--stats`` / ``--trace`` flags,
or the ``REPRO_OBS=1`` environment variable (honoured at import time,
so benchmarks and one-off scripts pick it up without code changes).

The full metric and span vocabulary is documented in
``docs/OBSERVABILITY.md``.

Usage::

    from repro import obs

    obs.enable()
    spec.normalize()
    print(obs.render.metrics_table(obs.snapshot()))
    obs.reset()

Hot-path contract: while disabled, instrumented code performs at most
one module-attribute read (``metrics.enabled``) per potential event —
no closures, no allocations, no clock reads.
"""

from __future__ import annotations

import os

from repro.obs import export, metrics, render, trace
from repro.obs.export import MetricsExporter, prometheus_text, start_exporter
from repro.obs.metrics import (
    counter_value,
    disable,
    enable,
    inc,
    is_enabled,
    observe,
    reset,
    set_gauge,
    snapshot,
    timer,
)
from repro.obs.trace import (
    InMemorySink,
    JsonLinesSink,
    Span,
    SpanContext,
    add_sink,
    clear_context,
    clear_sinks,
    current_span,
    get_context,
    remove_sink,
    render_tree,
    set_context,
    span,
    task_scope,
)

__all__ = [
    "metrics", "trace", "render", "export", "profile", "ledger",
    "enable", "disable", "is_enabled", "reset",
    "inc", "set_gauge", "observe", "timer", "counter_value",
    "snapshot",
    "span", "current_span", "add_sink", "remove_sink", "clear_sinks",
    "Span", "JsonLinesSink", "InMemorySink", "render_tree",
    "SpanContext", "set_context", "get_context", "clear_context",
    "task_scope",
    "MetricsExporter", "prometheus_text", "start_exporter",
]


def __getattr__(name: str):
    # ``obs.profile`` (and its CLI) import the benchmark comparator,
    # which itself imports ``repro.obs`` — loading them lazily keeps
    # the package import acyclic for every consumer that only wants
    # metrics/spans.
    if name in ("profile", "cli", "ledger"):
        import importlib
        return importlib.import_module(f"repro.obs.{name}")
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")

if os.environ.get("REPRO_OBS", "") not in ("", "0"):  # pragma: no cover
    enable()
