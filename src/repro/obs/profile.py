"""Folding JSON-lines span traces into deterministic profiles.

The input is a ``--trace FILE`` log (:class:`repro.obs.trace.JsonLinesSink`
records, one JSON object per finished span).  This module rebuilds the
span forest and folds it three ways:

* **by span name** — call counts, total and *self* wall time (total
  minus the time covered by child spans), and self-attributed counter
  deltas (the span's boundary-snapshot delta minus its children's);
* **by stack** — ``root;child;leaf`` frames with self time, the
  folded-stacks format flamegraph tools consume (``xnf obs flame``);
* **critical path** — the heaviest root-to-leaf chain, each hop with
  its share of the root's wall time.

Everything downstream of the trace file is **deterministic**: node
ordering comes from recorded start offsets and span ids, aggregation
rows are key-sorted, and no wall clock is consulted — the same trace
bytes always produce the same report bytes, independent of
``PYTHONHASHSEED``.  (Two *runs* of a workload of course produce
different timings; determinism here means the profiler adds no noise
of its own, so profiles are diffable artifacts.)

:func:`diff` compares two profiles — or two ``obs.snapshot()`` JSON
files — under the benchmark comparator's conventions
(:mod:`repro.bench.compare`): counter movement beyond the tolerance is
a gating *regression*, wall-time movement is *advisory*, and the exit
code contract is 0 pass / 1 regression / 2 unreadable input.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterator

from repro.bench.compare import Finding, gate, render_findings
from repro.errors import ReproError


class TraceError(ReproError):
    """A trace (or snapshot) file is unreadable or malformed."""


# -- loading -----------------------------------------------------------


def _read_source(path: str | Path) -> tuple[str, str]:
    """Read a trace/snapshot source; ``-`` means standard input."""
    if str(path) == "-":
        return "<stdin>", sys.stdin.read()
    source = str(path)
    try:
        return source, Path(path).read_text()
    except OSError as error:
        raise TraceError(f"cannot read {source}: {error}")


def load_trace(path: str | Path) -> list[dict]:
    """Parse a JSON-lines span trace; raises :class:`TraceError`."""
    source, text = _read_source(path)
    return _parse_trace(source, text)


def _parse_trace(source: str, text: str) -> list[dict]:
    records: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as error:
            raise TraceError(
                f"{source}:{lineno}: not valid JSON ({error})")
        if not isinstance(record, dict):
            raise TraceError(
                f"{source}:{lineno}: expected a span object, got "
                f"{type(record).__name__}")
        for key in ("id", "name", "duration_ms"):
            if key not in record:
                raise TraceError(
                    f"{source}:{lineno}: span record missing {key!r}")
        records.append(record)
    if not records:
        raise TraceError(f"{source}: no span records "
                         f"(was the run traced with --trace?)")
    return records


# -- the span forest ---------------------------------------------------


@dataclass
class SpanNode:
    """One span rebuilt from its trace record, with tree links."""

    record: dict
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def span_id(self) -> int:
        return self.record["id"]

    @property
    def name(self) -> str:
        return str(self.record["name"])

    @property
    def duration_ms(self) -> float:
        return float(self.record["duration_ms"])

    @property
    def start(self) -> float:
        return float(self.record.get("start", 0.0))

    @property
    def counters(self) -> dict[str, int]:
        """Cumulative counter deltas over this span (children included)."""
        return self.record.get("counters", {}) or {}

    @property
    def child_ms(self) -> float:
        return sum(child.duration_ms for child in self.children)

    @property
    def self_ms(self) -> float:
        return max(0.0, self.duration_ms - self.child_ms)

    def self_counters(self) -> dict[str, int]:
        """Counter deltas minus the children's share, non-zero only."""
        remaining = dict(self.counters)
        for child in self.children:
            for name, value in child.counters.items():
                remaining[name] = remaining.get(name, 0) - value
        return {name: value
                for name, value in remaining.items() if value != 0}


def build_forest(records: list[dict]) -> list[SpanNode]:
    """Rebuild the span forest; orphans (truncated traces) become
    roots.  Children are ordered by recorded start offset, then id —
    never by file or dict order."""
    nodes = {record["id"]: SpanNode(record) for record in records}
    roots: list[SpanNode] = []
    for record in records:
        node = nodes[record["id"]]
        parent = nodes.get(record.get("parent"))
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.start, n.span_id))
    roots.sort(key=lambda n: (n.start, n.span_id))
    return roots


def _walk(node: SpanNode, stack: tuple[str, ...],
          ) -> Iterator[tuple[SpanNode, tuple[str, ...]]]:
    frame = stack + (node.name,)
    yield node, frame
    for child in node.children:
        yield from _walk(child, frame)


# -- aggregation -------------------------------------------------------


@dataclass
class NameStat:
    """Aggregate of every span sharing one name."""

    name: str
    calls: int = 0
    total_ms: float = 0.0
    self_ms: float = 0.0
    min_ms: float = float("inf")
    max_ms: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)

    def add(self, node: SpanNode) -> None:
        self.calls += 1
        self.total_ms += node.duration_ms
        self.self_ms += node.self_ms
        self.min_ms = min(self.min_ms, node.duration_ms)
        self.max_ms = max(self.max_ms, node.duration_ms)
        for counter, value in node.self_counters().items():
            self.counters[counter] = self.counters.get(counter, 0) + value


@dataclass
class Profile:
    """A fully folded trace: forest + per-name and per-stack rollups."""

    roots: list[SpanNode]
    spans: int
    by_name: dict[str, NameStat]
    by_stack: dict[tuple[str, ...], float]

    @property
    def total_ms(self) -> float:
        """Wall time of the root spans (the trace's outermost work)."""
        return sum(root.duration_ms for root in self.roots)

    @property
    def attributed_ms(self) -> float:
        """Root wall time covered by named child spans."""
        return sum(root.child_ms for root in self.roots)

    @property
    def coverage(self) -> float:
        """Fraction of root wall time attributed to child spans —
        the acceptance metric for span instrumentation density."""
        total = self.total_ms
        return self.attributed_ms / total if total > 0 else 1.0

    def total_counters(self) -> dict[str, int]:
        """Counter deltas across the whole trace (sum of self deltas)."""
        totals: dict[str, int] = {}
        for stat in self.by_name.values():
            for counter, value in stat.counters.items():
                totals[counter] = totals.get(counter, 0) + value
        return totals


def build_profile(records: list[dict]) -> Profile:
    roots = build_forest(records)
    by_name: dict[str, NameStat] = {}
    by_stack: dict[tuple[str, ...], float] = {}
    spans = 0
    for root in roots:
        for node, stack in _walk(root, ()):
            spans += 1
            stat = by_name.get(node.name)
            if stat is None:
                stat = by_name[node.name] = NameStat(node.name)
            stat.add(node)
            by_stack[stack] = by_stack.get(stack, 0.0) + node.self_ms
    return Profile(roots=roots, spans=spans, by_name=by_name,
                   by_stack=by_stack)


def load_profile(path: str | Path) -> Profile:
    return build_profile(load_trace(path))


# -- per-task rollup (stitched batch traces) ---------------------------


TASK_SPAN = "runtime.task"


@dataclass
class TaskStat:
    """Aggregate of every task span attributed to one manifest task."""

    task: str
    runs: int = 0
    total_ms: float = 0.0
    workers: set = field(default_factory=set)


def fold_by_task(profile: Profile) -> list[TaskStat]:
    """Group ``runtime.task`` spans by their manifest task id.

    Schema-v2 records carry the id in the ``task`` field; v1 batch
    traces fall back to the span's ``task`` attribute.  Ordered by
    total wall time (desc), then task id — deterministic per trace.
    """
    stats: dict[str, TaskStat] = {}
    for root in profile.roots:
        for node, _stack in _walk(root, ()):
            if node.name != TASK_SPAN:
                continue
            task = node.record.get("task") \
                or node.record.get("attrs", {}).get("task") \
                or "<unattributed>"
            stat = stats.get(str(task))
            if stat is None:
                stat = stats[str(task)] = TaskStat(str(task))
            stat.runs += 1
            stat.total_ms += node.duration_ms
            worker = node.record.get("worker")
            if worker is not None:
                stat.workers.add(worker)
    return sorted(stats.values(), key=lambda s: (-s.total_ms, s.task))


def task_attribution(profile: Profile) -> float:
    """Fraction of root wall time covered by task spans — the
    acceptance metric for stitched batch traces."""
    total = profile.total_ms
    if total <= 0:
        return 1.0
    return sum(stat.total_ms for stat in fold_by_task(profile)) / total


def render_by_task(profile: Profile) -> str:
    """The ``xnf obs report --by-task`` section: per-task wall time,
    attempt counts, and the workers each task ran on."""
    stats = fold_by_task(profile)
    total = profile.total_ms
    attributed = sum(stat.total_ms for stat in stats)
    lines = [f"-- by task: {len(stats)} task(s), "
             f"{attributed:.2f} ms attributed "
             f"({_pct(attributed, total).strip()} of root wall time) --"]
    if not stats:
        lines.append(f"  no {TASK_SPAN!r} spans in this trace "
                     f"(was it a batch run?)")
        return "\n".join(lines) + "\n"
    width = max(len(stat.task) for stat in stats)
    lines.append(f"  {'task'.ljust(width)}  {'runs':>5}  "
                 f"{'total ms':>10}  {'%total':>6}  workers")
    for stat in stats:
        workers = ",".join(str(worker)
                           for worker in sorted(stat.workers)) or "-"
        lines.append(f"  {stat.task.ljust(width)}  {stat.runs:>5}  "
                     f"{stat.total_ms:>10.2f}  "
                     f"{_pct(stat.total_ms, total)}  {workers}")
    return "\n".join(lines) + "\n"


# -- critical path -----------------------------------------------------


def critical_path(profile: Profile) -> list[SpanNode]:
    """The heaviest root-to-leaf chain (ties broken by start, id)."""
    if not profile.roots:
        return []
    heaviest = max(profile.roots,
                   key=lambda n: (n.duration_ms, -n.start, -n.span_id))
    path = [heaviest]
    while path[-1].children:
        path.append(max(path[-1].children,
                        key=lambda n: (n.duration_ms, -n.start,
                                       -n.span_id)))
    return path


# -- rendering ---------------------------------------------------------


def _pct(part: float, whole: float) -> str:
    return f"{part / whole:6.1%}" if whole > 0 else "   n/a"


def render_report(profile: Profile, *, counters: bool = True,
                  by_task: bool = False) -> str:
    """The ``xnf obs report`` text: totals, per-name table, critical
    path, self-attributed counter deltas.  Deterministic per trace."""
    total = profile.total_ms
    lines = [f"== trace profile: {profile.spans} span(s), "
             f"{len(profile.roots)} root(s), total {total:.2f} ms, "
             f"child coverage {profile.coverage:.1%} =="]
    epoch = next((root.record.get("epoch") for root in profile.roots
                  if root.record.get("epoch") is not None), None)
    if epoch is not None:
        stamp = datetime.fromtimestamp(float(epoch), tz=timezone.utc)
        lines.append(f"   anchored {stamp.isoformat()} "
                     f"(epoch {float(epoch):.6f})")

    if by_task:
        lines.append(render_by_task(profile).rstrip("\n"))

    lines.append("-- by span name --")
    width = max(len(name) for name in profile.by_name)
    header = (f"  {'span'.ljust(width)}  {'calls':>6}  "
              f"{'total ms':>10}  {'self ms':>10}  {'%total':>6}")
    lines.append(header)
    ordered = sorted(profile.by_name.values(),
                     key=lambda s: (-s.total_ms, s.name))
    for stat in ordered:
        lines.append(f"  {stat.name.ljust(width)}  {stat.calls:>6}  "
                     f"{stat.total_ms:>10.2f}  {stat.self_ms:>10.2f}  "
                     f"{_pct(stat.total_ms, total)}")

    path = critical_path(profile)
    if path:
        lines.append("-- critical path --")
        root_ms = path[0].duration_ms
        for depth, node in enumerate(path):
            lines.append(f"  {'  ' * depth}{node.name}  "
                         f"{node.duration_ms:.2f} ms  "
                         f"{_pct(node.duration_ms, root_ms).strip()}")

    if counters:
        rows = [(stat.name, counter, value)
                for stat in sorted(profile.by_name.values(),
                                   key=lambda s: s.name)
                for counter, value in sorted(stat.counters.items())]
        if rows:
            lines.append("-- counter deltas (self-attributed) --")
            for span_name, counter, value in rows:
                lines.append(f"  {span_name.ljust(width)}  "
                             f"{counter} {value:+d}")
    return "\n".join(lines) + "\n"


def folded_stacks(profile: Profile) -> str:
    """Folded-stacks output (``frame;frame;frame value``) for
    flamegraph tools; the value is self time in integer microseconds.
    Lines are lexicographically sorted — byte-identical per trace."""
    lines = []
    for stack, self_ms in profile.by_stack.items():
        value = round(self_ms * 1000.0)
        lines.append(f"{';'.join(stack)} {value}")
    return "\n".join(sorted(lines)) + "\n" if lines else ""


# -- diffing (bench-comparator conventions) ----------------------------


def load_comparable(path: str | Path) -> tuple[str, dict]:
    """Load a trace *or* a stats-snapshot JSON file for diffing.

    Returns ``(kind, {"counters": ..., "times_ms": ...})`` where kind
    is ``"trace"`` or ``"snapshot"``.  Counters gate, times are
    advisory — the same split the benchmark comparator uses.
    """
    source, text = _read_source(path)
    stripped = text.strip()
    if not stripped:
        raise TraceError(f"{source}: empty file")
    try:
        whole = json.loads(stripped)
    except ValueError:
        whole = None
    # A stats snapshot has a top-level "counters" mapping; a one-line
    # trace can *also* parse as a single dict with a "counters" field,
    # but it carries span keys ("id", "duration_ms") a snapshot never
    # does.
    if isinstance(whole, dict) and "counters" in whole \
            and "duration_ms" not in whole:
        times = {name: float(stats.get("total", 0.0)) * 1e3
                 for name, stats in whole.get("timers", {}).items()}
        return "snapshot", {"counters": dict(whole["counters"]),
                            "times_ms": times}
    profile = build_profile(_parse_trace(source, text))
    times = {name: stat.total_ms
             for name, stat in profile.by_name.items()}
    return "trace", {"counters": profile.total_counters(),
                     "times_ms": times}


def diff_comparables(base: dict, curr: dict, *,
                     tolerance: float = 0.05) -> list[Finding]:
    """Counter-gated findings between two comparables (see module doc)."""
    findings: list[Finding] = []
    base_counters, curr_counters = base["counters"], curr["counters"]
    for counter in sorted(set(base_counters) | set(curr_counters)):
        before = base_counters.get(counter, 0)
        after = curr_counters.get(counter, 0)
        if after > before and after - before > before * tolerance:
            grown = (f"{(after - before) / before:.1%}"
                     if before else "new")
            findings.append(Finding(
                "regression", counter,
                f"counter grew {before} -> {after} (+{grown}, "
                f"tolerance {tolerance:.0%})"))
        elif before > after and before - after > after * tolerance:
            findings.append(Finding(
                "note", counter,
                f"counter improved {before} -> {after}"))
    base_times, curr_times = base["times_ms"], curr["times_ms"]
    for name in sorted(set(base_times) & set(curr_times)):
        before, after = base_times[name], curr_times[name]
        if before > 0 and after > before * (1 + tolerance):
            findings.append(Finding(
                "advisory", name,
                f"wall time {before:.2f} -> {after:.2f} ms "
                f"(+{(after - before) / before:.1%}; advisory only, "
                f"never gated)"))
    return findings


def diff(base_path: str | Path, curr_path: str | Path, *,
         tolerance: float = 0.05) -> tuple[str, int]:
    """Compare two trace/snapshot files; returns (report text, exit
    code) under the bench comparator's 0-pass / 1-regression
    contract.  Unreadable or malformed input raises
    :class:`TraceError` (the CLI maps it to exit 2)."""
    base_kind, base = load_comparable(base_path)
    curr_kind, curr = load_comparable(curr_path)
    findings = diff_comparables(base, curr, tolerance=tolerance)
    header = ""
    if base_kind != curr_kind:
        header = (f"note: comparing a {base_kind} against a "
                  f"{curr_kind} (counters are comparable; wall-time "
                  f"rows only overlap where names match)\n")
    return (header + render_findings(findings, tolerance=tolerance),
            gate(findings))
