"""Thread-safe counters, gauges, and histogram timers.

A process-wide registry of named metrics, off by default.  The design
goal is *zero cost when disabled*: every recording function first reads
the module-level :data:`enabled` flag and returns immediately when it
is ``False``, and the instrumentation sites in the pipeline guard even
that call behind ``if _obs.enabled:`` — a single module-attribute load
— so the hot paths allocate nothing (no closures, no context managers)
while observability is off.

Metric kinds:

* **counter** — a monotonically increasing integer
  (:func:`inc`), e.g. ``implication.cache.hit``;
* **gauge** — a point-in-time value (:func:`set_gauge`), e.g. the
  current chase frontier size;
* **histogram** — a stream of plain-value observations summarized as
  count/total/min/max/mean plus p50/p95/p99 percentiles
  (:func:`observe`), e.g. tableau sizes;
* **timer** — a histogram of wall-clock durations in seconds, fed by
  the :func:`timer` context manager and kept in its own snapshot
  section so renderers can scale to milliseconds.

:func:`snapshot` returns a plain-``dict`` copy (safe to mutate, JSON
serializable); :func:`reset` clears every metric but keeps the enabled
state.  The snapshot is schema-versioned (``schema`` /
``schema_version`` envelope keys) and every histogram/timer summary
carries an explicit ``unit`` field (``"seconds"`` for timers, ``"1"``
— dimensionless — for plain histograms), so downstream consumers
(:mod:`repro.obs.render`, :mod:`repro.obs.export`) never have to guess
seconds-vs-milliseconds.  The metric name vocabulary is documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Iterator

#: The process-wide on/off switch.  Read directly (``metrics.enabled``)
#: by instrumentation sites; flip only via :func:`enable` /
#: :func:`disable` so the toggle stays in one place.
enabled: bool = False

#: The ``schema`` discriminator stamped on every snapshot.
SNAPSHOT_SCHEMA = "repro.obs.snapshot"

#: Bumped with PR 6 (v2 adds the envelope itself and the per-summary
#: ``unit`` field).  Consumers treat a missing envelope as v1.
SNAPSHOT_VERSION = 2

#: The ``unit`` stamped on timer summaries (wall-clock seconds).
UNIT_SECONDS = "seconds"

#: The ``unit`` stamped on plain-value histogram summaries
#: (dimensionless, OpenMetrics-style "1").
UNIT_NONE = "1"

_lock = threading.Lock()
_counters: dict[str, int] = {}
_gauges: dict[str, float] = {}
_histograms: dict[str, "_Histogram"] = {}
_timers: dict[str, "_Histogram"] = {}


#: Per-histogram sample retention cap.  When a histogram exceeds it,
#: the sample is decimated (every second value kept) and the keep
#: stride doubles — deterministic, bounded, and still uniform over the
#: observation sequence, unlike a random reservoir.
_SAMPLE_CAP = 8192


def _percentile(ordered: list[float], quantile: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty list."""
    rank = max(0, min(len(ordered) - 1,
                      int(math.ceil(quantile * len(ordered))) - 1))
    return ordered[rank]


class _Histogram:
    """Streaming summary of a series of observations.

    Exact ``count``/``total``/``min``/``max``/``mean``; the
    ``p50``/``p95``/``p99`` percentiles are computed from a retained
    sample that is exact up to :data:`_SAMPLE_CAP` observations and a
    deterministic every-``stride``-th subsample beyond it.
    """

    __slots__ = ("count", "total", "min", "max", "samples", "stride")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: list[float] = []
        self.stride = 1

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if (self.count - 1) % self.stride == 0:
            self.samples.append(value)
            if len(self.samples) > _SAMPLE_CAP:
                del self.samples[1::2]
                self.stride *= 2

    def as_dict(self, unit: str = UNIT_NONE) -> dict[str, float | str]:
        mean = self.total / self.count if self.count else 0.0
        ordered = sorted(self.samples)
        return {"count": self.count, "total": self.total,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0,
                "mean": mean,
                "p50": _percentile(ordered, 0.50) if ordered else 0.0,
                "p95": _percentile(ordered, 0.95) if ordered else 0.0,
                "p99": _percentile(ordered, 0.99) if ordered else 0.0,
                "unit": unit}


def enable() -> None:
    """Turn metric recording (and span tracing) on, process-wide."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn metric recording off.  Recorded values are kept until
    :func:`reset`."""
    global enabled
    enabled = False


def is_enabled() -> bool:
    return enabled


def inc(name: str, value: int = 1) -> None:
    """Add ``value`` to the counter ``name`` (no-op while disabled)."""
    if not enabled:
        return
    with _lock:
        _counters[name] = _counters.get(name, 0) + value


def set_gauge(name: str, value: float) -> None:
    """Set the gauge ``name`` (no-op while disabled)."""
    if not enabled:
        return
    with _lock:
        _gauges[name] = value


def observe(name: str, value: float) -> None:
    """Record one observation into the histogram ``name`` (no-op while
    disabled).  Histograms hold plain values (path counts, tableau
    sizes, ...); wall-clock durations go through :func:`timer`."""
    if not enabled:
        return
    with _lock:
        histogram = _histograms.get(name)
        if histogram is None:
            histogram = _histograms[name] = _Histogram()
        histogram.observe(value)


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Time the ``with`` body into the timer histogram ``name``
    (seconds).

    Cheap when disabled (one flag check, no clock read), but hot loops
    should still guard the call site with ``if metrics.enabled:``.
    """
    if not enabled:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        if enabled:
            with _lock:
                histogram = _timers.get(name)
                if histogram is None:
                    histogram = _timers[name] = _Histogram()
                histogram.observe(elapsed)


def observe_seconds(name: str, seconds: float) -> None:
    """Record a pre-measured duration into the timer histogram ``name``.

    For callers that already hold both clock endpoints — e.g. the
    ``xnf serve`` request-accounting seam, which times a request across
    admission and handling and records once — where a :func:`timer`
    context does not fit.  No-op while disabled."""
    if not enabled:
        return
    with _lock:
        histogram = _timers.get(name)
        if histogram is None:
            histogram = _timers[name] = _Histogram()
        histogram.observe(seconds)


def counter_value(name: str) -> int:
    """The current value of a counter (0 if never incremented)."""
    with _lock:
        return _counters.get(name, 0)


def counters_snapshot() -> dict[str, int]:
    """A copy of the counters section only — cheap enough for span
    boundary snapshots (:mod:`repro.obs.trace`)."""
    with _lock:
        return dict(_counters)


def snapshot() -> dict[str, dict]:
    """A JSON-serializable copy of every recorded metric.

    Schema v2: the envelope names itself (``schema`` /
    ``schema_version``) and every histogram/timer summary carries a
    ``unit`` field (timers: ``"seconds"``; histograms: ``"1"``).
    """
    with _lock:
        return {
            "schema": SNAPSHOT_SCHEMA,
            "schema_version": SNAPSHOT_VERSION,
            "counters": dict(_counters),
            "gauges": dict(_gauges),
            "histograms": {name: h.as_dict(UNIT_NONE)
                           for name, h in _histograms.items()},
            "timers": {name: h.as_dict(UNIT_SECONDS)
                       for name, h in _timers.items()},
        }


def reset() -> None:
    """Clear all metrics (the enabled flag is left as-is)."""
    with _lock:
        _counters.clear()
        _gauges.clear()
        _histograms.clear()
        _timers.clear()


# -- process-pool support (repro.runtime.pool) -------------------------
#
# A forked batch worker inherits this module's state wholesale: the
# registry dicts, the enabled flag, and — dangerously — the lock, which
# may have been *held* by another parent thread (the metrics exporter
# renders a snapshot under it) at the instant of the fork, leaving the
# child's copy locked forever.  Workers therefore call
# :func:`reinit_after_fork` first thing, then record into their own
# registry; the parent folds the results back with :func:`merge_raw`.

def reinit_after_fork() -> None:
    """Make this module safe to use in a freshly forked child.

    Replaces the (possibly stuck) lock and clears the inherited
    registry so the child's metrics count only its own work.  The
    enabled flag is inherited unchanged — if the parent was recording,
    the child records too.
    """
    global _lock
    _lock = threading.Lock()
    reset()


def dump_raw() -> dict:
    """The full recording state in mergeable (not summarized) form.

    Unlike :func:`snapshot`, histograms and timers are dumped with
    their retained samples and stride, so another process can merge
    them with :func:`merge_raw` and still compute percentiles over the
    union.  Plain data only — safe to pickle across a process
    boundary.
    """
    def hist_state(histogram: _Histogram) -> dict:
        return {"count": histogram.count, "total": histogram.total,
                "min": histogram.min, "max": histogram.max,
                "samples": list(histogram.samples),
                "stride": histogram.stride}

    with _lock:
        return {"counters": dict(_counters), "gauges": dict(_gauges),
                "histograms": {name: hist_state(h)
                               for name, h in _histograms.items()},
                "timers": {name: hist_state(h)
                           for name, h in _timers.items()}}


def _merge_histogram(histogram: _Histogram, state: dict) -> None:
    histogram.count += state["count"]
    histogram.total += state["total"]
    histogram.min = min(histogram.min, state["min"])
    histogram.max = max(histogram.max, state["max"])
    histogram.samples.extend(state["samples"])
    histogram.stride = max(histogram.stride, state["stride"])
    while len(histogram.samples) > _SAMPLE_CAP:
        del histogram.samples[1::2]
        histogram.stride *= 2


def merge_raw(state: dict) -> None:
    """Fold a :func:`dump_raw` dump from another process into this
    one's registry.

    Counters and histogram counts/totals add exactly; percentiles are
    computed over the concatenated retained samples (an approximation
    with the same guarantees as the per-process decimation); gauges
    take the incoming value (point-in-time semantics — last write
    wins).  No-op while disabled.
    """
    if not enabled:
        return
    with _lock:
        for name, value in state.get("counters", {}).items():
            _counters[name] = _counters.get(name, 0) + value
        for name, value in state.get("gauges", {}).items():
            _gauges[name] = value
        for registry, incoming in (
                (_histograms, state.get("histograms", {})),
                (_timers, state.get("timers", {}))):
            for name, hist_state in incoming.items():
                histogram = registry.get(name)
                if histogram is None:
                    histogram = registry[name] = _Histogram()
                _merge_histogram(histogram, hist_state)
