"""The observability command line: ``xnf obs {report,flame,diff}``.

Reachable two ways (identical behaviour)::

    python -m repro.obs  report TRACE            # profile tree + counters
    python -m repro.obs  flame  TRACE [-o FILE]  # folded stacks
    python -m repro.obs  diff   A B [--tolerance PCT]

    xnf obs report / flame / diff ...            # the main CLI

``report`` folds a ``--trace FILE`` JSON-lines log into the
deterministic profile of :mod:`repro.obs.profile`; ``flame`` emits
folded stacks for flamegraph tools; ``diff`` compares two traces or
two ``--stats``-style snapshot JSON files under the benchmark
comparator's conventions.

Exit codes follow the repository-wide contract: 0 success / no
regression, 1 counter regression beyond tolerance (``diff`` only), 2
usage or file error (unreadable/malformed trace — a message, never a
traceback).
"""

from __future__ import annotations

import argparse
import sys

from repro.obs import profile as _profile
from repro.obs.profile import TraceError

EXIT_OK = 0
EXIT_NEGATIVE = 1
EXIT_USAGE = 2


def cmd_report(args: argparse.Namespace) -> int:
    profile = _profile.load_profile(args.trace_path)
    print(_profile.render_report(
        profile, counters=not args.no_counters), end="")
    return EXIT_OK


def cmd_flame(args: argparse.Namespace) -> int:
    profile = _profile.load_profile(args.trace_path)
    folded = _profile.folded_stacks(profile)
    if args.out and args.out != "-":
        with open(args.out, "w") as stream:
            stream.write(folded)
        print(f"wrote {args.out} ({len(profile.by_stack)} stack(s))",
              file=sys.stderr)
    else:
        print(folded, end="")
    return EXIT_OK


def cmd_diff(args: argparse.Namespace) -> int:
    report, code = _profile.diff(args.baseline, args.current,
                                 tolerance=args.tolerance / 100.0)
    print(report, end="")
    return code


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the report/flame/diff subcommands to ``parser`` (used
    both by ``python -m repro.obs`` and the main CLI's ``obs``
    subcommand)."""
    sub = parser.add_subparsers(dest="obs_command", required=True)

    # dest is "trace_path", not "trace": in the main CLI the global
    # --trace FILE option owns the "trace" dest, and colliding with it
    # would make `xnf obs report T` truncate T before reading it.
    rep = sub.add_parser(
        "report", help="fold a --trace log into a profile report")
    rep.add_argument("trace_path", metavar="TRACE",
                     help="JSON-lines span trace file")
    rep.add_argument("--no-counters", action="store_true",
                     help="omit the self-attributed counter-delta "
                     "section")
    rep.set_defaults(obs_func=cmd_report)

    fla = sub.add_parser(
        "flame", help="emit folded stacks for flamegraph tools")
    fla.add_argument("trace_path", metavar="TRACE",
                     help="JSON-lines span trace file")
    fla.add_argument("-o", "--out", metavar="FILE",
                     help="write to FILE instead of stdout")
    fla.set_defaults(obs_func=cmd_flame)

    dif = sub.add_parser(
        "diff", help="gate two traces (or stats snapshots) on "
        "counter deltas")
    dif.add_argument("baseline", help="baseline trace or snapshot JSON")
    dif.add_argument("current", help="current trace or snapshot JSON")
    dif.add_argument("--tolerance", type=float, metavar="PCT",
                     default=5.0,
                     help="allowed counter growth in percent "
                     "(default: %(default)s)")
    dif.set_defaults(obs_func=cmd_diff)


def dispatch(args: argparse.Namespace) -> int:
    """Run the selected obs subcommand (shared with the main CLI)."""
    try:
        return args.obs_func(args)
    except TraceError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="profiling observatory: report, flame, diff")
    configure_parser(parser)
    args = parser.parse_args(argv)
    return dispatch(args)
