"""The observability command line: ``xnf obs {report,flame,diff,
history,regress}``.

Reachable two ways (identical behaviour)::

    python -m repro.obs  report TRACE [--by-task]  # profile tree
    python -m repro.obs  flame  TRACE [-o FILE]    # folded stacks
    python -m repro.obs  diff   A B [--tolerance PCT]
    python -m repro.obs  history LEDGER [--task ID] [--limit N]
    python -m repro.obs  regress LEDGER [--baseline FILE] ...

    xnf obs report / flame / diff / history / regress ...

``report`` folds a ``--trace FILE`` JSON-lines log into the
deterministic profile of :mod:`repro.obs.profile` (``--by-task`` adds
the per-manifest-task rollup for stitched batch traces); ``flame``
emits folded stacks for flamegraph tools; ``diff`` compares two traces
or two ``--stats``-style snapshot JSON files under the benchmark
comparator's conventions.  ``history`` and ``regress`` read the
``--ledger FILE`` batch run ledger (:mod:`repro.obs.ledger`): history
summarises past runs, regress gates the latest run against baselines.

Every positional file argument accepts ``-`` for standard input, so
traces and ledgers pipe straight through (``xnf ... --trace - | xnf
obs report -``).

Exit codes follow the repository-wide contract: 0 success / no
regression, 1 regression beyond tolerance (``diff`` / ``regress``), 2
usage or file error (unreadable/malformed input — a message, never a
traceback).
"""

from __future__ import annotations

import argparse
import sys

from repro.obs import ledger as _ledger
from repro.obs import profile as _profile
from repro.obs.ledger import LedgerError
from repro.obs.profile import TraceError
from repro.bench.compare import gate, render_findings

EXIT_OK = 0
EXIT_NEGATIVE = 1
EXIT_USAGE = 2


def cmd_report(args: argparse.Namespace) -> int:
    profile = _profile.load_profile(args.trace_path)
    print(_profile.render_report(
        profile, counters=not args.no_counters,
        by_task=args.by_task), end="")
    return EXIT_OK


def cmd_flame(args: argparse.Namespace) -> int:
    profile = _profile.load_profile(args.trace_path)
    folded = _profile.folded_stacks(profile)
    if args.out and args.out != "-":
        with open(args.out, "w") as stream:
            stream.write(folded)
        print(f"wrote {args.out} ({len(profile.by_stack)} stack(s))",
              file=sys.stderr)
    else:
        print(folded, end="")
    return EXIT_OK


def cmd_diff(args: argparse.Namespace) -> int:
    report, code = _profile.diff(args.baseline, args.current,
                                 tolerance=args.tolerance / 100.0)
    print(report, end="")
    return code


def cmd_history(args: argparse.Namespace) -> int:
    records = _ledger.read_ledger(args.ledger_path)
    print(_ledger.render_history(records, task=args.task,
                                 limit=args.limit), end="")
    return EXIT_OK


def cmd_regress(args: argparse.Namespace) -> int:
    records = _ledger.read_ledger(args.ledger_path)
    baseline = (_ledger.read_ledger(args.baseline)
                if args.baseline else None)
    tolerance = args.tolerance / 100.0
    findings = _ledger.regress(
        records, baseline_records=baseline, tolerance=tolerance,
        min_wall_ms=args.min_wall_ms, absolute=args.absolute)
    print(render_findings(findings, tolerance=tolerance), end="")
    return gate(findings)


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the obs subcommands to ``parser`` (used both by
    ``python -m repro.obs`` and the main CLI's ``obs`` subcommand)."""
    sub = parser.add_subparsers(dest="obs_command", required=True)

    # dest is "trace_path", not "trace": in the main CLI the global
    # --trace FILE option owns the "trace" dest, and colliding with it
    # would make `xnf obs report T` truncate T before reading it.
    rep = sub.add_parser(
        "report", help="fold a --trace log into a profile report")
    rep.add_argument("trace_path", metavar="TRACE",
                     help="JSON-lines span trace file, or - for stdin")
    rep.add_argument("--no-counters", action="store_true",
                     help="omit the self-attributed counter-delta "
                     "section")
    rep.add_argument("--by-task", action="store_true",
                     help="add the per-manifest-task rollup "
                     "(stitched batch traces)")
    rep.set_defaults(obs_func=cmd_report)

    fla = sub.add_parser(
        "flame", help="emit folded stacks for flamegraph tools")
    fla.add_argument("trace_path", metavar="TRACE",
                     help="JSON-lines span trace file, or - for stdin")
    fla.add_argument("-o", "--out", metavar="FILE",
                     help="write to FILE instead of stdout")
    fla.set_defaults(obs_func=cmd_flame)

    dif = sub.add_parser(
        "diff", help="gate two traces (or stats snapshots) on "
        "counter deltas")
    dif.add_argument("baseline", help="baseline trace or snapshot "
                     "JSON, or - for stdin")
    dif.add_argument("current", help="current trace or snapshot "
                     "JSON, or - for stdin")
    dif.add_argument("--tolerance", type=float, metavar="PCT",
                     default=5.0,
                     help="allowed counter growth in percent "
                     "(default: %(default)s)")
    dif.set_defaults(obs_func=cmd_diff)

    his = sub.add_parser(
        "history", help="summarise a --ledger run history")
    his.add_argument("ledger_path", metavar="LEDGER",
                     help="JSON-lines run ledger file, or - for stdin")
    his.add_argument("--task", metavar="ID",
                     help="show every run of one task instead of "
                     "the per-run summary")
    his.add_argument("--limit", type=int, metavar="N",
                     help="only the most recent N runs")
    his.set_defaults(obs_func=cmd_history)

    reg = sub.add_parser(
        "regress", help="gate the latest ledger run against "
        "baseline runs")
    reg.add_argument("ledger_path", metavar="LEDGER",
                     help="JSON-lines run ledger file, or - for stdin")
    reg.add_argument("--baseline", metavar="FILE",
                     help="compare against this ledger's runs "
                     "instead of earlier runs in LEDGER")
    reg.add_argument("--tolerance", type=float, metavar="PCT",
                     default=5.0,
                     help="allowed per-task wall-time growth in "
                     "percent after scale normalisation "
                     "(default: %(default)s)")
    reg.add_argument("--min-wall-ms", type=float, metavar="MS",
                     default=1.0,
                     help="ignore timing movement on tasks faster "
                     "than MS (default: %(default)s)")
    reg.add_argument("--absolute", action="store_true",
                     help="compare raw wall times (skip the "
                     "median-ratio machine-speed normalisation)")
    reg.set_defaults(obs_func=cmd_regress)


def dispatch(args: argparse.Namespace) -> int:
    """Run the selected obs subcommand (shared with the main CLI)."""
    try:
        return args.obs_func(args)
    except (TraceError, LedgerError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="profiling observatory: report, flame, diff, "
        "history, regress")
    configure_parser(parser)
    args = parser.parse_args(argv)
    return dispatch(args)
