"""XNF — the XML normal form (Section 5, Definition 8).

``(D, Σ)`` is in XNF iff every non-trivial implied FD of the form
``S -> p.@l`` or ``S -> p.S`` comes with ``S -> p`` implied as well:
whenever a set of values determines an attribute or text value, it must
determine the *node* carrying it, so the value is stored once.

The executable test uses Proposition 10: for relational DTDs — a class
containing all disjunctive (hence all simple) DTDs — it suffices to
inspect the FDs of Σ itself rather than the full closure ``(D, Σ)+``.
"""

from repro.xnf.check import is_in_xnf, xnf_violations
from repro.xnf.anomalous import (
    anomalous_paths,
    anomalous_sigma_fds,
    is_anomalous,
)

__all__ = [
    "is_in_xnf", "xnf_violations",
    "is_anomalous", "anomalous_sigma_fds", "anomalous_paths",
]
