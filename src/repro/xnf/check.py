"""The XNF test (Definition 8, via Proposition 10 / Corollary 1)."""

from __future__ import annotations

from typing import Iterable

from repro.dtd.model import DTD
from repro.fd.implication import EngineName, ImplicationEngine
from repro.fd.model import FD
from repro.obs import metrics as _obs
from repro.obs.trace import span as _span
from repro.xnf.anomalous import anomalous_sigma_fds


def xnf_violations(dtd: DTD, sigma: Iterable[FD], *,
                   engine: EngineName = "auto") -> list[FD]:
    """The Σ-FDs witnessing that ``(D, Σ)`` is not in XNF.

    Each returned FD is a single-RHS ``S -> p.@l`` / ``S -> p.S`` that
    is non-trivial and implied while ``S -> p`` is not — an *anomalous*
    FD.  By Proposition 10 the list is empty iff ``(D, Σ)`` is in XNF
    whenever the DTD is relational (in particular disjunctive or
    simple).  For simple DTDs this runs in cubic time (Corollary 1):
    |Σ| implication queries, each quadratic.
    """
    with _obs.timer("xnf.check"), _span("xnf.check") as sp:
        oracle = ImplicationEngine(dtd, sigma, engine=engine)
        violations = anomalous_sigma_fds(oracle)
        sp.set("violations", len(violations))
        sp.set("implication_queries", oracle.query_count())
    return violations


def is_in_xnf(dtd: DTD, sigma: Iterable[FD], *,
              engine: EngineName = "auto") -> bool:
    """Whether ``(D, Σ)`` is in XML Normal Form."""
    return not xnf_violations(dtd, sigma, engine=engine)
