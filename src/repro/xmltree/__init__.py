"""XML trees — Definition 2 of the paper.

An XML tree is ``T = (V, lab, ele, att, root)``: a finite rooted tree
of element nodes where each node carries a label, a list of children
(either element nodes or one string — no mixed content), and a partial
attribute assignment.

This package provides the model, a from-scratch XML parser and
serializer, conformance ``T |= D`` and compatibility ``T < D``
(Definition 3), ``paths(T)``, and the unordered subsumption /
equivalence relations of Section 3.
"""

from repro.xmltree.model import XMLTree, elem
from repro.xmltree.parser import parse_xml
from repro.xmltree.serializer import serialize_xml
from repro.xmltree.conformance import (
    conforms,
    conforms_unordered,
    is_compatible,
    tree_paths,
    validate_conformance,
)
from repro.xmltree.subsumption import (
    canonical_key,
    equivalent,
    isomorphic_unordered,
    subsumed_by,
)

__all__ = [
    "XMLTree", "elem", "parse_xml", "serialize_xml",
    "conforms", "conforms_unordered", "is_compatible", "tree_paths",
    "validate_conformance",
    "subsumed_by", "equivalent", "canonical_key", "isomorphic_unordered",
]
