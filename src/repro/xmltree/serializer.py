"""Serialization of XML trees back to document text."""

from __future__ import annotations

from repro.xmltree.model import XMLTree

_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ATTR_ESCAPES = _ESCAPES + [('"', "&quot;")]


def _escape(text: str, table: list[tuple[str, str]]) -> str:
    for char, replacement in table:
        text = text.replace(char, replacement)
    return text


def serialize_xml(tree: XMLTree, *, indent: int = 2,
                  sort_children: bool = False) -> str:
    """Render a tree as an XML document.

    ``sort_children`` emits children ordered by their canonical key,
    producing identical text for unordered-equivalent trees (useful in
    golden tests).
    """
    assert tree.root is not None
    lines: list[str] = []

    def render(node: str, depth: int) -> None:
        pad = " " * (indent * depth)
        label = tree.label(node)
        attrs = "".join(
            f' {name[1:]}="{_escape(value, _ATTR_ESCAPES)}"'
            for name, value in sorted(tree.attrs_of(node).items()))
        text = tree.text(node)
        children = tree.children(node)
        if text is not None:
            lines.append(
                f"{pad}<{label}{attrs}>{_escape(text, _ESCAPES)}</{label}>")
            return
        if not children:
            lines.append(f"{pad}<{label}{attrs}/>")
            return
        if sort_children:
            from repro.xmltree.subsumption import canonical_key
            children = sorted(
                children,
                key=lambda child: repr(canonical_key(tree, child)))
        lines.append(f"{pad}<{label}{attrs}>")
        for child in children:
            render(child, depth + 1)
        lines.append(f"{pad}</{label}>")

    render(tree.root, 0)
    return "\n".join(lines) + "\n"
