"""A from-scratch XML parser for the fragment of Definition 2.

Supports start/end/empty tags with double- or single-quoted attributes,
character data, comments, processing instructions / XML declarations,
an optional internal ``<!DOCTYPE ...>`` (skipped), and the five
predefined entities.  Mixed content is rejected (whitespace-only runs
between elements are ignored), matching the paper's tree model.
"""

from __future__ import annotations

import re

from repro.errors import XMLSyntaxError
from repro.faults import plan as _faults
from repro.xmltree.model import XMLTree

_NAME = r"[A-Za-z_:][A-Za-z0-9_.:-]*"
_ATTR_RE = re.compile(
    rf"({_NAME})\s*=\s*(\"([^\"]*)\"|'([^']*)')")
_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}
_ENTITY_RE = re.compile(r"&(#x?[0-9A-Fa-f]+|[A-Za-z]+);")

_SITE_INPUT = _faults.register_site(
    "xml.parser.input", "xmltree",
    "XML text entering parse_xml (truncatable)",
    kinds=_faults.INPUT_KINDS)
_SITE_TAG = _faults.register_site(
    "xml.parser.tag", "xmltree",
    "each markup construct consumed by the document scanner")


def _unescape(text: str) -> str:
    def replace(match: re.Match[str]) -> str:
        body = match.group(1)
        try:
            if body.startswith("#x") or body.startswith("#X"):
                return chr(int(body[2:], 16))
            if body.startswith("#"):
                return chr(int(body[1:]))
        except (ValueError, OverflowError):
            # Non-decimal digits after ``&#`` or a code point outside
            # chr()'s range: a malformed reference, not a crash.
            raise XMLSyntaxError(
                f"invalid character reference &{body};") from None
        if body in _ENTITIES:
            return _ENTITIES[body]
        raise XMLSyntaxError(f"unknown entity &{body};")

    return _ENTITY_RE.sub(replace, text)


def parse_xml(text: str, *, id_prefix: str = "v") -> XMLTree:
    """Parse an XML document into an :class:`XMLTree`.

    Node ids are assigned in document order (``v0``, ``v1``, ...).
    Syntax errors carry the 1-based line and column of the offending
    construct.
    """
    if _faults.active:
        text = _faults.mangle(_SITE_INPUT, text)
    tree = XMLTree()
    stack: list[str] = []           # open element node ids
    pending_text: list[tuple[str, str]] = []  # (owner node, text)
    index = 0
    length = len(text)

    def fail(message: str) -> XMLSyntaxError:
        line = text.count("\n", 0, index) + 1
        column = index - (text.rfind("\n", 0, index) + 1) + 1
        return XMLSyntaxError(message, line=line, column=column)

    def flush_text(run: str) -> None:
        if not stack:
            if run.strip():
                raise fail("character data outside the root element")
            return
        if not run.strip():
            return
        owner = stack[-1]
        if tree.children(owner):
            raise fail(
                f"mixed content under <{tree.label(owner)}> is not "
                "supported (Definition 2)")
        pending_text.append((owner, _unescape(run)))

    while index < length:
        open_pos = text.find("<", index)
        if open_pos == -1:
            flush_text(text[index:])
            break
        if open_pos > index:
            flush_text(text[index:open_pos])
        index = open_pos
        if _faults.active:
            _faults.fire(_SITE_TAG)
        if text.startswith("<!--", index):
            end = text.find("-->", index)
            if end == -1:
                raise fail("unterminated comment")
            index = end + 3
            continue
        if text.startswith("<?", index):
            end = text.find("?>", index)
            if end == -1:
                raise fail("unterminated processing instruction")
            index = end + 2
            continue
        if text.startswith("<!DOCTYPE", index):
            index = _skip_doctype(text, index, fail)
            continue
        if text.startswith("</", index):
            end = text.find(">", index)
            if end == -1:
                raise fail("unterminated end tag")
            name = text[index + 2:end].strip()
            if not stack:
                raise fail(f"unmatched end tag </{name}>")
            node = stack.pop()
            if tree.label(node) != name:
                raise fail(
                    f"end tag </{name}> does not match <{tree.label(node)}>")
            index = end + 1
            continue
        end = text.find(">", index)
        if end == -1:
            raise fail("unterminated start tag")
        body = text[index + 1:end]
        self_closing = body.endswith("/")
        if self_closing:
            body = body[:-1]
        name_match = re.match(_NAME, body)
        if name_match is None:
            raise fail(f"invalid tag {body[:30]!r}")
        name = name_match.group()
        attrs: dict[str, str] = {}
        rest = body[name_match.end():]
        position = 0
        for attr_match in _ATTR_RE.finditer(rest):
            between = rest[position:attr_match.start()]
            if between.strip():
                raise fail(f"malformed attributes in <{name}>")
            value = attr_match.group(3)
            if value is None:
                value = attr_match.group(4)
            attr_name = "@" + attr_match.group(1)
            if attr_name in attrs:
                raise fail(f"duplicate attribute {attr_match.group(1)!r} "
                           f"in <{name}>")
            attrs[attr_name] = _unescape(value)
            position = attr_match.end()
        if rest[position:].strip():
            raise fail(f"malformed attributes in <{name}>")
        parent = stack[-1] if stack else None
        if parent is None and tree.root is not None:
            raise fail("multiple root elements")
        if parent is not None and tree.text(parent) is not None:
            raise fail(
                f"mixed content under <{tree.label(parent)}> is not "
                "supported (Definition 2)")
        node = tree.add_node(name, node_id=tree.new_node_id(id_prefix),
                             parent=parent, attrs=attrs)
        if not self_closing:
            stack.append(node)
        index = end + 1

    index = length
    if stack:
        raise fail(f"unclosed element <{tree.label(stack[-1])}>")
    if tree.root is None:
        raise fail("document has no root element")
    for owner, run in pending_text:
        tree.set_text(owner, run)
    return tree.freeze()


def _skip_doctype(text: str, index: int, fail) -> int:
    depth = 0
    position = index
    while position < len(text):
        char = text[position]
        if char == "<":
            depth += 1
        elif char == ">":
            depth -= 1
            if depth == 0:
                return position + 1
        elif char == "[":
            end = text.find("]", position)
            if end == -1:
                raise fail("unterminated DOCTYPE internal subset")
            position = end
        position += 1
    raise fail("unterminated DOCTYPE")
